"""The auto-coalescing query scheduler behind the serving layer.

Concurrent point queries are worth little one at a time: the
tensorized Step-2 kernel (and the batched Step-1 filters) pay off in
proportion to how many queries share one dispatch.  The scheduler
turns submission concurrency into batch width:

* **Coalescing** — queued reads are grouped by ``(kind, params,
  forced retriever)``.  A worker thread that becomes free takes one
  whole group and executes it through the database's single
  group-execution path (``Database._execute_group`` ->
  ``BaseEngine.query_batch`` -> the packed-store kernel), so ten
  concurrent ``nn`` queries cost one plan probe and one kernel
  dispatch, not ten.
* **Mutation barriers** — ``insert`` / ``delete`` submissions close
  the open read *segment*.  The queue is an ordered sequence of
  segments: reads coalesce freely within a segment, a mutation
  segment executes only once every earlier read has completed, and
  reads submitted after the mutation land in a fresh segment that
  only starts once the mutation applied.  Every read therefore
  executes against exactly one dataset epoch, and its future is
  tagged with that epoch.

The scheduler is pure queue discipline — it owns no threads.  The
:class:`~repro.service.server.UncertainDBServer` runs worker threads
that loop ``next_work()`` / ``work_done()``.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from .future import QueryFuture

__all__ = [
    "CoalescingScheduler",
    "MutationWork",
    "ReadGroup",
    "SchedulerClosed",
    "SchedulerStats",
]


class SchedulerClosed(RuntimeError):
    """Submission refused: the scheduler is shutting down."""


@dataclass
class SchedulerStats:
    """Counters describing how much concurrency became batch width."""

    #: Queries and mutations accepted by ``submit_*``.
    submitted: int = 0
    #: Futures completed (result or exception).
    completed: int = 0
    #: Read groups handed to workers.
    groups_dispatched: int = 0
    #: Queries that rode an already-queued group instead of opening
    #: one — ``sum(len(group) - 1)``; the coalescing win.
    coalesced: int = 0
    #: Mutation barriers applied.
    barriers: int = 0
    #: Widest group ever dispatched.
    largest_group: int = 0

    def snapshot(self) -> "SchedulerStats":
        return SchedulerStats(
            submitted=self.submitted,
            completed=self.completed,
            groups_dispatched=self.groups_dispatched,
            coalesced=self.coalesced,
            barriers=self.barriers,
            largest_group=self.largest_group,
        )


@dataclass
class ReadGroup:
    """One coalesced (kind, params, retriever) group of queued reads."""

    kind: str
    params: tuple[tuple[str, Any], ...]
    forced: str | None
    queries: list[Any] = field(default_factory=list)
    futures: list[QueryFuture] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.futures)


@dataclass
class MutationWork:
    """One queued mutation barrier."""

    op: str
    payload: Any
    future: QueryFuture


class _ReadSegment:
    """An epoch-coherent run of reads between two mutation barriers."""

    __slots__ = ("groups",)

    def __init__(self) -> None:
        self.groups: dict[tuple, ReadGroup] = {}


class CoalescingScheduler:
    """Segment queue + condition variable; see the module docstring.

    ``max_group`` bounds how many queries one dispatch may carry (a
    full group is closed — later submissions of the same template
    open a fresh one), keeping worst-case kernel temporaries and
    per-dispatch latency bounded.
    """

    def __init__(self, *, max_group: int = 256) -> None:
        if max_group < 1:
            raise ValueError("max_group must be >= 1")
        self.max_group = int(max_group)
        self.stats = SchedulerStats()
        self._cv = threading.Condition()
        self._queue: deque[_ReadSegment | MutationWork] = deque()
        #: Read groups taken by workers from the head segment and not
        #: yet finished — a mutation barrier waits for this to reach 0.
        self._inflight = 0
        #: True while a worker is applying a mutation (blocks all else).
        self._mutating = False
        self._closed = False

    # ------------------------------------------------------------------
    # Submission (client side)
    # ------------------------------------------------------------------
    def submit_read(
        self,
        kind: str,
        query: Any,
        params: tuple[tuple[str, Any], ...],
        forced: str | None,
        deadline: float | None = None,
    ) -> QueryFuture:
        """Queue one read; ``deadline`` (``time.monotonic`` seconds) is
        the query's time budget — stamped on the future, enforced by
        the server at dispatch (queue-time expiry) and by
        ``future.result()`` (a deadlined future never blocks past it).
        Deadlines do not affect coalescing: an expired rider is pruned
        from its group at dispatch, the group still executes.
        """
        future = QueryFuture(kind)
        future.deadline = deadline
        key = (kind, params, forced)
        with self._cv:
            self._check_open()
            tail = self._queue[-1] if self._queue else None
            if not isinstance(tail, _ReadSegment):
                tail = _ReadSegment()
                self._queue.append(tail)
            group = tail.groups.get(key)
            if group is None or len(group) >= self.max_group:
                if group is not None:
                    # Full: dispatchable under a fresh key alias so the
                    # template can keep coalescing into the new group.
                    tail.groups[(kind, params, forced, id(group))] = group
                group = ReadGroup(kind=kind, params=params, forced=forced)
                tail.groups[key] = group
            else:
                self.stats.coalesced += 1
            group.queries.append(query)
            group.futures.append(future)
            self.stats.submitted += 1
            self._cv.notify()
        return future

    def submit_mutation(self, op: str, payload: Any) -> QueryFuture:
        future = QueryFuture(op)
        with self._cv:
            self._check_open()
            self._queue.append(MutationWork(op=op, payload=payload, future=future))
            self.stats.submitted += 1
            self._cv.notify_all()
        return future

    def _check_open(self) -> None:
        if self._closed:
            raise SchedulerClosed("scheduler is closed to new submissions")

    # ------------------------------------------------------------------
    # Dispatch (worker side)
    # ------------------------------------------------------------------
    def next_work(self) -> ReadGroup | MutationWork | None:
        """Block for the next dispatchable unit; ``None`` = shut down.

        Hands out whole read groups from the head segment (concurrent
        workers may each hold one), or — once the head segment has
        fully completed — a mutation, exclusively.
        """
        with self._cv:
            while True:
                work = self._next_locked()
                if work is not None:
                    return work
                if self._closed and not self._queue and self._inflight == 0:
                    return None
                self._cv.wait()

    def _next_locked(self) -> ReadGroup | MutationWork | None:
        if self._mutating:
            # A barrier is applying: nothing may run beside it — not
            # even reads submitted after it was dispatched (they must
            # observe the post-mutation epoch).
            return None
        while self._queue:
            head = self._queue[0]
            if isinstance(head, _ReadSegment):
                if head.groups:
                    __, group = head.groups.popitem()
                    self._inflight += 1
                    self.stats.groups_dispatched += 1
                    if len(group) > self.stats.largest_group:
                        self.stats.largest_group = len(group)
                    return group
                if self._inflight == 0:
                    self._queue.popleft()
                    continue
                return None  # drained but groups still executing
            # Mutation barrier: wait for the previous segment to finish.
            if self._inflight == 0:
                self._mutating = True
                self._queue.popleft()
                return head
            return None
        return None

    def work_done(self, work: ReadGroup | MutationWork) -> None:
        """Mark a dispatched unit finished, waking waiters."""
        with self._cv:
            if isinstance(work, MutationWork):
                self._mutating = False
                self.stats.barriers += 1
                self.stats.completed += 1
            else:
                self._inflight -= 1
                self.stats.completed += len(work)
            self._cv.notify_all()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Refuse new submissions; queued work still drains."""
        with self._cv:
            self._closed = True
            self._cv.notify_all()

    def pending(self) -> int:
        """Queued-but-undispatched queries and mutations (diagnostic)."""
        with self._cv:
            count = 0
            for segment in self._queue:
                if isinstance(segment, _ReadSegment):
                    count += sum(
                        len(group) for group in segment.groups.values()
                    )
                else:
                    count += 1
            return count
