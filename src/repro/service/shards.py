"""Spatial sharding for scatter-gather Step 1.

The process tier splits the database into a handful of spatial
*shards* — disjoint groups of objects partitioned by region center
through the existing :class:`~repro.storage.octree.PagedOctree`
(hash-by-object-id when the octree degenerates).  Each shard carries
its members' packed corner arrays plus the member MBR, so a query
batch can bound whole shards before touching any member:

* ``B0(q) = min over shards of maxdist(q, MBR_s)`` is an upper bound
  on the exact pruning bound ``B(q) = min over objects of
  maxdist(q, o)`` — each shard's MBR contains its members, so its
  maxdist dominates every member's.
* A shard with ``mindist(q, MBR_s) > B0(q)`` holds no candidate: each
  member's mindist is at least the MBR's, hence strictly above
  ``B(q)``.  Such shards are never dispatched (counted in
  ``shards_pruned``).
* The shard holding the global argmin-maxdist member always survives
  (its MBR mindist is at most that member's maxdist, which is
  ``B(q)`` and therefore at most ``B0(q)``), so the exact bound is
  recoverable from the survivors alone: the min over surviving
  members' maxdist equals ``B(q)`` bit-for-bit — pruned members all
  sit strictly above it, and float ``min`` is exact over any subset
  that retains the argmin.

:class:`ShardedRetriever` runs the brute-force min-max filter per
surviving shard and merges candidates back into global packed order,
so its answers are **bit-identical** to
:class:`~repro.engine.retrievers.BruteForceRetriever` (asserted by
``tests/test_shards.py``): the per-element min/max kernel is
row-independent, so evaluating members shard-by-shard produces the
same floats as one global pass.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..engine.cost import CostEstimate, expected_candidates
from ..engine.retrievers import minmax_sq_chunks
from ..engine.stats import ExecutionStats
from ..geometry import Rect
from ..storage.octree import OctreeConfig, PagedOctree
from ..storage.pager import Pager
from ..uncertain import UncertainDataset

__all__ = ["Shard", "ShardLayout", "ShardedRetriever", "DEFAULT_SHARDS"]

#: Default shard count: enough for meaningful pruning on clustered
#: workloads while keeping the per-batch shard-bound matrix tiny.
DEFAULT_SHARDS = 8


@dataclass(frozen=True)
class Shard:
    """One spatial partition: member rows of the packed corner arrays."""

    #: Global packed-array row positions of the members (sorted
    #: ascending so merged candidates restore insertion order cheaply).
    positions: np.ndarray
    #: Member object ids, aligned with :attr:`positions`.
    ids: np.ndarray
    #: ``(m, d)`` member region low corners.
    los: np.ndarray
    #: ``(m, d)`` member region high corners.
    his: np.ndarray
    #: Member MBR low corner (bound of member *regions*, not the
    #: octree leaf region — tighter, and correct for the hash layout
    #: where members share no leaf).
    mbr_lo: np.ndarray
    #: Member MBR high corner.
    mbr_hi: np.ndarray

    def __len__(self) -> int:
        return len(self.positions)


@dataclass(frozen=True)
class ShardLayout:
    """A complete disjoint partitioning of one dataset epoch.

    Built once per worker attach (and rebuilt after every mutation
    fence — the shared store is immutable between fences, so a layout
    never needs incremental maintenance).
    """

    shards: tuple[Shard, ...]
    #: Dataset epoch the layout was computed at.
    epoch: int
    #: ``"octree"`` or the ``"hash"`` fallback.
    method: str
    #: ``(S, d)`` stacked shard MBR low corners (the batch bound pass
    #: broadcasts against these).
    mbr_los: np.ndarray = field(repr=False)
    #: ``(S, d)`` stacked shard MBR high corners.
    mbr_his: np.ndarray = field(repr=False)

    def __len__(self) -> int:
        return len(self.shards)

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        dataset: UncertainDataset,
        n_shards: int = DEFAULT_SHARDS,
        method: str = "auto",
    ) -> "ShardLayout":
        """Partition ``dataset`` into roughly ``n_shards`` shards.

        The octree splits into ``2^d`` children at a time, so the
        spatial method can overshoot the target by a small factor;
        the hash fallback produces exactly ``min(n_shards, n)``.

        ``method="auto"`` tries the spatial octree split and falls
        back to hashing object ids when the octree cannot separate
        the data (all centers coincident, depth limit, or a dataset
        smaller than the shard count); ``"octree"`` / ``"hash"``
        force one strategy.
        """
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if method not in ("auto", "octree", "hash"):
            raise ValueError(f"unknown shard method {method!r}")
        ids, los, his = dataset.packed_regions()
        n = len(ids)
        groups: list[np.ndarray] | None = None
        used = "hash"
        if method in ("auto", "octree") and n_shards > 1:
            groups = _octree_partition(dataset, ids, los, his, n_shards)
            if groups is not None:
                used = "octree"
            elif method == "octree":
                raise ValueError(
                    "octree partitioning degenerated on this dataset "
                    "(coincident centers or too few objects); use "
                    "method='auto' to allow the hash fallback"
                )
        if groups is None:
            buckets = np.asarray(ids, dtype=np.int64) % max(n_shards, 1)
            groups = [
                np.nonzero(buckets == b)[0]
                for b in range(max(n_shards, 1))
            ]
            groups = [g for g in groups if g.size]
        shards = []
        for rows in groups:
            rows = np.sort(np.asarray(rows, dtype=np.int64))
            s_los = los[rows].copy()
            s_his = his[rows].copy()
            shards.append(
                Shard(
                    positions=rows,
                    ids=np.asarray(ids, dtype=np.int64)[rows],
                    los=s_los,
                    his=s_his,
                    mbr_lo=s_los.min(axis=0),
                    mbr_hi=s_his.max(axis=0),
                )
            )
        shards.sort(key=lambda s: int(s.positions[0]))
        return cls(
            shards=tuple(shards),
            epoch=dataset.epoch,
            method=used,
            mbr_los=np.stack([s.mbr_lo for s in shards]),
            mbr_his=np.stack([s.mbr_hi for s in shards]),
        )


def _octree_partition(
    dataset: UncertainDataset,
    ids: np.ndarray,
    los: np.ndarray,
    his: np.ndarray,
    n_shards: int,
) -> list[np.ndarray] | None:
    """Spatial grouping via the paged octree, or ``None`` when it
    cannot produce at least two groups.

    Region *centers* are inserted as degenerate rectangles so every
    object lands in exactly the leaves containing its center — the
    octree's overlap replication only fires for centers sitting on a
    split plane, which the first-leaf-wins dedup below resolves
    deterministically.  The pager's page size is chosen so one leaf
    page holds roughly ``n / n_shards`` entries: leaves fill, split,
    and the resulting leaf set is the partition.
    """
    n = len(ids)
    if n < 2 * n_shards:
        return None
    d = dataset.dims
    centers = (los + his) / 2.0
    target_leaf = max(2, math.ceil(n / n_shards))
    entry_bytes = OctreeConfig.entry_size(d)
    pager = Pager(page_size=max(64, entry_bytes * target_leaf))
    tree = PagedOctree(
        dataset.domain,
        pager,
        OctreeConfig(memory_budget=64 * 1024 * 1024, max_depth=24),
        entry_bytes=entry_bytes,
    )
    for i in range(n):
        c = centers[i]
        tree.insert(int(ids[i]), Rect(c, c))
    row_of = {int(oid): i for i, oid in enumerate(ids)}
    seen: set[int] = set()
    groups: list[np.ndarray] = []
    for leaf in tree.iter_leaves():
        members = []
        for oid, _rect, _payload in leaf.peek():
            if oid in seen:
                continue
            seen.add(oid)
            members.append(row_of[oid])
        if members:
            groups.append(np.asarray(members, dtype=np.int64))
    if len(groups) < 2:
        return None
    return groups


class ShardedRetriever:
    """Scatter-gather Step 1: the exact min-max filter, shard by shard.

    A drop-in :class:`~repro.engine.retrievers.Retriever` whose
    answers are bit-identical to brute force — the shard pass only
    *skips* members proven non-candidates by their shard MBR, and the
    survivors' bound and filter reproduce the global floats exactly
    (see the module docstring for the argument).  Prune/dispatch
    counts land on ``stats`` when one is attached, so the scatter
    telemetry surfaces through ``db.explain`` and ``ExecutionStats``.
    """

    name = "sharded"

    def __init__(
        self,
        dataset: UncertainDataset,
        layout: ShardLayout | None = None,
        n_shards: int = DEFAULT_SHARDS,
        stats: ExecutionStats | None = None,
    ) -> None:
        self.dataset = dataset
        self._n_shards = n_shards
        self._layout = layout
        self.stats = stats

    # ------------------------------------------------------------------
    @property
    def dataset_epoch(self) -> int:
        """Always the live epoch: the layout is revalidated per call,
        so shard answers can never be stale."""
        return getattr(self.dataset, "epoch", 0)

    @property
    def layout(self) -> ShardLayout:
        """The current shard layout (rebuilt lazily on epoch drift)."""
        layout = self._layout
        if layout is None or layout.epoch != self.dataset.epoch:
            layout = ShardLayout.build(self.dataset, self._n_shards)
            self._layout = layout
        return layout

    def cost_estimate(self) -> CostEstimate:
        """Brute force's linear cost, discounted by expected pruning.

        The discount is a heuristic (half the shards dominated on a
        clustered workload); exactness is unaffected either way.
        """
        n = len(self.dataset)
        d = self.dataset.dims
        s = max(len(self.layout), 1)
        surviving = max(1.0, s / 2.0)
        return CostEstimate(
            step1_us=20.0 + 0.012 * n * d * (surviving / s),
            page_reads=0.0,
            candidates=expected_candidates(n, d),
            source="index",
        )

    # ------------------------------------------------------------------
    def candidates(self, query: np.ndarray) -> list[int]:
        """Step-1 answer for one query point."""
        return self.candidates_batch(
            np.asarray(query, dtype=np.float64)[None, :]
        )[0]

    def candidates_batch(self, queries: np.ndarray) -> list[list[int]]:
        """Step-1 answers for a ``(b, d)`` block of query points.

        Three passes: (1) broadcast the query block against the
        ``(S, d)`` shard MBRs to find surviving shards per query,
        (2) run the shared min/max kernel over each surviving shard's
        members and fold the exact per-query bound, (3) filter each
        shard's members against the final bound and merge candidates
        in global packed order.
        """
        q = np.asarray(queries, dtype=np.float64)
        layout = self.layout
        shards = layout.shards
        b = len(q)
        if b == 0:
            return []
        # (b, S) squared min/max distance to each shard MBR.
        gap = np.maximum(
            np.maximum(
                layout.mbr_los[None, :, :] - q[:, None, :],
                q[:, None, :] - layout.mbr_his[None, :, :],
            ),
            0.0,
        )
        mbr_min = np.einsum("bsd,bsd->bs", gap, gap)
        far = np.maximum(
            np.abs(q[:, None, :] - layout.mbr_los[None, :, :]),
            np.abs(q[:, None, :] - layout.mbr_his[None, :, :]),
        )
        mbr_max = np.einsum("bsd,bsd->bs", far, far)
        survive = mbr_min <= mbr_max.min(axis=1)[:, None]  # (b, S)

        # Per-shard member pass over the surviving query rows only.
        bounds = np.full(b, np.inf)
        pending: list[tuple[np.ndarray, np.ndarray, "Shard"]] = []
        for s_idx, shard in enumerate(shards):
            rows = np.nonzero(survive[:, s_idx])[0]
            if rows.size == 0:
                continue
            parts_min: list[np.ndarray] = []
            for min_sq, max_sq in minmax_sq_chunks(
                q[rows], shard.los, shard.his
            ):
                parts_min.append(min_sq)
                np.minimum.at(
                    bounds,
                    rows[: min_sq.shape[0]],
                    max_sq.min(axis=1),
                )
                rows = rows[min_sq.shape[0]:]
            rows = np.nonzero(survive[:, s_idx])[0]
            pending.append((rows, np.vstack(parts_min), shard))

        if self.stats is not None:
            dispatched = int(survive.sum())
            self.stats.shards_dispatched += dispatched
            self.stats.shards_pruned += b * len(shards) - dispatched

        # Merge: position-tagged survivors, restored to packed order.
        merged: list[list[tuple[np.ndarray, np.ndarray]]]
        merged = [[] for _ in range(b)]
        for rows, min_sq, shard in pending:
            keep = min_sq <= bounds[rows][:, None]
            for local, qi in enumerate(rows):
                row = keep[local]
                if row.any():
                    sel = np.nonzero(row)[0]
                    merged[int(qi)].append(
                        (shard.positions[sel], shard.ids[sel])
                    )
        out: list[list[int]] = []
        for chunks in merged:
            if not chunks:
                out.append([])
                continue
            positions = np.concatenate([c[0] for c in chunks])
            oids = np.concatenate([c[1] for c in chunks])
            order = np.argsort(positions, kind="stable")
            out.append([int(i) for i in oids[order]])
        return out
