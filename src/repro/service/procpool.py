"""The process-pool serving tier: GIL-free scatter-gather execution.

:class:`ProcessPoolServer` swaps the thread server's in-process group
execution for a pool of **worker processes** attached to one
shared-memory export of the packed instance store
(:meth:`~repro.uncertain.store.InstanceStore.export_shared`).  Queries
cross the pipe as small ``(kind, queries, params, forced)`` tuples —
the instance data itself is never pickled; workers map the segment by
name and rebuild a zero-copy dataset over it at spawn.

Execution model
---------------

* The parent keeps the thread server's scheduler and its worker
  *threads*, but each thread drives idle worker *processes* instead of
  computing: a dispatched read group is split into contiguous query
  chunks, scattered over however many processes are idle right now,
  and gathered back in chunk order.  Chunking is bit-transparent —
  every query row is independent, so the merged answers equal the
  single-dispatch answers exactly.
* Workers answer Step 1 through the sharded scatter-gather retriever
  (:class:`~repro.service.shards.ShardedRetriever`) unless the query
  forces ``"brute"`` — per-shard MBR bounds prune dominated shards
  before any member distance is computed, and the counters travel
  back on each result's :class:`~repro.engine.ExecutionStats`.
* A mutation barrier becomes a **pool-wide fence**: the scheduler
  already guarantees exclusivity (no reads in flight), so the parent
  applies the mutation, exports a fresh segment at the new epoch,
  broadcasts a re-attach to every worker, awaits their acks, and only
  then unlinks the old segment.  Workers refuse stale attaches by the
  epoch stamp inside the segment header.
* A worker that dies mid-query fails only its own chunk's futures
  (the group raises a broken-worker error) and is respawned once per
  incident; :meth:`close` terminates every process and unlinks the
  live segment even on that path — no ``/dev/shm`` leaks (regression
  test in ``tests/test_procpool.py``).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Sequence

from .scheduler import MutationWork, ReadGroup
from .server import UncertainDBServer
from .shards import DEFAULT_SHARDS

__all__ = ["ProcessPoolServer", "WorkerDied"]

#: Minimum queries per scattered chunk: below this, pipe + merge
#: overhead outweighs extra processes and the group runs on one.
SCATTER_MIN = 8


class WorkerDied(RuntimeError):
    """A worker process exited while executing a dispatched chunk."""


# ----------------------------------------------------------------------
# Worker process side (top-level: must be picklable for spawn)
# ----------------------------------------------------------------------
class _WorkerState:
    """Everything one worker process rebuilds from the shared segment.

    Constructed lazily on the first ``run`` after (re-)attach: the
    zero-copy dataset over the segment, one engine per
    ``(kind, retriever)`` pair, and a single
    :class:`~repro.service.shards.ShardLayout` shared by every sharded
    retriever.  Torn down (and the segment detached) on each fence.
    """

    def __init__(self, handle: Any, config: dict[str, Any]) -> None:
        from ..uncertain.store import attach_shared

        self.view = attach_shared(handle)
        self.dataset = self.view.build_dataset()
        self.config = config
        self.epoch = int(handle.epoch)
        self._engines: dict[tuple[str, str], Any] = {}
        self._layout: Any = None

    # -- plan policy ---------------------------------------------------
    def _choice(
        self, kind: str, params: dict[str, Any], forced: str | None
    ) -> tuple[str, str, str]:
        """``(retriever name, reason, cost_kind)`` for one template.

        Mirrors ``Database._fixed_choice`` for the policy-fixed kinds,
        then routes everything else to the sharded scatter-gather
        filter (or brute force when forced).  Index retrievers are not
        available inside workers — their paged structures live in the
        parent and are not shared.
        """
        if kind == "reverse_nn":
            return (
                "none",
                "domination-based Step 1 over object regions; "
                "point retrievers do not apply",
                "reverse_nn",
            )
        if kind == "knn" and params.get("k", 1) > 1:
            return (
                "brute",
                "k > 1 widens Step 1 to the exact k-th-maxdist filter "
                "over the whole database; indexes accelerate only k = 1",
                "knn:exact",
            )
        if kind == "group_nn" and params.get("aggregate") != "min":
            return (
                "brute",
                "sum/max aggregates run the direct aggregate-bound "
                "filter; an index narrows only the min aggregate",
                "group_nn:direct",
            )
        if forced in (None, "sharded"):
            return (
                "sharded",
                "process pool: sharded scatter-gather Step 1 over the "
                "shared segment (MBR-dominated shards pruned)",
                kind,
            )
        if forced == "brute":
            return (
                "brute",
                "forced exact brute-force Step 1 (process pool)",
                kind,
            )
        raise ValueError(
            f"retriever {forced!r} is not available in process mode: "
            "workers share only the packed instance store, not the "
            "parent's paged indexes (use 'brute', 'sharded', or the "
            "default)"
        )

    def _engine(self, kind: str, rname: str) -> Any:
        from ..api.database import _KINDS
        from .shards import ShardLayout, ShardedRetriever

        key = (kind, rname)
        engine = self._engines.get(key)
        if engine is not None:
            return engine
        retriever = None
        if rname == "sharded":
            if self._layout is None:
                self._layout = ShardLayout.build(
                    self.dataset, self.config.get("n_shards", DEFAULT_SHARDS)
                )
            retriever = ShardedRetriever(self.dataset, layout=self._layout)
        spec = _KINDS[kind]
        kwargs: dict[str, Any] = {
            "secondary": None,
            "result_cache_size": self.config.get("result_cache_size", 128),
            "memo_radius": self.config.get("memo_radius", 0.0),
        }
        if spec.takes_n_bins:
            kwargs["n_bins"] = self.config.get("n_bins", 8)
        engine = spec.engine_cls(self.dataset, retriever, **kwargs)
        if retriever is not None:
            # Shard prune/dispatch counts land on the engine's stats,
            # so the measured deltas carry them back over the pipe.
            retriever.stats = engine.stats
        self._engines[key] = engine
        return engine

    # -- execution -----------------------------------------------------
    def execute(
        self,
        kind: str,
        queries: Sequence[Any],
        params: tuple[tuple[str, Any], ...],
        forced: str | None,
    ) -> list[Any]:
        from ..api.planner import Plan
        from ..api.result import QueryResult

        rname, reason, bucket = self._choice(kind, dict(params), forced)
        engine = self._engine(kind, rname)
        kwargs = dict(params)
        t0 = time.perf_counter()
        if len(queries) == 1:
            answer, delta = engine.query_measured(queries[0], **kwargs)
            answers = [answer]
        else:
            answers, delta = engine.query_batch_measured(
                list(queries), **kwargs
            )
        delta.worker_busy_seconds = time.perf_counter() - t0
        plan = Plan(
            kind=kind,
            params=params,
            retriever=rname,
            reason=reason,
            epoch=self.epoch,
            forced=forced is not None,
            cost_kind=bucket,
        )
        return [
            QueryResult(kind=kind, answer=answer, plan=plan, stats=delta)
            for answer in answers
        ]

    def close(self) -> None:
        """Drop every segment reference, then detach the mapping."""
        import gc

        self._engines.clear()
        self._layout = None
        self.dataset = None
        gc.collect()
        self.view.close()


def _worker_main(conn: Any, handle: Any, config: dict[str, Any]) -> None:
    """One worker process: attach, serve the pipe, detach.

    The state is built lazily on the first ``run`` so a worker that
    only ever sees fences (or an immediate ``stop``) never maps the
    segment at all.
    """
    state: _WorkerState | None = None
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                return  # parent went away; exit quietly
            op = msg[0]
            if op == "stop":
                return
            if op == "fence":
                _, epoch, new_handle = msg
                if state is not None:
                    state.close()
                    state = None
                handle = new_handle
                conn.send(("fenced", int(epoch)))
                continue
            # ("run", kind, queries, params, forced)
            _, kind, queries, params, forced = msg
            try:
                if state is None:
                    state = _WorkerState(handle, config)
                t0 = time.perf_counter()
                results = state.execute(kind, queries, params, forced)
                busy = time.perf_counter() - t0
            except BaseException as error:  # noqa: BLE001 - shipped back
                try:
                    conn.send(("err", error))
                except Exception:
                    conn.send(
                        ("err", RuntimeError(
                            f"{type(error).__name__}: {error}"
                        ))
                    )
            else:
                conn.send(("ok", results, busy))
    except KeyboardInterrupt:
        pass
    finally:
        if state is not None:
            state.close()
        try:
            conn.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class _WorkerProc:
    """Parent-side handle to one worker process and its pipe end.

    A handle is owned by at most one dispatching thread at a time (the
    idle-deque discipline below), so pipe access needs no lock.
    """

    __slots__ = ("wid", "proc", "conn")

    def __init__(self, ctx: Any, wid: int, handle: Any,
                 config: dict[str, Any]) -> None:
        self.wid = wid
        parent_conn, child_conn = ctx.Pipe()
        self.conn = parent_conn
        self.proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, handle, config),
            name=f"uncertaindb-proc-{wid}",
            daemon=True,
        )
        self.proc.start()
        child_conn.close()

    def stop(self, timeout: float = 1.0) -> None:
        """Best-effort graceful stop, escalating to terminate."""
        try:
            self.conn.send(("stop",))
        except Exception:
            pass
        self.proc.join(timeout)
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout)
        try:
            self.conn.close()
        except Exception:
            pass


class ProcessPoolServer(UncertainDBServer):
    """Shared-memory process pool behind the coalescing scheduler.

    Drop-in replacement for the thread server, selected via
    ``db.serve(mode="process")``.  Same client surface, same
    consistency contract (epoch barriers, bit-identical answers) —
    but group execution happens in worker processes over a
    shared-memory export of the instance store, with Step 1 sharded
    and scatter-gathered (see the module docstring).

    Parameters
    ----------
    db:
        The database to serve.  Its packed instance store is exported
        into shared memory up front; mutations re-export (pool fence).
    workers:
        Process count — and dispatcher-thread count: each thread
        drives one or more idle processes per group.
    n_shards:
        Target shard count for the workers' scatter-gather Step 1.
    scatter_min:
        Minimum queries per scattered chunk; smaller groups run on a
        single process.
    """

    def __init__(
        self,
        db: Any,
        *,
        workers: int = 2,
        max_group: int = 256,
        n_shards: int = DEFAULT_SHARDS,
        scatter_min: int = SCATTER_MIN,
    ) -> None:
        import multiprocessing

        if workers < 1:
            raise ValueError("workers must be >= 1")
        # Spawn, not fork: the parent runs scheduler/dispatcher threads
        # and forking a threaded process is undefined behavior-adjacent.
        self._ctx = multiprocessing.get_context("spawn")
        self._config = {
            "n_bins": getattr(db, "n_bins", 8),
            "result_cache_size": getattr(db, "result_cache_size", 128),
            "memo_radius": getattr(db, "memo_radius", 0.0),
            "n_shards": n_shards,
        }
        self._n_shards = n_shards
        self._scatter_min = max(1, int(scatter_min))
        self._handle = db.dataset.instance_store().export_shared()
        self._proc_cv = threading.Condition()
        self._procs: list[_WorkerProc] = []
        self._idle: deque[_WorkerProc] = deque()
        self._next_wid = 0
        self._broken = False
        self._busy_per_worker: dict[int, float] = {}
        self._groups_scattered = 0
        self._chunks_dispatched = 0
        self._shards_dispatched = 0
        self._shards_pruned = 0
        try:
            for _ in range(workers):
                self._spawn_locked()
        except BaseException:
            self._teardown()
            raise
        # Last: the base constructor starts the dispatcher threads,
        # which immediately begin pulling work that needs the pool.
        super().__init__(db, workers=workers, max_group=max_group)

    # ------------------------------------------------------------------
    # Pool plumbing
    # ------------------------------------------------------------------
    def _spawn_locked(self) -> _WorkerProc:
        """Start one worker at the current segment (caller may hold no
        lock during __init__; afterwards call under ``_proc_cv``)."""
        proc = _WorkerProc(
            self._ctx, self._next_wid, self._handle, self._config
        )
        self._next_wid += 1
        self._busy_per_worker.setdefault(proc.wid, 0.0)
        self._procs.append(proc)
        self._idle.append(proc)
        return proc

    def _acquire(self, want: int) -> list[_WorkerProc]:
        """Block for one idle process, grab up to ``want`` in total."""
        with self._proc_cv:
            while not self._idle:
                if self._broken or self._closed and not self._procs:
                    raise WorkerDied(
                        "process pool is broken (all workers died)"
                    )
                self._proc_cv.wait(0.1)
            got = [self._idle.popleft()]
            while len(got) < want and self._idle:
                got.append(self._idle.popleft())
            return got

    def _release(self, procs: list[_WorkerProc]) -> None:
        with self._proc_cv:
            self._idle.extend(procs)
            self._proc_cv.notify_all()

    def _retire(self, dead: _WorkerProc) -> None:
        """Drop a dead worker and respawn a replacement at the live
        segment; the pool goes *broken* only when respawning fails."""
        dead.stop(timeout=0.1)
        with self._proc_cv:
            if dead in self._procs:
                self._procs.remove(dead)
            if self._closed:
                self._proc_cv.notify_all()
                return
            try:
                self._spawn_locked()
            except Exception:
                if not self._procs:
                    self._broken = True
            self._proc_cv.notify_all()

    # ------------------------------------------------------------------
    # Group execution: scatter over idle workers, gather in order
    # ------------------------------------------------------------------
    def _execute_group(self, group: ReadGroup) -> None:
        try:
            results = self._run_scattered(
                group.kind, group.queries, group.params, group.forced
            )
        except BaseException as error:  # noqa: BLE001 - futures carry it
            for future in group.futures:
                future._set_exception(error)
            return
        for future, result in zip(group.futures, results):
            future._set_result(result, result.plan.epoch)

    def _run_scattered(
        self,
        kind: str,
        queries: list[Any],
        params: tuple[tuple[str, Any], ...],
        forced: str | None,
    ) -> list[Any]:
        want = max(1, min(len(queries) // self._scatter_min, 1 << 10))
        procs = self._acquire(want)
        chunks = _split(queries, len(procs))
        procs = procs[: len(chunks)]
        responses: list[Any] = [None] * len(procs)
        dead: list[_WorkerProc] = []
        try:
            for proc, chunk in zip(procs, chunks):
                try:
                    proc.conn.send(("run", kind, chunk, params, forced))
                except (BrokenPipeError, OSError):
                    dead.append(proc)
                    responses[procs.index(proc)] = WorkerDied(
                        f"worker {proc.wid} died before dispatch"
                    )
            for i, proc in enumerate(procs):
                if responses[i] is not None:
                    continue
                try:
                    responses[i] = proc.conn.recv()
                except (EOFError, OSError):
                    dead.append(proc)
                    responses[i] = WorkerDied(
                        f"worker {proc.wid} died executing "
                        f"{kind} x{len(chunks[i])}"
                    )
        finally:
            alive = [p for p in procs if p not in dead]
            self._release(alive)
            for proc in dead:
                self._retire(proc)
        merged: list[Any] = []
        shards_d = shards_p = 0
        busy_total = 0.0
        error: BaseException | None = None
        for i, (proc, response) in enumerate(zip(procs, responses)):
            if isinstance(response, BaseException):
                error = error or response
                continue
            if response[0] == "err":
                error = error or response[1]
                continue
            _, results, busy = response
            merged.extend(results)
            busy_total += busy
            if results:
                shards_d += results[0].stats.shards_dispatched
                shards_p += results[0].stats.shards_pruned
            with self._proc_cv:
                self._busy_per_worker[proc.wid] = (
                    self._busy_per_worker.get(proc.wid, 0.0) + busy
                )
        with self._proc_cv:
            self._groups_scattered += 1 if len(procs) > 1 else 0
            self._chunks_dispatched += len(procs)
            self._shards_dispatched += shards_d
            self._shards_pruned += shards_p
        if error is not None:
            raise error
        return merged

    # ------------------------------------------------------------------
    # Mutation barriers become pool-wide fences
    # ------------------------------------------------------------------
    def _apply_mutation(self, work: MutationWork) -> None:
        try:
            if work.op == "insert":
                value: Any = self.db._apply_insert(work.payload)
            else:
                value = self.db._apply_delete(work.payload)
        except BaseException as error:  # noqa: BLE001 - future carries it
            work.future._set_exception(error)
            return
        try:
            self._fence()
        except BaseException as error:  # noqa: BLE001 - future carries it
            # The mutation is applied but the pool could not re-attach;
            # surface the failure rather than serving stale reads.
            with self._proc_cv:
                self._broken = True
            work.future._set_exception(error)
            return
        work.future._set_result(value, self.db.dataset.epoch)

    def _fence(self) -> None:
        """Export the post-mutation segment and re-attach every worker.

        Runs with the scheduler's mutation exclusivity: no reads are
        in flight, so every live worker sits in the idle deque and its
        pipe is free.  The old segment is unlinked only after all
        acks, so a worker never observes a vanished mapping.

        A durable database checkpoints first: the mutation that forced
        this fence is already WAL-logged, and folding it into the
        snapshot here means the on-disk image workers could be
        re-seeded from is never behind the segment they map.
        """
        durable = getattr(self.db, "_durable", None)
        if durable is not None:
            durable.checkpoint()
        old = self._handle
        new = self.db.dataset.instance_store().export_shared()
        epoch = int(new.epoch)
        with self._proc_cv:
            procs = list(self._procs)
        dead: list[_WorkerProc] = []
        for proc in procs:
            try:
                proc.conn.send(("fence", epoch, new))
            except (BrokenPipeError, OSError):
                dead.append(proc)
        for proc in procs:
            if proc in dead:
                continue
            try:
                ack = proc.conn.recv()
                if ack != ("fenced", epoch):
                    raise WorkerDied(
                        f"worker {proc.wid} answered fence with {ack!r}"
                    )
            except (EOFError, OSError):
                dead.append(proc)
        self._handle = new
        for proc in dead:
            with self._proc_cv:
                if proc in self._idle:
                    self._idle.remove(proc)
            self._retire(proc)
        old.unlink()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def scaleout_snapshot(self) -> dict[str, Any]:
        """Pool telemetry for ``db.explain`` (``Plan.scaleout``)."""
        with self._proc_cv:
            return {
                "mode": "process",
                "workers": len(self._procs),
                "n_shards": self._n_shards,
                "segment": self._handle.name,
                "segment_epoch": self._handle.epoch,
                "groups_scattered": self._groups_scattered,
                "chunks_dispatched": self._chunks_dispatched,
                "shards_dispatched": self._shards_dispatched,
                "shards_pruned": self._shards_pruned,
                "worker_busy_seconds": {
                    str(wid): round(sec, 6)
                    for wid, sec in sorted(self._busy_per_worker.items())
                },
            }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, timeout: float | None = None) -> None:
        """Drain, stop dispatcher threads, then always tear the pool
        down — workers terminated and the segment unlinked even when a
        worker died mid-query (the drain fails those futures with
        :class:`WorkerDied`; teardown still runs)."""
        try:
            super().close(timeout)
        finally:
            self._teardown()

    def _teardown(self) -> None:
        with self._proc_cv:
            procs, self._procs = self._procs, []
            self._idle.clear()
            self._broken = True
            self._proc_cv.notify_all()
        for proc in procs:
            try:
                proc.stop()
            except Exception:
                pass
        handle, self._handle = self._handle, None
        if handle is not None:
            try:
                handle.unlink()
            except Exception:
                pass

    def __repr__(self) -> str:
        state = "closed" if self._closed else "serving"
        with self._proc_cv:
            n = len(self._procs)
        return (
            f"ProcessPoolServer({state}, workers={n}, "
            f"shards={self._n_shards}, "
            f"pending={self.scheduler.pending()})"
        )


def _split(items: list[Any], parts: int) -> list[list[Any]]:
    """Contiguous, balanced chunks (first chunks one longer)."""
    parts = max(1, min(parts, len(items)))
    base, extra = divmod(len(items), parts)
    out = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        out.append(items[start:start + size])
        start += size
    return out
