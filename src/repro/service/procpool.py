"""The process-pool serving tier: GIL-free scatter-gather execution.

:class:`ProcessPoolServer` swaps the thread server's in-process group
execution for a pool of **worker processes** attached to one
shared-memory export of the packed instance store
(:meth:`~repro.uncertain.store.InstanceStore.export_shared`).  Queries
cross the pipe as small ``(kind, queries, params, forced)`` tuples —
the instance data itself is never pickled; workers map the segment by
name and rebuild a zero-copy dataset over it at spawn.

Execution model
---------------

* The parent keeps the thread server's scheduler and its worker
  *threads*, but each thread drives idle worker *processes* instead of
  computing: a dispatched read group is split into contiguous query
  chunks, scattered over however many processes are idle right now,
  and gathered back in chunk order.  Chunking is bit-transparent —
  every query row is independent, so the merged answers equal the
  single-dispatch answers exactly.
* Workers answer Step 1 through the sharded scatter-gather retriever
  (:class:`~repro.service.shards.ShardedRetriever`) unless the query
  forces ``"brute"`` — per-shard MBR bounds prune dominated shards
  before any member distance is computed, and the counters travel
  back on each result's :class:`~repro.engine.ExecutionStats`.
* A mutation barrier becomes a **pool-wide fence**: the scheduler
  already guarantees exclusivity (no reads in flight), so the parent
  applies the mutation, exports a fresh segment at the new epoch,
  broadcasts a re-attach to every worker, awaits their acks, and only
  then unlinks the old segment.  Workers refuse stale attaches by the
  epoch stamp inside the segment header.
Fault tolerance
---------------

* A worker that dies (or stalls past ``stall_timeout``) mid-chunk no
  longer fails its queries: the chunk is **re-dispatched** to a live
  worker (bounded attempts with backoff), terminally falling back to
  inline execution in the parent — a dispatched query fails only if
  it cannot run anywhere.  The dead worker is respawned; recovery
  counters (``retries``, ``worker_restarts``) ride the results'
  :class:`~repro.engine.ExecutionStats` and
  :meth:`ProcessPoolServer.recovery_snapshot`.
* Workers **heartbeat** while executing a chunk, so the parent can
  distinguish "slow but alive" from "hung": a worker silent *and*
  unfinished past its total chunk budget trips :class:`WorkerStalled`
  and is killed + respawned.
* The re-attach **fence is re-entrant and leak-free**: a worker that
  dies mid-fence (before or instead of acking) is retired and
  respawned at the new segment; the old segment is unlinked on every
  path, so no ``/dev/shm`` segment outlives :meth:`close`
  (regression tests in ``tests/test_procpool.py``).
* Deterministic chaos tests drive all of the above through
  :mod:`repro.testing.faults`: pass ``fault_plan=`` to ship a seeded
  :class:`~repro.testing.faults.FaultPlan` to every spawned worker
  (sites ``proc.attach`` / ``proc.chunk`` / ``proc.fence``).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Sequence

from ..analysis.locks import make_lock
from ..storage.durable import StoreReadOnly
from .scheduler import MutationWork
from .server import UncertainDBServer
from .shards import DEFAULT_SHARDS

__all__ = ["ProcessPoolServer", "WorkerDied", "WorkerStalled"]

#: Minimum queries per scattered chunk: below this, pipe + merge
#: overhead outweighs extra processes and the group runs on one.
SCATTER_MIN = 8


class WorkerDied(RuntimeError):
    """A worker process exited while executing a dispatched chunk."""


class WorkerStalled(WorkerDied):
    """A worker exceeded its chunk-time budget and was presumed hung.

    Subclasses :class:`WorkerDied` because the recovery is identical
    (kill, respawn, re-dispatch the chunk) — the distinction is
    diagnostic: the process was alive but not progressing.
    """


# ----------------------------------------------------------------------
# Worker process side (top-level: must be picklable for spawn)
# ----------------------------------------------------------------------
class _WorkerState:
    """Everything one worker process rebuilds from the shared segment.

    Constructed lazily on the first ``run`` after (re-)attach: the
    zero-copy dataset over the segment, one engine per
    ``(kind, retriever)`` pair, and a single
    :class:`~repro.service.shards.ShardLayout` shared by every sharded
    retriever.  Torn down (and the segment detached) on each fence.
    """

    def __init__(self, handle: Any, config: dict[str, Any]) -> None:
        from ..uncertain.store import attach_shared

        self.view = attach_shared(handle)
        self.dataset: Any = self.view.build_dataset()
        self.config = config
        self.epoch = int(handle.epoch)
        self._engines: dict[tuple[str, str], Any] = {}
        self._layout: Any = None

    # -- plan policy ---------------------------------------------------
    def _choice(
        self, kind: str, params: dict[str, Any], forced: str | None
    ) -> tuple[str, str, str]:
        """``(retriever name, reason, cost_kind)`` for one template.

        Mirrors ``Database._fixed_choice`` for the policy-fixed kinds,
        then routes everything else to the sharded scatter-gather
        filter (or brute force when forced).  Index retrievers are not
        available inside workers — their paged structures live in the
        parent and are not shared.
        """
        if kind == "reverse_nn":
            return (
                "none",
                "domination-based Step 1 over object regions; "
                "point retrievers do not apply",
                "reverse_nn",
            )
        if kind == "knn" and params.get("k", 1) > 1:
            return (
                "brute",
                "k > 1 widens Step 1 to the exact k-th-maxdist filter "
                "over the whole database; indexes accelerate only k = 1",
                "knn:exact",
            )
        if kind == "group_nn" and params.get("aggregate") != "min":
            return (
                "brute",
                "sum/max aggregates run the direct aggregate-bound "
                "filter; an index narrows only the min aggregate",
                "group_nn:direct",
            )
        if forced in (None, "sharded"):
            return (
                "sharded",
                "process pool: sharded scatter-gather Step 1 over the "
                "shared segment (MBR-dominated shards pruned)",
                kind,
            )
        if forced == "brute":
            return (
                "brute",
                "forced exact brute-force Step 1 (process pool)",
                kind,
            )
        raise ValueError(
            f"retriever {forced!r} is not available in process mode: "
            "workers share only the packed instance store, not the "
            "parent's paged indexes (use 'brute', 'sharded', or the "
            "default)"
        )

    def _engine(self, kind: str, rname: str) -> Any:
        from ..api.database import _KINDS
        from .shards import ShardLayout, ShardedRetriever

        key = (kind, rname)
        engine = self._engines.get(key)
        if engine is not None:
            return engine
        retriever: ShardedRetriever | None = None
        if rname == "sharded":
            if self._layout is None:
                self._layout = ShardLayout.build(
                    self.dataset, self.config.get("n_shards", DEFAULT_SHARDS)
                )
            retriever = ShardedRetriever(self.dataset, layout=self._layout)
        spec = _KINDS[kind]
        kwargs: dict[str, Any] = {
            "secondary": None,
            "result_cache_size": self.config.get("result_cache_size", 128),
            "memo_radius": self.config.get("memo_radius", 0.0),
        }
        if spec.takes_n_bins:
            kwargs["n_bins"] = self.config.get("n_bins", 8)
        engine = spec.engine_cls(self.dataset, retriever, **kwargs)
        if retriever is not None:
            # Shard prune/dispatch counts land on the engine's stats,
            # so the measured deltas carry them back over the pipe.
            retriever.stats = engine.stats
        self._engines[key] = engine
        return engine

    # -- execution -----------------------------------------------------
    def execute(
        self,
        kind: str,
        queries: Sequence[Any],
        params: tuple[tuple[str, Any], ...],
        forced: str | None,
    ) -> list[Any]:
        from ..api.planner import Plan
        from ..api.result import QueryResult

        rname, reason, bucket = self._choice(kind, dict(params), forced)
        engine = self._engine(kind, rname)
        kwargs = dict(params)
        t0 = time.perf_counter()
        if len(queries) == 1:
            answer, delta = engine.query_measured(queries[0], **kwargs)
            answers = [answer]
        else:
            answers, delta = engine.query_batch_measured(
                list(queries), **kwargs
            )
        delta.worker_busy_seconds = time.perf_counter() - t0
        plan = Plan(
            kind=kind,
            params=params,
            retriever=rname,
            reason=reason,
            epoch=self.epoch,
            forced=forced is not None,
            cost_kind=bucket,
        )
        return [
            QueryResult(kind=kind, answer=answer, plan=plan, stats=delta)
            for answer in answers
        ]

    def close(self) -> None:
        """Drop every segment reference, then detach the mapping."""
        import gc

        self._engines.clear()
        self._layout = None
        self.dataset = None
        gc.collect()
        self.view.close()


def _attach_state(
    handle: Any, config: dict[str, Any], wid: int
) -> _WorkerState:
    """Build the worker state, retrying a failed segment attach.

    A shared-memory attach can fail transiently (the name resolves a
    beat after export on some platforms); retry with backoff before
    giving up — the final raise fails only the current chunk, which
    the parent then re-dispatches elsewhere.
    """
    from ..testing import faults as _faults

    attempts = max(1, int(config.get("attach_retries", 3)))
    delay = 0.01
    for attempt in range(attempts):
        try:
            _faults.check("proc.attach", wid=wid)
            return _WorkerState(handle, config)
        except OSError:
            if attempt == attempts - 1:
                raise
            time.sleep(delay)
            delay *= 2
    raise AssertionError("unreachable")  # pragma: no cover


def _worker_main(
    conn: Any, handle: Any, config: dict[str, Any], wid: int = 0
) -> None:
    """One worker process: attach, serve the pipe, detach.

    The state is built lazily on the first ``run`` so a worker that
    only ever sees fences (or an immediate ``stop``) never maps the
    segment at all.  While a chunk (or fence) is executing, a daemon
    thread heartbeats over the pipe so the parent's stall watchdog can
    tell slow from hung; beats are **busy-gated** — an idle worker's
    parent is not reading the pipe, and unread beats would eventually
    fill its buffer and deadlock the next real send.
    """
    from ..testing import faults as _faults

    plan = config.get("fault_plan")
    if plan is not None:
        _faults.arm(plan)
    send_lock = make_lock("procpool.send_lock")
    busy = threading.Event()
    stopping = threading.Event()

    def _send(msg: tuple) -> None:
        with send_lock:
            conn.send(msg)

    hb_interval = float(config.get("heartbeat_interval", 0.0) or 0.0)
    if hb_interval > 0:
        def _beat() -> None:
            while not stopping.wait(hb_interval):
                if busy.is_set():
                    try:
                        _send(("hb", wid))
                    except (OSError, ValueError):
                        return  # pipe gone: the process is exiting

        threading.Thread(
            target=_beat, name=f"uncertaindb-hb-{wid}", daemon=True
        ).start()

    state: _WorkerState | None = None
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                return  # parent went away; exit quietly
            op = msg[0]
            if op == "stop":
                return
            if op == "fence":
                _, epoch, new_handle = msg
                busy.set()
                try:
                    _faults.check("proc.fence", wid=wid)
                    if state is not None:
                        state.close()
                        state = None
                    handle = new_handle
                    _send(("fenced", int(epoch)))
                finally:
                    busy.clear()
                continue
            # ("run", kind, queries, params, forced)
            _, kind, queries, params, forced = msg
            busy.set()
            try:
                try:
                    _faults.check("proc.chunk", wid=wid, kind=kind)
                    if state is None:
                        state = _attach_state(handle, config, wid)
                    t0 = time.perf_counter()
                    results = state.execute(kind, queries, params, forced)
                    elapsed = time.perf_counter() - t0
                except BaseException as error:  # noqa: BLE001 - shipped back
                    try:
                        _send(("err", error))
                    # A broken __reduce__ can raise anything.
                    except Exception:  # noqa: BLE001
                        _send(
                            ("err", RuntimeError(
                                f"{type(error).__name__}: {error}"
                            ))
                        )
                else:
                    _send(("ok", results, elapsed))
            finally:
                busy.clear()
    except KeyboardInterrupt:
        pass
    finally:
        stopping.set()
        if state is not None:
            state.close()
        try:
            conn.close()
        except (OSError, ValueError):
            pass


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class _WorkerProc:
    """Parent-side handle to one worker process and its pipe end.

    A handle is owned by at most one dispatching thread at a time (the
    idle-deque discipline below), so pipe access needs no lock.
    """

    __slots__ = ("wid", "proc", "conn")

    def __init__(self, ctx: Any, wid: int, handle: Any,
                 config: dict[str, Any]) -> None:
        self.wid = wid
        parent_conn, child_conn = ctx.Pipe()
        self.conn = parent_conn
        self.proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, handle, config, wid),
            name=f"uncertaindb-proc-{wid}",
            daemon=True,
        )
        self.proc.start()
        child_conn.close()

    def stop(self, timeout: float = 1.0) -> None:
        """Best-effort graceful stop, escalating to terminate."""
        try:
            self.conn.send(("stop",))
        except (OSError, ValueError):
            pass
        self.proc.join(timeout)
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout)
        try:
            self.conn.close()
        except (OSError, ValueError):
            pass


class ProcessPoolServer(UncertainDBServer):
    """Shared-memory process pool behind the coalescing scheduler.

    Drop-in replacement for the thread server, selected via
    ``db.serve(mode="process")``.  Same client surface, same
    consistency contract (epoch barriers, bit-identical answers) —
    but group execution happens in worker processes over a
    shared-memory export of the instance store, with Step 1 sharded
    and scatter-gathered (see the module docstring).

    Parameters
    ----------
    db:
        The database to serve.  Its packed instance store is exported
        into shared memory up front; mutations re-export (pool fence).
    workers:
        Process count — and dispatcher-thread count: each thread
        drives one or more idle processes per group.
    n_shards:
        Target shard count for the workers' scatter-gather Step 1.
    scatter_min:
        Minimum queries per scattered chunk; smaller groups run on a
        single process.
    stall_timeout:
        Total seconds one dispatched chunk (or fence ack) may take
        before the worker is presumed hung, killed, and its chunk
        re-dispatched (:class:`WorkerStalled`).
    heartbeat_interval:
        Seconds between worker liveness beats while busy; ``0``
        disables heartbeats (stall detection still works — it is a
        time budget, not a silence detector).
    max_chunk_retries:
        Re-dispatch attempts for a chunk whose worker died or
        stalled, before the inline-execution fallback.
    fault_plan:
        A :class:`~repro.testing.faults.FaultPlan` shipped to every
        spawned worker and armed there (chaos tests only; ``None``
        keeps every hook on its zero-cost path).
    """

    def __init__(
        self,
        db: Any,
        *,
        workers: int = 2,
        max_group: int = 256,
        n_shards: int = DEFAULT_SHARDS,
        scatter_min: int = SCATTER_MIN,
        stall_timeout: float = 30.0,
        heartbeat_interval: float = 0.5,
        max_chunk_retries: int = 2,
        fault_plan: Any = None,
    ) -> None:
        import multiprocessing

        if workers < 1:
            raise ValueError("workers must be >= 1")
        if stall_timeout <= 0:
            raise ValueError("stall_timeout must be positive seconds")
        # Spawn, not fork: the parent runs scheduler/dispatcher threads
        # and forking a threaded process is undefined behavior-adjacent.
        self._ctx = multiprocessing.get_context("spawn")
        self._config = {
            "n_bins": getattr(db, "n_bins", 8),
            "result_cache_size": getattr(db, "result_cache_size", 128),
            "memo_radius": getattr(db, "memo_radius", 0.0),
            "n_shards": n_shards,
            "heartbeat_interval": float(heartbeat_interval),
            "fault_plan": fault_plan,
        }
        self._n_shards = n_shards
        self._scatter_min = max(1, int(scatter_min))
        self._stall_timeout = float(stall_timeout)
        self._max_chunk_retries = max(0, int(max_chunk_retries))
        self._handle = db.dataset.instance_store().export_shared()
        self._proc_cv = threading.Condition()
        self._procs: list[_WorkerProc] = []
        self._idle: deque[_WorkerProc] = deque()
        self._next_wid = 0
        self._broken = False
        self._busy_per_worker: dict[int, float] = {}
        self._groups_scattered = 0
        self._chunks_dispatched = 0
        self._shards_dispatched = 0
        self._shards_pruned = 0
        self._retries = 0
        self._worker_restarts = 0
        try:
            for _ in range(workers):
                self._spawn_locked()
        except BaseException:
            self._teardown()
            raise
        # Last: the base constructor starts the dispatcher threads,
        # which immediately begin pulling work that needs the pool.
        super().__init__(db, workers=workers, max_group=max_group)

    # ------------------------------------------------------------------
    # Pool plumbing
    # ------------------------------------------------------------------
    def _spawn_locked(self) -> _WorkerProc:
        """Start one worker at the current segment (caller may hold no
        lock during __init__; afterwards call under ``_proc_cv``)."""
        proc = _WorkerProc(
            self._ctx, self._next_wid, self._handle, self._config
        )
        self._next_wid += 1
        self._busy_per_worker.setdefault(proc.wid, 0.0)
        self._procs.append(proc)
        self._idle.append(proc)
        return proc

    def _acquire(self, want: int) -> list[_WorkerProc]:
        """Block for one idle process, grab up to ``want`` in total."""
        with self._proc_cv:
            while not self._idle:
                if self._broken or self._closed and not self._procs:
                    raise WorkerDied(
                        "process pool is broken (all workers died)"
                    )
                self._proc_cv.wait(0.1)
            got = [self._idle.popleft()]
            while len(got) < want and self._idle:
                got.append(self._idle.popleft())
            return got

    def _release(self, procs: list[_WorkerProc]) -> None:
        with self._proc_cv:
            self._idle.extend(procs)
            self._proc_cv.notify_all()

    def _retire(self, dead: _WorkerProc) -> None:
        """Drop a dead worker and respawn a replacement at the live
        segment; the pool goes *broken* only when respawning fails."""
        dead.stop(timeout=0.1)
        with self._proc_cv:
            if dead in self._idle:
                self._idle.remove(dead)
            if dead in self._procs:
                self._procs.remove(dead)
            if self._closed:
                self._proc_cv.notify_all()
                return
            try:
                self._spawn_locked()
                self._worker_restarts += 1
            # Any spawn failure degrades the pool to broken.
            except Exception:  # noqa: BLE001
                if not self._procs:
                    self._broken = True
            self._proc_cv.notify_all()

    def _recv_result(self, proc: _WorkerProc, budget_at: float) -> Any:
        """Gather one pipe message, tolerating heartbeats and hangs.

        Heartbeat frames are consumed and dropped (they only prove
        liveness).  ``budget_at`` is the absolute ``time.monotonic``
        point at which the chunk is declared stalled — a *total time
        budget*, not a silence detector: a hung worker main thread
        with a live heartbeat thread would never fall silent, so
        silence alone cannot catch it.
        """
        poll = max(0.01, min(0.25, self._stall_timeout / 10.0))
        while True:
            if proc.conn.poll(min(poll, max(0.0, budget_at - time.monotonic()))):
                msg = proc.conn.recv()
                if isinstance(msg, tuple) and msg and msg[0] == "hb":
                    continue
                return msg
            if time.monotonic() >= budget_at:
                raise WorkerStalled(
                    f"worker {proc.wid} exceeded its "
                    f"{self._stall_timeout:.1f}s chunk budget"
                )

    # ------------------------------------------------------------------
    # Group execution: scatter over idle workers, gather in order
    # ------------------------------------------------------------------
    def _run_group(
        self,
        kind: str,
        queries: list[Any],
        params: tuple[tuple[str, Any], ...],
        forced: str | None,
    ) -> list[Any]:
        want = max(1, min(len(queries) // self._scatter_min, 1 << 10))
        procs = self._acquire(want)
        chunks = _split(queries, len(procs))
        procs = procs[: len(chunks)]
        responses: list[Any] = [None] * len(procs)
        dead: list[_WorkerProc] = []
        try:
            for proc, chunk in zip(procs, chunks):
                try:
                    proc.conn.send(("run", kind, chunk, params, forced))
                except (BrokenPipeError, OSError):
                    dead.append(proc)
                    responses[procs.index(proc)] = WorkerDied(
                        f"worker {proc.wid} died before dispatch"
                    )
            # All chunks run concurrently, so each gets the same
            # absolute budget measured from dispatch.
            budget_at = time.monotonic() + self._stall_timeout
            for i, proc in enumerate(procs):
                if responses[i] is not None:
                    continue
                try:
                    responses[i] = self._recv_result(proc, budget_at)
                except (EOFError, OSError):
                    dead.append(proc)
                    responses[i] = WorkerDied(
                        f"worker {proc.wid} died executing "
                        f"{kind} x{len(chunks[i])}"
                    )
                except WorkerStalled as stall:
                    dead.append(proc)
                    responses[i] = stall
        finally:
            alive = [p for p in procs if p not in dead]
            self._release(alive)
            for proc in dead:
                self._retire(proc)
        merged: list[Any] = []
        shards_d = shards_p = 0
        error: BaseException | None = None
        for i, (proc, response) in enumerate(zip(procs, responses)):
            if isinstance(response, WorkerDied):
                # The worker is gone but its queries are not: retry
                # the chunk on live workers, inline as a last resort.
                try:
                    results = self._retry_chunk(
                        kind, chunks[i], params, forced
                    )
                except BaseException as exc:  # noqa: BLE001
                    error = error or exc
                    continue
                merged.extend(results)
                continue
            if isinstance(response, BaseException):
                error = error or response
                continue
            if response[0] == "err":
                error = error or response[1]
                continue
            _, results, busy = response
            merged.extend(results)
            if results:
                shards_d += results[0].stats.shards_dispatched
                shards_p += results[0].stats.shards_pruned
            with self._proc_cv:
                self._busy_per_worker[proc.wid] = (
                    self._busy_per_worker.get(proc.wid, 0.0) + busy
                )
        with self._proc_cv:
            self._groups_scattered += 1 if len(procs) > 1 else 0
            self._chunks_dispatched += len(procs)
            self._shards_dispatched += shards_d
            self._shards_pruned += shards_p
        if error is not None:
            raise error
        return merged

    def _retry_chunk(
        self,
        kind: str,
        chunk: list[Any],
        params: tuple[tuple[str, Any], ...],
        forced: str | None,
    ) -> list[Any]:
        """Re-dispatch one failed chunk; inline execution as backstop.

        Bounded attempts against live workers with exponential
        backoff.  The terminal fallback runs the chunk through the
        parent's own engine path — the scheduler's barrier guarantees
        no mutation can land while this read group is in flight, so
        the inline answers see the same epoch the workers would have.
        A genuine query error (the worker *answered*, with an
        exception) is never retried: it would fail identically
        everywhere.
        """
        delay = 0.005
        attempts = 0
        for _ in range(self._max_chunk_retries):
            try:
                proc = self._acquire(1)[0]
            except WorkerDied:
                break  # pool broken: go straight to inline
            attempts += 1
            proc_dead = False
            response = None
            try:
                proc.conn.send(("run", kind, chunk, params, forced))
                response = self._recv_result(
                    proc, time.monotonic() + self._stall_timeout
                )
            except (BrokenPipeError, EOFError, OSError, WorkerStalled):
                proc_dead = True
            finally:
                if proc_dead:
                    self._retire(proc)
                else:
                    self._release([proc])
            if response is not None:
                if response[0] == "err":
                    raise response[1]
                _, results, busy = response
                self._note_recovery(retries=attempts)
                if results:
                    # One shared stats delta per chunk: stamping the
                    # first envelope stamps them all.
                    results[0].stats.retries = attempts
                    results[0].stats.worker_restarts = attempts
                with self._proc_cv:
                    self._busy_per_worker[proc.wid] = (
                        self._busy_per_worker.get(proc.wid, 0.0) + busy
                    )
                return results
            time.sleep(delay)
            delay *= 2
        # Inline fallback.  The sharded retriever exists only inside
        # workers; inline execution maps it (and the default) to the
        # parent's cost-based choice, keeping only an explicit "brute".
        inline_forced = forced if forced == "brute" else None
        results = self.db._execute_group(
            kind, list(chunk), params, inline_forced
        )
        attempts += 1
        self._note_recovery(retries=attempts)
        if results:
            results[0].stats.retries = attempts
            results[0].stats.worker_restarts = attempts - 1
        return results

    def _note_recovery(self, *, retries: int = 0) -> None:
        with self._proc_cv:
            self._retries += retries

    # ------------------------------------------------------------------
    # Mutation barriers become pool-wide fences
    # ------------------------------------------------------------------
    def _apply_mutation(self, work: MutationWork) -> None:
        try:
            if work.op == "insert":
                value: Any = self.db._apply_insert(work.payload)
            else:
                value = self.db._apply_delete(work.payload)
        except BaseException as error:  # noqa: BLE001 - future carries it
            work.future._set_exception(error)
            return
        try:
            self._fence()
        except BaseException as error:  # noqa: BLE001 - future carries it
            # The mutation is applied but the pool could not re-attach;
            # surface the failure rather than serving stale reads.
            with self._proc_cv:
                self._broken = True
            work.future._set_exception(error)
            return
        work.future._set_result(value, self.db.dataset.epoch)

    def _fence(self) -> None:
        """Export the post-mutation segment and re-attach every worker.

        Runs with the scheduler's mutation exclusivity: no reads are
        in flight, so every live worker sits in the idle deque and its
        pipe is free.  The old segment is unlinked only after every
        ack (or death verdict), so a live worker never observes a
        vanished mapping.

        **Re-entrant and leak-free under worker failure.**  Every
        per-worker problem — send error, EOF, a bad or missing ack,
        a stall past the budget — marks that worker dead: it is
        retired and respawned at the *new* segment (the new handle is
        installed first, so respawns attach the new epoch).  The old
        segment is unlinked on all of those paths; only a failure to
        export the new segment at all aborts the fence.  A fence that
        lost workers therefore leaves the pool healed and consistent
        rather than broken with an orphaned ``/dev/shm`` segment.

        A durable database checkpoints first: the mutation that
        forced this fence is already WAL-logged, and folding it into
        the snapshot here means the on-disk image workers could be
        re-seeded from is never behind the segment they map.  A
        checkpoint that fails (injected I/O error, or a store already
        degraded to read-only) loses nothing — recovery replays the
        WAL — so the fence proceeds instead of failing the mutation.
        """
        durable = getattr(self.db, "_durable", None)
        if durable is not None:
            try:
                durable.checkpoint()
            except (OSError, StoreReadOnly):
                pass
        old = self._handle
        new = self.db.dataset.instance_store().export_shared()
        epoch = int(new.epoch)
        # Install before broadcasting: any worker respawned from here
        # on (including replacements for fence casualties) attaches
        # the new segment.
        self._handle = new
        try:
            with self._proc_cv:
                procs = list(self._procs)
            dead: list[_WorkerProc] = []
            for proc in procs:
                try:
                    proc.conn.send(("fence", epoch, new))
                except (BrokenPipeError, OSError):
                    dead.append(proc)
            budget_at = time.monotonic() + self._stall_timeout
            for proc in procs:
                if proc in dead:
                    continue
                try:
                    ack = self._recv_result(proc, budget_at)
                except (EOFError, OSError, WorkerStalled):
                    dead.append(proc)
                    continue
                if ack != ("fenced", epoch):
                    dead.append(proc)
            for proc in dead:
                self._retire(proc)
        finally:
            try:
                old.unlink()
            except OSError:  # pragma: no cover - already gone
                pass

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def scaleout_snapshot(self) -> dict[str, Any]:
        """Pool telemetry for ``db.explain`` (``Plan.scaleout``)."""
        with self._proc_cv:
            return {
                "mode": "process",
                "workers": len(self._procs),
                "n_shards": self._n_shards,
                "segment": self._handle.name,
                "segment_epoch": self._handle.epoch,
                "groups_scattered": self._groups_scattered,
                "chunks_dispatched": self._chunks_dispatched,
                "shards_dispatched": self._shards_dispatched,
                "shards_pruned": self._shards_pruned,
                "retries": self._retries,
                "worker_restarts": self._worker_restarts,
                "worker_busy_seconds": {
                    str(wid): round(sec, 6)
                    for wid, sec in sorted(self._busy_per_worker.items())
                },
            }

    def recovery_snapshot(self) -> dict[str, int]:
        """Recovery-action counters (chunk retries, respawns, misses)."""
        with self._recovery_lock:
            misses = self._deadline_misses
        with self._proc_cv:
            return {
                "retries": self._retries,
                "worker_restarts": self._worker_restarts,
                "deadline_misses": misses,
            }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, timeout: float | None = None) -> None:
        """Drain, stop dispatcher threads, then always tear the pool
        down — workers terminated and the segment unlinked even when a
        worker died mid-query (the drain fails those futures with
        :class:`WorkerDied`; teardown still runs)."""
        try:
            super().close(timeout)
        finally:
            self._teardown()

    def _teardown(self) -> None:
        with self._proc_cv:
            procs, self._procs = self._procs, []
            self._idle.clear()
            self._broken = True
            self._proc_cv.notify_all()
        for proc in procs:
            try:
                proc.stop()
            except Exception:  # noqa: BLE001 - teardown must never raise
                pass
        handle, self._handle = self._handle, None
        if handle is not None:
            try:
                handle.unlink()
            except OSError:
                pass

    def __repr__(self) -> str:
        state = "closed" if self._closed else "serving"
        with self._proc_cv:
            n = len(self._procs)
        return (
            f"ProcessPoolServer({state}, workers={n}, "
            f"shards={self._n_shards}, "
            f"pending={self.scheduler.pending()})"
        )


def _split(items: list[Any], parts: int) -> list[list[Any]]:
    """Contiguous, balanced chunks (first chunks one longer)."""
    parts = max(1, min(parts, len(items)))
    base, extra = divmod(len(items), parts)
    out = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        out.append(items[start:start + size])
        start += size
    return out
