"""repro.service — the concurrent submit-and-serve layer.

From call-and-return to submit-and-serve: an
:class:`UncertainDBServer` owns worker threads and an auto-coalescing
scheduler over one :class:`~repro.api.Database`; :class:`Session`
objects expose the same seven query verbs but return
:class:`QueryFuture` values immediately::

    with Database(synthetic_dataset(n=500, dims=2, seed=0)) as db:
        server = db.serve(workers=2)
        session = server.session()
        futures = [session.nn(q) for q in queries]   # returns at once
        for future in as_completed(futures):
            print(future.epoch, future.result().best)

Concurrent queries sharing one ``(kind, params, retriever)`` template
coalesce into a single batched kernel dispatch; ``insert`` / ``delete``
apply as epoch barriers, so every read executes against exactly one
dataset epoch (tagged on its future and result).

``db.serve(workers=N, mode="process")`` swaps in the
:class:`ProcessPoolServer` — same surface and contract, but groups
execute in worker *processes* over a shared-memory export of the
instance store, with Step 1 sharded and scatter-gathered
(:mod:`repro.service.shards`) and mutations applied as pool-wide
re-attach fences (:mod:`repro.service.procpool`).
"""

from .future import FutureTimeout, QueryFuture, QueryTimeout, as_completed
from .procpool import ProcessPoolServer, WorkerDied, WorkerStalled
from .scheduler import CoalescingScheduler, SchedulerClosed, SchedulerStats
from .server import Session, UncertainDBServer
from .shards import Shard, ShardLayout, ShardedRetriever
from .subscriptions import (
    Revision,
    RevisionOverflow,
    Subscription,
    SubscriptionManager,
)

__all__ = [
    "as_completed",
    "CoalescingScheduler",
    "FutureTimeout",
    "ProcessPoolServer",
    "QueryFuture",
    "QueryTimeout",
    "Revision",
    "RevisionOverflow",
    "SchedulerClosed",
    "SchedulerStats",
    "Session",
    "Shard",
    "ShardLayout",
    "ShardedRetriever",
    "Subscription",
    "SubscriptionManager",
    "UncertainDBServer",
    "WorkerDied",
    "WorkerStalled",
]
