"""The concurrent serving layer: server, sessions, worker threads.

:class:`UncertainDBServer` turns a :class:`~repro.api.Database` from
call-and-return into submit-and-serve: client threads open
:class:`Session` objects and submit the same seven query verbs, each
returning a :class:`~repro.service.future.QueryFuture` immediately.
Worker threads drain the :class:`~repro.service.scheduler.
CoalescingScheduler`, executing whole coalesced groups through the
database's single group-execution path (one plan probe + one batched
kernel dispatch per group) and applying mutations as exclusive epoch
barriers.

Consistency contract (tested differentially in
``tests/test_service_differential.py``):

* every read executes against exactly one dataset epoch and its
  future/result is tagged with it;
* a mutation submitted after a set of reads applies only once those
  reads completed, and reads submitted after it see the new epoch;
* answers are bit-identical to the same queries executed serially at
  the epochs the futures report.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Sequence

from ..analysis.locks import make_lock
from .future import QueryFuture, QueryTimeout
from .scheduler import CoalescingScheduler, MutationWork, ReadGroup

__all__ = ["Session", "UncertainDBServer"]


class UncertainDBServer:
    """Worker threads + coalescing scheduler over one Database.

    Parameters
    ----------
    db:
        The :class:`~repro.api.Database` to serve.  While attached,
        the database's synchronous verbs also route through this
        server (one-shot sessions), so direct and session callers
        share one consistency domain.
    workers:
        Worker-thread count.  Workers execute whole groups; distinct
        query templates run concurrently (per-engine locks serialize
        only same-engine work).
    max_group:
        Upper bound on queries per coalesced dispatch (forwarded to
        the scheduler).

    The server is a context manager; :meth:`close` drains queued work
    and joins the workers.
    """

    def __init__(
        self,
        db: Any,
        *,
        workers: int = 2,
        max_group: int = 256,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.db = db
        self.scheduler = CoalescingScheduler(max_group=max_group)
        # Runtime import: repro.api.database imports this package, so
        # the kinds table is looked up lazily to keep imports acyclic.
        from ..api.database import _KINDS

        self._kinds = _KINDS
        self._closed = False
        self._close_lock = make_lock("server.close_lock")
        #: Recovery-action counters (see :meth:`recovery_snapshot`).
        self._recovery_lock = make_lock("server.recovery_lock")
        self._deadline_misses = 0
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"uncertaindb-worker-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    def session(self) -> Session:
        """A new client session over this server."""
        return Session(self)

    def submit(
        self,
        kind: str,
        query: Any,
        params: tuple[tuple[str, Any], ...] = (),
        retriever: str | None = None,
        deadline: float | None = None,
    ) -> QueryFuture:
        """Queue one read; returns its future immediately.

        Queued reads sharing ``(kind, params, retriever)`` — from any
        session, or from the database's synchronous verbs — coalesce
        into one batched dispatch.  ``deadline`` is an absolute
        ``time.monotonic()`` budget: a query still queued past it is
        failed with :class:`QueryTimeout` at dispatch instead of
        executing, and its future never blocks beyond it.
        """
        if kind not in self._kinds:
            raise KeyError(f"unknown query kind {kind!r}")
        return self.scheduler.submit_read(
            kind, query, params, retriever, deadline
        )

    def submit_mutation(self, op: str, payload: Any) -> QueryFuture:
        """Queue a mutation barrier (``op`` is ``insert``/``delete``)."""
        if op not in ("insert", "delete"):
            raise KeyError(f"unknown mutation {op!r}")
        return self.scheduler.submit_mutation(op, payload)

    @property
    def stats(self):
        """A snapshot of the scheduler's coalescing counters."""
        return self.scheduler.stats.snapshot()

    def recovery_snapshot(self) -> dict[str, int]:
        """Counters of recovery actions the serving layer has taken.

        The thread server only ever misses deadlines; the process-pool
        subclass extends this with retry / worker-restart counts.
        """
        with self._recovery_lock:
            return {
                "retries": 0,
                "worker_restarts": 0,
                "deadline_misses": self._deadline_misses,
            }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, timeout: float | None = None) -> None:
        """Drain queued work, stop the workers, detach from the db.

        New submissions are refused immediately; everything already
        queued completes first (futures never dangle).  Idempotent —
        and every caller (not just the first) blocks until the drain
        finishes, which the database's ``SchedulerClosed`` fallbacks
        rely on before executing inline.
        """
        with self._close_lock:
            self._closed = True
        self.scheduler.close()
        for thread in self._threads:
            thread.join(timeout)
        detach = getattr(self.db, "_detach_server", None)
        if detach is not None:
            detach(self)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> UncertainDBServer:
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "serving"
        return (
            f"UncertainDBServer({state}, workers={len(self._threads)}, "
            f"pending={self.scheduler.pending()})"
        )

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            work = self.scheduler.next_work()
            if work is None:
                return
            try:
                if isinstance(work, MutationWork):
                    self._apply_mutation(work)
                else:
                    self._execute_group(work)
            finally:
                self.scheduler.work_done(work)

    def _prune_expired(
        self, group: ReadGroup
    ) -> tuple[list[Any], list[QueryFuture]]:
        """Fail queued-past-deadline riders; return the live remainder.

        Queue-time expiry: a query whose deadline passed while it was
        still waiting for a worker is failed with
        :class:`QueryTimeout` (``phase="queued"``) *before* the group
        executes — it never touches the engine, so a backed-up queue
        sheds late work instead of compounding the backlog.
        """
        now = time.monotonic()
        live_queries: list[Any] = []
        live_futures: list[QueryFuture] = []
        expired = 0
        for query, future in zip(group.queries, group.futures):
            if future.deadline is not None and now >= future.deadline:
                from ..engine import ExecutionStats

                expired += 1
                future._set_exception(
                    QueryTimeout(
                        f"query {future.kind!r} expired after "
                        f"{now - future.submitted_at:.3f}s in queue",
                        kind=future.kind,
                        phase="queued",
                        waited_seconds=now - future.submitted_at,
                        stats=ExecutionStats(deadline_misses=1),
                    )
                )
            else:
                live_queries.append(query)
                live_futures.append(future)
        if expired:
            with self._recovery_lock:
                self._deadline_misses += expired
        return live_queries, live_futures

    def _execute_group(self, group: ReadGroup) -> None:
        queries, futures = self._prune_expired(group)
        if not futures:
            return
        try:
            results = self._run_group(
                group.kind, queries, group.params, group.forced
            )
        except BaseException as error:  # noqa: BLE001 - futures carry it
            for future in futures:
                future._set_exception(error)
            return
        for future, result in zip(futures, results):
            future._set_result(result, result.plan.epoch)

    def _run_group(
        self,
        kind: str,
        queries: list[Any],
        params: tuple[tuple[str, Any], ...],
        forced: str | None,
    ) -> list[Any]:
        """Execute one pruned group (overridden by the process pool)."""
        return self.db._execute_group(kind, queries, params, forced)

    def _apply_mutation(self, work: MutationWork) -> None:
        try:
            if work.op == "insert":
                value: Any = self.db._apply_insert(work.payload)
            else:
                value = self.db._apply_delete(work.payload)
        except BaseException as error:  # noqa: BLE001 - future carries it
            work.future._set_exception(error)
            return
        work.future._set_result(value, self.db.dataset.epoch)


class Session:
    """A client handle: the seven verbs, submit-and-serve style.

    Mirrors :class:`~repro.api.Database`'s query surface exactly —
    same names, same parameters, same planner treatment — but every
    verb returns a :class:`QueryFuture` at once instead of blocking.
    Mutations return futures too (epoch barriers; ``delete``'s future
    resolves to the removed object).

    Sessions are cheap, thread-compatible handles; open one per
    client thread.  Closing a session only refuses further submits —
    already-submitted futures complete normally.
    """

    def __init__(self, server: UncertainDBServer) -> None:
        self._server = server
        self._closed = False

    # -- reads ---------------------------------------------------------
    def nn(
        self,
        query: Any,
        *,
        retriever: str | None = None,
        timeout: float | None = None,
    ) -> QueryFuture:
        """Probabilistic NN (the paper's PNNQ) at a point."""
        return self._submit("nn", query, (), retriever, timeout)

    def knn(
        self,
        query: Any,
        k: int = 1,
        *,
        retriever: str | None = None,
        timeout: float | None = None,
    ) -> QueryFuture:
        """Probabilistic k-NN at a point."""
        return self._submit("knn", query, (("k", k),), retriever, timeout)

    def topk(
        self,
        query: Any,
        k: int = 1,
        *,
        retriever: str | None = None,
        timeout: float | None = None,
    ) -> QueryFuture:
        """The k objects most likely to be the NN of ``query``."""
        return self._submit("topk", query, (("k", k),), retriever, timeout)

    def threshold(
        self,
        query: Any,
        p: float = 0.1,
        *,
        retriever: str | None = None,
        timeout: float | None = None,
    ) -> QueryFuture:
        """Which objects have qualification probability >= ``p``."""
        return self._submit(
            "threshold", query, (("tau", p),), retriever, timeout
        )

    def group_nn(
        self,
        queries: Any,
        aggregate: str = "sum",
        *,
        retriever: str | None = None,
        timeout: float | None = None,
    ) -> QueryFuture:
        """Group NN over a set of query points."""
        return self._submit(
            "group_nn", queries, (("aggregate", aggregate),), retriever,
            timeout,
        )

    def reverse_nn(
        self, query_object: Any, *, timeout: float | None = None
    ) -> QueryFuture:
        """Objects that may have ``query_object`` as *their* NN."""
        return self._submit("reverse_nn", query_object, (), None, timeout)

    def expected_nn(
        self,
        query: Any,
        top: int | None = None,
        *,
        retriever: str | None = None,
        timeout: float | None = None,
    ) -> QueryFuture:
        """Expected-distance NN ranking at a point."""
        return self._submit(
            "expected_nn", query, (("top", top),), retriever, timeout
        )

    def batch(self, specs: Sequence[Any]) -> list[QueryFuture]:
        """Submit a block of :class:`~repro.api.QuerySpec` values."""
        self._check_open()
        return [
            self._server.submit(spec.kind, spec.query, spec.params)
            for spec in specs
        ]

    # -- mutations (epoch barriers) ------------------------------------
    def insert(self, obj: Any) -> QueryFuture:
        """Queue an insert barrier; the future resolves to ``None``."""
        self._check_open()
        return self._server.submit_mutation("insert", obj)

    def delete(self, oid: int) -> QueryFuture:
        """Queue a delete barrier; resolves to the removed object."""
        self._check_open()
        return self._server.submit_mutation("delete", oid)

    # ------------------------------------------------------------------
    def _submit(
        self,
        kind: str,
        query: Any,
        params: tuple[tuple[str, Any], ...],
        retriever: str | None,
        timeout: float | None = None,
    ) -> QueryFuture:
        self._check_open()
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive seconds")
        deadline = None if timeout is None else time.monotonic() + timeout
        return self._server.submit(kind, query, params, retriever, deadline)

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("session is closed")

    def close(self) -> None:
        """Refuse further submissions from this session handle."""
        self._closed = True

    def __enter__(self) -> Session:
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"Session({state}, server={self._server!r})"
