"""Standing subscriptions over the mutation stream.

One-shot queries force clients into poll loops: re-run the verb every
tick, diff the answers yourself, and hope the tick rate matches the
mutation rate.  This module turns the primitives the repository already
has — monotonic mutation epochs, write-ahead mutation listeners, and
the scheduler's exclusive epoch barriers — into *continuous queries*::

    sub = db.subscribe("nn", [5000.0, 5000.0])
    db.insert(obj)                     # relevant -> a revision is pushed
    for rev in sub.revisions(timeout=0.0):
        print(rev.epoch, rev.answer.best, rev.changed)
    sub.unsubscribe()

The consistency contract (pinned by the differential oracle in
``tests/test_subscriptions.py``):

* **Exactly one epoch per revision.**  Every :class:`Revision` carries
  the epoch of the single mutation that produced it; revisions arrive
  in strictly increasing epoch order.
* **Emit only on change.**  A subscription's revision stream equals
  serially re-running the query at every epoch and emitting only when
  the answer differs from the previous one (the first revision is the
  baseline at the subscribe epoch, ``changed=False``).
* **Suppression never hides a change.**  Epochs that emit nothing are
  epochs whose answer is bit-identical to the previous one — either a
  conservative relevance filter proved the mutation could not touch
  the answer, or a re-execution produced the same result.  Suppressed
  epochs are counted (``Revision.suppressed_since_last`` and the
  ``revisions_suppressed`` stat), never silently dropped.
* **Bounded buffers.**  A consumer that stops draining does not stall
  the writer: once ``max_pending`` revisions queue up, the
  subscription is closed, already-buffered revisions stay readable,
  and the next read past them raises :class:`RevisionOverflow`.

Relevance filtering
-------------------
Re-executing every subscription at every epoch is correct but wasteful.
Each subscription keeps a conservative *watch* derived from its query
geometry and refreshed on every re-execution:

* Point kinds (``nn`` / ``topk`` / ``threshold`` / ``expected_nn``)
  watch the radius ``min over objects of maxdist(q, region)`` — the
  classic min-max bound.  A mutation whose region has
  ``mindist(q, region)`` beyond the watch radius cannot enter or leave
  the possible-NN candidate set, so the answer is provably unchanged.
* ``knn(k)`` widens the radius to the k-th smallest maxdist.
* ``group_nn`` applies the same argument to aggregated distances (the
  engine's own Step-1 bound).
* ``reverse_nn`` has no cheap sound filter and re-executes every epoch.

The bounds are conservative both ways: a stale (too large) watch only
costs a re-execution, never a wrong suppression — the watch shrinks
only when a re-execution refreshes it, and the soundness argument
shows suppressed mutations leave the true radius no larger than the
stored one.

When a subscription's last plan ran on the incremental UV-index and
the index is still in sync, a second, exact filter refines the radius
check: one grid descent re-probes the ordered candidate list, and if
it is unchanged the answer — a deterministic function of the ordered
candidates and their immutable pdfs — is unchanged too
(``uv_probe_suppressed`` counts these).

Execution path
--------------
The :class:`SubscriptionManager` registers one dataset mutation
listener that records ``(op, region, epoch)`` — nothing else happens
inside the mutation lock.  After the mutation applies, the database
pumps the manager *under its mutation-order lock*: records are
processed one epoch at a time, affected subscriptions are coalesced by
``(kind, params, retriever)`` through the same
``Database._execute_group`` path every other query takes (so batched
Step 1/Step 2 and planner feedback apply), and revisions are pushed to
the per-subscription queues.  Under ``db.serve()`` the pump runs
inside the scheduler's exclusive mutation barrier, so re-execution
always sees exactly the post-mutation epoch.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterator, Mapping

import numpy as np

from ..analysis.locks import make_lock
from ..engine.stats import ExecutionStats
from ..geometry import (
    Rect,
    maxdist_sq_point_rects,
    mindist_sq_points_rect,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..api.database import Database

__all__ = [
    "Revision",
    "RevisionOverflow",
    "Subscription",
    "SubscriptionManager",
    "answers_equal",
]

#: Relative + absolute slack on the watch comparison: float error may
#: only ever cause an extra re-execution, never a wrong suppression.
_WATCH_SLACK = 1e-9


class RevisionOverflow(RuntimeError):
    """A lagging consumer overran its bounded revision queue.

    Raised by :meth:`Subscription.poll` / :meth:`Subscription.revisions`
    after the buffered revisions have been drained.  The subscription
    is already closed and detached; re-subscribe to resume (the first
    revision of the new subscription re-baselines the answer).
    """


@dataclass(frozen=True)
class Revision:
    """One immutable epoch-tagged result revision.

    ``stats`` is the execution delta of the re-execution that produced
    this revision (shared work split across a coalesced group is
    reported once per group, like :meth:`Database.batch`), stamped with
    ``revisions_emitted=1`` and the suppressed-epoch count.
    """

    kind: str
    #: The single mutation epoch this revision reflects.
    epoch: int
    #: The engine answer (same object a one-shot verb would return).
    answer: Any
    #: False only for the baseline revision pushed by ``subscribe()``.
    changed: bool
    #: Execution delta of the producing re-execution.
    stats: ExecutionStats
    #: Epochs since the previous revision that emitted nothing.
    suppressed_since_last: int = 0


def answers_equal(kind: str, a: Any, b: Any) -> bool:
    """Bit-identical answer comparison, mirroring the test oracles.

    The frozen result dataclasses hold numpy ``query`` arrays, so
    dataclass equality is unusable; compare the answer payload the way
    ``tests/test_service_differential.py`` does — exact floats, no
    tolerance.
    """
    if a is None or b is None:
        return a is b
    if kind in ("topk", "expected_nn"):
        return a.ranking == b.ranking
    if kind == "threshold":
        return dict(a) == dict(b)
    # nn / knn / group_nn / reverse_nn: candidate set + probabilities.
    return a.candidate_ids == b.candidate_ids and dict(
        a.probabilities
    ) == dict(b.probabilities)


# ----------------------------------------------------------------------
# Watches: conservative per-kind relevance geometry
# ----------------------------------------------------------------------
#: Kinds whose Step-1 candidate set is the possible-NN set of a single
#: query point (watch radius = smallest maxdist).
_POINT_KINDS = ("nn", "topk", "threshold", "expected_nn")
#: Kinds eligible for the exact UV-index candidate re-probe.
_UV_PROBE_KINDS = ("nn", "topk", "threshold")


def _as_points(query: Any) -> np.ndarray:
    pts = np.asarray(query, dtype=float)
    return pts.reshape(1, -1) if pts.ndim == 1 else pts


class _Watch:
    """The geometry a subscription monitors between re-executions."""

    __slots__ = ("points", "aggregate", "k", "radius_sq", "radius_agg")

    def __init__(
        self,
        points: np.ndarray | None,
        *,
        aggregate: str | None = None,
        k: int = 1,
    ) -> None:
        self.points = points  # None => no sound filter (reverse_nn)
        self.aggregate = aggregate  # group_nn's distance aggregate
        self.k = k
        self.radius_sq = np.inf  # point-kind watch (squared)
        self.radius_agg = np.inf  # group_nn watch (plain distance)

    def refresh(self, los: np.ndarray, his: np.ndarray) -> None:
        """Recompute the radius from the current packed regions."""
        if self.points is None:
            return
        if self.aggregate is None:
            maxd = maxdist_sq_point_rects(self.points[0], los, his)
            if maxd.size < self.k:
                self.radius_sq = np.inf
            elif self.k == 1:
                self.radius_sq = float(maxd.min())
            else:
                self.radius_sq = float(
                    np.partition(maxd, self.k - 1)[self.k - 1]
                )
        else:
            per_point = np.sqrt(
                np.stack(
                    [
                        maxdist_sq_point_rects(p, los, his)
                        for p in self.points
                    ]
                )
            )
            agg = getattr(per_point, self.aggregate)(axis=0)
            self.radius_agg = float(agg.min()) if agg.size else np.inf

    def relevant(self, region: Rect) -> bool:
        """Could a mutation of ``region`` change the answer?"""
        if self.points is None:
            return True
        mind_sq = mindist_sq_points_rect(self.points, region)
        if self.aggregate is None:
            bound = self.radius_sq
            value = float(mind_sq[0])
        else:
            bound = self.radius_agg
            value = float(getattr(np.sqrt(mind_sq), self.aggregate)())
        return value <= bound * (1.0 + _WATCH_SLACK) + _WATCH_SLACK


# ----------------------------------------------------------------------
# The consumer-facing handle
# ----------------------------------------------------------------------
class Subscription:
    """A standing query: a bounded queue of :class:`Revision` values.

    Created by :meth:`Database.subscribe`; never constructed directly.
    Thread-safe: one producer (the pump) and any number of consumers.
    """

    def __init__(
        self,
        manager: "SubscriptionManager",
        sid: int,
        kind: str,
        query: Any,
        params: tuple[tuple[str, Any], ...],
        retriever: str | None,
        *,
        max_pending: int,
        eager: bool,
    ) -> None:
        self._manager = manager
        self.sid = sid
        self.kind = kind
        self.query = query
        self.params = params
        self.retriever = retriever
        self.max_pending = max_pending
        #: True disables the relevance filter: re-execute every epoch.
        #: (Also the "naive" baseline of ``bench_subscriptions``.)
        self.eager = eager
        self.revisions_emitted = 0
        self.revisions_suppressed = 0
        #: Suppressions proven by the exact UV candidate re-probe.
        self.uv_probe_suppressed = 0
        self._cond = threading.Condition()
        self._queue: deque[Revision] = deque()
        self._closed = False
        self._overflowed = False
        # Pump-side state (touched only under the mutation-order lock).
        self._last_answer: Any = None
        self._last_retriever: str | None = None
        self._last_uv_candidates: tuple[int, ...] | None = None
        self._suppressed_since_last = 0
        self._watch = self._make_watch(kind, query, dict(params))

    @staticmethod
    def _make_watch(kind: str, query: Any, params: dict) -> _Watch:
        if kind == "reverse_nn":
            return _Watch(None)
        if kind == "group_nn":
            return _Watch(
                _as_points(query), aggregate=params.get("aggregate", "sum")
            )
        if kind == "knn":
            return _Watch(_as_points(query), k=int(params.get("k", 1)))
        return _Watch(_as_points(query))

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """Registered and receiving revisions."""
        return not self._closed

    @property
    def overflowed(self) -> bool:
        """Closed because the consumer lagged past ``max_pending``."""
        return self._overflowed

    @property
    def pending(self) -> int:
        """Revisions buffered and not yet consumed."""
        with self._cond:
            return len(self._queue)

    def poll(self) -> Revision | None:
        """The next buffered revision, or ``None`` — never blocks.

        Pumps any unprocessed mutation records first, so a direct
        ``dataset.insert`` bypassing the Database still surfaces here
        by the next poll.

        Raises
        ------
        RevisionOverflow
            Once the buffer of an overflowed subscription is drained.
        """
        self._manager.pump()
        with self._cond:
            if self._queue:
                return self._queue.popleft()
            if self._overflowed:
                raise RevisionOverflow(
                    f"subscription {self.sid} ({self.kind}): lagging "
                    f"consumer overran {self.max_pending} buffered "
                    "revisions; re-subscribe to resume"
                )
            return None

    def revisions(self, timeout: float | None = None) -> Iterator[Revision]:
        """Iterate revisions, blocking for the next one.

        ``timeout`` bounds the wait for *each* revision; when it
        expires — or the subscription is unsubscribed / the database
        closed — iteration stops.  An overflowed subscription yields
        its buffered revisions and then raises
        :class:`RevisionOverflow`.
        """
        while True:
            self._manager.pump()
            with self._cond:
                if not self._queue and not self._closed:
                    self._cond.wait(timeout)
                if self._queue:
                    revision = self._queue.popleft()
                elif self._overflowed:
                    raise RevisionOverflow(
                        f"subscription {self.sid} ({self.kind}): "
                        "lagging consumer overran "
                        f"{self.max_pending} buffered revisions; "
                        "re-subscribe to resume"
                    )
                elif self._closed:
                    return
                else:
                    return  # timed out
            yield revision

    def unsubscribe(self) -> None:
        """Detach: no further revisions; buffered ones stay readable."""
        self._manager._discard(self)

    # -- producer side -------------------------------------------------
    def _push(self, revision: Revision) -> bool:
        """Queue a revision; False when closed or just overflowed."""
        with self._cond:
            if self._closed:
                return False
            if len(self._queue) >= self.max_pending:
                self._overflowed = True
                self._closed = True
                self._cond.notify_all()
                return False
            self._queue.append(revision)
            self.revisions_emitted += 1
            self._cond.notify_all()
            return True

    def _close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.unsubscribe()

    def __repr__(self) -> str:
        state = (
            "overflowed"
            if self._overflowed
            else ("active" if not self._closed else "closed")
        )
        return (
            f"Subscription({self.sid}, {self.kind!r}, {state}, "
            f"emitted={self.revisions_emitted}, "
            f"suppressed={self.revisions_suppressed})"
        )


# ----------------------------------------------------------------------
# The manager: one per Database, owns the mutation listener
# ----------------------------------------------------------------------
class SubscriptionManager:
    """Routes the mutation stream into live subscriptions.

    Owned by a :class:`~repro.api.Database`; the database pumps it
    under its mutation-order lock after every applied mutation (and
    consumers pump lazily on :meth:`Subscription.poll`, which covers
    mutations applied directly on the dataset).
    """

    def __init__(self, db: "Database") -> None:
        self._db = db
        self._ids = itertools.count(1)
        self._subs: dict[int, Subscription] = {}
        #: (op, region, epoch) records the dataset listener appended;
        #: drained in epoch order by :meth:`pump`.
        self._pending: deque[tuple[str, Rect, int]] = deque()
        self._listener: Callable[[str, Any, int], None] | None = None
        #: Guards the subscription table and listener registration.
        self._reg_lock = make_lock("subscriptions.reg_lock")
        self.stats = ExecutionStats()
        self._closed = False

    # ------------------------------------------------------------------
    def subscribe(
        self,
        kind: str,
        query: Any,
        params: tuple[tuple[str, Any], ...],
        retriever: str | None,
        *,
        max_pending: int,
        eager: bool,
    ) -> Subscription:
        """Register a standing query and push its baseline revision."""
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        sub = Subscription(
            self,
            next(self._ids),
            kind,
            query,
            params,
            retriever,
            max_pending=max_pending,
            eager=eager,
        )
        with self._db._mutation_order:
            if self._closed:
                raise RuntimeError("Database is closed")
            # Catch up on records from direct dataset mutations first,
            # so the baseline executes at the newest epoch.
            self._pump_locked()
            envelope = self._db._execute_group(
                kind, [query], params, retriever
            )[0]
            self._refresh_after_execution(sub, envelope)
            sub._last_answer = envelope.answer
            sub._push(
                Revision(
                    kind=kind,
                    epoch=envelope.plan.epoch,
                    answer=envelope.answer,
                    changed=False,
                    stats=self._revision_stats(envelope, 0),
                )
            )
            self.stats.revisions_emitted += 1
            with self._reg_lock:
                self._subs[sub.sid] = sub
                if self._listener is None:
                    self._listener = self._record_mutation
                    self._db.dataset.add_mutation_listener(self._listener)
        return sub

    def _discard(self, sub: Subscription) -> None:
        """Unregister ``sub`` (idempotent; safe mid-pump)."""
        sub._close()
        with self._reg_lock:
            self._subs.pop(sub.sid, None)
            self._maybe_detach_locked()

    def _maybe_detach_locked(self) -> None:
        if not self._subs and self._listener is not None:
            self._db.dataset.remove_mutation_listener(self._listener)
            self._listener = None

    def close(self) -> None:
        """Detach the listener and close every subscription.

        Called by :meth:`Database.close`; idempotent.  Consumers
        blocked in :meth:`Subscription.revisions` wake up and stop
        after draining their buffered revisions.
        """
        with self._reg_lock:
            self._closed = True
            subs = list(self._subs.values())
            self._subs.clear()
            self._maybe_detach_locked()
        for sub in subs:
            sub._close()

    # ------------------------------------------------------------------
    # The mutation stream
    # ------------------------------------------------------------------
    def _record_mutation(self, op: str, obj: Any, epoch: int) -> None:
        # Write-ahead listener discipline: never raise, never block —
        # just record what moved.  (An aborted mutation may leave a
        # spurious record; pumping it re-executes, finds the answer
        # unchanged, and counts a suppression — self-healing.)
        self._pending.append((op, obj.region, epoch))

    def pump(self) -> None:
        """Process recorded mutations into revisions.

        Serialized by the database's mutation-order lock: the mutating
        thread already holds it (re-entrant), and a consumer-side pump
        waits until any in-flight mutation has fully applied — records
        are never classified against a half-applied dataset.
        """
        if not self._pending:
            return
        with self._db._mutation_order:
            self._pump_locked()

    def _pump_locked(self) -> None:
        while self._pending:
            records: list[tuple[str, Rect, int]] = []
            while True:
                try:
                    record = self._pending.popleft()
                except IndexError:
                    break
                if record[2] > self._db.dataset.epoch:
                    # The mutation aborted after the listener fired
                    # (it never committed); drop the phantom record.
                    continue
                records.append(record)
            if records:
                self._process(records, self._db.dataset.epoch)

    def _process(
        self, records: list[tuple[str, Rect, int]], epoch: int
    ) -> None:
        """Classify a batch of mutation records at the current epoch.

        Mutations routed through the Database pump one record at a
        time, so the batch is a single record at exactly its commit
        epoch — the strict one-revision-per-epoch contract.  Direct
        ``dataset.insert`` calls bypassing the Database leave records
        to be caught up on the consumer's next poll: those coalesce
        into one pass emitting at most one revision tagged with the
        *current* epoch (the only state that still exists to execute
        against), the skipped epochs counted as suppressed.
        """
        with self._reg_lock:
            subs = list(self._subs.values())
        span = len(records)
        needy: list[Subscription] = []
        for sub in subs:
            if not sub.active:
                continue
            if not sub.eager and not any(
                sub._watch.relevant(region) for _op, region, _e in records
            ):
                self._suppress(sub, span)
                continue
            if self._uv_probe_unchanged(sub):
                # Exact refinement: the ordered UV candidate list at
                # the current epoch is unchanged, so the answer is too
                # (pays off in catch-up batches, where the radius
                # check sees stale intermediate states).
                sub.uv_probe_suppressed += 1
                self._suppress(sub, span)
                continue
            needy.append(sub)
        if not needy:
            return
        groups: dict[tuple, list[Subscription]] = {}
        for sub in needy:
            key = (sub.kind, sub.params, sub.retriever)
            groups.setdefault(key, []).append(sub)
        for (kind, params, retriever), members in groups.items():
            envelopes = self._db._execute_group(
                kind, [sub.query for sub in members], params, retriever
            )
            for sub, envelope in zip(members, envelopes):
                self._deliver(sub, envelope, epoch, span)

    def _deliver(
        self, sub: Subscription, envelope: Any, epoch: int, span: int
    ) -> None:
        """Compare, emit-or-suppress, and refresh the watch."""
        changed = not answers_equal(
            sub.kind, sub._last_answer, envelope.answer
        )
        # Refresh the watch on EVERY re-execution, changed or not: an
        # unchanged answer can still shrink the true radius (e.g. the
        # bound-defining candidate was deleted), and a stale-smaller
        # watch would be unsound.
        self._refresh_after_execution(sub, envelope)
        if not changed:
            self._suppress(sub, span)
            return
        if span > 1:
            self._suppress(sub, span - 1)  # coalesced catch-up epochs
        sub._last_answer = envelope.answer
        revision = Revision(
            kind=sub.kind,
            epoch=epoch,
            answer=envelope.answer,
            changed=True,
            stats=self._revision_stats(
                envelope, sub._suppressed_since_last
            ),
            suppressed_since_last=sub._suppressed_since_last,
        )
        sub._suppressed_since_last = 0
        self.stats.revisions_emitted += 1
        if not sub._push(revision):
            # Overflowed (or raced an unsubscribe): detach.
            self._discard(sub)

    def _suppress(self, sub: Subscription, span: int = 1) -> None:
        sub._suppressed_since_last += span
        sub.revisions_suppressed += span
        self.stats.revisions_suppressed += span

    def _refresh_after_execution(
        self, sub: Subscription, envelope: Any
    ) -> None:
        _ids, los, his = self._db.dataset.packed_regions()
        sub._watch.refresh(los, his)
        sub._last_retriever = envelope.plan.retriever
        sub._last_uv_candidates = None
        if (
            sub.kind in _UV_PROBE_KINDS
            and envelope.plan.retriever == "uv"
        ):
            handle = self._db._handles.get("uv")
            if handle is not None and handle.in_sync():
                sub._last_uv_candidates = tuple(
                    handle.index.candidates(sub._watch.points[0])
                )

    def _uv_probe_unchanged(self, sub: Subscription) -> bool:
        """Exact refinement: identical ordered UV candidates => same
        answer (pdfs are immutable per object)."""
        if sub._last_uv_candidates is None:
            return False
        handle = self._db._handles.get("uv")
        if handle is None or not handle.in_sync():
            return False
        probe = tuple(handle.index.candidates(sub._watch.points[0]))
        return probe == sub._last_uv_candidates

    def _revision_stats(
        self, envelope: Any, suppressed: int
    ) -> ExecutionStats:
        # Group members share one delta object (like Database.batch);
        # snapshot before stamping the per-revision counters.
        stats = envelope.stats.snapshot()
        stats.revisions_emitted = 1
        stats.revisions_suppressed = suppressed
        return stats

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def live(self) -> int:
        """Subscriptions currently registered."""
        with self._reg_lock:
            return len(self._subs)

    def stats_snapshot(self) -> ExecutionStats:
        """Aggregate counters with the live gauge stamped in."""
        snap = self.stats.snapshot()
        snap.subscriptions_live = self.live
        return snap

    def describe(self) -> dict[str, Any]:
        """Live-subscription state for :meth:`Database.describe`."""
        with self._reg_lock:
            subs = list(self._subs.values())
        return {
            "live": len(subs),
            "revisions_emitted": self.stats.revisions_emitted,
            "revisions_suppressed": self.stats.revisions_suppressed,
            "entries": [
                {
                    "sid": sub.sid,
                    "kind": sub.kind,
                    "params": dict(sub.params),
                    "retriever": sub.retriever,
                    "eager": sub.eager,
                    "pending": sub.pending,
                    "emitted": sub.revisions_emitted,
                    "suppressed": sub.revisions_suppressed,
                    "uv_probe_suppressed": sub.uv_probe_suppressed,
                }
                for sub in subs
            ],
        }

    def __repr__(self) -> str:
        return (
            f"SubscriptionManager(live={self.live}, "
            f"emitted={self.stats.revisions_emitted}, "
            f"suppressed={self.stats.revisions_suppressed})"
        )
