"""Futures for the submit-and-serve query surface.

A :class:`QueryFuture` is the handle a :class:`~repro.service.Session`
returns the instant a query is submitted.  It completes when the
scheduler's worker threads execute the (possibly coalesced) group the
query rode in on, carrying either a frozen
:class:`~repro.api.QueryResult` (reads), the mutation's return value
(``insert`` -> ``None``, ``delete`` -> the removed object), or the
exception the execution raised.

Every completed future is **epoch-tagged**: :attr:`QueryFuture.epoch`
names the dataset mutation epoch the answer is consistent with — for a
read, the epoch it executed at (fixed for the whole group by the
scheduler's mutation barriers); for a mutation, the epoch it produced.

:func:`as_completed` iterates a set of futures in completion order,
like its :mod:`concurrent.futures` namesake.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Iterable, Iterator

from ..analysis.locks import make_lock

__all__ = ["FutureTimeout", "QueryFuture", "QueryTimeout", "as_completed"]


class FutureTimeout(TimeoutError):
    """``result()``/``exception()`` timed out before completion."""


class QueryTimeout(FutureTimeout):
    """A query missed its **deadline** (the per-query time budget).

    Distinct from a bare :class:`FutureTimeout` (the caller's local
    patience running out): a ``QueryTimeout`` means the serving layer
    itself declared the query late — either it expired while still
    queued (``phase="queued"``, failed at dispatch, never executed) or
    the submitting caller's deadline passed while the result was
    pending (``phase="waiting"``).  Carries the partial
    :class:`~repro.engine.ExecutionStats` known at expiry (at minimum
    ``deadline_misses=1``) and how long the query had been in flight.
    """

    def __init__(
        self,
        message: str,
        *,
        kind: str | None = None,
        phase: str = "waiting",
        waited_seconds: float = 0.0,
        stats: Any = None,
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.phase = phase
        self.waited_seconds = waited_seconds
        self.stats = stats


#: Sentinel for "not yet completed" (``None`` is a valid result).
_PENDING = object()


class QueryFuture:
    """One submitted query's eventual result.

    Completion is one-shot and happens on a scheduler worker thread;
    any number of client threads may block in :meth:`result` /
    :meth:`exception` or poll :meth:`done`.
    """

    __slots__ = (
        "kind",
        "deadline",
        "submitted_at",
        "_event",
        "_lock",
        "_value",
        "_error",
        "_epoch",
        "_callbacks",
    )

    def __init__(self, kind: str) -> None:
        #: The query kind submitted (``"nn"``, ..., or ``"insert"`` /
        #: ``"delete"`` for mutation barriers).
        self.kind = kind
        #: ``time.monotonic()`` deadline, or ``None`` for no budget.
        #: Stamped by the scheduler at submission; the server fails
        #: still-queued futures past it at dispatch time, and
        #: :meth:`result` will not block beyond it.
        self.deadline: float | None = None
        #: ``time.monotonic()`` at submission (queue-time accounting).
        self.submitted_at = time.monotonic()
        self._event = threading.Event()
        self._lock = make_lock("future.lock")
        self._value: Any = _PENDING
        self._error: BaseException | None = None
        self._epoch: int | None = None
        self._callbacks: list[Callable[["QueryFuture"], None]] = []

    # ------------------------------------------------------------------
    def done(self) -> bool:
        """True once a result or exception has been set."""
        return self._event.is_set()

    @property
    def epoch(self) -> int | None:
        """The epoch this answer is consistent with (None while pending,
        and on futures that completed with an exception)."""
        return self._epoch

    def result(self, timeout: float | None = None) -> Any:
        """Block until completion; the result, or raise its exception.

        Raises :class:`FutureTimeout` when ``timeout`` (seconds)
        elapses first — the future stays valid and can be waited on
        again.  A future submitted with a deadline never blocks past
        it: once the deadline passes with the result still pending,
        :class:`QueryTimeout` is raised even under ``timeout=None``,
        so a deadlined query cannot hang its caller forever.
        """
        wait = timeout
        if self.deadline is not None:
            remaining = max(0.0, self.deadline - time.monotonic())
            wait = remaining if wait is None else min(wait, remaining)
        if not self._event.wait(wait):
            now = time.monotonic()
            if self.deadline is not None and now >= self.deadline:
                from ..engine import ExecutionStats

                raise QueryTimeout(
                    f"query {self.kind!r} missed its deadline after "
                    f"{now - self.submitted_at:.3f}s in flight",
                    kind=self.kind,
                    phase="waiting",
                    waited_seconds=now - self.submitted_at,
                    stats=ExecutionStats(deadline_misses=1),
                )
            raise FutureTimeout(
                f"query {self.kind!r} did not complete within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        return self._value

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """Block until completion; the exception, or ``None``."""
        if not self._event.wait(timeout):
            raise FutureTimeout(
                f"query {self.kind!r} did not complete within {timeout}s"
            )
        return self._error

    # ------------------------------------------------------------------
    # Completion (scheduler side)
    # ------------------------------------------------------------------
    def _set_result(self, value: Any, epoch: int | None) -> None:
        with self._lock:
            self._value = value
            self._epoch = epoch
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def _set_exception(self, error: BaseException) -> None:
        with self._lock:
            self._error = error
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def _on_done(self, callback: Callable[["QueryFuture"], None]) -> None:
        """Run ``callback(self)`` at completion (immediately if done)."""
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    def _discard_callback(
        self, callback: Callable[["QueryFuture"], None]
    ) -> None:
        """Unregister a pending completion callback (no-op if gone)."""
        with self._lock:
            try:
                self._callbacks.remove(callback)
            except ValueError:
                pass

    def __repr__(self) -> str:
        state = "done" if self.done() else "pending"
        return f"QueryFuture({self.kind!r}, {state}, epoch={self._epoch})"


def as_completed(
    futures: Iterable[QueryFuture], timeout: float | None = None
) -> Iterator[QueryFuture]:
    """Yield futures as they complete, in completion order.

    Raises :class:`FutureTimeout` if ``timeout`` seconds pass with
    futures still pending (already-yielded futures stay completed).
    """
    pending = list(futures)
    done_queue: list[QueryFuture] = []
    cv = threading.Condition()

    def mark(future: QueryFuture) -> None:
        with cv:
            done_queue.append(future)
            cv.notify()

    for future in pending:
        future._on_done(mark)

    deadline = None if timeout is None else time.monotonic() + timeout
    yielded = 0
    try:
        while yielded < len(pending):
            with cv:
                while not done_queue:
                    remaining: float | None = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise FutureTimeout(
                                f"{len(pending) - yielded} futures "
                                f"still pending after {timeout}s"
                            )
                    cv.wait(remaining)
                future = done_queue.pop(0)
            yielded += 1
            yield future
    finally:
        # On timeout or an abandoned iterator, unhook the still-pending
        # futures so their callback lists do not pin this waiter (and
        # its queue) for the rest of the futures' lifetimes.
        for future in pending:
            future._discard_callback(mark)
