"""Retriever resolution shared by every engine.

A *retriever* answers PNNQ Step 1: given a query point, the ids of
objects with non-zero probability of being its nearest neighbor.  The
library ships three index-backed retrievers — the PV-index (the paper's
contribution), the R-tree branch-and-prune baseline of Cheng et al.
[8], and the UV-index [9] — plus the :class:`BruteForceRetriever`
fallback defined here, which runs the exact min-max filter over the
whole database in one vectorized pass.

:func:`resolve_retriever` maps the ``retriever=None`` default every
engine accepts onto the fallback, so engine code never special-cases
"no index"; :func:`discover_pagers` finds the simulated-disk pagers a
retriever (and secondary index) does I/O through, so the shared
instrumentation can attribute page traffic per query phase.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from ..storage.pager import Pager
from ..uncertain import UncertainDataset
from .cost import CostEstimate, expected_candidates

__all__ = [
    "Retriever",
    "BruteForceRetriever",
    "resolve_retriever",
    "discover_pagers",
]

#: Maximum query rows per vectorized chunk (an upper bound; the actual
#: chunk also shrinks with database size — see :func:`minmax_sq_chunks`).
BATCH_CHUNK = 256

#: Element budget per broadcasted (chunk, n, d) temporary: ~32 MB of
#: float64, so the two concurrent temporaries stay under ~64 MB
#: regardless of database size.
_CHUNK_ELEMENT_BUDGET = 4_000_000


def minmax_sq_chunks(queries: np.ndarray, los: np.ndarray,
                     his: np.ndarray):
    """Yield ``(min_sq, max_sq)`` blocks for a batch of query points.

    The one broadcasted min/max squared-distance kernel every batched
    Step-1 filter shares: for each chunk of ``queries`` it yields the
    ``(chunk, n)`` squared min/max distances to every region.  Callers
    differ only in the pruning bound they derive (smallest max for
    PNNQ, k-th smallest max for k-PNN).  The chunk height is
    ``min(BATCH_CHUNK, element budget / (n * d))`` so peak memory is
    bounded for large databases as well as large batches.
    """
    n, d = los.shape
    rows = max(1, min(BATCH_CHUNK, _CHUNK_ELEMENT_BUDGET // max(n * d, 1)))
    for start in range(0, len(queries), rows):
        chunk = queries[start:start + rows]
        # (chunk, n, d) clearance of each query from each region.
        gap = np.maximum(
            np.maximum(los[None, :, :] - chunk[:, None, :],
                       chunk[:, None, :] - his[None, :, :]),
            0.0,
        )
        min_sq = np.einsum("bnd,bnd->bn", gap, gap)
        far = np.maximum(
            np.abs(chunk[:, None, :] - los[None, :, :]),
            np.abs(chunk[:, None, :] - his[None, :, :]),
        )
        max_sq = np.einsum("bnd,bnd->bn", far, far)
        yield min_sq, max_sq


class Retriever(Protocol):
    """Anything that answers PNNQ Step 1 (PV-index, R-tree, UV-index)."""

    def candidates(self, query: np.ndarray) -> list[int]:
        """Ids with non-zero probability of being the NN of ``query``."""
        ...


class BruteForceRetriever:
    """Index-free Step 1: the exact min-max filter over all regions.

    Object ``o`` can be the NN of ``q`` iff ``distmin(o, q)`` is at most
    ``min_x distmax(x, q)`` — the same filter every index applies to its
    leaf candidates, here evaluated against the entire database in one
    numpy pass.  Engines fall back to this when built without an index.
    """

    name = "brute-force"

    def __init__(self, dataset: UncertainDataset) -> None:
        self.dataset = dataset

    @property
    def dataset_epoch(self) -> int:
        """Always the live epoch: the filter reads the dataset directly,
        so brute force can never be stale."""
        return getattr(self.dataset, "epoch", 0)

    def cost_estimate(self) -> CostEstimate:
        """Per-query cost: one broadcasted pass over all ``n`` regions.

        Pure CPU — no index pages exist to read.  The linear ``n * d``
        term is cheap per element (numpy) but unbounded, which is
        exactly why the planner stops picking brute force once the
        database outgrows an index's near-constant leaf cost.
        """
        n = len(self.dataset)
        d = self.dataset.dims
        return CostEstimate(
            step1_us=20.0 + 0.012 * n * d,
            page_reads=0.0,
            candidates=expected_candidates(n, d),
            source="index",
        )

    def candidates(self, query: np.ndarray) -> list[int]:
        """Step-1 answer for one query point."""
        return self.candidates_batch(
            np.asarray(query, dtype=np.float64)[None, :]
        )[0]

    def candidates_batch(self, queries: np.ndarray) -> list[list[int]]:
        """Step-1 answers for a ``(b, d)`` block of query points.

        Broadcasted passes compute every query's min/max squared
        distance to every region — the vectorization across queries the
        per-query loop cannot exploit.  Queries are processed in
        :data:`BATCH_CHUNK`-row chunks so the (chunk, n, d) temporaries
        stay bounded regardless of workload size.
        """
        q = np.asarray(queries, dtype=np.float64)
        ids, los, his = self.dataset.packed_regions()
        if len(ids) == 0:
            return [[] for _ in range(len(q))]
        out: list[list[int]] = []
        for min_sq, max_sq in minmax_sq_chunks(q, los, his):
            bounds = max_sq.min(axis=1)  # (chunk,)
            keep = min_sq <= bounds[:, None]
            out.extend([int(i) for i in ids[row]] for row in keep)
        return out


def resolve_retriever(
    dataset: UncertainDataset, retriever: Retriever | None
) -> Retriever:
    """``retriever`` itself, or the brute-force fallback when ``None``."""
    if retriever is None:
        return BruteForceRetriever(dataset)
    return retriever


def discover_pagers(*sources: object) -> list[Pager]:
    """The distinct pagers the given index objects do I/O through.

    Checks each source (a retriever, a secondary index, ...) for a
    ``pager`` attribute, following one ``tree`` indirection for wrappers
    like ``RTreePNNQ`` that hold their index as ``.tree``.
    """
    pagers: list[Pager] = []
    for source in sources:
        if source is None:
            continue
        pager = getattr(source, "pager", None)
        if pager is None:
            tree = getattr(source, "tree", None)
            pager = getattr(tree, "pager", None)
        if isinstance(pager, Pager) and not any(
            pager is seen for seen in pagers
        ):
            pagers.append(pager)
    return pagers
