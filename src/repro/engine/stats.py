"""Unified execution statistics shared by every query engine.

The paper's evaluation splits query cost along two axes: wall-clock
time, decomposed into Step 1 ("OR" — object retrieval) and Step 2
("PC" — probability computation) as in Figures 9(b)/(f), and simulated
page I/O as in Figures 9(c)/(g).  The seed code tracked the former in
``StepTimes`` and the latter in ``Pager.IOStats`` with ad-hoc bracketing
in every driver; :class:`ExecutionStats` merges both into one object
that every engine populates through the shared
:class:`~repro.engine.base.BaseEngine` template.

I/O is split by phase too: ``or_io`` is the page traffic of Step 1 (the
quantity the paper's I/O figures report — leaf accesses of the Step-1
index) and ``pc_io`` the traffic of Step 2 (secondary-index pdf
fetches).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..storage.pager import IOStats

__all__ = ["ExecutionStats"]

#: Scalar counters in :meth:`ExecutionStats.capture` tuple order (the
#: I/O reads/writes follow at the end).  ``capture``/``delta_since``
#: spell the attributes out for speed; keep all three in sync when
#: adding a counter (the capture/delta equivalence test catches
#: drift).
_SCALAR_FIELDS = (
    "object_retrieval",
    "probability_computation",
    "queries",
    "batches",
    "cache_hits",
    "dedup_hits",
    "memo_hits",
    "invalidations",
    "retriever_fallbacks",
    "kernel_gather_seconds",
    "kernel_eval_seconds",
    "shards_dispatched",
    "shards_pruned",
    "worker_busy_seconds",
    "subscriptions_live",
    "revisions_emitted",
    "revisions_suppressed",
    "retries",
    "worker_restarts",
    "deadline_misses",
    "degraded_mode",
)


@dataclass
class ExecutionStats:
    """Accumulated timing, I/O, and reuse counters of one engine.

    Semantics (tested in ``tests/test_engine.py``):

    * :meth:`reset` zeroes every counter in place.
    * :meth:`snapshot` returns an independent deep copy.
    * :meth:`delta` returns the traffic accumulated since an earlier
      snapshot, field by field.
    """

    #: Step-1 (object retrieval) wall-clock seconds.
    object_retrieval: float = 0.0
    #: Step-2 (probability computation) wall-clock seconds.
    probability_computation: float = 0.0
    #: Queries answered (including cache/dedup hits).
    queries: int = 0
    #: ``query_batch`` invocations.
    batches: int = 0
    #: Queries answered from the LRU result cache.
    cache_hits: int = 0
    #: Queries that reused another query's full result inside a batch
    #: (exact duplicates collapsed by deduplication).
    dedup_hits: int = 0
    #: Queries that reused a nearby query's candidate set (Step-1 memo).
    memo_hits: int = 0
    #: Dataset-epoch drifts observed: each one flushed the result cache
    #: and the candidate memo (stale pre-mutation answers discarded).
    invalidations: int = 0
    #: Epoch drifts where the configured index retriever was itself
    #: stale and the engine swapped in the exact brute-force fallback.
    retriever_fallbacks: int = 0
    #: Step-2 seconds spent gathering candidate pdfs from the packed
    #: :class:`~repro.uncertain.InstanceStore` (a subset of
    #: :attr:`probability_computation`).
    kernel_gather_seconds: float = 0.0
    #: Step-2 seconds spent in the tensorized probability kernel itself
    #: (distances, sorts, survival products — the other subset of
    #: :attr:`probability_computation`).
    kernel_eval_seconds: float = 0.0
    #: Scatter-gather shards whose candidate filter actually ran
    #: (per query: the shards surviving the MBR bound check).
    shards_dispatched: int = 0
    #: Scatter-gather shards skipped because their MBR lower bound was
    #: dominated — whole partitions Step 1 never touched.
    shards_pruned: int = 0
    #: Wall-clock seconds worker processes spent executing dispatched
    #: groups (summed across the pool; the process tier's busy time).
    worker_busy_seconds: float = 0.0
    #: Standing subscriptions currently registered (a gauge, stamped at
    #: snapshot time by the :class:`~repro.service.SubscriptionManager`).
    subscriptions_live: int = 0
    #: Revision envelopes pushed to subscription consumers (answer
    #: actually changed, or the initial baseline).
    revisions_emitted: int = 0
    #: Mutation epochs a subscription skipped — either the relevance
    #: filter proved the answer could not change, or a re-execution
    #: produced a bit-identical answer.
    revisions_suppressed: int = 0
    #: Chunks re-dispatched after a retryable serving fault (worker
    #: death or stall); the final inline fallback counts once too.
    retries: int = 0
    #: Worker processes killed (or found dead) and respawned.
    worker_restarts: int = 0
    #: Queries failed with :class:`~repro.service.QueryTimeout` because
    #: their deadline passed (in queue or while awaiting the result).
    deadline_misses: int = 0
    #: 1 while the durable store is degraded to read-only after a WAL
    #: write failure (``on_wal_error="read_only"``), else 0 — a gauge.
    degraded_mode: int = 0
    #: Simulated page traffic of Step 1 (index descent / leaf reads).
    or_io: IOStats = field(default_factory=IOStats)
    #: Simulated page traffic of Step 2 (secondary pdf fetches).
    pc_io: IOStats = field(default_factory=IOStats)

    # ------------------------------------------------------------------
    @property
    def total(self) -> float:
        """OR + PC seconds."""
        return self.object_retrieval + self.probability_computation

    @property
    def page_reads(self) -> int:
        """Total pages read across both phases."""
        return self.or_io.reads + self.pc_io.reads

    @property
    def io(self) -> IOStats:
        """Combined Step-1 + Step-2 traffic (a fresh object)."""
        return IOStats(
            reads=self.or_io.reads + self.pc_io.reads,
            writes=self.or_io.writes + self.pc_io.writes,
        )

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero every counter in place."""
        self.object_retrieval = 0.0
        self.probability_computation = 0.0
        self.queries = 0
        self.batches = 0
        self.cache_hits = 0
        self.dedup_hits = 0
        self.memo_hits = 0
        self.invalidations = 0
        self.retriever_fallbacks = 0
        self.kernel_gather_seconds = 0.0
        self.kernel_eval_seconds = 0.0
        self.shards_dispatched = 0
        self.shards_pruned = 0
        self.worker_busy_seconds = 0.0
        self.subscriptions_live = 0
        self.revisions_emitted = 0
        self.revisions_suppressed = 0
        self.retries = 0
        self.worker_restarts = 0
        self.deadline_misses = 0
        self.degraded_mode = 0
        self.or_io.reset()
        self.pc_io.reset()

    def snapshot(self) -> "ExecutionStats":
        """An independent copy of the current counters."""
        return ExecutionStats(
            object_retrieval=self.object_retrieval,
            probability_computation=self.probability_computation,
            queries=self.queries,
            batches=self.batches,
            cache_hits=self.cache_hits,
            dedup_hits=self.dedup_hits,
            memo_hits=self.memo_hits,
            invalidations=self.invalidations,
            retriever_fallbacks=self.retriever_fallbacks,
            kernel_gather_seconds=self.kernel_gather_seconds,
            kernel_eval_seconds=self.kernel_eval_seconds,
            shards_dispatched=self.shards_dispatched,
            shards_pruned=self.shards_pruned,
            worker_busy_seconds=self.worker_busy_seconds,
            subscriptions_live=self.subscriptions_live,
            revisions_emitted=self.revisions_emitted,
            revisions_suppressed=self.revisions_suppressed,
            retries=self.retries,
            worker_restarts=self.worker_restarts,
            deadline_misses=self.deadline_misses,
            degraded_mode=self.degraded_mode,
            or_io=self.or_io.snapshot(),
            pc_io=self.pc_io.snapshot(),
        )

    def capture(self) -> tuple:
        """The counters as a flat tuple — a cheap pre-query marker.

        Pair with :meth:`delta_since` on serving hot paths (one tuple
        allocation instead of three objects per bracket); semantics
        match ``snapshot()`` + ``delta()`` exactly (asserted by an
        equivalence test).  The attribute order is
        :data:`_SCALAR_FIELDS` then the I/O reads/writes — spelled out
        here (not via getattr over the field list) because this runs
        once per served query and the direct tuple is several times
        cheaper.
        """
        return (
            self.object_retrieval,
            self.probability_computation,
            self.queries,
            self.batches,
            self.cache_hits,
            self.dedup_hits,
            self.memo_hits,
            self.invalidations,
            self.retriever_fallbacks,
            self.kernel_gather_seconds,
            self.kernel_eval_seconds,
            self.shards_dispatched,
            self.shards_pruned,
            self.worker_busy_seconds,
            self.subscriptions_live,
            self.revisions_emitted,
            self.revisions_suppressed,
            self.retries,
            self.worker_restarts,
            self.deadline_misses,
            self.degraded_mode,
            self.or_io.reads,
            self.or_io.writes,
            self.pc_io.reads,
            self.pc_io.writes,
        )

    def delta_since(self, captured: tuple) -> "ExecutionStats":
        """Counters accumulated since a :meth:`capture` marker."""
        return ExecutionStats(
            object_retrieval=self.object_retrieval - captured[0],
            probability_computation=self.probability_computation
            - captured[1],
            queries=self.queries - captured[2],
            batches=self.batches - captured[3],
            cache_hits=self.cache_hits - captured[4],
            dedup_hits=self.dedup_hits - captured[5],
            memo_hits=self.memo_hits - captured[6],
            invalidations=self.invalidations - captured[7],
            retriever_fallbacks=self.retriever_fallbacks - captured[8],
            kernel_gather_seconds=self.kernel_gather_seconds
            - captured[9],
            kernel_eval_seconds=self.kernel_eval_seconds - captured[10],
            shards_dispatched=self.shards_dispatched - captured[11],
            shards_pruned=self.shards_pruned - captured[12],
            worker_busy_seconds=self.worker_busy_seconds - captured[13],
            subscriptions_live=self.subscriptions_live - captured[14],
            revisions_emitted=self.revisions_emitted - captured[15],
            revisions_suppressed=self.revisions_suppressed
            - captured[16],
            retries=self.retries - captured[17],
            worker_restarts=self.worker_restarts - captured[18],
            deadline_misses=self.deadline_misses - captured[19],
            degraded_mode=self.degraded_mode - captured[20],
            or_io=IOStats(
                reads=self.or_io.reads - captured[21],
                writes=self.or_io.writes - captured[22],
            ),
            pc_io=IOStats(
                reads=self.pc_io.reads - captured[23],
                writes=self.pc_io.writes - captured[24],
            ),
        )

    def delta(self, earlier: "ExecutionStats") -> "ExecutionStats":
        """Counters accumulated since ``earlier`` (a prior snapshot)."""
        return ExecutionStats(
            object_retrieval=self.object_retrieval
            - earlier.object_retrieval,
            probability_computation=self.probability_computation
            - earlier.probability_computation,
            queries=self.queries - earlier.queries,
            batches=self.batches - earlier.batches,
            cache_hits=self.cache_hits - earlier.cache_hits,
            dedup_hits=self.dedup_hits - earlier.dedup_hits,
            memo_hits=self.memo_hits - earlier.memo_hits,
            invalidations=self.invalidations - earlier.invalidations,
            retriever_fallbacks=self.retriever_fallbacks
            - earlier.retriever_fallbacks,
            kernel_gather_seconds=self.kernel_gather_seconds
            - earlier.kernel_gather_seconds,
            kernel_eval_seconds=self.kernel_eval_seconds
            - earlier.kernel_eval_seconds,
            shards_dispatched=self.shards_dispatched
            - earlier.shards_dispatched,
            shards_pruned=self.shards_pruned - earlier.shards_pruned,
            worker_busy_seconds=self.worker_busy_seconds
            - earlier.worker_busy_seconds,
            subscriptions_live=self.subscriptions_live
            - earlier.subscriptions_live,
            revisions_emitted=self.revisions_emitted
            - earlier.revisions_emitted,
            revisions_suppressed=self.revisions_suppressed
            - earlier.revisions_suppressed,
            retries=self.retries - earlier.retries,
            worker_restarts=self.worker_restarts
            - earlier.worker_restarts,
            deadline_misses=self.deadline_misses
            - earlier.deadline_misses,
            degraded_mode=self.degraded_mode - earlier.degraded_mode,
            or_io=self.or_io.delta(earlier.or_io),
            pc_io=self.pc_io.delta(earlier.pc_io),
        )

    def merge(self, other: "ExecutionStats") -> None:
        """Accumulate ``other``'s counters into this object in place.

        The cross-process aggregation primitive: worker processes
        return per-execution deltas over the pipe and the pool folds
        them into one parent-side aggregate, so scatter-gather work is
        observable exactly like thread-mode work.
        """
        for name in _SCALAR_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.or_io.reads += other.or_io.reads
        self.or_io.writes += other.or_io.writes
        self.pc_io.reads += other.pc_io.reads
        self.pc_io.writes += other.pc_io.writes

    # ------------------------------------------------------------------
    def add_or(self, seconds: float, io: IOStats | None = None) -> None:
        """Charge one Step-1 episode (time plus optional page traffic)."""
        self.object_retrieval += seconds
        if io is not None:
            self.or_io.reads += io.reads
            self.or_io.writes += io.writes

    def add_pc(self, seconds: float, io: IOStats | None = None) -> None:
        """Charge one Step-2 episode (time plus optional page traffic)."""
        self.probability_computation += seconds
        if io is not None:
            self.pc_io.reads += io.reads
            self.pc_io.writes += io.writes
