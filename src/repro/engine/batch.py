"""Vectorized Step-2 kernels shared by the batched query API.

:func:`batched_qualification_probabilities` evaluates the PNNQ Step-2
computation of Cheng et al. [8] (discrete-pdf form, identical math to
:func:`repro.core.pnnq.qualification_probabilities`) for *many query
points against one shared candidate set* at once.  The per-candidate
instance-distance matrices, their sorts, and the cumulative-weight
tables — the numpy-heavy part of Step 2 — are computed with one batched
operation each instead of once per query, which is where the batch API
earns its keep on workloads whose queries share candidate sets.
"""

from __future__ import annotations

import numpy as np

from ..uncertain import UncertainDataset

__all__ = ["batched_qualification_probabilities", "group_by_candidates"]


def group_by_candidates(
    ids_list: list[list[int]],
) -> dict[tuple[int, ...], list[int]]:
    """Positions of ``ids_list`` grouped by identical candidate tuple."""
    groups: dict[tuple[int, ...], list[int]] = {}
    for pos, ids in enumerate(ids_list):
        groups.setdefault(tuple(ids), []).append(pos)
    return groups


def batched_qualification_probabilities(
    dataset: UncertainDataset,
    candidate_ids: list[int],
    queries: np.ndarray,
    evaluate_ids: list[int] | None = None,
) -> list[dict[int, float]]:
    """Step 2 for one candidate set and a ``(b, d)`` block of queries.

    Returns one ``oid -> probability`` mapping per query row.  This is
    the single authoritative implementation of the discrete-pdf Step-2
    math (half-weight tie convention, survival products, final clamp to
    ``[0, 1]``); :func:`repro.core.pnnq.qualification_probabilities` is
    the ``b = 1`` view of it.

    ``evaluate_ids`` restricts *whose* probabilities are returned;
    every member of ``candidate_ids`` still participates as a
    competitor in the survival products, so the returned values are
    exact (used by bound-based pruning to skip known losers).
    """
    Q = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    b = len(Q)
    if not candidate_ids:
        return [{} for _ in range(b)]
    if evaluate_ids is None:
        evaluate_ids = candidate_ids
    else:
        missing = set(evaluate_ids) - set(candidate_ids)
        if missing:
            raise ValueError(
                f"evaluate_ids not among candidates: {sorted(missing)}"
            )
    if len(candidate_ids) == 1:
        only = candidate_ids[0]
        row = {only: 1.0} if only in evaluate_ids else {}
        return [dict(row) for _ in range(b)]

    # Batched per-candidate precomputation: distance matrices (b, m),
    # their row-wise sorts, and cumulative weights, one numpy call each.
    dists: dict[int, np.ndarray] = {}
    weights: dict[int, np.ndarray] = {}
    sorted_dists: dict[int, np.ndarray] = {}
    cum_weights: dict[int, np.ndarray] = {}
    for oid in candidate_ids:
        obj = dataset[oid]
        diff = obj.instances[None, :, :] - Q[:, None, :]
        d = np.sqrt(np.einsum("bmd,bmd->bm", diff, diff))
        order = np.argsort(d, axis=1)
        w = np.broadcast_to(obj.weights, d.shape)
        dists[oid] = d
        weights[oid] = obj.weights
        sorted_dists[oid] = np.take_along_axis(d, order, axis=1)
        cum_weights[oid] = np.concatenate(
            [
                np.zeros((b, 1)),
                np.cumsum(np.take_along_axis(w, order, axis=1), axis=1),
            ],
            axis=1,
        )

    def survival(oid: int, row: int, radii: np.ndarray) -> np.ndarray:
        """Pr[dist(o, q_row) > r] per radius, half-weight on ties."""
        sd = sorted_dists[oid][row]
        cw = cum_weights[oid][row]
        le = cw[np.searchsorted(sd, radii, side="right")]
        lt = cw[np.searchsorted(sd, radii, side="left")]
        return 1.0 - 0.5 * (le + lt)

    out: list[dict[int, float]] = []
    for row in range(b):
        probs: dict[int, float] = {}
        for oid in evaluate_ids:
            radii = dists[oid][row]
            prod = np.ones(len(radii))
            for other in candidate_ids:
                if other == oid:
                    continue
                prod *= survival(other, row, radii)
            probs[oid] = float(
                np.clip(np.dot(weights[oid], prod), 0.0, 1.0)
            )
        out.append(probs)
    return out
