"""Tensorized Step-2 kernels shared by every query engine.

:func:`batched_qualification_probabilities` evaluates the PNNQ Step-2
computation of Cheng et al. [8] (discrete-pdf form, identical math to
:func:`repro.core.pnnq.qualification_probabilities`) for *many query
points against one shared candidate set* at once.  The implementation
is a single numpy pass over a packed candidate block:

1. **Gather** — the candidate pdfs are fetched from the dataset's
   :class:`~repro.uncertain.InstanceStore` (one contiguous instance
   matrix + offsets table) with one fancy-index, producing a dense
   ``(n, m, d)`` block — no per-object dict walks.
2. **Distances** — the full ``(b, n, m)`` query-instance distance
   tensor comes from one broadcasted einsum.
3. **Survivals** — each candidate's distance row is sorted once
   (exactly the reference's per-candidate tables), all ``n * m``
   distances of a query row are then sorted *jointly once*, and the
   survival products ``prod_j Pr[dist(o_j, q) > r]`` are read off a
   cumulative log-survival walk along that global order: every element
   passed multiplies its candidate's survival factor into a running
   log-sum, so the whole product at every radius is one cumsum plus
   one ``exp`` — with an exact zero-survival counter so hard zeros
   stay hard zeros.  There is no Python loop over ``(query row,
   candidate, competitor)`` triples — nor even over competitors: the
   products at all radii are a handful of array expressions.

Inputs with duplicated distance values across candidates cannot use
the log walk (the half-weight tie convention needs run boundaries);
they are detected after the global sort and routed through
:func:`_survival_core`, a materialized survival-tensor path that
reproduces the reference's tie handling exactly.  Either way the
half-weight convention and the final clamp to ``[0, 1]`` are
preserved, and the retained reference in ``tests/reference_step2.py``
is pinned against this kernel to 1e-9 by the differential property
tests.

Peak memory is bounded by chunking over the query axis:
:data:`KERNEL_CHUNK_BYTES` caps the per-chunk working set (sized for
the tie fallback's ``(rows, n, n * m)`` survival tensor — the log
walk needs far less) and can be overridden per call with
``chunk_bytes=``.
"""

from __future__ import annotations

import time

import numpy as np

from ..uncertain import UncertainDataset
from .stats import ExecutionStats

__all__ = [
    "KERNEL_CHUNK_BYTES",
    "batched_qualification_probabilities",
    "element_survival_probabilities",
    "element_survivals",
    "group_by_candidates",
    "instance_distance_matrix",
    "survival_products",
]

#: Soft cap on the kernel's per-chunk working set, in bytes.  The
#: survival tables are evaluated in query-axis chunks sized to stay
#: under this; raise it to trade memory for fewer chunk iterations on
#: very large batches, lower it for constrained environments.
KERNEL_CHUNK_BYTES = 256 * 1024 * 1024


def group_by_candidates(
    ids_list: list[list[int]],
) -> dict[tuple[int, ...], list[int]]:
    """Positions of ``ids_list`` grouped by identical candidate tuple."""
    groups: dict[tuple[int, ...], list[int]] = {}
    for pos, ids in enumerate(ids_list):
        groups.setdefault(tuple(ids), []).append(pos)
    return groups


# ----------------------------------------------------------------------
# Batched tie-aware rank primitive (row-paired haystacks and needles)
# ----------------------------------------------------------------------
def _rank_cumweights(
    values: np.ndarray,
    weights: np.ndarray,
    needles: np.ndarray,
    *,
    needles_first: bool,
) -> np.ndarray:
    """Row-wise weight of ``values`` entries below each needle.

    ``values``/``weights`` are ``(B, m)`` sorted haystack rows with
    aligned weights; ``needles`` is ``(B, K)``, paired row by row.
    Returns the ``(B, K)`` cumulative haystack weight at each needle —
    of entries ``<=`` the needle when ``needles_first`` is False
    (``searchsorted`` side ``"right"`` semantics) and ``<`` it when
    True (side ``"left"``): a stable argsort of the concatenation
    orders equal haystack values before or after the needles, and a
    cumsum of the interleaved weights (needles carry weight 0) reads
    off the answer with the identical partial sums.  Used by the
    verifier's histogram bounds, whose per-candidate edge grids are
    row-paired (unlike the kernel's shared candidate block).
    """
    B, m = values.shape
    K = needles.shape[1]
    zeros = np.zeros((B, K))
    if needles_first:
        combined = np.concatenate([needles, values], axis=1)
        w = np.concatenate([zeros, weights], axis=1)
        needle_cols = slice(0, K)
    else:
        combined = np.concatenate([values, needles], axis=1)
        w = np.concatenate([weights, zeros], axis=1)
        needle_cols = slice(m, m + K)
    order = np.argsort(combined, axis=1, kind="stable")
    cum = np.cumsum(np.take_along_axis(w, order, axis=1), axis=1)
    inverse = np.empty_like(order)
    np.put_along_axis(
        inverse,
        order,
        np.broadcast_to(np.arange(m + K), (B, m + K)),
        axis=1,
    )
    return np.take_along_axis(cum, inverse[:, needle_cols], axis=1)


# ----------------------------------------------------------------------
# The global-sort survival machinery
# ----------------------------------------------------------------------
def _survival_core(
    D: np.ndarray,
    W: np.ndarray,
    radii: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray | None, np.ndarray, np.ndarray]:
    """Survival factors of every candidate at a needle grid, batched.

    ``D`` is the ``(B, n, m)`` candidate distance tensor and ``W`` the
    aligned ``(n, m)`` weights.  The needles are either all ``n * m``
    elements of ``D`` itself (``radii is None`` — the Step-2 case,
    where every instance distance is evaluated against every
    competitor) or an external ``(B, K)`` grid.

    One joint argsort per row orders elements and needles together; a
    scatter + cumsum along that order yields ``cum[b, j, s]`` = weight
    of candidate ``j`` at distance <= the s-th sorted value.  Without
    duplicated values the survival of ``j`` at a needle is then
    ``1 - cum`` at the needle's position; duplicated values are
    resolved through their tie run's boundaries, reproducing
    ``searchsorted``'s left/right semantics and the half-weight tie
    convention bit-for-bit.

    Returns ``(S, own, w_needle, colid)``: ``S`` is ``(B, n, T)``
    survivals at the needles *in sorted order*; ``own`` the needle's
    own candidate slot (element mode; ``None`` for external needles);
    ``w_needle`` the needle's instance weight (zeros for external);
    ``colid`` the needle's original column, for scattering results
    back when output order matters.
    """
    B, n, m = D.shape
    M = n * m
    values = D.reshape(B, M)
    w_full = np.repeat(W.reshape(1, M), B, axis=0)
    labels = np.repeat(np.arange(n), m)
    if radii is None:
        T, K = M, M
        colid_full = np.arange(M)
        labels_full = labels
    else:
        K = radii.shape[1]
        T = M + K
        values = np.concatenate([values, radii], axis=1)
        w_full = np.concatenate([w_full, np.zeros((B, K))], axis=1)
        # External needles carry label -1 (no weight, no self slot)
        # and remember their original radii column.
        labels_full = np.concatenate(
            [labels, np.full(K, -1, dtype=np.int64)]
        )
        colid_full = np.concatenate(
            [np.full(M, -1, dtype=np.int64), np.arange(K)]
        )

    order = np.argsort(values, axis=1)
    SV = np.take_along_axis(values, order, axis=1)
    SW = np.take_along_axis(w_full, order, axis=1)
    SL = labels_full[order]
    SC = colid_full[order]

    # cum[b, j, s]: candidate j's cumulative weight along the sorted
    # order — the same partial sums the reference's per-candidate
    # cumsum produces (interleaved zeros add exactly 0.0).
    cum = np.zeros((B, n, T))
    np.put_along_axis(
        cum,
        np.maximum(SL, 0)[:, None, :],
        np.where(SL >= 0, SW, 0.0)[:, None, :],
        axis=1,
    )
    np.cumsum(cum, axis=2, out=cum)

    if radii is None:
        pos = None
        own: np.ndarray | None = SL
        w_needle = SW
        colid = SC
    else:
        # Every row holds exactly K needle entries; nonzero yields
        # their positions row-major, ascending within each row.
        pos = np.nonzero(SL < 0)[1].reshape(B, K)
        own = None
        w_needle = np.zeros((B, K))
        colid = np.take_along_axis(SC, pos, axis=1)

    tied = bool((SV[:, 1:] == SV[:, :-1]).any())
    if not tied:
        # Unique values: weight strictly below == weight at-or-below
        # for every candidate other than the needle's own (excluded by
        # the callers), so the survival is one table lookup.
        if pos is None:
            S = np.subtract(1.0, cum, out=cum)
        else:
            S = 1.0 - np.take_along_axis(cum, pos[:, None, :], axis=2)
        return S, own, w_needle, colid

    # Tie runs: le reads the table at the run's last index (value <=
    # needle), lt just before its first (value < needle) — exactly
    # searchsorted's right/left sides on the per-candidate arrays.
    idx = np.arange(T)
    boundary = SV[:, 1:] != SV[:, :-1]
    first = np.maximum.accumulate(
        np.where(
            np.concatenate(
                [np.ones((B, 1), dtype=bool), boundary], axis=1
            ),
            idx,
            0,
        ),
        axis=1,
    )
    last = np.flip(
        np.minimum.accumulate(
            np.flip(
                np.where(
                    np.concatenate(
                        [boundary, np.ones((B, 1), dtype=bool)], axis=1
                    ),
                    idx,
                    T - 1,
                ),
                axis=1,
            ),
            axis=1,
        ),
        axis=1,
    )
    if pos is not None:
        first = np.take_along_axis(first, pos, axis=1)
        last = np.take_along_axis(last, pos, axis=1)
    le = np.take_along_axis(cum, last[:, None, :], axis=2)
    lt_pos = first - 1
    lt = np.take_along_axis(
        cum, np.maximum(lt_pos, 0)[:, None, :], axis=2
    )
    lt[np.broadcast_to((lt_pos < 0)[:, None, :], lt.shape)] = 0.0
    S = 1.0 - 0.5 * (le + lt)
    return S, own, w_needle, colid


def _log_products(
    D: np.ndarray,
    W: np.ndarray,
    radii: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
    """Survival products at a needle grid via the cumulative log walk.

    The fast path of the kernel: along the globally sorted distance
    order, passing an element of candidate ``j`` multiplies ``j``'s
    survival factor — so the log of the all-candidate product at every
    radius is one cumsum of per-element log-survival deltas.  Hard
    zeros are tracked with an exact active-zero counter (a zero factor
    never re-enters through ``exp``), and a needle's own candidate is
    divided back out in log space.

    Returns ``(prod, own_or_colid, w_needle)`` with needles in sorted
    order: ``prod`` the ``(B, T)`` product over all candidates but the
    needle's own (element mode) or over all candidates (external
    ``radii`` mode, where the second array is the needle's original
    column instead of its own slot).  Returns ``None`` when duplicated
    values across candidates (or against needles) require the exact
    tie-run treatment of :func:`_survival_core`.
    """
    B, n, m = D.shape
    M = n * m
    # Per-candidate sorted tables — bit-identical partial sums to the
    # reference's per-candidate cumsum.  Everything below stays in
    # per-candidate-sorted coordinates (flat column j*m + rank).
    order_c = np.argsort(D, axis=2)
    sd_c = np.take_along_axis(D, order_c, axis=2)
    sw_c = np.take_along_axis(np.broadcast_to(W, D.shape), order_c, axis=2)
    surv = 1.0 - np.cumsum(sw_c, axis=2)
    np.maximum(surv, 0.0, out=surv)
    alive = surv > 0.0
    # log-survival after each element; exact zeros are carried by the
    # `dead` counter instead of -inf, so a dead factor's prior log is
    # removed (its delta becomes -log_before) rather than poisoning
    # the running sum.
    log_surv = np.zeros_like(surv)
    np.log(surv, out=log_surv, where=alive)
    dlog = log_surv.copy()
    dlog[:, :, 1:] -= log_surv[:, :, :-1]
    dead = ~alive

    values = sd_c.reshape(B, M)
    deltas = dlog.reshape(B, M)
    died = np.empty((B, n, m), dtype=np.int8)
    died[:, :, 0] = dead[:, :, 0]
    np.not_equal(dead[:, :, 1:], dead[:, :, :-1], out=died[:, :, 1:])
    died = died.reshape(B, M)
    labels = np.repeat(np.arange(n), m)

    if radii is None:
        colid = None
    else:
        K = radii.shape[1]
        values = np.concatenate([values, radii], axis=1)
        pad = np.zeros((B, K))
        deltas = np.concatenate([deltas, pad], axis=1)
        died = np.concatenate(
            [died, np.zeros((B, K), dtype=np.int8)], axis=1
        )
        labels = np.concatenate(
            [labels, np.full(K, -1, dtype=np.int64)]
        )
        colid = np.concatenate(
            [np.full(M, -1, dtype=np.int64), np.arange(K)]
        )

    # The flat values are n pre-sorted runs (plus the needle block);
    # a stable mergesort exploits those runs.
    order = np.argsort(values, axis=1, kind="stable")
    SV = np.take_along_axis(values, order, axis=1)
    SL = labels[order]
    # Equal values on different candidates (or needles) need the tie
    # run treatment — the log walk cannot split weight at a boundary.
    # Instance-store padding duplicates values only within its own
    # candidate (same label), which the walk handles exactly.
    if bool(
        ((SV[:, 1:] == SV[:, :-1]) & (SL[:, 1:] != SL[:, :-1])).any()
    ):
        return None

    T = np.cumsum(np.take_along_axis(deltas, order, axis=1), axis=1)
    Z = np.cumsum(
        np.take_along_axis(died, order, axis=1), axis=1, dtype=np.int32
    )
    if radii is None:
        flat_log = log_surv.reshape(B, M)
        own_log = np.take_along_axis(flat_log, order, axis=1)
        own_dead = np.take_along_axis(
            dead.reshape(B, M).astype(np.int8), order, axis=1
        )
        prod = np.exp(T - own_log)
        prod[Z > own_dead] = 0.0
        return prod, SL, np.take_along_axis(
            sw_c.reshape(B, M), order, axis=1
        )
    rows = np.nonzero(SL < 0)[1].reshape(B, radii.shape[1])
    prod = np.exp(np.take_along_axis(T, rows, axis=1))
    prod[np.take_along_axis(Z, rows, axis=1) > 0] = 0.0
    needle_col = np.take_along_axis(colid[order], rows, axis=1)
    return prod, needle_col, np.zeros_like(prod)


def element_survival_probabilities(
    D: np.ndarray,
    W: np.ndarray,
    eval_slots: np.ndarray | None = None,
) -> np.ndarray:
    """``(B, n_eval)`` qualification probabilities from a distance tensor.

    The distance-space core of Step 2: for each evaluated candidate
    ``i``, ``P_i = sum_s w_i(s) * prod_{j != i} Pr[dist(j) > D[.., i, s]]``
    with the half-weight tie convention and a final clamp to
    ``[0, 1]``.  ``eval_slots`` restricts which candidate slots are
    evaluated (all still compete); columns follow its order.
    """
    B, n, _m = D.shape
    fast = _log_products(D, W)
    if fast is not None:
        prod, own, w_needle = fast
        contrib = w_needle * prod
    else:
        # Tied inputs: exact materialized survival tensor.
        S, own, w_needle, _ = _survival_core(D, W)
        assert own is not None
        # A candidate never competes against itself.
        np.put_along_axis(S, own[:, None, :], 1.0, axis=1)
        contrib = w_needle * S.prod(axis=1)
    if eval_slots is None:
        out_slot = own
        n_out = n
    else:
        # Non-evaluated slots fall into a drop bin.
        slot_map = np.full(n, len(eval_slots), dtype=np.int64)
        slot_map[eval_slots] = np.arange(len(eval_slots))
        out_slot = slot_map[own]
        n_out = len(eval_slots) + 1
    flat = (np.arange(B)[:, None] * n_out + out_slot).ravel()
    P = np.bincount(
        flat, weights=contrib.ravel(), minlength=B * n_out
    ).reshape(B, n_out)
    if eval_slots is not None:
        P = P[:, : len(eval_slots)]
    np.clip(P, 0.0, 1.0, out=P)
    return P


def element_survivals(D: np.ndarray, W: np.ndarray) -> np.ndarray:
    """``(B, n, n * m)`` survivals of every candidate at every element.

    Column ``c`` of the last axis is element ``(slot c // m,
    instance c % m)`` of ``D`` — original order, for consumers that
    need the individual factors (k-NN's Poisson-binomial DP uses
    ``1 - survival``).  Values on a needle's own slot follow the fast
    path's at-or-below semantics and must not be consumed.
    """
    S, _own, _w, colid = _survival_core(D, W)
    out = np.empty_like(S)
    np.put_along_axis(out, colid[:, None, :], S, axis=2)
    return out


def survival_products(
    D: np.ndarray, W: np.ndarray, radii: np.ndarray
) -> np.ndarray:
    """``(B, K)`` product over all candidates of their survival at
    ``radii`` (an external needle grid), in ``radii``'s column order."""
    fast = _log_products(D, W, radii)
    if fast is not None:
        prod, colid, _w = fast
    else:
        # Tied inputs: exact materialized survival tensor.
        S, _own, _w2, colid = _survival_core(D, W, radii)
        prod = S.prod(axis=1)
    out = np.empty_like(prod)
    np.put_along_axis(out, colid, prod, axis=1)
    return out


# ----------------------------------------------------------------------
# Dense-block helpers shared by the engines
# ----------------------------------------------------------------------
def _distance_tensor(block: np.ndarray, Q: np.ndarray) -> np.ndarray:
    """``(b, n, m)`` instance distances from a padded candidate block."""
    diff = block[None, :, :, :] - Q[:, None, None, :]
    return np.sqrt(np.einsum("bnmd,bnmd->bnm", diff, diff))


def instance_distance_matrix(
    dataset: UncertainDataset,
    ids: list[int],
    query: np.ndarray,
    stats: ExecutionStats | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """``(n, m)`` padded distances + weights for one query point.

    The single-query view of the kernel's gather + distance steps,
    shared by the engines whose Step 2 is not a plain survival product
    (k-NN's Poisson-binomial, the verifier's histogram bounds, expected
    distances).  Padded entries carry weight exactly 0.  Only the
    store fetch is charged to ``kernel_gather_seconds`` — the distance
    einsum is evaluation work, like everywhere else in the kernel.
    """
    t0 = time.perf_counter()
    block = dataset.instance_store().gather(ids)
    if stats is not None:
        stats.kernel_gather_seconds += time.perf_counter() - t0
    t1 = time.perf_counter()
    q = np.asarray(query, dtype=np.float64)
    D = _distance_tensor(block.instances, q[None, :])[0]
    if stats is not None:
        stats.kernel_eval_seconds += time.perf_counter() - t1
    return D, block.weights


# ----------------------------------------------------------------------
# The Step-2 kernel
# ----------------------------------------------------------------------
def _chunk_rows(b: int, n: int, m: int, chunk_bytes: int) -> int:
    """Query rows per chunk keeping the working set under the cap.

    The budget is dominated by the ``(rows, n, n * m)`` cumulative
    table; the tie-aware path may materialize ~3 tensors of that shape.
    """
    per_row = 8 * (3 * n + 8) * n * m
    return max(1, min(b, chunk_bytes // max(per_row, 1)))


def batched_qualification_probabilities(
    dataset: UncertainDataset,
    candidate_ids: list[int],
    queries: np.ndarray,
    evaluate_ids: list[int] | None = None,
    *,
    stats: ExecutionStats | None = None,
    chunk_bytes: int | None = None,
) -> list[dict[int, float]]:
    """Step 2 for one candidate set and a ``(b, d)`` block of queries.

    Returns one ``oid -> probability`` mapping per query row.  This is
    the single authoritative implementation of the discrete-pdf Step-2
    math (half-weight tie convention, survival products, final clamp to
    ``[0, 1]``); :func:`repro.core.pnnq.qualification_probabilities` is
    the ``b = 1`` view of it.

    ``evaluate_ids`` restricts *whose* probabilities are returned;
    every member of ``candidate_ids`` still participates as a
    competitor in the survival products, so the returned values are
    exact (used by bound-based pruning to skip known losers).

    ``stats`` receives the kernel's gather/eval wall-clock split
    (``kernel_gather_seconds`` / ``kernel_eval_seconds``);
    ``chunk_bytes`` overrides :data:`KERNEL_CHUNK_BYTES`.
    """
    Q = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    b = len(Q)
    if not candidate_ids:
        return [{} for _ in range(b)]
    if evaluate_ids is None:
        evaluate_ids = list(candidate_ids)
    else:
        missing = set(evaluate_ids) - set(candidate_ids)
        if missing:
            raise ValueError(
                f"evaluate_ids not among candidates: {sorted(missing)}"
            )
    if len(candidate_ids) == 1:
        only = candidate_ids[0]
        row = {only: 1.0} if only in evaluate_ids else {}
        return [dict(row) for _ in range(b)]

    t0 = time.perf_counter()
    block = dataset.instance_store().gather(candidate_ids)
    t_gather = time.perf_counter() - t0

    n, m = block.weights.shape
    slot_of = {oid: i for i, oid in enumerate(candidate_ids)}
    eval_slots = (
        None
        if len(evaluate_ids) == len(candidate_ids)
        and evaluate_ids == list(candidate_ids)
        else np.fromiter(
            (slot_of[oid] for oid in evaluate_ids),
            dtype=np.int64,
            count=len(evaluate_ids),
        )
    )

    t1 = time.perf_counter()
    P = np.empty((b, len(evaluate_ids)))
    step = _chunk_rows(b, n, m, chunk_bytes or KERNEL_CHUNK_BYTES)
    for lo in range(0, b, step):
        D = _distance_tensor(block.instances, Q[lo : lo + step])
        P[lo : lo + step] = element_survival_probabilities(
            D, block.weights, eval_slots
        )
    if stats is not None:
        stats.kernel_gather_seconds += t_gather
        stats.kernel_eval_seconds += time.perf_counter() - t1

    return [
        {
            oid: float(P[row, i])
            for i, oid in enumerate(evaluate_ids)
        }
        for row in range(b)
    ]
