"""Result caching and candidate-set memoization for the engine layer.

Two small reuse structures back the batched query API:

* :class:`LRUCache` — an optional bounded result cache keyed by the
  exact query (plus query parameters).  Hits skip both steps entirely —
  the right trade for heavy-traffic serving where a small set of hot
  queries dominates.
* :class:`CandidateMemo` — Step-1 (candidate set) reuse across *nearby*
  queries within and across batches.  Queries are quantized to grid
  cells of a caller-chosen radius; queries landing in the same cell
  share one retriever call.  At radius 0 only exactly-coincident memo
  points reuse, which is always exact; a positive radius is an opt-in
  approximation for serving workloads with spatial locality (the reused
  set may differ from the per-query set near cell boundaries, while
  Step-2 probabilities remain exact *for the reused set*).

Both structures hold state derived from one dataset epoch:
:class:`~repro.engine.base.BaseEngine` clears them whenever the
dataset's mutation epoch moves, so neither can serve a pre-mutation
answer after an ``insert``/``delete``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable

import numpy as np

__all__ = ["LRUCache", "CandidateMemo"]

#: Sentinel distinguishing "miss" from a cached ``None``.
_MISS = object()


class LRUCache:
    """A bounded mapping evicting the least recently used entry."""

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._data: OrderedDict[Hashable, Any] = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, refreshing its recency on a hit.

        Returns ``default`` (``None`` unless given) on a miss; callers
        that cache ``None``-valued entries should pass
        :data:`LRUCache.MISS` as the default to disambiguate.
        """
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh ``key``, evicting the oldest entry when full."""
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (hit/miss counters are preserved)."""
        self._data.clear()


LRUCache.MISS = _MISS


class CandidateMemo:
    """Grid-quantized memo of Step-1 candidate sets.

    Parameters
    ----------
    radius:
        Cell side length of the quantization grid.  ``0.0`` reuses only
        for exactly identical memo points (always exact); larger values
        trade Step-1 work for boundary-case approximation.
    maxsize:
        Bound on stored cells.  The memo persists across batches on a
        long-lived serving engine, so it evicts least-recently-used
        cells past this bound rather than growing with every distinct
        grid cell ever queried.
    """

    def __init__(self, radius: float = 0.0, maxsize: int = 4096) -> None:
        if radius < 0.0:
            raise ValueError("radius must be >= 0")
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.radius = float(radius)
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._cells: OrderedDict[tuple, list[int]] = OrderedDict()

    def key(self, point: np.ndarray) -> tuple:
        """The grid cell of ``point`` under the memo radius."""
        p = np.asarray(point, dtype=np.float64)
        if self.radius > 0.0:
            return tuple(np.floor(p / self.radius).astype(np.int64))
        return tuple(p)

    def lookup(self, point: np.ndarray) -> list[int] | None:
        """Cached candidate ids for the cell of ``point``, if any."""
        key = self.key(point)
        ids = self._cells.get(key)
        if ids is None:
            self.misses += 1
            return None
        self._cells.move_to_end(key)
        self.hits += 1
        return ids

    def store(self, point: np.ndarray, ids: list[int]) -> None:
        """Record the candidate set retrieved at ``point``, evicting
        the least recently used cell when full."""
        key = self.key(point)
        if key in self._cells:
            self._cells.move_to_end(key)
        self._cells[key] = ids
        if len(self._cells) > self.maxsize:
            self._cells.popitem(last=False)

    def clear(self) -> None:
        """Drop every memoized cell."""
        self._cells.clear()
