"""Result caching and candidate-set memoization for the engine layer.

Two small reuse structures back the batched query API:

* :class:`LRUCache` — an optional bounded result cache keyed by the
  exact query (plus query parameters).  Hits skip both steps entirely —
  the right trade for heavy-traffic serving where a small set of hot
  queries dominates.
* :class:`CandidateMemo` — Step-1 (candidate set) reuse across *nearby*
  queries inside one batch.  Queries are quantized to grid cells of a
  caller-chosen radius; queries landing in the same cell share one
  retriever call.  At radius 0 only exactly-coincident memo points
  reuse, which is always exact; a positive radius is an opt-in
  approximation for serving workloads with spatial locality (the reused
  set may differ from the per-query set near cell boundaries, while
  Step-2 probabilities remain exact *for the reused set*).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable

import numpy as np

__all__ = ["LRUCache", "CandidateMemo"]

#: Sentinel distinguishing "miss" from a cached ``None``.
_MISS = object()


class LRUCache:
    """A bounded mapping evicting the least recently used entry."""

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._data: OrderedDict[Hashable, Any] = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, refreshing its recency on a hit.

        Returns ``default`` (``None`` unless given) on a miss; callers
        that cache ``None``-valued entries should pass
        :data:`LRUCache.MISS` as the default to disambiguate.
        """
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh ``key``, evicting the oldest entry when full."""
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (hit/miss counters are preserved)."""
        self._data.clear()


LRUCache.MISS = _MISS


class CandidateMemo:
    """Grid-quantized memo of Step-1 candidate sets.

    Parameters
    ----------
    radius:
        Cell side length of the quantization grid.  ``0.0`` reuses only
        for exactly identical memo points (always exact); larger values
        trade Step-1 work for boundary-case approximation.
    """

    def __init__(self, radius: float = 0.0) -> None:
        if radius < 0.0:
            raise ValueError("radius must be >= 0")
        self.radius = float(radius)
        self.hits = 0
        self.misses = 0
        self._cells: dict[tuple, list[int]] = {}

    def key(self, point: np.ndarray) -> tuple:
        """The grid cell of ``point`` under the memo radius."""
        p = np.asarray(point, dtype=np.float64)
        if self.radius > 0.0:
            return tuple(np.floor(p / self.radius).astype(np.int64))
        return tuple(p)

    def lookup(self, point: np.ndarray) -> list[int] | None:
        """Cached candidate ids for the cell of ``point``, if any."""
        ids = self._cells.get(self.key(point))
        if ids is None:
            self.misses += 1
            return None
        self.hits += 1
        return ids

    def store(self, point: np.ndarray, ids: list[int]) -> None:
        """Record the candidate set retrieved at ``point``."""
        self._cells[self.key(point)] = ids

    def clear(self) -> None:
        """Drop every memoized cell."""
        self._cells.clear()
