"""Retriever cost estimates — the planner's common currency.

The best Step-1 retriever depends on dimensionality, database size, and
index shape (the paper's Figure 9 sweeps): the PV-index wins where its
leaf candidate lists stay small, the R-tree pays heap-traversal
overhead, the UV-index only exists in 2D, and the vectorized brute-force
filter beats them all on small or very high-dimensional databases.  The
``repro.api`` planner chooses between them by comparing
:class:`CostEstimate` objects.

Each built index reports its own estimate through a ``cost_estimate()``
hook calibrated from its real shape (leaf occupancy, tree height, page
sizes — see :meth:`repro.core.pvindex.PVIndex.cost_estimate`,
:meth:`repro.rtree.pnnq.RTreePNNQ.cost_estimate`,
:meth:`repro.uvindex.uvindex.UVIndex.cost_estimate`, and
:meth:`repro.engine.retrievers.BruteForceRetriever.cost_estimate`).
Unbuilt indexes are scored from the static formulas in
:mod:`repro.api.planner`.

Units
-----
* ``step1_us`` — estimated Step-1 (object retrieval) wall-clock in
  microseconds *for this pure-Python implementation*.  Constants were
  fitted to the relative costs of the code paths: one broadcasted numpy
  element costs ~0.01 µs, one Python-level per-entry step ~1 µs, one
  octree/R-tree node visit a few µs.
* ``page_reads`` — estimated simulated page reads per query (the
  quantity of Figures 9(c)/(g)).  Wall-clock and page I/O are kept as
  separate axes because the simulated pager costs no real time here but
  would dominate on real disks; the planner weighs pages by a
  configurable ``page_cost_us``.
* ``candidates`` — expected candidate-set size handed to Step 2.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostEstimate", "expected_candidates"]


def expected_candidates(n: int, dims: int) -> float:
    """Rule-of-thumb candidate-set size for a PNNQ over ``n`` objects.

    The paper's evaluation (Fig 10(c)) shows candidate sets are small
    and essentially independent of ``n`` in low dimensions but grow
    sharply with dimensionality (Fig 9(e)/(f)); this captures that shape
    with a capped exponential in ``dims``.
    """
    return float(min(n, 6.0 * (2.2 ** max(dims - 1, 0))))


@dataclass(frozen=True)
class CostEstimate:
    """Estimated per-query Step-1 cost of one retriever.

    ``source`` records where the numbers came from: ``"static"`` (the
    planner's pre-build formula), ``"index"`` (the built index's own
    shape), or ``"observed"`` (runtime feedback folded in by the
    planner).
    """

    step1_us: float
    page_reads: float
    candidates: float
    source: str = "static"

    def with_step1(self, step1_us: float, source: str) -> "CostEstimate":
        """A copy with the wall-clock term replaced (calibration)."""
        return CostEstimate(
            step1_us=step1_us,
            page_reads=self.page_reads,
            candidates=self.candidates,
            source=source,
        )
