"""Unified query-execution layer: one runtime for every engine.

This package is the seam between the paper's query classes and the
serving-oriented roadmap: :class:`BaseEngine` owns the OR→PC template,
retriever resolution, shared :class:`ExecutionStats` instrumentation
(timing + simulated page I/O from one object), a batched query API with
candidate-set memoization, and an optional LRU result cache.  The
concrete engines in :mod:`repro.core` are thin subclasses implementing
only their probability-computation step.
"""

from .base import BaseEngine, normalize_engine_args
from .batch import (
    KERNEL_CHUNK_BYTES,
    batched_qualification_probabilities,
    element_survival_probabilities,
    element_survivals,
    group_by_candidates,
    instance_distance_matrix,
    survival_products,
)
from .cache import CandidateMemo, LRUCache
from .cost import CostEstimate, expected_candidates
from .frozen import FrozenDict, readonly_array
from .retrievers import (
    BruteForceRetriever,
    Retriever,
    discover_pagers,
    resolve_retriever,
)
from .stats import ExecutionStats

__all__ = [
    "BaseEngine",
    "normalize_engine_args",
    "CostEstimate",
    "expected_candidates",
    "FrozenDict",
    "readonly_array",
    "ExecutionStats",
    "Retriever",
    "BruteForceRetriever",
    "resolve_retriever",
    "discover_pagers",
    "LRUCache",
    "CandidateMemo",
    "batched_qualification_probabilities",
    "element_survival_probabilities",
    "element_survivals",
    "group_by_candidates",
    "instance_distance_matrix",
    "survival_products",
    "KERNEL_CHUNK_BYTES",
]
