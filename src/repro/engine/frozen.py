"""Read-only containers for shared query results.

Results flow out of the execution layer through *sharing*, not copying:
an LRU-cache hit, a batch-deduplicated position, and the new
``repro.api`` envelopes all hand the caller the same object another
caller may also hold.  The seed code merely documented "treat results
as read-only"; this module enforces it.  Every engine result freezes
its containers at construction:

* probability / decision mappings become :class:`FrozenDict` — a
  ``dict`` subclass (so equality, iteration, and ``dict(...)`` copies
  behave normally) whose mutators raise :class:`TypeError`;
* id lists become tuples;
* stored query arrays become non-writeable copies
  (:func:`readonly_array`), so ``result.query[0] = ...`` raises.

To modify a result, copy it out explicitly: ``dict(result.probabilities)``
or ``list(result.candidate_ids)``.
"""

from __future__ import annotations

from typing import Any, NoReturn

import numpy as np

__all__ = ["FrozenDict", "readonly_array"]


def _readonly(self, *args: Any, **kwargs: Any) -> NoReturn:
    raise TypeError(
        "engine results are shared between callers and read-only; "
        "copy with dict(...) before modifying"
    )


class FrozenDict(dict):
    """A ``dict`` whose mutating methods raise :class:`TypeError`.

    Subclassing ``dict`` (rather than wrapping one) keeps equality with
    plain dicts, ``len``/iteration/``in``, and JSON/pytest introspection
    working unchanged — only mutation is blocked.
    """

    __slots__ = ()

    __setitem__ = _readonly
    __delitem__ = _readonly
    __ior__ = _readonly
    clear = _readonly
    pop = _readonly
    popitem = _readonly
    setdefault = _readonly
    update = _readonly

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FrozenDict({dict.__repr__(self)})"

    def __reduce__(self) -> tuple:
        """Pickle support (process-pool pipe transport).

        The default ``dict``-subclass protocol rebuilds through
        ``__setitem__``, which this class blocks — reconstruct from a
        plain-dict copy through the constructor instead.
        """
        return (type(self), (dict(self),))

    def copy(self) -> dict:
        """A *mutable* plain-dict copy (the one escape hatch)."""
        return dict(self)


def readonly_array(values: Any) -> np.ndarray:
    """An independent, non-writeable float64 copy of ``values``.

    Results store their query through this so neither the caller's
    original array nor the shared result can be mutated through the
    other; the copy also means the caller's array flags are untouched.
    """
    out = np.array(values, dtype=np.float64)
    out.setflags(write=False)
    return out
