"""The shared OR→PC engine runtime.

Every query class in the library — PNNQ, k-PNN, top-k probable NN,
group NN, reverse NN, threshold (verifier) queries, expected-distance
NN — follows the same two-step shape the paper evaluates: *object
retrieval* (Step 1, "OR") through a pluggable retriever, then
*probability computation* (Step 2, "PC") on the retrieved candidates'
discrete pdfs.  :class:`BaseEngine` owns that template once:

* retriever resolution (PV-index / R-tree / UV-index / brute-force
  fallback) via :func:`~repro.engine.retrievers.resolve_retriever`;
* per-phase wall-clock timing and simulated page-I/O attribution into
  one shared :class:`~repro.engine.stats.ExecutionStats`;
* secondary-index pdf-fetch charging (Step-2 I/O);
* an optional LRU result cache;
* **thread safety** — a per-engine re-entrant lock serializes query
  execution, cache access, and epoch reconciliation, and the measured
  entry points (:meth:`BaseEngine.query_measured` /
  :meth:`BaseEngine.query_batch_measured`) return a result together
  with the exact :class:`ExecutionStats` delta of that execution even
  when several threads share one engine;
* a batched API — :meth:`BaseEngine.query_batch` — that deduplicates
  identical queries, memoizes Step-1 candidate retrieval across nearby
  queries, and hands whole candidate groups to vectorized Step-2 kernels;
* **epoch-aware invalidation** — every query entry point compares the
  dataset's mutation epoch against the epoch the engine last served at.
  On drift the result cache and candidate memo are flushed, and a
  retriever that advertises its own ``dataset_epoch`` but was not
  maintained through the mutation (e.g. the dataset was mutated
  directly rather than via ``index.insert``) is replaced by the exact
  brute-force fallback — stale answers are never served.

Subclasses implement only the hooks: :meth:`_compute` (their
probability-computation step) and, where profitable, vectorized
:meth:`_retrieve_batch` / :meth:`_compute_batch` overrides.
"""

from __future__ import annotations

import threading
import time
import warnings
from typing import Any, Hashable, Sequence

import numpy as np

from ..analysis.locks import make_rlock
from ..storage.pager import IOStats
from ..uncertain import UncertainDataset
from .cache import _MISS, CandidateMemo, LRUCache
from .retrievers import Retriever, discover_pagers, resolve_retriever
from .stats import ExecutionStats

__all__ = ["BaseEngine", "normalize_engine_args"]


def normalize_engine_args(
    engine_name: str, dataset: Any, retriever: Any
) -> tuple[UncertainDataset, Retriever | None]:
    """Resolve the uniform ``(dataset, retriever)`` constructor order.

    Every engine now takes ``(dataset, retriever=None, ...)``.  The
    seed's PNNQ-family engines took ``(retriever, dataset, ...)``; that
    order is still accepted — detected by which argument is the
    :class:`~repro.uncertain.UncertainDataset` — with a
    :class:`DeprecationWarning`, so existing callers keep working while
    new code reads uniformly.
    """
    if isinstance(dataset, UncertainDataset):
        return dataset, retriever
    if isinstance(retriever, UncertainDataset):
        warnings.warn(
            f"{engine_name}(retriever, dataset) is deprecated; "
            f"use {engine_name}(dataset, retriever=...) — the uniform "
            "constructor order shared by every engine",
            DeprecationWarning,
            stacklevel=3,
        )
        return retriever, dataset
    raise TypeError(
        f"{engine_name} requires an UncertainDataset as its first "
        f"argument (got {type(dataset).__name__!r})"
    )


class BaseEngine:
    """Template engine: Step-1 retrieval, Step-2 computation, stats.

    Parameters
    ----------
    dataset:
        The uncertain database (pdf source for Step 2).
    retriever:
        Optional Step-1 index (PV-index, R-tree, UV-index, or anything
        implementing ``candidates``).  ``None`` falls back to the exact
        brute-force min-max filter.
    secondary:
        Optional secondary index (extensible hash table); when given,
        each candidate's pdf fetch is routed through it so Step-2 I/O
        is charged.
    result_cache_size:
        When positive, completed results are kept in an LRU cache keyed
        by the exact query and parameters; repeat queries are answered
        without touching either step.
    memo_radius:
        When positive, ``query_batch`` reuses one Step-1 candidate set
        for all queries falling in the same grid cell of this side
        length — an opt-in approximation for spatially local serving
        workloads (see :class:`~repro.engine.cache.CandidateMemo`).

    Results are shared, not copied: cache hits and batch-deduplicated
    positions return the *same* result object.  They are also
    *enforced* read-only — probability/decision mappings are
    :class:`~repro.engine.frozen.FrozenDict`, id lists are tuples, and
    stored query arrays are non-writeable — so sharing cannot be
    corrupted by a caller (copy with ``dict(...)``/``list(...)`` to
    modify).
    """

    def __init__(
        self,
        dataset: UncertainDataset,
        retriever: Retriever | None = None,
        *,
        secondary: Any = None,
        result_cache_size: int = 0,
        memo_radius: float = 0.0,
    ) -> None:
        dataset, retriever = normalize_engine_args(
            type(self).__name__, dataset, retriever
        )
        self.dataset = dataset
        self.retriever = resolve_retriever(dataset, retriever)
        #: True when the caller supplied an index (vs the fallback).
        self.has_index = retriever is not None
        self.secondary = secondary
        self.stats = ExecutionStats()
        self.memo_radius = float(memo_radius)
        self.result_cache: LRUCache | None = (
            LRUCache(result_cache_size) if result_cache_size else None
        )
        #: Step-1 candidate memo, persistent across batches (flushed on
        #: dataset mutation by the epoch check).
        self._memo: CandidateMemo | None = (
            CandidateMemo(self.memo_radius)
            if self.memo_radius > 0
            else None
        )
        self._pagers = discover_pagers(self.retriever, secondary)
        self._dataset_epoch = getattr(dataset, "epoch", 0)
        #: Serializes query execution and stats bracketing on this
        #: engine so concurrent callers (the serving scheduler's worker
        #: threads) never interleave mid-query.  Re-entrant because the
        #: measured entry points wrap ``query``/``query_batch``, which
        #: re-acquire it inside ``_run``/``_run_batch`` — and because
        #: ``_sync_epoch`` may run under an outer bracket.
        self._lock = make_rlock("engine.lock")
        # A retriever built before mutations that bypassed it is stale
        # from the start — catch that here, not just on later drift.
        self._drop_stale_retriever()

    # ------------------------------------------------------------------
    # Compatibility: the seed engines exposed their timing as ``times``.
    # ------------------------------------------------------------------
    @property
    def times(self) -> ExecutionStats:
        """Alias of :attr:`stats` (the seed engines' attribute name)."""
        return self.stats

    # ------------------------------------------------------------------
    # Hooks (subclasses override what differs from the default)
    # ------------------------------------------------------------------
    def _prepare(self, query: Any, params: dict) -> Any:
        """Normalize/validate one raw query before execution."""
        return np.asarray(query, dtype=np.float64)

    def _query_key(self, q: Any, params: dict) -> Hashable:
        """A hashable identity of (query, params) for cache and dedup."""
        return (q.tobytes(), tuple(sorted(params.items())))

    def _memo_point(self, q: Any) -> np.ndarray | None:
        """The point keying Step-1 memoization (``None`` disables it)."""
        if isinstance(q, np.ndarray) and q.ndim == 1:
            return q
        return None

    def _retrieve(self, q: Any, params: dict) -> list[int]:
        """Step 1: candidate ids for one prepared query."""
        return self.retriever.candidates(q)

    def _compute(self, q: Any, ids: list[int], params: dict) -> Any:
        """Step 2: the engine-specific result for one query."""
        raise NotImplementedError

    def _retrieve_batch(
        self, qs: list[Any], params: dict
    ) -> list[list[int]]:
        """Step 1 for a block of prepared queries.

        The default vectorizes through the retriever's
        ``candidates_batch`` when Step 1 is the plain retriever call
        and no memo is requested, and otherwise loops :meth:`_retrieve`
        under the candidate memo (a positive ``memo_radius`` opts into
        grid-cell candidate reuse, which also lets the grouped Step-2
        kernels share work — so it must win over the fast path).  The
        memo persists across batches and is flushed whenever the
        dataset epoch moves.
        """
        if self.memo_radius <= 0 and (
            type(self)._retrieve is BaseEngine._retrieve
        ):
            batch = getattr(self.retriever, "candidates_batch", None)
            if batch is not None and all(
                isinstance(q, np.ndarray) and q.ndim == 1 for q in qs
            ):
                return batch(np.stack(qs))
        memo = self._memo
        out: list[list[int]] = []
        for q in qs:
            point = self._memo_point(q) if memo is not None else None
            if point is not None:
                cached = memo.lookup(point)
                if cached is not None:
                    self.stats.memo_hits += 1
                    out.append(cached)
                    continue
            ids = self._retrieve(q, params)
            if point is not None:
                memo.store(point, ids)
            out.append(ids)
        return out

    def _compute_batch(
        self, qs: list[Any], ids_list: list[list[int]], params: dict
    ) -> list[Any]:
        """Step 2 for a block of queries (default: per-query loop)."""
        return [
            self._compute(q, ids, params)
            for q, ids in zip(qs, ids_list)
        ]

    # ------------------------------------------------------------------
    # Epoch-aware invalidation
    # ------------------------------------------------------------------
    def _sync_epoch(self) -> None:
        """Flush derived state when the dataset has mutated.

        Called on every query entry point.  On epoch drift the result
        cache and candidate memo are cleared (their entries describe the
        pre-mutation database).  A retriever that advertises the epoch
        it was maintained at (``dataset_epoch``) and lags the live
        epoch was bypassed by the mutation — e.g. ``dataset.insert``
        was called directly instead of ``index.insert`` — and is
        replaced by the exact brute-force fallback so no stale Step-1
        answer is ever served.  Retrievers without the attribute are
        trusted (backward compatibility for custom Step-1 sources).
        """
        epoch = getattr(self.dataset, "epoch", None)
        if epoch is None or epoch == self._dataset_epoch:
            return
        self._dataset_epoch = epoch
        if self.result_cache is not None:
            self.result_cache.clear()
        if self._memo is not None:
            self._memo.clear()
        self.stats.invalidations += 1
        self._drop_stale_retriever()

    def _drop_stale_retriever(self) -> None:
        """Swap in the brute-force fallback if the retriever is stale.

        The secondary index travels with the retriever it came from
        (e.g. the PV-index's hash table, maintained by ``pv.insert``):
        once the retriever is distrusted, so are its pdf records —
        fetching a post-mutation object through it would fail.
        """
        epoch = getattr(self.dataset, "epoch", None)
        retriever_epoch = getattr(self.retriever, "dataset_epoch", None)
        if (
            epoch is None
            or retriever_epoch is None
            or retriever_epoch == epoch
        ):
            return
        self.retriever = resolve_retriever(self.dataset, None)
        self.has_index = False
        self.secondary = None
        self._pagers = discover_pagers(self.retriever)
        self.stats.retriever_fallbacks += 1

    # ------------------------------------------------------------------
    # Template methods
    # ------------------------------------------------------------------
    def query_measured(
        self, query: Any, **params: Any
    ) -> tuple[Any, ExecutionStats]:
        """One query plus the stats delta it produced, atomically.

        ``stats.capture()`` / ``delta_since`` bracketing around a bare
        ``query`` call is only correct single-threaded — a concurrent
        query on the same engine lands its counters inside the bracket.
        This entry point takes the engine lock around the whole
        bracket, so the serving layer (and :class:`repro.api.Database`)
        get per-execution deltas that are exact under concurrency.
        """
        with self._lock:
            before = self.stats.capture()
            result = self.query(query, **params)  # type: ignore[attr-defined]
            return result, self.stats.delta_since(before)

    def query_batch_measured(
        self, queries: Sequence[Any], **params: Any
    ) -> tuple[list, ExecutionStats]:
        """Batch variant of :meth:`query_measured` (one shared delta)."""
        with self._lock:
            before = self.stats.capture()
            results = self.query_batch(  # type: ignore[attr-defined]
                queries, **params
            )
            return results, self.stats.delta_since(before)

    def _run(self, query: Any, params: dict) -> Any:
        """Answer one query: cache → OR (timed) → PC (timed)."""
        with self._lock:
            return self._run_locked(query, params)

    def _run_locked(self, query: Any, params: dict) -> Any:
        self._sync_epoch()
        q = self._prepare(query, params)
        key: Hashable | None = None
        if self.result_cache is not None:
            key = self._query_key(q, params)
            hit = self.result_cache.get(key, _MISS)
            if hit is not _MISS:
                self.stats.cache_hits += 1
                self.stats.queries += 1
                return hit

        before = self._io_snapshot()
        t0 = time.perf_counter()
        ids = self._retrieve(q, params)
        t1 = time.perf_counter()
        mid = self._io_snapshot()
        self._charge_secondary(ids)
        result = self._compute(q, ids, params)
        t2 = time.perf_counter()
        after = self._io_snapshot()

        self.stats.add_or(t1 - t0, _io_delta(before, mid))
        self.stats.add_pc(t2 - t1, _io_delta(mid, after))
        self.stats.queries += 1
        if key is not None:
            self.result_cache.put(key, result)
        return result

    def _run_batch(self, queries: Sequence[Any], params: dict) -> list:
        """Answer a block of queries with dedup, memo, and batched PC."""
        with self._lock:
            return self._run_batch_locked(queries, params)

    def _run_batch_locked(
        self, queries: Sequence[Any], params: dict
    ) -> list:
        self._sync_epoch()
        prepared = [self._prepare(q, params) for q in queries]
        n = len(prepared)
        results: list[Any] = [None] * n

        # Resolve LRU hits and collapse exact duplicates: each distinct
        # (query, params) key is executed once and fanned back out.
        # Counters are applied only once the batch completes, so a
        # query that raises mid-batch does not inflate the per-query
        # denominators (same contract as the single-query path).
        groups: dict[Hashable, list[int]] = {}
        cache_hits = 0
        for i, q in enumerate(prepared):
            key = self._query_key(q, params)
            if self.result_cache is not None:
                hit = self.result_cache.get(key, _MISS)
                if hit is not _MISS:
                    results[i] = hit
                    cache_hits += 1
                    continue
            groups.setdefault(key, []).append(i)
        if not groups:
            self.stats.batches += 1
            self.stats.queries += n
            self.stats.cache_hits += cache_hits
            return results

        reps = [members[0] for members in groups.values()]
        rep_qs = [prepared[i] for i in reps]

        before = self._io_snapshot()
        t0 = time.perf_counter()
        ids_list = self._retrieve_batch(rep_qs, params)
        t1 = time.perf_counter()
        mid = self._io_snapshot()
        for ids in ids_list:
            self._charge_secondary(ids)
        rep_results = self._compute_batch(rep_qs, ids_list, params)
        t2 = time.perf_counter()
        after = self._io_snapshot()

        for (key, members), result in zip(
            groups.items(), rep_results
        ):
            for i in members:
                results[i] = result
            if self.result_cache is not None:
                self.result_cache.put(key, result)

        self.stats.batches += 1
        self.stats.queries += n
        self.stats.cache_hits += cache_hits
        self.stats.dedup_hits += sum(
            len(members) - 1 for members in groups.values()
        )
        self.stats.add_or(t1 - t0, _io_delta(before, mid))
        self.stats.add_pc(t2 - t1, _io_delta(mid, after))
        return results

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _charge_secondary(self, ids: list[int]) -> None:
        """Route each candidate's pdf fetch through the secondary index."""
        if self.secondary is not None:
            for oid in ids:
                self.secondary.get(oid)

    def _io_snapshot(self) -> list[IOStats]:
        return [pager.stats.snapshot() for pager in self._pagers]

    def __repr__(self) -> str:
        retriever = type(self.retriever).__name__
        return (
            f"{type(self).__name__}(n={len(self.dataset)}, "
            f"retriever={retriever}, queries={self.stats.queries})"
        )


def _io_delta(
    before: list[IOStats], after: list[IOStats]
) -> IOStats:
    """Summed per-pager traffic between two snapshot lists."""
    out = IOStats()
    for b, a in zip(before, after):
        d = a.delta(b)
        out.reads += d.reads
        out.writes += d.writes
    return out
