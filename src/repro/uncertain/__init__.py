"""Uncertain-data model: objects, discrete pdfs, datasets, generators."""

from .dataset import UncertainDataset, check_index_in_sync
from .generators import (
    clustered_dataset,
    simulate_airports,
    simulate_roads,
    simulate_rrlines,
    synthetic_dataset,
)
from .objects import UncertainObject
from .pdfs import gaussian_pdf, point_pdf, uniform_pdf
from .store import (
    GatherBlock,
    InstanceStore,
    MappedSnapshot,
    SharedInstanceStore,
    SharedStoreHandle,
    attach_file,
    attach_shared,
)

__all__ = [
    "UncertainObject",
    "UncertainDataset",
    "check_index_in_sync",
    "InstanceStore",
    "GatherBlock",
    "SharedInstanceStore",
    "SharedStoreHandle",
    "attach_shared",
    "MappedSnapshot",
    "attach_file",
    "uniform_pdf",
    "gaussian_pdf",
    "point_pdf",
    "synthetic_dataset",
    "clustered_dataset",
    "simulate_roads",
    "simulate_rrlines",
    "simulate_airports",
]
