"""Packed instance storage — the Step-2 kernel's data layout.

Step 2 (probability computation) touches every candidate's discrete
pdf.  Reading those through per-object ``UncertainObject.instances``
arrays costs a dict lookup, an attribute fetch, and a separate numpy
dispatch per object per query — the Python-level overhead that made PC
wall-clock swamp OR in the paper's Figure 9(b) split.  The
:class:`InstanceStore` packs every object's instances into one
contiguous ``(total_samples, d)`` matrix with an offsets table (the
classic variable-length-rows layout), so a whole candidate set is
gathered with one fancy-index operation and the kernel runs on a dense
``(n, m, d)`` block.

The store is **epoch-aware** and **incrementally maintained**: the
owning :class:`~repro.uncertain.dataset.UncertainDataset` applies every
:meth:`insert` / :meth:`delete` to it in the same mutation (appends are
amortized O(m) via capacity doubling; deletes compact the packed
arrays), and the store records the epoch it is valid for.  A store
built standalone against a dataset that has since mutated refuses to
gather — the same ``check_index_in_sync`` contract the maintained
Step-1 indexes follow.
"""

from __future__ import annotations

import os
import secrets
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from .objects import UncertainObject

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .dataset import UncertainDataset

__all__ = [
    "GatherBlock",
    "InstanceStore",
    "MappedSnapshot",
    "SharedInstanceStore",
    "SharedStoreHandle",
    "attach_file",
    "attach_shared",
]

#: First header word of every shared-store segment; an attach that
#: does not find it is pointed at something that is not ours.
_SHM_MAGIC = 0x5245_5052_4F53_544F  # "REPROSTO"
#: Bump when the packed segment layout changes; attaches refuse a
#: mismatch instead of misreading bytes.
_SHM_LAYOUT_VERSION = 1
#: int64 header words: magic, version, epoch, n, size, dims, 2 spare.
_SHM_HEADER_WORDS = 8


@dataclass(frozen=True)
class GatherBlock:
    """One candidate set's pdfs as dense padded arrays.

    Objects may carry different instance counts; rows are padded to the
    longest by replicating the object's last instance with **zero
    weight**, which is invisible to every downstream computation
    (padded entries add nothing to cumulative weights or final dot
    products).  ``lengths`` records the true per-object counts.
    """

    #: ``(n, m_max, d)`` padded instance coordinates.
    instances: np.ndarray
    #: ``(n, m_max)`` instance weights; exactly 0.0 on padding.
    weights: np.ndarray
    #: ``(n,)`` true instance counts per object.
    lengths: np.ndarray

    @property
    def uniform(self) -> bool:
        """True when no padding was needed (all objects share one m)."""
        return bool(
            (self.lengths == self.instances.shape[1]).all()
        )


class InstanceStore:
    """Contiguous instance matrix + offsets over one dataset.

    Layout (the ``querytorque`` packed-rows idiom):

    * ``instances`` — ``(total_samples, d)`` float64, all objects'
      pdf sample points back to back in slot order;
    * ``weights`` — ``(total_samples,)`` float64, aligned;
    * ``offsets`` — ``(n_objects + 1,)`` int64, object ``s`` owns rows
      ``offsets[s]:offsets[s + 1]``.

    Appends amortize to O(m) through capacity doubling; deletes shift
    the tail down in one slice move (O(total) worst case, same as any
    compacting array).  ``epoch`` stamps the dataset mutation epoch the
    contents reflect.
    """

    def __init__(
        self,
        dataset: "UncertainDataset",
        *,
        _owned: bool = False,
    ) -> None:
        self._dataset = dataset
        #: True when the dataset itself maintains this store through
        #: its ``insert`` / ``delete`` (then it can never go stale).
        self._owned = _owned
        self._rebuild()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        """Pack every object from scratch (build and resync path)."""
        ds = self._dataset
        objs = list(ds)
        counts = np.fromiter(
            (o.n_instances for o in objs), dtype=np.int64, count=len(objs)
        )
        total = int(counts.sum())
        self._n = len(objs)
        self._size = total
        self._instances = np.empty((total, ds.dims), dtype=np.float64)
        self._weights = np.empty(total, dtype=np.float64)
        self._offsets = np.zeros(self._n + 1, dtype=np.int64)
        np.cumsum(counts, out=self._offsets[1:])
        self._slot_of: dict[int, int] = {}
        for slot, obj in enumerate(objs):
            start, end = self._offsets[slot], self._offsets[slot + 1]
            self._instances[start:end] = obj.instances
            self._weights[start:end] = obj.weights
            self._slot_of[obj.oid] = slot
        self._oids: list[int] = [o.oid for o in objs]
        self.epoch = ds.epoch

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    @property
    def total_samples(self) -> int:
        """Total packed instance rows across all objects."""
        return self._size

    @property
    def dims(self) -> int:
        return self._instances.shape[1]

    @property
    def instances(self) -> np.ndarray:
        """The live ``(total_samples, d)`` packed matrix (read view)."""
        return self._instances[: self._size]

    @property
    def weights(self) -> np.ndarray:
        """The live ``(total_samples,)`` aligned weights (read view)."""
        return self._weights[: self._size]

    @property
    def offsets(self) -> np.ndarray:
        """The live ``(n_objects + 1,)`` offsets table (read view)."""
        return self._offsets[: self._n + 1]

    def slot_of(self, oid: int) -> int:
        """Packed slot of an object (its row range in ``offsets``)."""
        return self._slot_of[oid]

    def nbytes(self) -> int:
        """Allocated bytes of the packed arrays (capacity included)."""
        return (
            self._instances.nbytes
            + self._weights.nbytes
            + self._offsets.nbytes
        )

    # ------------------------------------------------------------------
    # Incremental maintenance (called by UncertainDataset mutation)
    # ------------------------------------------------------------------
    def apply_insert(self, obj: UncertainObject, epoch: int) -> None:
        """Append one object's rows; O(m) amortized via doubling."""
        m = obj.n_instances
        need = self._size + m
        if need > len(self._weights):
            cap = max(need, 2 * len(self._weights), 64)
            grown_i = np.empty((cap, self.dims), dtype=np.float64)
            grown_i[: self._size] = self._instances[: self._size]
            grown_w = np.empty(cap, dtype=np.float64)
            grown_w[: self._size] = self._weights[: self._size]
            self._instances, self._weights = grown_i, grown_w
        self._instances[self._size : need] = obj.instances
        self._weights[self._size : need] = obj.weights
        if self._n + 2 > len(self._offsets):
            grown_o = np.zeros(
                max(self._n + 2, 2 * len(self._offsets)), dtype=np.int64
            )
            grown_o[: self._n + 1] = self._offsets[: self._n + 1]
            self._offsets = grown_o
        self._offsets[self._n + 1] = need
        self._slot_of[obj.oid] = self._n
        self._oids.append(obj.oid)
        self._n += 1
        self._size = need
        self.epoch = epoch

    def apply_delete(self, oid: int, epoch: int) -> None:
        """Remove one object's rows, shifting the tail down once."""
        slot = self._slot_of.pop(oid)
        start = int(self._offsets[slot])
        end = int(self._offsets[slot + 1])
        m = end - start
        self._instances[start : self._size - m] = self._instances[
            end : self._size
        ]
        self._weights[start : self._size - m] = self._weights[
            end : self._size
        ]
        self._offsets[slot : self._n] = self._offsets[slot + 1 : self._n + 1]
        self._offsets[slot : self._n] -= m
        del self._oids[slot]
        for moved in self._oids[slot:]:
            self._slot_of[moved] -= 1
        self._n -= 1
        self._size -= m
        self.epoch = epoch

    # ------------------------------------------------------------------
    # The kernel's entry point
    # ------------------------------------------------------------------
    def gather(self, ids: Sequence[int]) -> GatherBlock:
        """Dense padded ``(n, m_max, d)`` block for a candidate set.

        One fancy-index into the packed matrix replaces per-object
        attribute walks.  Raises when the store no longer reflects the
        dataset (mutated without maintenance) — stale pdfs must never
        feed a probability computation.
        """
        from .dataset import check_index_in_sync

        if not self._owned:
            check_index_in_sync(self.epoch, self._dataset, "InstanceStore")
        slots = np.fromiter(
            (self._slot_of[oid] for oid in ids),
            dtype=np.int64,
            count=len(ids),
        )
        starts = self._offsets[slots]
        lengths = self._offsets[slots + 1] - starts
        m_max = int(lengths.max()) if len(lengths) else 0
        # Padding replicates each object's last row; its weight is
        # zeroed below, making the pad invisible to every consumer.
        span = np.arange(m_max, dtype=np.int64)
        rows = starts[:, None] + np.minimum(span[None, :], lengths[:, None] - 1)
        block = self._instances[rows]
        weights = self._weights[rows]
        if not bool((lengths == m_max).all()):
            weights = weights * (span[None, :] < lengths[:, None])
        return GatherBlock(
            instances=block, weights=weights, lengths=lengths
        )

    def matches_dataset(self) -> bool:
        """Exact content check against a scratch rebuild (test hook)."""
        ds = self._dataset
        if self._n != len(ds) or self._oids != ds.ids:
            return False
        for oid in ds.ids:
            slot = self._slot_of[oid]
            start, end = self._offsets[slot], self._offsets[slot + 1]
            obj = ds[oid]
            if end - start != obj.n_instances:
                return False
            if not (
                np.array_equal(self._instances[start:end], obj.instances)
                and np.array_equal(self._weights[start:end], obj.weights)
            ):
                return False
        return True

    def __repr__(self) -> str:
        return (
            f"InstanceStore(n={self._n}, total={self._size}, "
            f"dims={self.dims}, epoch={self.epoch})"
        )

    # ------------------------------------------------------------------
    # Shared-memory export (the process-pool zero-copy path)
    # ------------------------------------------------------------------
    def export_shared(self) -> "SharedStoreHandle":
        """Publish the packed dataset into a shared-memory segment.

        One ``multiprocessing.shared_memory`` segment carries the whole
        packed view of the dataset — ids, offsets, domain, region
        corners, instance weights, and the ``(total_samples, d)``
        instance matrix — so a worker process attaches by *name* and
        maps every array zero-copy; no instance data is ever pickled.
        The segment is stamped with the dataset epoch; attaching with a
        handle minted for a different epoch is refused, so a worker can
        never silently serve a stale snapshot.

        The caller owns the segment: :meth:`SharedStoreHandle.unlink`
        releases it once every worker has detached (workers only ever
        close their mapping).
        """
        ds = self._dataset
        if self.epoch != ds.epoch:  # pragma: no cover - owned stores
            from .dataset import check_index_in_sync

            check_index_in_sync(self.epoch, ds, "InstanceStore")
        from multiprocessing import shared_memory

        n, size, d = self._n, self._size, self.dims
        layout = _segment_layout(n, size, d)
        shm = shared_memory.SharedMemory(
            create=True,
            size=layout["total_bytes"],
            name=f"repro_{os.getpid():x}_{secrets.token_hex(4)}",
        )
        try:
            self._fill_segment(shm.buf)
            # Drop our local mapping of the buffer; the handle names
            # the segment, which lives until explicitly unlinked.
            shm.close()
        except BaseException:  # pragma: no cover - allocation failures
            shm.close()
            shm.unlink()
            raise
        return SharedStoreHandle(
            name=shm.name, epoch=self.epoch, n=n, size=size, dims=d
        )

    def _fill_segment(self, buf) -> None:
        """Stamp the packed dataset into a segment-layout buffer.

        One writer for both export targets: the shared-memory segment
        (:meth:`export_shared`) and the on-disk snapshot file
        (:meth:`export_file`) carry byte-identical layouts, so the
        attach paths share their validation too.
        """
        ds = self._dataset
        ids, los, his = ds.packed_regions()
        arrays = _segment_arrays(buf, self._n, self._size, self.dims)
        arrays["header"][:] = (
            _SHM_MAGIC,
            _SHM_LAYOUT_VERSION,
            self.epoch,
            self._n,
            self._size,
            self.dims,
            0,
            0,
        )
        arrays["oids"][:] = ids
        arrays["offsets"][:] = self.offsets
        arrays["domain"][0] = ds.domain.lo
        arrays["domain"][1] = ds.domain.hi
        arrays["los"][:] = los
        arrays["his"][:] = his
        arrays["weights"][:] = self.weights
        arrays["instances"][:] = self.instances

    def export_file(self, path: str | os.PathLike) -> int:
        """Snapshot the packed dataset to ``path`` (the durable twin of
        :meth:`export_shared`).

        The file carries the same header layout the shared-memory
        export stamps — magic, layout version, epoch, n, size, dims —
        followed by the same packed blocks, so :func:`attach_file`
        memory-maps it zero-copy.  The write is atomic and durable:
        bytes land in a temporary sibling which is fsynced, renamed
        over ``path``, and the directory entry fsynced — a crash
        mid-export leaves the previous snapshot intact.

        Returns the dataset mutation epoch the snapshot captures.
        """
        ds = self._dataset
        if self.epoch != ds.epoch:  # pragma: no cover - owned stores
            from .dataset import check_index_in_sync

            check_index_in_sync(self.epoch, ds, "InstanceStore")
        path = os.fspath(path)
        layout = _segment_layout(self._n, self._size, self.dims)
        tmp = f"{path}.tmp.{os.getpid()}"
        mm = np.memmap(
            tmp, dtype=np.uint8, mode="w+",
            shape=(layout["total_bytes"],),
        )
        try:
            self._fill_segment(mm)
            mm.flush()
        finally:
            del mm
        fd = os.open(tmp, os.O_RDWR)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, path)
        dirfd = os.open(os.path.dirname(path) or ".", os.O_RDONLY)
        try:
            os.fsync(dirfd)
        finally:
            os.close(dirfd)
        return self.epoch


@dataclass(frozen=True)
class SharedStoreHandle:
    """A by-name reference to one exported shared-store segment.

    Small and picklable — this is the only thing that crosses the
    process boundary; the data stays in the segment.  ``epoch`` is the
    dataset mutation epoch the segment snapshots (also stamped inside
    the segment header; :func:`attach_shared` cross-checks the two).
    """

    name: str
    epoch: int
    n: int
    size: int
    dims: int

    def unlink(self) -> None:
        """Release the segment (owner side; idempotent)."""
        from multiprocessing import shared_memory

        try:
            shm = shared_memory.SharedMemory(name=self.name)
        except FileNotFoundError:
            # Already gone — still clear the creation-time tracker
            # entry so exit-time cleanup does not warn about it.
            _untrack_name(self.name)
            return
        shm.close()
        try:
            # ``unlink()`` also unregisters the name from the resource
            # tracker, balancing the registration this re-open just
            # made (the creation-time entry is the same set member).
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - racing unlink
            pass


def _segment_layout(n: int, size: int, d: int) -> dict:
    """Byte offsets of each packed array inside a segment."""
    offsets = {}
    cursor = 0

    def block(name: str, count: int, itemsize: int) -> None:
        nonlocal cursor
        offsets[name] = cursor
        cursor += count * itemsize

    block("header", _SHM_HEADER_WORDS, 8)
    block("oids", n, 8)
    block("offsets", n + 1, 8)
    block("domain", 2 * d, 8)
    block("los", n * d, 8)
    block("his", n * d, 8)
    block("weights", size, 8)
    block("instances", size * d, 8)
    offsets["total_bytes"] = max(cursor, 1)
    return offsets


def _segment_arrays(buf, n: int, size: int, d: int) -> dict:
    """Numpy views over a segment buffer, keyed like the layout."""
    layout = _segment_layout(n, size, d)

    def view(name: str, count: int, dtype, shape) -> np.ndarray:
        arr = np.frombuffer(
            buf, dtype=dtype, count=count, offset=layout[name]
        )
        return arr.reshape(shape)

    return {
        "header": view("header", _SHM_HEADER_WORDS, np.int64, (-1,)),
        "oids": view("oids", n, np.int64, (n,)),
        "offsets": view("offsets", n + 1, np.int64, (n + 1,)),
        "domain": view("domain", 2 * d, np.float64, (2, d)),
        "los": view("los", n * d, np.float64, (n, d)),
        "his": view("his", n * d, np.float64, (n, d)),
        "weights": view("weights", size, np.float64, (size,)),
        "instances": view("instances", size * d, np.float64, (size, d)),
    }


def _untrack(shm) -> None:
    """Unregister a segment from this process's resource tracker.

    On POSIX (Python <= 3.12) every ``SharedMemory`` constructor call
    registers the name — including plain attaches — and the tracker
    unlinks everything it knows at process exit.  A worker that merely
    attached must not take the parent's live segment down with it, so
    attach (and the owner's unlink helper, which re-opens by name)
    deregisters immediately.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    # Defensive: the tracker is private API and has moved before.
    except Exception:  # pragma: no cover  # noqa: BLE001
        pass


def _untrack_name(name: str) -> None:
    """Best-effort tracker cleanup for a segment known only by name."""
    try:
        from multiprocessing import resource_tracker

        tracked = name if name.startswith("/") else "/" + name
        resource_tracker.unregister(tracked, "shared_memory")
    # Defensive: the tracker is private API and has moved before.
    except Exception:  # pragma: no cover  # noqa: BLE001
        pass


class SharedInstanceStore(InstanceStore):
    """A read-only :class:`InstanceStore` over an attached segment.

    Serves :meth:`InstanceStore.gather` (and the packed-array views)
    straight from shared memory.  Mutation is refused — worker
    processes observe mutations through pool-wide fences that attach a
    fresh segment, never by editing a live one.
    """

    def __init__(self, view: "SharedStoreView") -> None:
        # Deliberately no super().__init__ — there is nothing to pack;
        # every array is a read-only view into the attached segment.
        self._view = view
        self._dataset = None  # installed by UncertainDataset.adopt
        self._owned = True
        self._n = view.handle.n
        self._size = view.handle.size
        self._instances = view.instances
        self._weights = view.weights
        self._offsets = view.offsets
        self._oids = [int(oid) for oid in view.oids]
        self._slot_of = {oid: slot for slot, oid in enumerate(self._oids)}
        self.epoch = view.handle.epoch

    @property
    def dims(self) -> int:
        return self._view.handle.dims

    def apply_insert(self, obj: UncertainObject, epoch: int) -> None:
        raise RuntimeError(
            "shared instance store is read-only; mutations reach "
            "workers through a pool fence, not in place"
        )

    def apply_delete(self, oid: int, epoch: int) -> None:
        raise RuntimeError(
            "shared instance store is read-only; mutations reach "
            "workers through a pool fence, not in place"
        )

    def close(self) -> None:
        """Detach from the segment (drops every view)."""
        self._view.close()

    def __repr__(self) -> str:
        return (
            f"SharedInstanceStore(n={self._n}, total={self._size}, "
            f"dims={self.dims}, epoch={self.epoch}, "
            f"segment={self._view.handle.name!r})"
        )


class SharedStoreView:
    """An attached segment: read-only numpy views + the mapping."""

    def __init__(self, handle: SharedStoreHandle, shm) -> None:
        self.handle = handle
        self._shm = shm
        arrays = _segment_arrays(
            shm.buf, handle.n, handle.size, handle.dims
        )
        for name, arr in arrays.items():
            arr.setflags(write=False)
            setattr(self, name, arr)
        self._closed = False

    def close(self) -> None:
        """Drop the views and unmap the segment (never unlinks)."""
        if self._closed:
            return
        self._closed = True
        for name in (
            "header", "oids", "offsets", "domain",
            "los", "his", "weights", "instances",
        ):
            if hasattr(self, name):
                delattr(self, name)
        try:
            self._shm.close()
        except BufferError:
            # Reconstructed objects/engines form reference cycles that
            # keep array views alive past the fence; collect and retry.
            # A still-pinned mapping is merely deferred to process
            # exit — the segment itself is the owner's to unlink.
            import gc

            gc.collect()
            try:
                self._shm.close()
            except BufferError:  # pragma: no cover - views still live
                pass

    def build_dataset(self) -> "UncertainDataset":
        """Reconstruct the dataset zero-copy from the shared arrays.

        Every object's region corners, instances, and weights are
        slices of the mapped segment (validated, never copied); the
        dataset adopts a :class:`SharedInstanceStore` over the same
        views and reports the segment's epoch, so engines built on it
        plan and stamp results exactly like the parent at that epoch.
        """
        from ..geometry import Rect
        from .dataset import UncertainDataset

        objects = []
        for slot in range(self.handle.n):
            start = int(self.offsets[slot])
            end = int(self.offsets[slot + 1])
            objects.append(
                UncertainObject(
                    oid=int(self.oids[slot]),
                    region=Rect(self.los[slot], self.his[slot]),
                    instances=self.instances[start:end],
                    weights=self.weights[start:end],
                )
            )
        domain = Rect(self.domain[0], self.domain[1])
        dataset = UncertainDataset(objects, domain=domain)
        dataset.adopt_shared_store(
            SharedInstanceStore(self), epoch=self.handle.epoch
        )
        return dataset


def attach_shared(handle: SharedStoreHandle) -> SharedStoreView:
    """Attach a worker-side view of an exported segment by name.

    Refuses anything that is not a current shared-store segment: wrong
    magic, unknown layout version, or an epoch stamp that differs from
    the handle's (a stale handle naming a reused segment).  The view
    is read-only; call :meth:`SharedStoreView.close` to detach.
    """
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=handle.name)
    _untrack(shm)
    header = np.frombuffer(
        shm.buf, dtype=np.int64, count=_SHM_HEADER_WORDS
    )
    magic, version, epoch, n, size, dims = (int(x) for x in header[:6])
    if magic != _SHM_MAGIC or version != _SHM_LAYOUT_VERSION:
        del header
        shm.close()
        raise ValueError(
            f"segment {handle.name!r} is not a shared instance store "
            f"(magic/layout mismatch)"
        )
    if (epoch, n, size, dims) != (
        handle.epoch, handle.n, handle.size, handle.dims
    ):
        del header
        shm.close()
        raise ValueError(
            f"stale shared-store attach: handle describes epoch "
            f"{handle.epoch} ({handle.n} objects) but segment "
            f"{handle.name!r} holds epoch {epoch} ({n} objects)"
        )
    del header
    return SharedStoreView(handle, shm)


class MappedSnapshot:
    """A memory-mapped on-disk snapshot (see :meth:`InstanceStore.
    export_file`): read-only numpy views over the packed blocks.

    The durable twin of :class:`SharedStoreView` — same header, same
    layout, but backed by a file instead of a shared-memory segment.
    Objects built from it hold zero-copy views into the mapping, which
    stays alive as long as any view references it (numpy base chain).
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)
        mm = np.memmap(self.path, dtype=np.uint8, mode="r")
        if mm.size < _SHM_HEADER_WORDS * 8:
            raise ValueError(
                f"snapshot {self.path!r} is too short to hold a header"
            )
        header = np.frombuffer(mm, dtype=np.int64, count=_SHM_HEADER_WORDS)
        magic, version, epoch, n, size, dims = (int(x) for x in header[:6])
        if magic != _SHM_MAGIC or version != _SHM_LAYOUT_VERSION:
            raise ValueError(
                f"file {self.path!r} is not an instance-store snapshot "
                f"(magic/layout mismatch)"
            )
        layout = _segment_layout(n, size, dims)
        if mm.size < layout["total_bytes"]:
            raise ValueError(
                f"snapshot {self.path!r} is truncated: header promises "
                f"{layout['total_bytes']} bytes, file holds {mm.size}"
            )
        self.epoch, self.n, self.size, self.dims = epoch, n, size, dims
        self._layout = layout
        self._mm = mm
        arrays = _segment_arrays(mm, n, size, dims)
        self.oids = arrays["oids"]
        self.offsets = arrays["offsets"]
        self.domain = arrays["domain"]
        self.los = arrays["los"]
        self.his = arrays["his"]
        self.weights = arrays["weights"]
        self.instances = arrays["instances"]
        self._slot_of = {
            int(oid): slot for slot, oid in enumerate(self.oids)
        }

    # ------------------------------------------------------------------
    def build_objects(self) -> list[UncertainObject]:
        """Reconstruct every object zero-copy over the mapping."""
        from ..geometry import Rect

        objects = []
        for slot in range(self.n):
            start = int(self.offsets[slot])
            end = int(self.offsets[slot + 1])
            objects.append(
                UncertainObject(
                    oid=int(self.oids[slot]),
                    region=Rect(self.los[slot], self.his[slot]),
                    instances=self.instances[start:end],
                    weights=self.weights[start:end],
                )
            )
        return objects

    def build_dataset(self) -> "UncertainDataset":
        """A mutable dataset at the snapshot's epoch.

        Unlike :meth:`SharedStoreView.build_dataset` no read-only store
        is adopted: the dataset packs its own (mutable, incrementally
        maintained) :class:`InstanceStore` lazily, so WAL replay and
        later mutations apply normally.  Object pdfs remain zero-copy
        views of the mapping.
        """
        from ..geometry import Rect
        from .dataset import UncertainDataset

        return UncertainDataset(
            self.build_objects(),
            domain=Rect(self.domain[0], self.domain[1]),
            epoch=self.epoch,
        )

    # ------------------------------------------------------------------
    def read_pages(self, ids: Sequence[int], page_size: int = 4096) -> int:
        """Distinct file pages backing a candidate set's pdfs.

        The *measured* counterpart of the simulated pager counters: how
        many distinct ``page_size``-byte pages of the snapshot file a
        Step-2 gather of these objects' instance rows and weights
        actually touches (each page counted once per call, as a
        buffer pool would).
        """
        pages: set[int] = set()
        for oid in ids:
            slot = self._slot_of[int(oid)]
            start = int(self.offsets[slot])
            end = int(self.offsets[slot + 1])
            for base, itemsize in (
                (self._layout["instances"], self.dims * 8),
                (self._layout["weights"], 8),
            ):
                lo = base + start * itemsize
                hi = base + end * itemsize
                pages.update(range(lo // page_size, (hi - 1) // page_size + 1))
        return len(pages)

    def close(self) -> None:
        """Drop this snapshot's own references to the mapping.

        The underlying mmap survives until the last view (e.g. an
        object's instance array) is garbage-collected; closing is
        bookkeeping, not invalidation.
        """
        for name in (
            "oids", "offsets", "domain", "los", "his",
            "weights", "instances",
        ):
            if hasattr(self, name):
                delattr(self, name)
        self._slot_of = {}
        self._mm = None

    def __repr__(self) -> str:
        return (
            f"MappedSnapshot(path={self.path!r}, epoch={self.epoch}, "
            f"n={self.n}, total={self.size}, dims={self.dims})"
        )


def attach_file(path: str | os.PathLike) -> MappedSnapshot:
    """Memory-map an :meth:`InstanceStore.export_file` snapshot.

    Refuses anything that is not a current snapshot: wrong magic,
    unknown layout version, or a file shorter than the header's
    promised payload (a torn write that escaped the atomic-rename
    discipline).
    """
    return MappedSnapshot(path)
