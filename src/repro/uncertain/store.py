"""Packed instance storage — the Step-2 kernel's data layout.

Step 2 (probability computation) touches every candidate's discrete
pdf.  Reading those through per-object ``UncertainObject.instances``
arrays costs a dict lookup, an attribute fetch, and a separate numpy
dispatch per object per query — the Python-level overhead that made PC
wall-clock swamp OR in the paper's Figure 9(b) split.  The
:class:`InstanceStore` packs every object's instances into one
contiguous ``(total_samples, d)`` matrix with an offsets table (the
classic variable-length-rows layout), so a whole candidate set is
gathered with one fancy-index operation and the kernel runs on a dense
``(n, m, d)`` block.

The store is **epoch-aware** and **incrementally maintained**: the
owning :class:`~repro.uncertain.dataset.UncertainDataset` applies every
:meth:`insert` / :meth:`delete` to it in the same mutation (appends are
amortized O(m) via capacity doubling; deletes compact the packed
arrays), and the store records the epoch it is valid for.  A store
built standalone against a dataset that has since mutated refuses to
gather — the same ``check_index_in_sync`` contract the maintained
Step-1 indexes follow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from .objects import UncertainObject

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .dataset import UncertainDataset

__all__ = ["GatherBlock", "InstanceStore"]


@dataclass(frozen=True)
class GatherBlock:
    """One candidate set's pdfs as dense padded arrays.

    Objects may carry different instance counts; rows are padded to the
    longest by replicating the object's last instance with **zero
    weight**, which is invisible to every downstream computation
    (padded entries add nothing to cumulative weights or final dot
    products).  ``lengths`` records the true per-object counts.
    """

    #: ``(n, m_max, d)`` padded instance coordinates.
    instances: np.ndarray
    #: ``(n, m_max)`` instance weights; exactly 0.0 on padding.
    weights: np.ndarray
    #: ``(n,)`` true instance counts per object.
    lengths: np.ndarray

    @property
    def uniform(self) -> bool:
        """True when no padding was needed (all objects share one m)."""
        return bool(
            (self.lengths == self.instances.shape[1]).all()
        )


class InstanceStore:
    """Contiguous instance matrix + offsets over one dataset.

    Layout (the ``querytorque`` packed-rows idiom):

    * ``instances`` — ``(total_samples, d)`` float64, all objects'
      pdf sample points back to back in slot order;
    * ``weights`` — ``(total_samples,)`` float64, aligned;
    * ``offsets`` — ``(n_objects + 1,)`` int64, object ``s`` owns rows
      ``offsets[s]:offsets[s + 1]``.

    Appends amortize to O(m) through capacity doubling; deletes shift
    the tail down in one slice move (O(total) worst case, same as any
    compacting array).  ``epoch`` stamps the dataset mutation epoch the
    contents reflect.
    """

    def __init__(
        self,
        dataset: "UncertainDataset",
        *,
        _owned: bool = False,
    ) -> None:
        self._dataset = dataset
        #: True when the dataset itself maintains this store through
        #: its ``insert`` / ``delete`` (then it can never go stale).
        self._owned = _owned
        self._rebuild()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        """Pack every object from scratch (build and resync path)."""
        ds = self._dataset
        objs = list(ds)
        counts = np.fromiter(
            (o.n_instances for o in objs), dtype=np.int64, count=len(objs)
        )
        total = int(counts.sum())
        self._n = len(objs)
        self._size = total
        self._instances = np.empty((total, ds.dims), dtype=np.float64)
        self._weights = np.empty(total, dtype=np.float64)
        self._offsets = np.zeros(self._n + 1, dtype=np.int64)
        np.cumsum(counts, out=self._offsets[1:])
        self._slot_of: dict[int, int] = {}
        for slot, obj in enumerate(objs):
            start, end = self._offsets[slot], self._offsets[slot + 1]
            self._instances[start:end] = obj.instances
            self._weights[start:end] = obj.weights
            self._slot_of[obj.oid] = slot
        self._oids: list[int] = [o.oid for o in objs]
        self.epoch = ds.epoch

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    @property
    def total_samples(self) -> int:
        """Total packed instance rows across all objects."""
        return self._size

    @property
    def dims(self) -> int:
        return self._instances.shape[1]

    @property
    def instances(self) -> np.ndarray:
        """The live ``(total_samples, d)`` packed matrix (read view)."""
        return self._instances[: self._size]

    @property
    def weights(self) -> np.ndarray:
        """The live ``(total_samples,)`` aligned weights (read view)."""
        return self._weights[: self._size]

    @property
    def offsets(self) -> np.ndarray:
        """The live ``(n_objects + 1,)`` offsets table (read view)."""
        return self._offsets[: self._n + 1]

    def slot_of(self, oid: int) -> int:
        """Packed slot of an object (its row range in ``offsets``)."""
        return self._slot_of[oid]

    def nbytes(self) -> int:
        """Allocated bytes of the packed arrays (capacity included)."""
        return (
            self._instances.nbytes
            + self._weights.nbytes
            + self._offsets.nbytes
        )

    # ------------------------------------------------------------------
    # Incremental maintenance (called by UncertainDataset mutation)
    # ------------------------------------------------------------------
    def apply_insert(self, obj: UncertainObject, epoch: int) -> None:
        """Append one object's rows; O(m) amortized via doubling."""
        m = obj.n_instances
        need = self._size + m
        if need > len(self._weights):
            cap = max(need, 2 * len(self._weights), 64)
            grown_i = np.empty((cap, self.dims), dtype=np.float64)
            grown_i[: self._size] = self._instances[: self._size]
            grown_w = np.empty(cap, dtype=np.float64)
            grown_w[: self._size] = self._weights[: self._size]
            self._instances, self._weights = grown_i, grown_w
        self._instances[self._size : need] = obj.instances
        self._weights[self._size : need] = obj.weights
        if self._n + 2 > len(self._offsets):
            grown_o = np.zeros(
                max(self._n + 2, 2 * len(self._offsets)), dtype=np.int64
            )
            grown_o[: self._n + 1] = self._offsets[: self._n + 1]
            self._offsets = grown_o
        self._offsets[self._n + 1] = need
        self._slot_of[obj.oid] = self._n
        self._oids.append(obj.oid)
        self._n += 1
        self._size = need
        self.epoch = epoch

    def apply_delete(self, oid: int, epoch: int) -> None:
        """Remove one object's rows, shifting the tail down once."""
        slot = self._slot_of.pop(oid)
        start = int(self._offsets[slot])
        end = int(self._offsets[slot + 1])
        m = end - start
        self._instances[start : self._size - m] = self._instances[
            end : self._size
        ]
        self._weights[start : self._size - m] = self._weights[
            end : self._size
        ]
        self._offsets[slot : self._n] = self._offsets[slot + 1 : self._n + 1]
        self._offsets[slot : self._n] -= m
        del self._oids[slot]
        for moved in self._oids[slot:]:
            self._slot_of[moved] -= 1
        self._n -= 1
        self._size -= m
        self.epoch = epoch

    # ------------------------------------------------------------------
    # The kernel's entry point
    # ------------------------------------------------------------------
    def gather(self, ids: Sequence[int]) -> GatherBlock:
        """Dense padded ``(n, m_max, d)`` block for a candidate set.

        One fancy-index into the packed matrix replaces per-object
        attribute walks.  Raises when the store no longer reflects the
        dataset (mutated without maintenance) — stale pdfs must never
        feed a probability computation.
        """
        from .dataset import check_index_in_sync

        if not self._owned:
            check_index_in_sync(self.epoch, self._dataset, "InstanceStore")
        slots = np.fromiter(
            (self._slot_of[oid] for oid in ids),
            dtype=np.int64,
            count=len(ids),
        )
        starts = self._offsets[slots]
        lengths = self._offsets[slots + 1] - starts
        m_max = int(lengths.max()) if len(lengths) else 0
        # Padding replicates each object's last row; its weight is
        # zeroed below, making the pad invisible to every consumer.
        span = np.arange(m_max, dtype=np.int64)
        rows = starts[:, None] + np.minimum(span[None, :], lengths[:, None] - 1)
        block = self._instances[rows]
        weights = self._weights[rows]
        if not bool((lengths == m_max).all()):
            weights = weights * (span[None, :] < lengths[:, None])
        return GatherBlock(
            instances=block, weights=weights, lengths=lengths
        )

    def matches_dataset(self) -> bool:
        """Exact content check against a scratch rebuild (test hook)."""
        ds = self._dataset
        if self._n != len(ds) or self._oids != ds.ids:
            return False
        for oid in ds.ids:
            slot = self._slot_of[oid]
            start, end = self._offsets[slot], self._offsets[slot + 1]
            obj = ds[oid]
            if end - start != obj.n_instances:
                return False
            if not (
                np.array_equal(self._instances[start:end], obj.instances)
                and np.array_equal(self._weights[start:end], obj.weights)
            ):
                return False
        return True

    def __repr__(self) -> str:
        return (
            f"InstanceStore(n={self._n}, total={self._size}, "
            f"dims={self.dims}, epoch={self.epoch})"
        )
