"""The uncertain database ``S``: a container of uncertain objects.

Provides identity lookup, packed corner arrays for vectorized geometry,
and in-place insert/delete used by the incremental-maintenance
experiments (Section VI-B).

Mutation is observable through two mechanisms:

* :attr:`UncertainDataset.epoch` — a monotonically increasing counter
  bumped by every :meth:`insert` / :meth:`delete`.  Anything that
  caches derived state (engine result caches, candidate memos, index
  retrievers) records the epoch it was computed at and invalidates
  itself when the live epoch has moved on.
* :meth:`UncertainDataset.row_of` — a stable integer handle assigned at
  insertion time and never reused, so external structures can key
  per-object state without depending on iteration order.
"""

from __future__ import annotations

import threading
from typing import Iterable, Iterator, Mapping

import numpy as np

from ..analysis.locks import make_lock
from ..geometry import Rect
from .objects import UncertainObject
from .store import InstanceStore

__all__ = ["UncertainDataset", "check_index_in_sync"]


def check_index_in_sync(
    index_epoch: int, dataset: "UncertainDataset", index_name: str
) -> None:
    """Raise unless an index's recorded epoch matches its dataset's.

    Incremental maintenance that silently adopted the live epoch would
    launder a mutation the index never absorbed — engines would keep
    trusting it.  Both maintained indexes call this before mutating; an
    out-of-sync index must be rebuilt instead.
    """
    live = getattr(dataset, "epoch", index_epoch)
    if index_epoch != live:
        raise ValueError(
            f"{index_name} is stale: the dataset was mutated without "
            f"it (index epoch {index_epoch}, dataset epoch {live}); "
            "rebuild the index"
        )


class UncertainDataset:
    """A set of uncertain objects sharing one domain.

    Parameters
    ----------
    objects:
        The uncertain objects; ids must be unique and dimensionalities
        must agree with the domain.
    domain:
        The domain rectangle ``D``.  When omitted, a tight bound around
        all uncertainty regions is used.
    """

    def __init__(
        self,
        objects: Iterable[UncertainObject],
        domain: Rect | None = None,
        *,
        epoch: int = 0,
    ) -> None:
        objs = list(objects)
        if not objs:
            raise ValueError("dataset must contain at least one object")
        dims = objs[0].dims
        if any(o.dims != dims for o in objs):
            raise ValueError("all objects must share one dimensionality")
        ids = [o.oid for o in objs]
        if len(set(ids)) != len(ids):
            raise ValueError("object ids must be unique")
        if domain is None:
            domain = Rect.bounding([o.region for o in objs])
        elif domain.dims != dims:
            raise ValueError("domain dimensionality mismatch")
        else:
            for o in objs:
                if not domain.contains_rect(o.region):
                    raise ValueError(
                        f"object {o.oid} lies outside the domain"
                    )
        self.domain = domain
        self._objects: dict[int, UncertainObject] = {o.oid: o for o in objs}
        self._packed_cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None
        self._packed_cache = None
        # ``epoch`` restores a recovered dataset's mutation clock (the
        # WAL's LSN space): snapshot + replay must continue numbering
        # where the crashed process stopped, not restart at zero.
        self._epoch = epoch
        self._rows: dict[int, int] = {o.oid: i for i, o in enumerate(objs)}
        self._next_row = len(objs)
        self._store: InstanceStore | None = None
        self._store_lock = make_lock("dataset.store_lock")
        self._listeners: list = []

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[UncertainObject]:
        return iter(self._objects.values())

    def __contains__(self, oid: int) -> bool:
        return oid in self._objects

    def __getitem__(self, oid: int) -> UncertainObject:
        return self._objects[oid]

    def get(self, oid: int) -> UncertainObject | None:
        """The object with id ``oid``, or ``None``."""
        return self._objects.get(oid)

    @property
    def dims(self) -> int:
        """Dimensionality of the attribute space."""
        return self.domain.dims

    @property
    def ids(self) -> list[int]:
        """All object ids (insertion order)."""
        return list(self._objects.keys())

    @property
    def objects(self) -> Mapping[int, UncertainObject]:
        """Read-only id -> object view."""
        return dict(self._objects)

    @property
    def epoch(self) -> int:
        """Mutation epoch: bumped by every :meth:`insert` / :meth:`delete`.

        Caches of state derived from the dataset (query results,
        candidate sets, index contents) are valid only for the epoch
        they were computed at.
        """
        return self._epoch

    def row_of(self, oid: int) -> int:
        """Stable row handle of an object: assigned at insertion, never
        reused, independent of later insertions and deletions."""
        return self._rows[oid]

    # ------------------------------------------------------------------
    # Vectorization support
    # ------------------------------------------------------------------
    def packed_regions(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(ids, los, his)`` packed corner arrays for all objects.

        The result is cached and invalidated by :meth:`insert` /
        :meth:`delete`; hot paths (C-set selection, PV-cell ground truth)
        use it instead of iterating :class:`Rect` objects.
        """
        if self._packed_cache is None:
            ids = np.fromiter(
                self._objects.keys(), dtype=np.int64, count=len(self)
            )
            los = np.array([o.region.lo for o in self._objects.values()])
            his = np.array([o.region.hi for o in self._objects.values()])
            self._packed_cache = (ids, los, his)
        return self._packed_cache

    def means(self) -> np.ndarray:
        """``(n, d)`` array of object mean positions (dataset order)."""
        __, los, his = self.packed_regions()
        return (los + his) / 2.0

    def instance_store(self) -> InstanceStore:
        """The packed pdf store backing the Step-2 kernels.

        Built lazily on first use and thereafter maintained
        incrementally through :meth:`insert` / :meth:`delete`, so it is
        always at the dataset's live epoch — the kernels gather
        candidate pdfs from it without any staleness window.

        The lazy build is once-guarded: concurrent first touches (a
        cold database hammered from many threads) race to the lock,
        one thread packs, and every caller receives the same store —
        never a half-built or duplicate one.
        """
        store = self._store
        if store is None:
            with self._store_lock:
                store = self._store
                if store is None:
                    store = InstanceStore(self, _owned=True)
                    self._store = store
        return store

    def adopt_shared_store(self, store: InstanceStore, *, epoch: int) -> None:
        """Install an attached shared-memory store as this dataset's own.

        The worker-process reconstruction path: a dataset rebuilt from
        a shared segment adopts the :class:`~repro.uncertain.store.
        SharedInstanceStore` over the same arrays instead of packing a
        private copy, and takes on the segment's mutation ``epoch`` so
        plans and results stamp exactly like the exporting parent.
        Refused when a store already exists or the epochs disagree.
        """
        with self._store_lock:
            if self._store is not None:
                raise RuntimeError(
                    "dataset already has an instance store; adopt is "
                    "only for freshly reconstructed worker datasets"
                )
            if store.epoch != epoch:
                raise ValueError(
                    f"shared store epoch {store.epoch} does not match "
                    f"the adopting epoch {epoch}"
                )
            self._epoch = epoch
            store._dataset = self
            store._owned = True
            self._store = store

    def release_instance_store(self) -> None:
        """Detach the packed store, freeing its arrays.

        The next :meth:`instance_store` call rebuilds from scratch.
        Used by ``Database.close()`` to drop the largest piece of
        derived state along with the index handles.
        """
        with self._store_lock:
            self._store = None

    # ------------------------------------------------------------------
    # Mutation (used by the update experiments)
    # ------------------------------------------------------------------
    def add_mutation_listener(self, listener) -> None:
        """Register ``listener(op, obj, epoch)`` on every mutation.

        Fired *before* the state change, inside the mutation lock, with
        the epoch the mutation will commit at — write-ahead discipline:
        a listener that raises (e.g. a WAL that cannot append) aborts
        the mutation with the dataset untouched, so the in-memory state
        never runs ahead of what a durable log has accepted.  ``op`` is
        ``"insert"`` or ``"delete"``; ``obj`` is the full object either
        way (the one being added, or the one about to be removed).
        """
        self._listeners.append(listener)

    def remove_mutation_listener(self, listener) -> None:
        """Unregister a mutation listener (no-op when absent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def _notify(self, op: str, obj: UncertainObject, epoch: int) -> None:
        for listener in self._listeners:
            listener(op, obj, epoch)

    def insert(self, obj: UncertainObject) -> None:
        """Add ``obj``; its id must be fresh and region inside the domain."""
        if obj.oid in self._objects:
            raise ValueError(f"duplicate object id {obj.oid}")
        if obj.dims != self.dims:
            raise ValueError("object dimensionality mismatch")
        if not self.domain.contains_rect(obj.region):
            raise ValueError(f"object {obj.oid} lies outside the domain")
        # Mutations exclude the instance store's lazy build: packing
        # iterates ``_objects``, so a build racing this write would
        # either crash or silently produce an owned store missing the
        # new object (owned stores skip the staleness check forever).
        with self._store_lock:
            self._notify("insert", obj, self._epoch + 1)
            self._objects[obj.oid] = obj
            self._packed_cache = None
            self._rows[obj.oid] = self._next_row
            self._next_row += 1
            self._epoch += 1
            if self._store is not None:
                self._store.apply_insert(obj, self._epoch)

    def delete(self, oid: int) -> UncertainObject:
        """Remove and return the object with id ``oid``."""
        with self._store_lock:  # exclude a racing store build
            try:
                obj = self._objects[oid]
            except KeyError:
                raise KeyError(f"no object with id {oid}") from None
            if len(self._objects) == 1:
                raise ValueError(
                    "cannot delete the last object of a dataset"
                )
            self._notify("delete", obj, self._epoch + 1)
            del self._objects[oid]
            self._packed_cache = None
            del self._rows[oid]
            self._epoch += 1
            if self._store is not None:
                self._store.apply_delete(oid, self._epoch)
            return obj

    def copy(self) -> "UncertainDataset":
        """A shallow copy (objects are immutable and safely shared)."""
        return UncertainDataset(self._objects.values(), domain=self.domain)

    def __repr__(self) -> str:
        return (
            f"UncertainDataset(n={len(self)}, dims={self.dims}, "
            f"domain={self.domain!r})"
        )
