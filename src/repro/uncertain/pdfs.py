"""Discrete uncertainty-pdf factories.

The paper represents every uncertainty pdf by a fixed number of sampled
instances (500 in the evaluation) with equal weights.  These factories
produce `(instances, weights)` pairs for the pdf families used in the
paper's setup:

* uniform within the uncertainty region (synthetic datasets),
* truncated Gaussian around the reported location (real datasets,
  "normal distribution with mean equal to the object's reported location
  and variance equal to 1"),
* a single certain point (the degenerate case where the PV-cell reduces
  to an ordinary Voronoi cell, Figure 1(a)).
"""

from __future__ import annotations

import numpy as np

from ..geometry import Rect

__all__ = ["uniform_pdf", "gaussian_pdf", "point_pdf"]


def uniform_pdf(
    region: Rect, n_samples: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """``n_samples`` equally weighted instances uniform in ``region``."""
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    instances = region.sample_points(n_samples, rng)
    weights = np.full(n_samples, 1.0 / n_samples)
    return instances, weights


def gaussian_pdf(
    region: Rect,
    n_samples: int,
    rng: np.random.Generator,
    sigma: float = 1.0,
    mean: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Truncated-Gaussian instances inside ``region``.

    Samples are drawn from an isotropic normal centred at ``mean`` (the
    region center by default) with standard deviation ``sigma`` and
    rejected until they fall inside ``region``; a clipping fallback
    guarantees termination even when ``sigma`` dwarfs the region.
    """
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    mu = region.center if mean is None else np.asarray(mean, np.float64)
    if not region.contains_point(mu):
        raise ValueError("mean must lie inside the uncertainty region")

    collected: list[np.ndarray] = []
    needed = n_samples
    for _ in range(100):  # rejection rounds
        draw = rng.normal(mu, sigma, size=(2 * needed + 16, region.dims))
        inside = np.all(
            (draw >= region.lo) & (draw <= region.hi), axis=1
        )
        good = draw[inside]
        if len(good):
            collected.append(good[:needed])
            needed -= len(collected[-1])
        if needed == 0:
            break
    if needed > 0:
        # Pathological acceptance rate: clip the remainder to the region.
        draw = rng.normal(mu, sigma, size=(needed, region.dims))
        collected.append(np.clip(draw, region.lo, region.hi))
    instances = np.vstack(collected)
    weights = np.full(n_samples, 1.0 / n_samples)
    return instances, weights


def point_pdf(point: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """The certain case: a single instance with probability one."""
    p = np.asarray(point, dtype=np.float64)
    if p.ndim != 1:
        raise ValueError("point must be a 1-d coordinate array")
    return p[None, :].copy(), np.array([1.0])
