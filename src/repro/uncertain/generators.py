"""Dataset generators: synthetic workloads and simulated real datasets.

Synthetic data follow the paper's setup (Section VII-A): object means
uniform in ``D = [0, 10k]^d``, per-dimension uncertainty-region lengths
uniform in ``[1, |u(o)|]``, and discrete pdfs of equally weighted samples
within the region.

The three real datasets the paper uses (``roads``, ``rrlines`` from
rtreeportal.org and ``airports`` from ourairports.com) are no longer
retrievable in this offline environment, so this module *simulates* them
(see DESIGN.md, substitution table):

* ``roads`` / ``rrlines`` — 2D rectangles placed along random polyline
  networks.  What distinguishes these datasets from uniform synthetic
  data is spatial skew and correlation along 1-dimensional features;
  polyline-derived rectangles reproduce exactly that.
* ``airports`` — clustered 3D points (latitude, longitude, altitude-like
  scaling) with a 10 m-radius spherical GPS error bounded by its MBR and
  a truncated-Gaussian pdf (sigma = 1), as described in the paper.
"""

from __future__ import annotations

import numpy as np

from ..geometry import Rect
from .dataset import UncertainDataset
from .objects import UncertainObject
from .pdfs import gaussian_pdf, uniform_pdf

__all__ = [
    "synthetic_dataset",
    "clustered_dataset",
    "simulate_roads",
    "simulate_rrlines",
    "simulate_airports",
]

DOMAIN_SIZE = 10_000.0
"""Extent of the synthetic domain per dimension (the paper's ``[0, 10k]``)."""


def _make_objects(
    centers: np.ndarray,
    lengths: np.ndarray,
    domain: Rect,
    n_samples: int,
    rng: np.random.Generator,
    pdf: str = "uniform",
    sigma: float = 1.0,
) -> list[UncertainObject]:
    """Build objects from per-object centers and side lengths.

    Regions are shifted (not shrunk) to stay within the domain, so the
    configured region sizes are preserved near the boundary.
    """
    half = lengths / 2.0
    lo = np.clip(centers - half, domain.lo, domain.hi - lengths)
    hi = lo + lengths
    objects = []
    for oid in range(len(centers)):
        region = Rect(lo[oid], hi[oid])
        if pdf == "uniform":
            instances, weights = uniform_pdf(region, n_samples, rng)
        elif pdf == "gaussian":
            instances, weights = gaussian_pdf(
                region, n_samples, rng, sigma=sigma
            )
        else:
            raise ValueError(f"unknown pdf family {pdf!r}")
        objects.append(
            UncertainObject(
                oid=oid, region=region, instances=instances, weights=weights
            )
        )
    return objects


def synthetic_dataset(
    n: int,
    dims: int = 3,
    u_max: float = 60.0,
    n_samples: int = 100,
    seed: int | None = None,
    domain_size: float = DOMAIN_SIZE,
) -> UncertainDataset:
    """The paper's synthetic workload.

    Parameters
    ----------
    n:
        Number of objects (the paper's ``|S|``).
    dims:
        Dimensionality ``d`` (paper default 3).
    u_max:
        Maximum uncertainty-region side length ``|u(o)|`` (paper default
        60); actual side lengths are uniform in ``[1, u_max]`` per
        dimension.
    n_samples:
        Instances per pdf (paper uses 500; default lowered to 100 to keep
        pure-Python Step-2 benchmarks tractable — configurable).
    seed:
        Seed for reproducibility.
    domain_size:
        Domain extent per dimension.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if u_max < 1.0:
        raise ValueError("u_max must be >= 1 (paper: lengths in [1, u_max])")
    rng = np.random.default_rng(seed)
    domain = Rect.cube(0.0, domain_size, dims)
    centers = rng.uniform(0.0, domain_size, size=(n, dims))
    lengths = rng.uniform(1.0, u_max, size=(n, dims))
    objects = _make_objects(centers, lengths, domain, n_samples, rng)
    return UncertainDataset(objects, domain=domain)


def clustered_dataset(
    n: int,
    dims: int = 2,
    n_clusters: int = 10,
    cluster_sigma: float = 400.0,
    u_max: float = 60.0,
    n_samples: int = 100,
    seed: int | None = None,
    domain_size: float = DOMAIN_SIZE,
) -> UncertainDataset:
    """A skewed (Gaussian-cluster) workload for robustness experiments.

    Not part of the paper's table of datasets, but useful for the
    ablations: C-set selection behaves differently when object density
    varies by orders of magnitude across the domain.
    """
    rng = np.random.default_rng(seed)
    domain = Rect.cube(0.0, domain_size, dims)
    cluster_centers = rng.uniform(
        0.1 * domain_size, 0.9 * domain_size, size=(n_clusters, dims)
    )
    assignment = rng.integers(0, n_clusters, size=n)
    centers = cluster_centers[assignment] + rng.normal(
        0.0, cluster_sigma, size=(n, dims)
    )
    centers = np.clip(centers, 0.0, domain_size)
    lengths = rng.uniform(1.0, u_max, size=(n, dims))
    objects = _make_objects(centers, lengths, domain, n_samples, rng)
    return UncertainDataset(objects, domain=domain)


def _polyline_dataset(
    n: int,
    n_lines: int,
    wiggle: float,
    max_len: float,
    n_samples: int,
    seed: int | None,
    domain_size: float,
) -> UncertainDataset:
    """Rectangles scattered along random polylines (roads/rrlines sim)."""
    rng = np.random.default_rng(seed)
    domain = Rect.cube(0.0, domain_size, 2)

    # Build polylines: random start, random walk of segments.
    segments_per_line = 12
    starts = rng.uniform(0, domain_size, size=(n_lines, 2))
    all_vertices = []
    for i in range(n_lines):
        heading = rng.uniform(0, 2 * np.pi)
        v = [starts[i]]
        for _ in range(segments_per_line):
            heading += rng.normal(0.0, wiggle)
            step = rng.uniform(0.03, 0.12) * domain_size
            nxt = v[-1] + step * np.array([np.cos(heading), np.sin(heading)])
            v.append(np.clip(nxt, 0.0, domain_size))
        all_vertices.append(np.array(v))

    # Place object centers along randomly chosen segments.
    line_idx = rng.integers(0, n_lines, size=n)
    seg_idx = rng.integers(0, segments_per_line, size=n)
    t = rng.uniform(0, 1, size=n)
    centers = np.empty((n, 2))
    for k in range(n):
        verts = all_vertices[line_idx[k]]
        a, b = verts[seg_idx[k]], verts[seg_idx[k] + 1]
        centers[k] = a + t[k] * (b - a) + rng.normal(0.0, 8.0, size=2)
    centers = np.clip(centers, 0.0, domain_size)

    # Elongated rectangles, as road/rail-segment MBRs are.
    long_side = rng.uniform(10.0, max_len, size=n)
    short_side = rng.uniform(1.0, 12.0, size=n)
    horizontal = rng.random(n) < 0.5
    lengths = np.where(
        horizontal[:, None],
        np.stack([long_side, short_side], axis=1),
        np.stack([short_side, long_side], axis=1),
    )
    objects = _make_objects(centers, lengths, domain, n_samples, rng)
    return UncertainDataset(objects, domain=domain)


def simulate_roads(
    n: int = 3000, n_samples: int = 100, seed: int | None = 13
) -> UncertainDataset:
    """Simulated stand-in for the ``roads`` dataset (2D rectangles).

    The original (30k road-segment MBRs, rtreeportal.org) is not
    available offline; the simulation reproduces its key property —
    elongated rectangles concentrated along sparse 1D features.  Default
    size scaled down 10x in line with the bench scale (see DESIGN.md).
    """
    return _polyline_dataset(
        n,
        n_lines=40,
        wiggle=0.35,
        max_len=120.0,
        n_samples=n_samples,
        seed=seed,
        domain_size=DOMAIN_SIZE,
    )


def simulate_rrlines(
    n: int = 3600, n_samples: int = 100, seed: int | None = 17
) -> UncertainDataset:
    """Simulated stand-in for the ``rrlines`` railroad dataset (2D).

    Railroads are straighter and longer than roads, so the simulation
    uses lower heading noise and longer segments.
    """
    return _polyline_dataset(
        n,
        n_lines=25,
        wiggle=0.12,
        max_len=220.0,
        n_samples=n_samples,
        seed=seed,
        domain_size=DOMAIN_SIZE,
    )


def simulate_airports(
    n: int = 2000, n_samples: int = 100, seed: int | None = 19
) -> UncertainDataset:
    """Simulated stand-in for the ``airports`` dataset (3D points).

    Per the paper: 3D coordinates collected by GPS with a 10 m-radius
    spherical error, the uncertainty region being the sphere's MBR, and a
    Gaussian pdf (sigma = 1) centred at the reported location.  Airports
    cluster around population centres, which the simulation models with
    Gaussian clusters; altitude occupies a thin slab of the domain.
    """
    rng = np.random.default_rng(seed)
    domain = Rect.cube(0.0, DOMAIN_SIZE, 3)
    n_clusters = 25
    cluster_centers = np.column_stack(
        [
            rng.uniform(500, DOMAIN_SIZE - 500, size=(n_clusters, 2)),
            rng.uniform(100, 1500, size=n_clusters),  # altitude band
        ]
    )
    assignment = rng.integers(0, n_clusters, size=n)
    spread = np.array([600.0, 600.0, 150.0])
    centers = cluster_centers[assignment] + rng.normal(
        0.0, spread, size=(n, 3)
    )
    centers = np.clip(centers, 10.0, DOMAIN_SIZE - 10.0)
    # 10 m-radius sphere -> MBR is a cube of side 20.
    lengths = np.full((n, 3), 20.0)
    objects = _make_objects(
        centers, lengths, domain, n_samples, rng, pdf="gaussian", sigma=1.0
    )
    return UncertainDataset(objects, domain=domain)
