"""Uncertain objects under the attribute-uncertainty model.

Following Section I and III of the paper, an uncertain object ``o`` has:

* an **uncertainty region** ``u(o)`` — an axis-parallel rectangle that
  minimally bounds all possible attribute values, and
* an **uncertainty pdf** — here the *discrete model* of [13], [14]: a set
  of d-dimensional instances, each carrying the probability of being the
  exact value of ``o``.

The uncertainty region is what every pruning structure (PV-index, R-tree,
UV-index) operates on; the instances are only touched in PNNQ Step 2
(probability computation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geometry import Rect

__all__ = ["UncertainObject"]


@dataclass(frozen=True)
class UncertainObject:
    """One uncertain object: identity, region, and discrete pdf.

    Parameters
    ----------
    oid:
        Integer identity, unique within a dataset.
    region:
        The uncertainty region ``u(o)``; must contain every instance.
    instances:
        ``(m, d)`` array of possible attribute values.
    weights:
        ``(m,)`` array of instance probabilities, summing to one.  When
        omitted, instances are equally likely (the paper's default:
        "each of which exists with a probability of 1/500").
    """

    oid: int
    region: Rect
    instances: np.ndarray
    weights: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        instances = np.asarray(self.instances, dtype=np.float64)
        if instances.ndim != 2 or instances.shape[0] == 0:
            raise ValueError("instances must be a non-empty (m, d) array")
        if instances.shape[1] != self.region.dims:
            raise ValueError(
                f"instance dimensionality {instances.shape[1]} does not "
                f"match region dimensionality {self.region.dims}"
            )
        object.__setattr__(self, "instances", instances)

        if self.weights is None:
            weights = np.full(len(instances), 1.0 / len(instances))
        else:
            weights = np.asarray(self.weights, dtype=np.float64)
            if weights.shape != (len(instances),):
                raise ValueError(
                    "weights must be a 1-d array matching the instance count"
                )
            if np.any(weights < 0):
                raise ValueError("weights must be non-negative")
            total = float(weights.sum())
            if total <= 0:
                raise ValueError("weights must sum to a positive value")
            if not np.isclose(total, 1.0, atol=1e-6):
                raise ValueError(f"weights must sum to 1, got {total}")
        object.__setattr__(self, "weights", weights)

        lo_ok = np.all(instances >= self.region.lo - 1e-9)
        hi_ok = np.all(instances <= self.region.hi + 1e-9)
        if not (lo_ok and hi_ok):
            raise ValueError(
                f"object {self.oid}: instances fall outside u(o)"
            )

    # ------------------------------------------------------------------
    @property
    def dims(self) -> int:
        """Dimensionality of the attribute space."""
        return self.region.dims

    @property
    def n_instances(self) -> int:
        """Number of pdf sample points."""
        return len(self.instances)

    @property
    def mean(self) -> np.ndarray:
        """The mean position used by the FS / IS C-set strategies.

        The paper orders objects by the distance between the *mean
        positions* of their uncertainty regions; we use the region center,
        which coincides with the distribution mean for the symmetric pdfs
        used throughout the evaluation.
        """
        return self.region.center

    def distance_samples(self, query: np.ndarray) -> np.ndarray:
        """Distances from each instance to ``query`` (for PNNQ Step 2)."""
        q = np.asarray(query, dtype=np.float64)
        diff = self.instances - q
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))

    def nbytes(self) -> int:
        """Approximate serialized size for the simulated pager.

        8 bytes of id + the region + ``m`` instances of ``d`` float64
        coordinates + ``m`` float64 weights.
        """
        return (
            8
            + self.region.nbytes()
            + self.instances.size * 8
            + self.weights.size * 8
        )

    def with_id(self, oid: int) -> "UncertainObject":
        """A copy of this object under a different identity."""
        return UncertainObject(
            oid=oid,
            region=self.region,
            instances=self.instances,
            weights=self.weights,
        )

    def __repr__(self) -> str:
        return (
            f"UncertainObject(oid={self.oid}, dims={self.dims}, "
            f"m={self.n_instances})"
        )
