"""repro — reproduction of the PV-index (ICDE 2013).

Voronoi-based nearest neighbor search for multi-dimensional uncertain
databases: Possible Voronoi cells (PV-cells), Uncertain Bounding
Rectangles (UBRs), the Shrink-and-Expand (SE) algorithm, and the PV-index
with incremental maintenance, plus the R-tree and UV-index baselines the
paper evaluates against.

Quick start — the declarative session API plans the Step-1 retriever
per query and returns frozen result envelopes::

    from repro import synthetic_dataset
    from repro.api import Database

    db = Database(synthetic_dataset(n=500, dims=2, seed=0))
    result = db.nn([5000.0, 5000.0])
    print(result.best, dict(result.probabilities))
    print(db.explain("nn").describe())   # which index, and why

The engine classes (``PNNQEngine`` and friends) remain available for
research code that wants to hold a specific index in hand; they now
share the uniform ``Engine(dataset, retriever=None, ...)`` constructor.
"""

from . import api, service
from .api import Database, Plan, Planner, Q, QueryResult, QuerySpec
from .engine import BaseEngine, BruteForceRetriever, ExecutionStats
from .service import QueryFuture, Session, UncertainDBServer, as_completed
from .geometry import Rect
from .uncertain import (
    UncertainDataset,
    UncertainObject,
    gaussian_pdf,
    point_pdf,
    simulate_airports,
    simulate_rrlines,
    simulate_roads,
    synthetic_dataset,
    uniform_pdf,
)
from .core import (
    AllCSet,
    FixedSelection,
    GroupNNEngine,
    IncrementalSelection,
    KNNEngine,
    PNNQEngine,
    PVIndex,
    ReverseNNEngine,
    SEConfig,
    ShrinkExpand,
    TopKEngine,
    VerifierEngine,
    bulk_build,
    compact,
    pv_cell_contains,
)
from .rtree import RStarTree, RTreePNNQ
from .uvindex import UVIndex

__version__ = "1.2.0"

__all__ = [
    "api",
    "service",
    "as_completed",
    "QueryFuture",
    "Session",
    "UncertainDBServer",
    "Database",
    "Plan",
    "Planner",
    "Q",
    "QueryResult",
    "QuerySpec",
    "BaseEngine",
    "BruteForceRetriever",
    "ExecutionStats",
    "Rect",
    "UncertainObject",
    "UncertainDataset",
    "uniform_pdf",
    "gaussian_pdf",
    "point_pdf",
    "synthetic_dataset",
    "simulate_roads",
    "simulate_rrlines",
    "simulate_airports",
    "AllCSet",
    "FixedSelection",
    "IncrementalSelection",
    "SEConfig",
    "ShrinkExpand",
    "PVIndex",
    "PNNQEngine",
    "pv_cell_contains",
    "RStarTree",
    "RTreePNNQ",
    "UVIndex",
    "TopKEngine",
    "KNNEngine",
    "GroupNNEngine",
    "ReverseNNEngine",
    "VerifierEngine",
    "bulk_build",
    "compact",
]
