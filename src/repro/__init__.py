"""repro — reproduction of the PV-index (ICDE 2013).

Voronoi-based nearest neighbor search for multi-dimensional uncertain
databases: Possible Voronoi cells (PV-cells), Uncertain Bounding
Rectangles (UBRs), the Shrink-and-Expand (SE) algorithm, and the PV-index
with incremental maintenance, plus the R-tree and UV-index baselines the
paper evaluates against.

Quick start::

    from repro import synthetic_dataset, PVIndex, PNNQEngine

    dataset = synthetic_dataset(n=500, dims=2, seed=0)
    index = PVIndex.build(dataset)
    engine = PNNQEngine(index, dataset)
    result = engine.query([5000.0, 5000.0])
    for oid, prob in result.probabilities.items():
        print(oid, prob)
"""

from .engine import BaseEngine, BruteForceRetriever, ExecutionStats
from .geometry import Rect
from .uncertain import (
    UncertainDataset,
    UncertainObject,
    gaussian_pdf,
    point_pdf,
    simulate_airports,
    simulate_rrlines,
    simulate_roads,
    synthetic_dataset,
    uniform_pdf,
)
from .core import (
    AllCSet,
    FixedSelection,
    GroupNNEngine,
    IncrementalSelection,
    KNNEngine,
    PNNQEngine,
    PVIndex,
    ReverseNNEngine,
    SEConfig,
    ShrinkExpand,
    TopKEngine,
    VerifierEngine,
    bulk_build,
    compact,
    pv_cell_contains,
)
from .rtree import RStarTree, RTreePNNQ
from .uvindex import UVIndex

__version__ = "1.0.0"

__all__ = [
    "BaseEngine",
    "BruteForceRetriever",
    "ExecutionStats",
    "Rect",
    "UncertainObject",
    "UncertainDataset",
    "uniform_pdf",
    "gaussian_pdf",
    "point_pdf",
    "synthetic_dataset",
    "simulate_roads",
    "simulate_rrlines",
    "simulate_airports",
    "AllCSet",
    "FixedSelection",
    "IncrementalSelection",
    "SEConfig",
    "ShrinkExpand",
    "PVIndex",
    "PNNQEngine",
    "pv_cell_contains",
    "RStarTree",
    "RTreePNNQ",
    "UVIndex",
    "TopKEngine",
    "KNNEngine",
    "GroupNNEngine",
    "ReverseNNEngine",
    "VerifierEngine",
    "bulk_build",
    "compact",
]
