"""Immutable result envelopes and declarative query specs.

Every :class:`~repro.api.Database` query returns a frozen
:class:`QueryResult` — the raw engine answer plus the :class:`Plan`
that produced it and an :class:`~repro.engine.ExecutionStats` delta
covering exactly that execution.  Batches are declared with
:class:`QuerySpec` values, built via the :class:`Q` constructors::

    db.batch([Q.nn([5.0, 5.0]), Q.knn([1.0, 2.0], k=3)])
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..engine import ExecutionStats, FrozenDict
from .planner import Plan

__all__ = ["QueryResult", "QuerySpec", "Q"]


def _params_key(params: Mapping[str, Any]) -> tuple[tuple[str, Any], ...]:
    """Canonical hashable form of a query's keyword parameters."""
    return tuple(sorted(params.items()))


@dataclass(frozen=True)
class QuerySpec:
    """One declarative query: a kind, its input, and its parameters.

    ``params`` is a sorted ``(name, value)`` tuple so specs with equal
    parameters hash and compare equal — the identity the planner's
    plan cache and the batch grouping key off.
    """

    kind: str
    query: Any
    params: tuple[tuple[str, Any], ...] = ()

    def kwargs(self) -> dict[str, Any]:
        """The parameters as engine keyword arguments."""
        return dict(self.params)


class Q:
    """Constructors for :class:`QuerySpec` values (``db.batch`` input)."""

    @staticmethod
    def nn(query: Any) -> QuerySpec:
        """Probabilistic NN (the paper's PNNQ) at a point."""
        return QuerySpec("nn", query)

    @staticmethod
    def knn(query: Any, k: int = 1) -> QuerySpec:
        """Probabilistic k-NN at a point."""
        return QuerySpec("knn", query, _params_key({"k": k}))

    @staticmethod
    def topk(query: Any, k: int = 1) -> QuerySpec:
        """Top-k most probable NNs at a point."""
        return QuerySpec("topk", query, _params_key({"k": k}))

    @staticmethod
    def threshold(query: Any, p: float = 0.1) -> QuerySpec:
        """Threshold PNNQ: which objects have probability >= ``p``."""
        return QuerySpec("threshold", query, _params_key({"tau": p}))

    @staticmethod
    def group_nn(queries: Any, aggregate: str = "sum") -> QuerySpec:
        """Group NN over a set of query points."""
        return QuerySpec(
            "group_nn", queries, _params_key({"aggregate": aggregate})
        )

    @staticmethod
    def reverse_nn(query_object: Any) -> QuerySpec:
        """Reverse NN of an uncertain query object."""
        return QuerySpec("reverse_nn", query_object)

    @staticmethod
    def expected_nn(query: Any, top: int | None = None) -> QuerySpec:
        """Expected-distance NN ranking at a point."""
        return QuerySpec("expected_nn", query, _params_key({"top": top}))


@dataclass(frozen=True)
class QueryResult:
    """Frozen envelope around one executed query.

    Attributes
    ----------
    kind:
        The query class (``"nn"``, ``"knn"``, ...).
    answer:
        The engine's own (deeply read-only) result object — e.g. a
        :class:`~repro.core.pnnq.PNNQResult`, or a read-only decision
        mapping for ``threshold`` queries.
    plan:
        The :class:`Plan` that chose the Step-1 retriever.
    stats:
        An :class:`~repro.engine.ExecutionStats` *delta* covering
        exactly this execution (for ``db.batch``, the whole group the
        query executed with — batched work is not separable per query).
    """

    kind: str
    answer: Any
    plan: Plan
    stats: ExecutionStats

    @property
    def epoch(self) -> int:
        """The dataset mutation epoch this answer is consistent with.

        Under the serving layer's mutation barriers every read executes
        against exactly one epoch; this is that epoch (the one the plan
        was made — and the query ran — at).
        """
        return self.plan.epoch

    @property
    def probabilities(self) -> Mapping[int, float] | None:
        """Per-object probabilities, uniformly across query classes.

        ``nn`` / ``knn`` / ``group_nn`` / ``reverse_nn`` expose their
        probability mapping directly; ``topk`` converts its ranking;
        ``threshold`` and ``expected_nn`` answers carry no
        probabilities and return ``None``.
        """
        probs = getattr(self.answer, "probabilities", None)
        if probs is not None:
            return probs
        if self.kind == "topk":
            return FrozenDict(self.answer.ranking)
        return None

    @property
    def best(self) -> int | None:
        """The top-ranked object id, when the answer defines one."""
        answer_best = getattr(self.answer, "best", None)
        if answer_best is not None:
            return answer_best
        if self.kind == "topk" and self.answer.ranking:
            return self.answer.ranking[0][0]
        return None

    def __repr__(self) -> str:
        return (
            f"QueryResult(kind={self.kind!r}, "
            f"retriever={self.plan.retriever!r}, "
            f"or={self.stats.object_retrieval * 1e3:.2f}ms, "
            f"pc={self.stats.probability_computation * 1e3:.2f}ms)"
        )
