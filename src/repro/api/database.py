"""The library's front door: a declarative uncertain-database session.

:class:`Database` owns an :class:`~repro.uncertain.UncertainDataset`
and everything derived from it — Step-1 indexes behind named handles
(``"pv"``, ``"rtree"``, ``"uv"``, plus the implicit ``"brute"``
fallback), one engine per (query class, retriever) pair, and a
cost-based :class:`~repro.api.planner.Planner` that picks the
retriever per query template.  Indexes are built lazily the first time
a plan selects them and maintained incrementally through
:meth:`insert` / :meth:`delete`; handles bypassed by a mutation are
dropped and rebuilt on next use, so a stale Step-1 answer is never
served.

    from repro.api import Database

    db = Database(synthetic_dataset(n=500, dims=2, seed=0))
    result = db.nn([5000.0, 5000.0])     # planned, executed, frozen
    result.best, result.probabilities    # the answer
    result.plan.retriever                # how it was answered
    print(db.explain("nn").describe())   # why

All seven query classes of the repository are one method each —
:meth:`nn`, :meth:`knn`, :meth:`topk`, :meth:`threshold`,
:meth:`group_nn`, :meth:`reverse_nn`, :meth:`expected_nn` — plus
:meth:`batch` for declarative blocks of
:class:`~repro.api.result.QuerySpec` values.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Sequence

from ..analysis.locks import make_lock, make_rlock
from ..core import (
    ExpectedNNEngine,
    GroupNNEngine,
    KNNEngine,
    PNNQEngine,
    PVIndex,
    ReverseNNEngine,
    TopKEngine,
    VerifierEngine,
)
from ..engine import BaseEngine, BruteForceRetriever, CostEstimate
from ..rtree import RTreePNNQ
from ..service.scheduler import SchedulerClosed
from ..uncertain import UncertainDataset, UncertainObject
from ..uvindex import UVIndex
from .planner import Plan, Planner, PlanningError, STATIC_ESTIMATES
from .result import QueryResult, QuerySpec, _params_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..service import Subscription, UncertainDBServer

__all__ = ["Database", "IndexHandle"]

#: Handle name meaning "no point retriever" (reverse NN's Step 1).
_NONE = "none"
#: Handle name of the index-free exact filter.
_BRUTE = "brute"


@dataclass(frozen=True)
class _KindSpec:
    """Execution recipe for one query class."""

    engine_cls: type[BaseEngine]
    #: Engine-constructor keywords drawn from Database config.
    takes_n_bins: bool = False


_KINDS: dict[str, _KindSpec] = {
    "nn": _KindSpec(PNNQEngine),
    "knn": _KindSpec(KNNEngine),
    "topk": _KindSpec(TopKEngine, takes_n_bins=True),
    "threshold": _KindSpec(VerifierEngine, takes_n_bins=True),
    "group_nn": _KindSpec(GroupNNEngine),
    "reverse_nn": _KindSpec(ReverseNNEngine),
    "expected_nn": _KindSpec(ExpectedNNEngine),
}

#: Per-verb parameter defaults mirrored from the one-shot methods, so
#: ``db.subscribe("knn", q)`` and ``db.knn(q)`` share a template.
_SUBSCRIBE_DEFAULTS: dict[str, dict[str, Any]] = {
    "knn": {"k": 1},
    "topk": {"k": 1},
    "threshold": {"tau": 0.1},
    "group_nn": {"aggregate": "sum"},
    "expected_nn": {"top": None},
}


class IndexHandle:
    """One named, lazily built Step-1 index owned by a Database.

    Satisfies the planner's ``PlannableHandle`` protocol: before the
    index is built, :meth:`cost_estimate` answers from the static
    formulas in :data:`~repro.api.planner.STATIC_ESTIMATES`; once
    built, from the index's own calibrated ``cost_estimate()`` hook.
    """

    def __init__(
        self,
        name: str,
        dataset: UncertainDataset,
        builder: Callable[[UncertainDataset], Any],
        *,
        maintainable: bool,
    ) -> None:
        self.name = name
        self.dataset = dataset
        self.builder = builder
        self.maintainable = maintainable
        self.index: Any = None
        self.secondary: Any = None
        self._build_lock = make_lock("handle.build_lock")

    def cost_estimate(self) -> CostEstimate:
        if self.index is not None and hasattr(self.index, "cost_estimate"):
            return self.index.cost_estimate()
        return STATIC_ESTIMATES[self.name](
            len(self.dataset), self.dataset.dims
        )

    def ensure_built(self) -> Any:
        """The built index, constructing it on first use.

        Once-guarded: concurrent first touches from a cold database
        build exactly one index (double-checked under a per-handle
        lock; ``secondary`` is published before ``index`` becomes
        visible, so no reader ever sees a half-initialized handle).
        """
        index = self.index
        if index is None:
            with self._build_lock:
                index = self.index
                if index is None:
                    index = self.builder(self.dataset)
                    self.secondary = getattr(index, "secondary", None)
                    self.index = index
        return index

    def in_sync(self) -> bool:
        """Built and maintained through every dataset mutation."""
        return (
            self.index is not None
            and getattr(self.index, "dataset_epoch", None)
            == self.dataset.epoch
        )

    def drop(self) -> None:
        """Forget the built index (it will rebuild lazily if chosen)."""
        self.index = None
        self.secondary = None

    def __repr__(self) -> str:
        state = "built" if self.index is not None else "lazy"
        return f"IndexHandle({self.name!r}, {state})"


class Database:
    """A query session over one uncertain dataset.

    Parameters
    ----------
    dataset:
        The uncertain database.  The Database takes ownership of its
        derived state: mutate through :meth:`insert` / :meth:`delete`
        (direct ``dataset.insert`` still cannot corrupt answers — the
        epoch machinery drops every bypassed index — but wastes the
        incremental-maintenance work).
    indexes:
        Which index handles the planner may choose from, in addition
        to the always-available exact brute-force filter.  Handles
        whose index cannot serve this dataset (the UV-index off 2D)
        are ignored.
    result_cache_size / memo_radius:
        Forwarded to every engine (see :class:`~repro.engine.BaseEngine`).
    n_bins:
        Histogram resolution for bound-based engines (top-k, threshold).
    page_cost_us:
        Planner weight of one simulated page read (µs); 0 plans for
        pure wall-clock.
    index_options:
        Per-handle builder keyword overrides, e.g.
        ``{"uv": {"k_cand": 64}}``.

    A Database is a context manager (``with Database(ds) as db: ...``);
    :meth:`close` drains any attached server and releases derived
    state.  For concurrent clients, :meth:`serve` attaches the
    submit-and-serve layer (:mod:`repro.service`): sessions submit the
    same seven verbs and receive :class:`~repro.service.QueryFuture`
    values, while the scheduler coalesces same-template queries into
    batched kernel dispatches and serializes mutations as epoch
    barriers.
    """

    def __init__(
        self,
        dataset: UncertainDataset,
        *,
        indexes: Sequence[str] = ("pv", "rtree", "uv"),
        result_cache_size: int = 128,
        memo_radius: float = 0.0,
        n_bins: int = 8,
        page_cost_us: float = 0.0,
        index_options: Mapping[str, Mapping[str, Any]] | None = None,
        planner: Planner | None = None,
    ) -> None:
        self.dataset = dataset
        self.result_cache_size = result_cache_size
        self.memo_radius = memo_radius
        self.n_bins = n_bins
        self.planner = planner or Planner(page_cost_us=page_cost_us)
        options = {
            name: dict(kwargs)
            for name, kwargs in (index_options or {}).items()
        }
        self._handles: dict[str, IndexHandle] = {}
        for name in indexes:
            handle = self._make_handle(name, options.get(name, {}))
            if handle is not None:
                self._handles[name] = handle
        self._handles[_BRUTE] = IndexHandle(
            _BRUTE,
            dataset,
            lambda ds: BruteForceRetriever(ds),
            maintainable=False,
        )
        self._engines: dict[tuple[str, str], BaseEngine] = {}
        self._epoch_seen = dataset.epoch
        #: Guards planning, handle, and engine-table bookkeeping so
        #: concurrent callers (direct threads or the serving layer's
        #: workers) see consistent derived state.  Engine *execution*
        #: happens outside this lock, under each engine's own lock —
        #: different query kinds run concurrently.
        self._lock = make_rlock("db.lock")
        #: Serializes mutation apply + subscription pump as one unit
        #: (re-entrant: the mutating thread pumps under it).  Held
        #: *around* ``_lock``, never acquired while holding it — pump
        #: re-executions take engine locks that readers hold while
        #: waiting on ``_lock``.
        self._mutation_order = make_rlock("db.mutation_order")
        self._server: "UncertainDBServer | None" = None
        self._subscriptions: Any = None  # SubscriptionManager, lazy
        self._durable: Any = None  # DurableStore when opened via open()
        self._closed = False

    @classmethod
    def from_objects(
        cls,
        objects: Iterable[UncertainObject],
        domain=None,
        **kwargs: Any,
    ) -> "Database":
        """Build a session directly from uncertain objects."""
        return cls(UncertainDataset(objects, domain=domain), **kwargs)

    @classmethod
    def open(
        cls,
        path: str,
        *,
        dataset: UncertainDataset | None = None,
        fsync: str = "always",
        on_wal_error: str = "fail_stop",
        **kwargs: Any,
    ) -> "Database":
        """Open (or create) a durable database directory.

        When ``path`` already holds a database (``snapshot.bin``), the
        dataset is recovered — the snapshot is memory-mapped and the
        write-ahead log replayed on top, restoring the exact mutation
        epoch of the crashed or closed session; indexes rehydrate
        lazily through the normal :class:`IndexHandle` machinery the
        first time a plan selects them.  Otherwise ``dataset`` seeds a
        fresh directory.

        From then on every :meth:`insert` / :meth:`delete` appends a
        checksummed WAL record *before* it applies (the mutation epoch
        is the log sequence number), so a SIGKILL at any moment loses
        nothing under ``fsync="always"`` and at most the unsynced tail
        under ``fsync="off"``.  :meth:`checkpoint` folds the log into a
        fresh snapshot; :meth:`close` seals the directory.

        ``on_wal_error`` picks the WAL write-failure policy (see
        :class:`~repro.storage.DurableStore`): ``"fail_stop"`` re-raises
        the I/O error per mutation; ``"read_only"`` degrades the store
        — mutations raise :class:`~repro.storage.StoreReadOnly` while
        reads keep being served, and :meth:`describe` reports
        ``degraded_mode``.

        Remaining keyword arguments go to the :class:`Database`
        constructor.
        """
        from ..storage.durable import DurableStore

        store = DurableStore(path, fsync=fsync, on_wal_error=on_wal_error)
        if DurableStore.exists(path):
            if dataset is not None:
                raise ValueError(
                    f"{path} already holds a database; open it without "
                    "a dataset (the snapshot + WAL define the contents)"
                )
            dataset = store.recover()
        else:
            if dataset is None:
                raise ValueError(
                    f"{path} is empty; a dataset is required to create "
                    "a new durable database"
                )
            store.initialize(dataset)
        store.attach(dataset)
        db = cls(dataset, **kwargs)
        db._durable = store
        return db

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """The dataset's mutation epoch."""
        return self.dataset.epoch

    @property
    def dims(self) -> int:
        """Dimensionality of the attribute space."""
        return self.dataset.dims

    @property
    def built_indexes(self) -> tuple[str, ...]:
        """Names of handles whose index is currently built (stale
        handles are reconciled first, like every other entry point)."""
        with self._lock:
            self._sync()
            return tuple(
                name
                for name, handle in self._handles.items()
                if handle.index is not None
            )

    def index(self, name: str) -> Any:
        """The named index, building it if needed (power-user escape
        hatch; ``"brute"`` returns the exact fallback retriever)."""
        with self._lock:
            self._sync()
            handle = self._handles.get(name)
            if handle is None:
                raise KeyError(
                    f"unknown or ineligible index {name!r} "
                    f"(available: {sorted(self._handles)})"
                )
        return handle.ensure_built()

    def __len__(self) -> int:
        return len(self.dataset)

    def __repr__(self) -> str:
        return (
            f"Database(n={len(self.dataset)}, dims={self.dims}, "
            f"epoch={self.epoch}, built={list(self.built_indexes)})"
        )

    # ------------------------------------------------------------------
    # The declarative query surface
    # ------------------------------------------------------------------
    def nn(
        self,
        query: Any,
        *,
        retriever: str | None = None,
        timeout: float | None = None,
    ) -> QueryResult:
        """Probabilistic NN (the paper's PNNQ) at a point.

        ``timeout`` (seconds) is the query's time budget on a served
        database: it bounds queue time (an expired query is failed at
        dispatch without executing) and result wait (the call raises
        :class:`~repro.service.QueryTimeout` instead of blocking past
        it).  Unserved, execution is inline and uninterruptible, so
        the budget is advisory only.
        """
        return self._execute("nn", query, (), retriever, timeout)

    def knn(
        self,
        query: Any,
        k: int = 1,
        *,
        retriever: str | None = None,
        timeout: float | None = None,
    ) -> QueryResult:
        """Probabilistic k-NN at a point."""
        return self._execute("knn", query, (("k", k),), retriever, timeout)

    def topk(
        self,
        query: Any,
        k: int = 1,
        *,
        retriever: str | None = None,
        timeout: float | None = None,
    ) -> QueryResult:
        """The k objects most likely to be the NN of ``query``."""
        return self._execute("topk", query, (("k", k),), retriever, timeout)

    def threshold(
        self,
        query: Any,
        p: float = 0.1,
        *,
        retriever: str | None = None,
        timeout: float | None = None,
    ) -> QueryResult:
        """Which objects have qualification probability >= ``p``."""
        return self._execute(
            "threshold", query, (("tau", p),), retriever, timeout
        )

    def group_nn(
        self,
        queries: Any,
        aggregate: str = "sum",
        *,
        retriever: str | None = None,
        timeout: float | None = None,
    ) -> QueryResult:
        """Group NN over a set of query points."""
        return self._execute(
            "group_nn", queries, (("aggregate", aggregate),), retriever,
            timeout,
        )

    def reverse_nn(
        self,
        query_object: UncertainObject,
        *,
        timeout: float | None = None,
    ) -> QueryResult:
        """Objects that may have ``query_object`` as *their* NN."""
        return self._execute("reverse_nn", query_object, (), None, timeout)

    def expected_nn(
        self,
        query: Any,
        top: int | None = None,
        *,
        retriever: str | None = None,
        timeout: float | None = None,
    ) -> QueryResult:
        """Expected-distance NN ranking at a point."""
        return self._execute(
            "expected_nn", query, (("top", top),), retriever, timeout
        )

    def batch(
        self,
        specs: Sequence[QuerySpec],
        *,
        retriever: str | None = None,
    ) -> list[QueryResult]:
        """Execute a declarative block of queries.

        Specs sharing a (kind, parameters) template are planned once
        and executed through the engine's ``query_batch`` — inheriting
        its dedup, Step-1 memoization, and vectorized Step-2 — and
        results return in input order.  Each envelope in a group
        carries the same :class:`~repro.engine.ExecutionStats` delta
        (batched work is not separable per query).

        On a served database the specs are submitted through the
        scheduler (where they may coalesce with other sessions'
        in-flight queries) and this call blocks until all complete.
        """
        server = self._server
        if server is not None:
            futures = []
            try:
                for spec in specs:
                    futures.append(
                        server.submit(
                            spec.kind, spec.query, spec.params, retriever
                        )
                    )
            except SchedulerClosed:
                # Server shut down mid-submission.  The accepted
                # futures still complete (drain guarantee) — wait for
                # the drain, harvest them, and run only the rejected
                # remainder inline.  Nothing executes twice.
                server.close()
            if len(futures) == len(specs):
                return [future.result() for future in futures]
            head = [future.result() for future in futures]
            return head + self._batch_direct(
                list(specs[len(futures):]), retriever
            )
        return self._batch_direct(list(specs), retriever)

    def _batch_direct(
        self,
        specs: Sequence[QuerySpec],
        retriever: str | None,
    ) -> list[QueryResult]:
        """The unserved :meth:`batch` path: group and execute inline."""
        results: list[QueryResult | None] = [None] * len(specs)
        groups: dict[tuple[str, tuple], list[int]] = {}
        for i, spec in enumerate(specs):
            if spec.kind not in _KINDS:
                raise KeyError(f"unknown query kind {spec.kind!r}")
            groups.setdefault((spec.kind, spec.params), []).append(i)
        for (kind, params), positions in groups.items():
            envelopes = self._execute_group(
                kind, [specs[i].query for i in positions], params, retriever
            )
            for i, envelope in zip(positions, envelopes):
                results[i] = envelope
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def explain(
        self,
        kind: str | QuerySpec,
        *,
        retriever: str | None = None,
        **params: Any,
    ) -> Plan:
        """The plan the next query of this template would execute with.

        Accepts a kind name plus its parameters (``db.explain("knn",
        k=3)``) or a ready :class:`QuerySpec`.  Pure planning: no
        query runs and no index is built.

        On a process-served database the returned plan additionally
        carries the pool's scale-out telemetry in ``plan.scaleout``
        (workers, shard counts, scatter/prune counters, per-worker
        busy seconds); the planner's cached plans stay bare.
        """
        with self._lock:
            self._sync()
            if isinstance(kind, QuerySpec):
                plan = self._plan(kind.kind, kind.params, forced=retriever)
            else:
                if kind == "threshold" and "p" in params:
                    params["tau"] = params.pop("p")
                plan = self._plan(
                    kind, _params_key(params), forced=retriever
                )
        snapshot = getattr(self._server, "scaleout_snapshot", None)
        if snapshot is not None:
            plan = dataclasses.replace(plan, scaleout=snapshot())
        return plan

    def _plan(
        self,
        kind: str,
        params: tuple[tuple[str, Any], ...],
        forced: str | None,
    ) -> Plan:
        if kind not in _KINDS:
            raise KeyError(f"unknown query kind {kind!r}")
        fixed = self._fixed_choice(kind, dict(params))
        return self.planner.plan(
            kind=kind,
            params=params,
            epoch=self.dataset.epoch,
            handles=list(self._handles.values()),
            forced=forced,
            fixed=fixed,
        )

    def _fixed_choice(
        self, kind: str, params: Mapping[str, Any]
    ) -> tuple[str, str, CostEstimate | None, str] | None:
        """Kinds whose Step-1 source is not a cost decision.

        Each returns its own ``cost_kind`` observation bucket: these
        run structurally different Step-1 filters than the cost-based
        variant of the same kind, so their measured timings must not
        calibrate it (e.g. the exact k>1 filter is far slower than the
        k=1 min-max pass both labelled "knn" would otherwise share).
        """
        if kind == "reverse_nn":
            # Per-object domination test: one batched margin-bounds
            # call (Python + numpy) against every other region.
            n = len(self.dataset)
            estimate = CostEstimate(
                step1_us=30.0 + 18.0 * n,
                page_reads=0.0,
                candidates=float(max(1, n // 10)),
                source="static",
            )
            return (
                _NONE,
                "domination-based Step 1 over object regions; "
                "point retrievers do not apply",
                estimate,
                "reverse_nn",
            )
        if kind == "knn" and params.get("k", 1) > 1:
            return (
                _BRUTE,
                "k > 1 widens Step 1 to the exact k-th-maxdist filter "
                "over the whole database; indexes accelerate only k = 1",
                None,
                "knn:exact",
            )
        if kind == "group_nn" and params.get("aggregate") != "min":
            return (
                _BRUTE,
                "sum/max aggregates run the direct aggregate-bound "
                "filter; an index narrows only the min aggregate",
                None,
                "group_nn:direct",
            )
        return None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute(
        self,
        kind: str,
        query: Any,
        params: tuple[tuple[str, Any], ...],
        retriever: str | None,
        timeout: float | None = None,
    ) -> QueryResult:
        """One query through the front door.

        On a served database this is a thin one-shot session: the
        query is submitted to the coalescing scheduler (where it may
        ride a batched kernel dispatch with other sessions' queries)
        and this call blocks on its future — never past ``timeout``
        seconds when one is given (the deadline rides the future).
        Unserved, it runs the same group-execution path inline with a
        single-element group.
        """
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive seconds")
        server = self._server
        if server is not None:
            deadline = (
                None if timeout is None else time.monotonic() + timeout
            )
            try:
                return server.submit(
                    kind, query, params, retriever, deadline
                ).result()
            except SchedulerClosed:
                # Server shut down mid-call.  Wait for its queue to
                # drain fully (close() is idempotent and joins the
                # workers) before running inline — an inline execution
                # overlapping the drain would break the barrier
                # contract the scheduler enforces.
                server.close()
        return self._execute_group(kind, [query], params, retriever)[0]

    def _execute_group(
        self,
        kind: str,
        queries: Sequence[Any],
        params: tuple[tuple[str, Any], ...],
        retriever: str | None,
    ) -> list[QueryResult]:
        """Plan once and execute one coalesced (kind, params) group.

        The single execution path beneath the synchronous verbs,
        :meth:`batch`, and the serving scheduler's dispatch.  Planning
        and bookkeeping run under the database lock; the engine call
        itself runs outside it (under the engine's own lock), so
        groups of different kinds execute concurrently.
        """
        with self._lock:
            self._sync()
            plan = self._plan(kind, params, forced=retriever)
        # Outside the database lock: a cold plan may build its index
        # here (once-guarded per handle), and the engine call runs
        # under the engine's own lock — other templates keep planning
        # and executing meanwhile.
        engine = self._engine_for(kind, plan.retriever)
        kwargs = dict(params)
        if len(queries) == 1:
            answer, delta = engine.query_measured(queries[0], **kwargs)
            answers = [answer]
        else:
            answers, delta = engine.query_batch_measured(
                list(queries), **kwargs
            )
        with self._lock:
            self._observe(plan, delta)
        durable = self._durable
        if durable is not None and durable.read_only:
            delta.degraded_mode = 1
        return [
            QueryResult(kind=kind, answer=answer, plan=plan, stats=delta)
            for answer in answers
        ]

    def _observe(self, plan: Plan, delta) -> None:
        """Feed real per-step wall-clock back into the planner."""
        executed = delta.queries - delta.cache_hits - delta.dedup_hits
        if executed <= 0:
            return
        if plan.retriever != _NONE:
            self.planner.observe(
                plan.retriever,
                plan.cost_kind,
                delta.object_retrieval / executed,
            )
        # Step 2 is retriever-independent; its observed cost (with the
        # kernel's gather/eval split) calibrates the shared term of
        # every retriever's score and shows up in ``db.explain``.
        self.planner.observe_step2(
            plan.cost_kind,
            delta.probability_computation / executed,
            delta.kernel_gather_seconds / executed,
            delta.kernel_eval_seconds / executed,
        )

    def _engine_for(self, kind: str, retriever_name: str) -> BaseEngine:
        """The cached engine for a (kind, retriever) pair.

        A cold pair's index build runs *outside* the database lock —
        the per-handle once-guard serializes concurrent builders, so a
        slow PV build never blocks planning of other templates.  Only
        the dict probes and the engine registration hold ``_lock``.
        """
        key = (kind, retriever_name)
        with self._lock:
            engine = self._engines.get(key)
            if engine is not None:
                return engine
            handle = (
                None
                if retriever_name in (_NONE, _BRUTE)
                else self._handles[retriever_name]
            )
        index, secondary = None, None
        freshly_built = False
        if handle is not None:
            freshly_built = handle.index is None
            index = handle.ensure_built()
            secondary = handle.secondary
        with self._lock:
            engine = self._engines.get(key)
            if engine is not None:
                return engine
            if freshly_built:
                # The index's calibrated cost_estimate() now
                # supersedes the static formula: revisit plans.
                self.planner.bump_generation()
            spec = _KINDS[kind]
            kwargs: dict[str, Any] = {
                "secondary": secondary,
                "result_cache_size": self.result_cache_size,
                "memo_radius": self.memo_radius,
            }
            if spec.takes_n_bins:
                kwargs["n_bins"] = self.n_bins
            engine = spec.engine_cls(self.dataset, index, **kwargs)
            self._engines[key] = engine
            return engine

    # ------------------------------------------------------------------
    # Mutation: incremental maintenance behind the session
    # ------------------------------------------------------------------
    def insert(self, obj: UncertainObject) -> None:
        """Add an object, maintaining one built index incrementally.

        The first in-sync maintainable index (PV preferred, then UV)
        absorbs the mutation — dataset and index evolve together, as
        in the paper's Section VI-B.  Every other built index is left
        one epoch behind by that single mutation and therefore dropped
        (rebuilt lazily if the planner picks it again); the plan cache
        is invalidated so the next query replans.

        On a served database the mutation is submitted as an **epoch
        barrier**: every read queued before it completes first (at the
        pre-mutation epoch), then the mutation applies alone, then
        later reads see the new epoch.  This call blocks until the
        barrier has been applied.
        """
        server = self._server
        if server is not None:
            try:
                server.submit_mutation("insert", obj).result()
                return
            except SchedulerClosed:
                server.close()  # drain fully, then apply inline
        self._apply_insert(obj)

    def delete(self, oid: int) -> UncertainObject:
        """Remove and return an object (see :meth:`insert`)."""
        server = self._server
        if server is not None:
            try:
                return server.submit_mutation("delete", oid).result()
            except SchedulerClosed:
                server.close()  # drain fully, then apply inline
        return self._apply_delete(oid)

    def _apply_insert(self, obj: UncertainObject) -> None:
        """The mutation itself (scheduler barrier entry point).

        Holds the mutation-order lock across apply *and* subscription
        pump, so standing queries re-execute at exactly this epoch
        before the next mutation can land; the pump itself runs
        outside ``_lock`` (its re-executions take engine locks that
        concurrent readers hold while waiting on ``_lock``).
        """
        with self._mutation_order:
            with self._lock:
                carrier = self._maintenance_carrier()
                if carrier is not None:
                    carrier.index.insert(obj)
                else:
                    self.dataset.insert(obj)
                self._sync()
            self._pump_subscriptions()

    def _apply_delete(self, oid: int) -> UncertainObject:
        """The mutation itself (scheduler barrier entry point)."""
        with self._mutation_order:
            with self._lock:
                removed = self.dataset[oid]
                carrier = self._maintenance_carrier()
                if carrier is not None:
                    carrier.index.delete(oid)
                else:
                    self.dataset.delete(oid)
                self._sync()
            self._pump_subscriptions()
            return removed

    def _pump_subscriptions(self) -> None:
        manager = self._subscriptions
        if manager is not None:
            manager.pump()

    def _maintenance_carrier(self) -> IndexHandle | None:
        """The built, in-sync index that will absorb the mutation."""
        for name in ("pv", "uv"):
            handle = self._handles.get(name)
            if handle is not None and handle.maintainable and handle.in_sync():
                return handle
        return None

    # ------------------------------------------------------------------
    # Continuous queries: standing subscriptions over mutations
    # ------------------------------------------------------------------
    def subscribe(
        self,
        kind: str,
        query: Any = None,
        *,
        retriever: str | None = None,
        max_pending: int = 256,
        eager: bool = False,
        **params: Any,
    ) -> "Subscription":
        """Register a standing query over the mutation stream.

        Any of the seven verbs, same parameters as the one-shot
        methods (``db.subscribe("knn", q, k=3)``; ``threshold``
        accepts ``p`` like :meth:`threshold`).  Returns a
        :class:`~repro.service.Subscription` whose first revision is
        the baseline answer at the current epoch (``changed=False``);
        thereafter every mutation epoch that changes the answer pushes
        exactly one epoch-tagged revision, and epochs that provably
        (or by re-execution) leave it unchanged are counted as
        suppressed.  ``eager=True`` disables the relevance filter and
        re-executes at every epoch — same revision stream, no
        filtering (the differential baseline).

        ``max_pending`` bounds the per-subscription revision queue: a
        consumer lagging past it is closed and its next read past the
        buffer raises :class:`~repro.service.RevisionOverflow`.
        """
        from ..service.subscriptions import SubscriptionManager

        with self._lock:
            if self._closed:
                raise RuntimeError("Database is closed")
            if kind not in _KINDS:
                raise KeyError(f"unknown query kind {kind!r}")
            manager = self._subscriptions
            if manager is None:
                manager = self._subscriptions = SubscriptionManager(self)
        if kind == "threshold" and "p" in params:
            params["tau"] = params.pop("p")
        merged = {**_SUBSCRIBE_DEFAULTS.get(kind, {}), **params}
        return manager.subscribe(
            kind,
            query,
            _params_key(merged),
            retriever,
            max_pending=max_pending,
            eager=eager,
        )

    @property
    def subscriptions(self) -> Any:
        """The subscription manager (``None`` until first subscribe)."""
        return self._subscriptions

    def describe(self) -> dict[str, Any]:
        """A structured snapshot of the session's live state.

        Covers the dataset (size, dims, epoch), which index handles
        are built, durability and serving status, and — when standing
        subscriptions exist — their live counts and per-subscription
        emit/suppress counters.
        """
        with self._lock:
            self._sync()
            built = tuple(
                name
                for name, handle in self._handles.items()
                if handle.index is not None
            )
            server = self._server
            manager = self._subscriptions
        durable = self._durable
        info: dict[str, Any] = {
            "n": len(self.dataset),
            "dims": self.dims,
            "epoch": self.epoch,
            "indexes": {
                "available": sorted(self._handles),
                "built": list(built),
            },
            "durable": self.durable,
            "degraded_mode": bool(
                durable is not None and durable.read_only
            ),
            "serving": type(server).__name__ if server is not None else None,
            "closed": self._closed,
        }
        recovery = getattr(server, "recovery_snapshot", None)
        info["recovery"] = (
            recovery()
            if recovery is not None
            else {"retries": 0, "worker_restarts": 0, "deadline_misses": 0}
        )
        if manager is not None:
            info["subscriptions"] = manager.describe()
        else:
            info["subscriptions"] = {
                "live": 0,
                "revisions_emitted": 0,
                "revisions_suppressed": 0,
                "entries": [],
            }
        return info

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    @property
    def durable(self) -> bool:
        """True when this session persists through a durable store."""
        return self._durable is not None

    def checkpoint(self) -> int:
        """Fold the write-ahead log into a fresh snapshot.

        Writes the packed instance store to the snapshot file (atomic
        rename; durable before the log is touched) and truncates the
        WAL.  Returns the checkpointed epoch.  Only valid on a
        database opened with :meth:`open`.

        On a served database, callers should quiesce mutations first
        (the process-pool re-attach fence does this automatically);
        the database lock excludes direct-path mutations for the
        duration.
        """
        if self._durable is None:
            raise RuntimeError(
                "not a durable database; use Database.open(path)"
            )
        with self._lock:
            return self._durable.checkpoint()

    # ------------------------------------------------------------------
    # Serving: the concurrent submit-and-serve surface
    # ------------------------------------------------------------------
    def serve(self, **options: Any) -> UncertainDBServer:
        """Attach (or return) the concurrent serving layer.

        Starts an :class:`~repro.service.UncertainDBServer` over this
        database — worker threads plus a scheduler that coalesces
        concurrent same-template point queries into one batched kernel
        dispatch and serializes mutations as epoch barriers.  Client
        code opens :class:`~repro.service.Session` objects via
        ``db.serve().session()``; while a server is attached the
        synchronous verbs (``db.nn`` etc.) become thin one-shot
        sessions — they submit into the same scheduler and block on
        the future, so they obey the same consistency contract.

        ``mode="process"`` selects the shared-memory
        :class:`~repro.service.ProcessPoolServer` instead: the packed
        instance store is exported into shared memory, worker
        *processes* attach it zero-copy, and group execution scatters
        over the pool with sharded Step-1 pruning — same client
        surface, same epoch-barrier consistency contract, no GIL on
        the compute path.  Process-mode extras (``n_shards``,
        ``scatter_min``) are forwarded too.

        Idempotent while a server is live: a second ``serve()`` call
        returns the running server (``options`` must then be empty).
        ``options`` are forwarded to the server constructor
        (``workers``, ``max_group``).
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("Database is closed")
            if self._server is not None:
                if options:
                    raise ValueError(
                        "a server is already attached; close() it "
                        "before re-serving with different options"
                    )
                return self._server
            mode = options.pop("mode", "thread")
            if mode == "process":
                from ..service import ProcessPoolServer

                self._server = ProcessPoolServer(self, **options)
            elif mode == "thread":
                from ..service import UncertainDBServer

                self._server = UncertainDBServer(self, **options)
            else:
                raise ValueError(
                    f"unknown serve mode {mode!r} "
                    "(expected 'thread' or 'process')"
                )
            return self._server

    @property
    def server(self) -> UncertainDBServer | None:
        """The attached serving layer, if :meth:`serve` was called."""
        return self._server

    def _detach_server(self, server: UncertainDBServer) -> None:
        """Forget a server that shut itself down (server.close path)."""
        with self._lock:
            if self._server is server:
                self._server = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release everything the session owns.

        Shuts down an attached server (draining queued queries),
        drops every built index handle and engine, and detaches the
        dataset's packed instance store.  A durable session first
        checkpoints (so reopening skips WAL replay) and then seals its
        store — later direct mutations of the dataset raise instead of
        going unlogged.  Idempotent: double-close is a no-op.  The
        database object itself remains usable for queries — a later
        query lazily rebuilds what it needs — but ``serve()`` refuses
        after close.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            server = self._server
            manager = self._subscriptions
        try:
            if manager is not None:
                # Detach the manager's mutation listener and wake every
                # consumer *before* the server drain: queued mutations
                # still apply, but no longer fan out into re-executions
                # nobody will read.
                manager.close()
            if server is not None:
                # Drain before detaching: verbs that still hold the
                # server reference either ride the drain or hit
                # SchedulerClosed and themselves wait on close() —
                # nothing executes inline beside the draining queue.
                # The server detaches itself (sets ``_server`` to
                # None) once fully stopped.  A process-pool server's
                # close additionally terminates its workers and
                # unlinks the shared segment even when a worker died
                # mid-query.
                server.close()
        finally:
            with self._lock:
                durable = self._durable
                if durable is not None:
                    # Checkpoint so the next open() maps the snapshot
                    # and replays nothing; then seal the store.  A
                    # failed checkpoint still closes — the WAL holds
                    # everything the snapshot is missing.  A store
                    # degraded to read-only refuses checkpoints (the
                    # on-disk state is the last trustworthy one), so
                    # skip straight to sealing it.
                    try:
                        if not durable.read_only:
                            durable.checkpoint()
                    finally:
                        durable.close()
                for handle in self._handles.values():
                    handle.drop()
                self._engines.clear()
                self.planner.invalidate()
                self.dataset.release_instance_store()

    def __enter__(self) -> Database:
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _sync(self) -> None:
        """Reconcile derived state with the dataset's mutation epoch.

        Called on every public entry point.  On drift: built handles
        that were not maintained through the mutation are dropped along
        with their engines (their retrievers would otherwise silently
        decay to brute force inside :class:`~repro.engine.BaseEngine`,
        breaking the plan's retriever claim), and the plan cache is
        invalidated.
        """
        epoch = self.dataset.epoch
        if epoch == self._epoch_seen:
            return
        self._epoch_seen = epoch
        for name, handle in self._handles.items():
            if handle.index is None or name == _BRUTE:
                continue
            if not handle.in_sync():
                handle.drop()
                self._engines = {
                    key: engine
                    for key, engine in self._engines.items()
                    if key[1] != name
                }
        self.planner.invalidate()

    def _make_handle(
        self, name: str, options: dict[str, Any]
    ) -> IndexHandle | None:
        if name == "pv":
            return IndexHandle(
                "pv",
                self.dataset,
                lambda ds: PVIndex.build(ds, **options),
                maintainable=True,
            )
        if name == "rtree":
            return IndexHandle(
                "rtree",
                self.dataset,
                lambda ds: RTreePNNQ.build(ds, **options),
                maintainable=False,
            )
        if name == "uv":
            if self.dataset.dims != 2:
                return None  # the UV-index is 2D-only
            options.setdefault("k_cand", 32)
            return IndexHandle(
                "uv",
                self.dataset,
                lambda ds: UVIndex.build(ds, **options),
                maintainable=True,
            )
        if name == _BRUTE:
            return None  # implicit; added unconditionally
        raise PlanningError(
            f"unknown index handle {name!r} "
            "(expected 'pv', 'rtree', or 'uv')"
        )
