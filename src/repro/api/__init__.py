"""repro.api — the declarative session API (the library's front door).

One object, :class:`Database`, replaces the seed's seven per-engine
entry points: it owns the dataset, lazily builds and incrementally
maintains the Step-1 indexes behind named handles, plans the retriever
per query with an explainable cost model, and returns frozen
:class:`QueryResult` envelopes::

    from repro import synthetic_dataset
    from repro.api import Database, Q

    db = Database(synthetic_dataset(n=500, dims=2, seed=0))
    r = db.nn([5000.0, 5000.0])
    r.best                      # most probable NN
    r.plan.retriever            # which index answered Step 1
    db.explain("knn", k=3)      # the plan, without running anything
    db.batch([Q.nn([1.0, 2.0]), Q.topk([3.0, 4.0], k=5)])

The direct engine classes in :mod:`repro.core` remain available for
research code that wants to hold an index in hand; new code should
start here.
"""

from .database import Database, IndexHandle
from .planner import Plan, Planner, PlanningError, STATIC_ESTIMATES
from .result import Q, QueryResult, QuerySpec

__all__ = [
    "Database",
    "IndexHandle",
    "Plan",
    "Planner",
    "PlanningError",
    "STATIC_ESTIMATES",
    "Q",
    "QueryResult",
    "QuerySpec",
]
