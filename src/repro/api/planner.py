"""The cost-based retriever planner behind :class:`repro.api.Database`.

The paper's evaluation (Fig 9) shows no Step-1 retriever dominates:
the PV-index wins in low dimensions, brute force on small or
high-dimensional databases, the R-tree and UV-index in between.  The
seed API pushed that choice onto every caller; the planner makes it
per query:

1. Every eligible retriever handle is scored with a
   :class:`~repro.engine.CostEstimate` — from the built index's own
   ``cost_estimate()`` hook when it exists, otherwise from the static
   formulas in :data:`STATIC_ESTIMATES` (both documented in the README
   "cost model" section).
2. Observed Step-1 wall-clock feeds back: the planner keeps an
   exponential moving average per ``(retriever, kind)`` and substitutes
   it for the estimated ``step1_us`` once real queries have run, so a
   mis-estimated index loses the next planning round.
3. The decision is recorded in an explainable, frozen :class:`Plan`
   (surfaced by ``db.explain``) and cached keyed by *query template* —
   ``(kind, params, dataset epoch, forced choice)`` — so planning is
   one dict probe on the hot path.  Epoch drift changes the key, which
   is how mutations force a replan.

Scores are microseconds-per-query equivalents::

    score = step1_us + page_cost_us * page_reads + step2_us(kind, cands)

``page_cost_us`` defaults to 0 — the simulated pager costs no real
time here — and models real disks when raised (100–10000 µs/page).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Mapping, Protocol, Sequence

from ..engine import CostEstimate, FrozenDict, expected_candidates

__all__ = [
    "Plan",
    "Planner",
    "PlanningError",
    "STATIC_ESTIMATES",
    "step2_us",
]


class PlanningError(ValueError):
    """No eligible retriever could be planned for a query."""


# ----------------------------------------------------------------------
# Static (pre-build) cost formulas, one per retriever handle.
# ----------------------------------------------------------------------
def _static_brute(n: int, dims: int) -> CostEstimate:
    # One broadcasted numpy pass over all n regions; no index pages.
    return CostEstimate(
        step1_us=20.0 + 0.012 * n * dims,
        page_reads=0.0,
        candidates=expected_candidates(n, dims),
    )


def _static_pv(n: int, dims: int) -> CostEstimate:
    # One descent + one leaf read + a Python filter over the leaf's
    # entries (a small multiple of the final candidate count).
    leaf = 3.0 * expected_candidates(n, dims)
    return CostEstimate(
        step1_us=30.0 + 0.9 * leaf * dims**0.5,
        page_reads=1.0,
        candidates=expected_candidates(n, dims),
    )


def _static_rtree(n: int, dims: int) -> CostEstimate:
    # Branch-and-prune pays Python heap work per visited entry — a
    # constant-factor handicap against the PV-index's leaf filter.
    leaf = 3.0 * expected_candidates(n, dims)
    return CostEstimate(
        step1_us=45.0 + 1.4 * leaf * dims**0.5,
        page_reads=2.0,
        candidates=expected_candidates(n, dims),
    )


def _static_uv(n: int, dims: int) -> CostEstimate:
    # Grid descent like the PV-index, plus an O(n) per-query id->row
    # rebuild (see UVIndex.cost_estimate) that scales with the database.
    leaf = 3.0 * expected_candidates(n, dims)
    return CostEstimate(
        step1_us=25.0 + 0.05 * n + 1.3 * leaf,
        page_reads=1.0,
        candidates=expected_candidates(n, dims),
    )


#: name -> f(n, dims) -> CostEstimate for a not-yet-built index.
STATIC_ESTIMATES: dict[str, Callable[[int, int], CostEstimate]] = {
    "brute": _static_brute,
    "pv": _static_pv,
    "rtree": _static_rtree,
    "uv": _static_uv,
}

#: Per-candidate Step-2 weight by query kind (µs).  Step 2 is still
#: quadratic in the candidate count (every candidate's instances are
#: ranked against every competitor), but the tensorized kernel
#: amortizes it across one global sort + log-walk, so the per-pair
#: constants are a fraction of the pre-tensorization values.  These
#: are cold-start seeds only: once queries run, the planner's observed
#: Step-2 EMA (see :meth:`Planner.observe_step2`) supersedes them.
_STEP2_QUADRATIC_US = {
    "nn": 0.3,
    "knn": 0.5,
    "topk": 0.2,
    "threshold": 0.2,
    "group_nn": 0.5,
}


def step2_us(kind: str, params: Mapping[str, Any], candidates: float) -> float:
    """Estimated Step-2 (probability computation) microseconds.

    Identical across retrievers up to their candidate-set estimates —
    all Step-1 sources feed the same exact Step-2 kernels — so this
    term mostly documents *why* a query is expensive rather than
    discriminating between retrievers.
    """
    quad = _STEP2_QUADRATIC_US.get(kind)
    if quad is None:
        return 0.5 * candidates
    k = params.get("k", 1) if kind == "knn" else 1
    return quad * k * candidates * candidates


class PlannableHandle(Protocol):
    """What the planner needs from a retriever handle."""

    name: str

    def cost_estimate(self) -> CostEstimate:
        """Current per-query estimate (index-calibrated or static)."""
        ...


@dataclass(frozen=True)
class Plan:
    """One explainable, frozen planning decision.

    ``scores`` maps every *considered* retriever to its total score in
    microsecond equivalents; ``estimates`` holds the underlying
    :class:`~repro.engine.CostEstimate` inputs.  ``retriever`` is the
    handle the engine will actually execute with — asserted identical
    in the API tests.
    """

    kind: str
    params: tuple[tuple[str, Any], ...]
    retriever: str
    reason: str
    epoch: int
    scores: Mapping[str, float] = field(default_factory=FrozenDict)
    estimates: Mapping[str, CostEstimate] = field(
        default_factory=FrozenDict
    )
    forced: bool = False
    #: Observation bucket this plan's Step-1 timings calibrate.  Equals
    #: ``kind`` for cost-based plans; policy-fixed plans that run a
    #: structurally different Step 1 (e.g. the exact k>1 filter) get a
    #: distinct bucket so their timings cannot skew the cost-based
    #: variant's estimates.
    cost_kind: str = ""
    #: Observed Step-2 calibration backing this plan's scores, in µs
    #: per query: ``{"step2": total, "gather": pdf-fetch share,
    #: "eval": kernel share}`` — the planner-side view of the engines'
    #: ``kernel_gather_seconds`` / ``kernel_eval_seconds`` counters,
    #: surfaced by ``db.explain``.  Empty until queries of this kind
    #: have run.
    step2_observed: Mapping[str, float] = field(default_factory=FrozenDict)
    #: Scale-out telemetry when a process-pool server is attached —
    #: pool mode/size, shard counts, scatter and prune counters, and
    #: per-worker busy seconds.  ``db.explain`` stamps it onto the
    #: returned copy only (plans cached by the planner stay bare);
    #: empty on an unserved or thread-served database.
    scaleout: Mapping[str, Any] = field(default_factory=FrozenDict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "scores", FrozenDict(self.scores))
        object.__setattr__(self, "estimates", FrozenDict(self.estimates))
        object.__setattr__(
            self, "step2_observed", FrozenDict(self.step2_observed)
        )
        object.__setattr__(self, "scaleout", FrozenDict(self.scaleout))
        if not self.cost_kind:
            object.__setattr__(self, "cost_kind", self.kind)

    @property
    def cost(self) -> float | None:
        """The chosen retriever's score (µs equivalents), if scored."""
        return self.scores.get(self.retriever)

    def describe(self) -> str:
        """A human-readable multi-line explanation."""
        lines = [
            f"{self.kind}{dict(self.params) or ''} -> {self.retriever}"
            f" (epoch {self.epoch})",
            f"  reason: {self.reason}",
        ]
        for name in sorted(self.scores, key=self.scores.__getitem__):
            est = self.estimates[name]
            marker = "*" if name == self.retriever else " "
            lines.append(
                f"  {marker} {name:<6} {self.scores[name]:>10.1f} us "
                f"(step1 {est.step1_us:.1f} us, "
                f"{est.page_reads:.1f} pages, "
                f"~{est.candidates:.0f} candidates, {est.source})"
            )
        if self.step2_observed:
            lines.append(
                "  step2 {step2:.1f} us observed "
                "(gather {gather:.1f} us, kernel {eval:.1f} us)".format(
                    **self.step2_observed
                )
            )
        if self.scaleout:
            so = self.scaleout
            lines.append(
                f"  scaleout: {so.get('mode', '?')} pool, "
                f"{so.get('workers', '?')} workers, "
                f"{so.get('n_shards', '?')} shards "
                f"(dispatched {so.get('shards_dispatched', 0)}, "
                f"pruned {so.get('shards_pruned', 0)})"
            )
        return "\n".join(lines)


class Planner:
    """Scores retriever handles and caches the winning :class:`Plan`.

    Parameters
    ----------
    page_cost_us:
        Microsecond weight of one simulated page read.  0 (default)
        optimizes pure wall-clock of this in-memory implementation;
        raise it to plan for real storage.
    ema_alpha:
        Weight of the newest observation in the per-``(retriever,
        kind)`` Step-1 wall-clock moving average.
    replan_every:
        Observations between automatic calibration-generation bumps.
        The generation is part of the plan-cache key, so cached plans
        are revisited periodically even on a mutation-free session —
        this is how observed costs and a freshly built index's
        calibrated estimates actually reach the plans (epoch drift is
        the other trigger).  Replanning costs a few handle scorings,
        amortized to noise over the window.
    """

    def __init__(
        self,
        *,
        page_cost_us: float = 0.0,
        ema_alpha: float = 0.4,
        replan_every: int = 64,
    ) -> None:
        if not 0.0 < ema_alpha <= 1.0:
            raise ValueError("ema_alpha must be in (0, 1]")
        if replan_every < 1:
            raise ValueError("replan_every must be >= 1")
        self.page_cost_us = float(page_cost_us)
        self.ema_alpha = float(ema_alpha)
        self.replan_every = int(replan_every)
        self._cache: dict[Hashable, Plan] = {}
        self._observed: dict[tuple[str, str], float] = {}
        #: Observed Step-2 µs per query by cost_kind: [total, gather,
        #: eval] EMAs fed by the engines' kernel counters (a mutable
        #: list updated in place — :meth:`observe_step2` runs once per
        #: served query).  Step 2 is retriever-independent, so one
        #: bucket per kind calibrates the shared term of every
        #: retriever's score.
        self._observed_step2: dict[str, list[float]] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        #: Calibration generation: baked into every cache key; bumped
        #: by :meth:`bump_generation` (index built) and automatically
        #: every ``replan_every`` observations.
        self.generation = 0
        self._observations_since_bump = 0

    # ------------------------------------------------------------------
    def plan(
        self,
        *,
        kind: str,
        params: tuple[tuple[str, Any], ...],
        epoch: int,
        handles: Sequence[PlannableHandle],
        forced: str | None = None,
        fixed: tuple[str, str, CostEstimate | None, str] | None = None,
    ) -> Plan:
        """The cached-or-computed plan for one query template.

        ``forced`` pins the retriever by name (recorded as such);
        ``fixed`` is a ``(retriever, reason, estimate, cost_kind)``
        tuple for kinds whose choice is not cost-based (e.g. reverse
        NN's domination filter) — the estimate (or the named handle's
        own, when ``None``) is still reported for ``explain``, and
        ``cost_kind`` names the observation bucket the plan's timings
        calibrate (kept separate when the fixed Step 1 is structurally
        different from the cost-based variant's).
        """
        key = (kind, params, epoch, forced, self.generation)
        hit = self._cache.get(key)
        if hit is not None:
            self.cache_hits += 1
            return hit
        self.cache_misses += 1
        plan = self._compute(kind, params, epoch, handles, forced, fixed)
        self._cache[key] = plan
        return plan

    def _compute(
        self,
        kind: str,
        params: tuple[tuple[str, Any], ...],
        epoch: int,
        handles: Sequence[PlannableHandle],
        forced: str | None,
        fixed: tuple[str, str, CostEstimate | None, str] | None,
    ) -> Plan:
        if fixed is not None and forced is None:
            name, reason, est, cost_kind = fixed
            if est is None:
                est = next(
                    (
                        self._calibrated(handle, cost_kind)
                        for handle in handles
                        if handle.name == name
                    ),
                    None,
                )
            # The choice is policy, not cost — but the estimate is
            # still reported for explain().
            scores: dict[str, float] = {}
            estimates: dict[str, CostEstimate] = {}
            if est is not None:
                estimates[name] = est
                scores[name] = self._score(
                    kind, dict(params), est, cost_kind
                )
            return Plan(
                kind=kind,
                params=params,
                retriever=name,
                reason=reason,
                epoch=epoch,
                scores=scores,
                estimates=estimates,
                cost_kind=cost_kind,
                step2_observed=self._step2_breakdown(cost_kind),
            )
        if not handles:
            raise PlanningError(f"no eligible retriever for {kind!r}")

        param_map = dict(params)
        estimates = {}
        for handle in handles:
            estimates[handle.name] = self._calibrated(handle, kind)
        # Every retriever feeds the SAME candidate set to the same
        # exact Step-2 kernels, so Step 2 is scored with one shared
        # estimate — the most-informed (smallest) of the per-handle
        # guesses, which favors index-calibrated numbers over the
        # static dimensionality rule.  Per-handle estimates keep their
        # own candidate figure for explain() honesty.
        shared = min(est.candidates for est in estimates.values())
        step2 = self._step2_term(kind, kind, param_map, shared)
        scores = {
            name: est.step1_us
            + self.page_cost_us * est.page_reads
            + step2
            for name, est in estimates.items()
        }

        if forced is not None:
            if forced not in scores:
                raise PlanningError(
                    f"retriever {forced!r} is not eligible for {kind!r} "
                    f"(eligible: {sorted(scores)})"
                )
            return Plan(
                kind=kind,
                params=params,
                retriever=forced,
                reason="forced by caller",
                epoch=epoch,
                scores=scores,
                estimates=estimates,
                forced=True,
                # A forced override of a policy-fixed template still
                # runs that template's Step 1 — keep its bucket.
                cost_kind=fixed[3] if fixed is not None else kind,
                step2_observed=self._step2_breakdown(kind),
            )

        best = min(scores, key=lambda name: (scores[name], name))
        others = ", ".join(
            f"{name} {scores[name]:.1f}"
            for name in sorted(scores, key=scores.__getitem__)
            if name != best
        )
        reason = (
            f"lowest estimated cost ({scores[best]:.1f} us"
            + (f"; vs {others} us" if others else "; only candidate")
            + ")"
        )
        return Plan(
            kind=kind,
            params=params,
            retriever=best,
            reason=reason,
            epoch=epoch,
            scores=scores,
            estimates=estimates,
            step2_observed=self._step2_breakdown(kind),
        )

    # ------------------------------------------------------------------
    def _calibrated(
        self, handle: PlannableHandle, kind: str
    ) -> CostEstimate:
        """The handle's estimate, with observed Step-1 time folded in."""
        est = handle.cost_estimate()
        observed = self._observed.get((handle.name, kind))
        if observed is not None:
            est = est.with_step1(observed, source="observed")
        return est

    def _score(
        self,
        kind: str,
        params: Mapping[str, Any],
        est: CostEstimate,
        cost_kind: str | None = None,
    ) -> float:
        return (
            est.step1_us
            + self.page_cost_us * est.page_reads
            + self._step2_term(
                kind, cost_kind or kind, params, est.candidates
            )
        )

    def _step2_term(
        self,
        kind: str,
        cost_kind: str,
        params: Mapping[str, Any],
        candidates: float,
    ) -> float:
        """Shared Step-2 µs: observed EMA once available, static seed
        before (see :data:`_STEP2_QUADRATIC_US`).

        The EMA is a flat per-kind per-query average — once calibrated
        it deliberately ignores ``candidates`` (the kernel's real cost
        varies per query; the average over the served workload is what
        the score should charge).  Step 2 is identical across
        retrievers, so this never changes the ranking — only how
        honestly ``db.explain`` reports total per-query cost.
        """
        observed = self._observed_step2.get(cost_kind)
        if observed is not None:
            return observed[0]
        return step2_us(kind, params, candidates)

    def observe_step2(
        self,
        kind: str,
        step2_seconds: float,
        gather_seconds: float = 0.0,
        eval_seconds: float = 0.0,
    ) -> None:
        """Fold one observed Step-2 wall-clock into the per-kind EMA.

        ``gather_seconds`` / ``eval_seconds`` carry the kernel's
        instance-store fetch vs probability-evaluation split (the
        engines' ``kernel_gather_seconds`` / ``kernel_eval_seconds``
        counters); the breakdown is surfaced on plans via
        :attr:`Plan.step2_observed` and ``db.explain``.  Runs on every
        served query, so the update is in place with no allocation.
        """
        prev = self._observed_step2.get(kind)
        if prev is None:
            self._observed_step2[kind] = [
                max(step2_seconds, 0.0) * 1e6,
                max(gather_seconds, 0.0) * 1e6,
                max(eval_seconds, 0.0) * 1e6,
            ]
        else:
            a = self.ema_alpha
            keep = 1.0 - a
            prev[0] = keep * prev[0] + a * max(step2_seconds, 0.0) * 1e6
            prev[1] = keep * prev[1] + a * max(gather_seconds, 0.0) * 1e6
            prev[2] = keep * prev[2] + a * max(eval_seconds, 0.0) * 1e6

    def _step2_breakdown(self, cost_kind: str) -> dict[str, float]:
        """The observed EMA as the mapping plans/explain surface."""
        observed = self._observed_step2.get(cost_kind)
        if observed is None:
            return {}
        return {
            "step2": observed[0],
            "gather": observed[1],
            "eval": observed[2],
        }

    def observed_step2_us(self, kind: str) -> Mapping[str, float] | None:
        """Current observed Step-2 breakdown for a cost kind (µs)."""
        observed = self._observed_step2.get(kind)
        return (
            None
            if observed is None
            else FrozenDict(self._step2_breakdown(kind))
        )

    def observe(
        self, retriever: str, kind: str, step1_seconds: float
    ) -> None:
        """Fold one observed Step-1 wall-clock into the moving average.

        Cached plans are not retroactively rewritten — the new average
        applies at the next cache miss: epoch drift,
        :meth:`invalidate`, or the automatic generation bump after
        ``replan_every`` observations.
        """
        us = max(step1_seconds, 0.0) * 1e6
        key = (retriever, kind)
        prev = self._observed.get(key)
        self._observed[key] = (
            us
            if prev is None
            else (1.0 - self.ema_alpha) * prev + self.ema_alpha * us
        )
        self._observations_since_bump += 1
        if self._observations_since_bump >= self.replan_every:
            self.bump_generation()

    def bump_generation(self) -> None:
        """Force the next plan lookup to re-score (cheap, bounded).

        Called when calibration inputs change without an epoch move —
        an index finished building (its real shape supersedes the
        static formula) or enough runtime observations accumulated.
        """
        self.generation += 1
        self._observations_since_bump = 0

    def observed_step1_us(self, retriever: str, kind: str) -> float | None:
        """Current observed Step-1 average for a ``(retriever, kind)``."""
        return self._observed.get((retriever, kind))

    def invalidate(self) -> None:
        """Drop every cached plan (observations are kept — they are
        performance facts about the implementation, not the data)."""
        self._cache.clear()

    def __repr__(self) -> str:
        return (
            f"Planner(cached={len(self._cache)}, "
            f"hits={self.cache_hits}, misses={self.cache_misses})"
        )
