"""Workload construction shared by all figure drivers.

Centralizes dataset builders (synthetic sweep points and the three
simulated real datasets), query-point generation, and "index bundles" —
an index plus the pager it charges I/O to, so drivers can measure both
time and page traffic without re-plumbing the storage layer each time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import (
    CSetStrategy,
    FixedSelection,
    IncrementalSelection,
    PNNQEngine,
    PVIndex,
    SEConfig,
)
from ..rtree import RTreePNNQ
from ..storage import OctreeConfig, Pager
from ..uncertain import (
    UncertainDataset,
    simulate_airports,
    simulate_roads,
    simulate_rrlines,
    synthetic_dataset,
)
from ..uvindex import UVIndex
from .config import SCALE

__all__ = [
    "IndexBundle",
    "make_dataset",
    "real_dataset",
    "query_points",
    "hotspot_query_points",
    "build_pv_bundle",
    "build_rtree_bundle",
    "build_uv_bundle",
    "strategy_by_name",
]

REAL_BUILDERS = {
    "roads": simulate_roads,
    "rrlines": simulate_rrlines,
    "airports": simulate_airports,
}


@dataclass
class IndexBundle:
    """A Step-1 index, its engine, and the pager it does I/O through."""

    name: str
    index: object
    engine: PNNQEngine
    pager: Pager
    build_seconds: float

    def candidates(self, query: np.ndarray) -> list[int]:
        """Step-1 answer of the wrapped index."""
        return self.index.candidates(query)


def make_dataset(
    n: int | None = None,
    dims: int | None = None,
    u_max: float | None = None,
    seed: int = 0,
    n_samples: int | None = None,
) -> UncertainDataset:
    """Synthetic dataset at bench scale with per-figure overrides."""
    return synthetic_dataset(
        n=n if n is not None else SCALE.default_size,
        dims=dims if dims is not None else SCALE.default_dims,
        u_max=u_max if u_max is not None else SCALE.default_u_max,
        n_samples=n_samples if n_samples is not None else SCALE.n_samples,
        seed=seed,
        domain_size=SCALE.domain_size,
    )


def real_dataset(name: str, n: int | None = None) -> UncertainDataset:
    """One of the simulated real datasets (roads / rrlines / airports)."""
    if name not in REAL_BUILDERS:
        raise KeyError(
            f"unknown real dataset {name!r}; "
            f"expected one of {sorted(REAL_BUILDERS)}"
        )
    return REAL_BUILDERS[name](
        n=n if n is not None else SCALE.real_sizes[name],
        n_samples=SCALE.n_samples,
    )


def query_points(
    dataset: UncertainDataset, n: int | None = None, seed: int = 1
) -> np.ndarray:
    """Random PNNQ query points drawn uniformly from the domain."""
    rng = np.random.default_rng(seed)
    domain = dataset.domain
    count = n if n is not None else SCALE.n_queries
    return rng.uniform(
        domain.lo, domain.hi, size=(count, dataset.dims)
    )


def hotspot_query_points(
    dataset: UncertainDataset,
    n: int | None = None,
    n_hot: int = 32,
    seed: int = 1,
) -> np.ndarray:
    """A serving-style workload: ``n`` queries over ``n_hot`` hot spots.

    Heavy-traffic query streams concentrate on a small set of popular
    locations (POIs, cell towers, depots); this draws each query
    uniformly from ``n_hot`` fixed points, so repeat queries are common
    — the regime the batched engine API and its result reuse target.
    """
    rng = np.random.default_rng(seed)
    hot = query_points(dataset, n=n_hot, seed=seed)
    count = n if n is not None else SCALE.n_queries
    return hot[rng.integers(0, len(hot), size=count)]


def strategy_by_name(name: str, **kwargs) -> CSetStrategy:
    """``chooseCSet`` strategy factory keyed by the paper's names."""
    if name == "FS":
        return FixedSelection(k=kwargs.get("k", SCALE.default_k))
    if name == "IS":
        return IncrementalSelection(
            kpartition=kwargs.get("kpartition", SCALE.default_kpartition),
            kglobal=kwargs.get("kglobal", SCALE.default_kglobal),
        )
    if name == "ALL":
        from ..core import AllCSet

        return AllCSet()
    raise KeyError(f"unknown strategy {name!r}; expected FS, IS, or ALL")


def _octree_config() -> OctreeConfig:
    return OctreeConfig(memory_budget=SCALE.memory_budget)


def build_pv_bundle(
    dataset: UncertainDataset,
    strategy: CSetStrategy | None = None,
    delta: float | None = None,
    m_max: int | None = None,
) -> IndexBundle:
    """PV-index bundle: build, wire PNNQ engine, record build time."""
    pager = Pager(page_size=SCALE.page_size)
    index = PVIndex.build(
        dataset,
        strategy=strategy or IncrementalSelection(
            kpartition=SCALE.default_kpartition,
            kglobal=SCALE.default_kglobal,
        ),
        se_config=SEConfig(
            delta=delta if delta is not None else SCALE.default_delta,
            m_max=m_max if m_max is not None else SCALE.default_m_max,
        ),
        octree_config=_octree_config(),
        pager=pager,
    )
    engine = PNNQEngine(dataset, index, secondary=index.secondary)
    return IndexBundle(
        name="PV-index",
        index=index,
        engine=engine,
        pager=pager,
        build_seconds=index.stats.build_seconds,
    )


def build_rtree_bundle(dataset: UncertainDataset) -> IndexBundle:
    """R*-tree branch-and-prune baseline bundle."""
    pager = Pager(page_size=SCALE.page_size)
    from .instruments import Stopwatch

    watch = Stopwatch()
    with watch:
        index = RTreePNNQ.build(
            dataset, max_entries=SCALE.rtree_fanout, pager=pager
        )
    engine = PNNQEngine(dataset, index)
    return IndexBundle(
        name="R-tree",
        index=index,
        engine=engine,
        pager=pager,
        build_seconds=watch.seconds,
    )


def build_uv_bundle(
    dataset: UncertainDataset,
    k_cand: int | None = None,
    delta: float | None = None,
) -> IndexBundle:
    """UV-index baseline bundle (2D datasets only).

    ``k_cand`` / ``delta`` override the index defaults; the update
    sweeps use a small candidate set so incremental maintenance runs in
    the locality regime of the paper's Fig 10(h)/(i).
    """
    pager = Pager(page_size=SCALE.page_size)
    kwargs = {}
    if k_cand is not None:
        kwargs["k_cand"] = k_cand
    if delta is not None:
        kwargs["delta"] = delta
    index = UVIndex.build(
        dataset, pager=pager, octree_config=_octree_config(), **kwargs
    )
    engine = PNNQEngine(dataset, index)
    return IndexBundle(
        name="UV-index",
        index=index,
        engine=engine,
        pager=pager,
        build_seconds=index.build_seconds,
    )
