"""One driver per paper table/figure.

Every public function regenerates one experiment of Section VII and
returns a :class:`FigureResult` whose rows mirror the series the paper
plots.  Drivers take their sweep values from :data:`repro.bench.config.SCALE`
by default but accept overrides, so the same code runs at smoke-test
scale under pytest-benchmark and at larger scale from the command line::

    python -m repro.bench.figures fig9a --sizes 500 1000 2000

Measured quantities:

* ``Tq`` — mean PNNQ wall-clock per query, milliseconds (Step 1 + 2).
* ``T_OR`` / ``T_PC`` — the Step-1 / Step-2 components of ``Tq``.
* ``IO`` — simulated 4 KB page accesses per query.
* ``Tc`` — index construction seconds.
* ``Tu`` — per-object incremental update seconds.
"""

from __future__ import annotations

import argparse
import os
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from ..core import FixedSelection, IncrementalSelection, PVIndex
from ..core.pvcell import monte_carlo_mbr
from ..core.verifier import VerifierEngine
from ..storage import Pager
from ..uncertain import UncertainDataset
from ..uncertain.store import MappedSnapshot, attach_file
from .config import SCALE
from .instruments import RunningMean, Stopwatch
from .workloads import (
    IndexBundle,
    build_pv_bundle,
    build_rtree_bundle,
    build_uv_bundle,
    hotspot_query_points,
    make_dataset,
    query_points,
    real_dataset,
    strategy_by_name,
)

__all__ = [
    "FigureResult",
    "table1_defaults",
    "fig9a_query_vs_size",
    "fig9b_or_pc_split",
    "fig9c_query_io_vs_size",
    "fig9d_query_vs_region",
    "fig9e_query_vs_dims",
    "fig9f_or_vs_dims",
    "fig9g_io_vs_dims",
    "fig9h_real_datasets",
    "fig10a_construction_vs_delta",
    "fig10b_cset_all_fs_is",
    "fig10c_construction_vs_size",
    "fig10d_construction_vs_region",
    "fig10e_se_time_split",
    "fig10f_real_construction",
    "fig10g_uv_speedup",
    "fig10h_insertion",
    "fig10i_deletion",
    "ablation_mmax",
    "ablation_cset_parameters",
    "ablation_ubr_tightness",
    "ablation_verifier",
    "ablation_bulkload",
    "ablation_topk",
    "ablation_knn",
    "ablation_batch",
    "ALL_FIGURES",
]


@dataclass
class FigureResult:
    """Rows regenerated for one paper figure or table."""

    figure: str
    title: str
    columns: tuple[str, ...]
    rows: list[dict] = field(default_factory=list)
    notes: str = ""

    def add(self, **values) -> None:
        """Append one row; keys must match :attr:`columns`."""
        missing = set(self.columns) - set(values)
        if missing:
            raise ValueError(f"row missing columns {sorted(missing)}")
        self.rows.append(values)

    def series(self, column: str) -> list:
        """All values of one column, in row order."""
        return [row[column] for row in self.rows]


# ----------------------------------------------------------------------
# Shared measurement helpers
# ----------------------------------------------------------------------
def _mean_query_ms(
    bundle: IndexBundle,
    queries: np.ndarray,
    snapshot: MappedSnapshot | None = None,
) -> tuple[float, float, float, float, float | None]:
    """(Tq, T_OR, T_PC, IO, IO_measured) means per query for one bundle.

    The first four come from the engine's shared
    :class:`~repro.engine.ExecutionStats`: the engine brackets both
    steps and attributes page traffic per phase, so no driver-side
    re-bracketing (or double Step-1 evaluation) is needed.  IO counts
    Step-1 (object retrieval) page accesses only — the quantity
    Fig 9(c)/(g) report ("the cost of accessing leaf nodes").  Step-2
    pdf fetches land in ``stats.pc_io`` and are excluded because only
    the PV-index routes them through the simulated pager; charging them
    would skew the cross-index comparison.

    ``snapshot`` switches on *measured* reads: for every query, the
    number of distinct 4 KB pages of a real on-disk snapshot file
    (:meth:`~repro.uncertain.store.MappedSnapshot.read_pages`) that
    fetching the answer's candidate pdfs would touch.  This grounds the
    simulated counters in actual file geometry; ``None`` when no
    snapshot is given.
    """
    stats = bundle.engine.stats
    stats.reset()
    measured_pages = 0
    for q in queries:
        res = bundle.engine.query(q)
        if snapshot is not None:
            measured_pages += snapshot.read_pages(res.candidate_ids)
    n = max(stats.queries, 1)
    return (
        stats.total / n * 1e3,
        stats.object_retrieval / n * 1e3,
        stats.probability_computation / n * 1e3,
        stats.or_io.total / n,
        measured_pages / n if snapshot is not None else None,
    )


def _export_snapshot(dataset: UncertainDataset, tmpdir: str) -> MappedSnapshot:
    """Write the dataset's packed store to a real file and map it."""
    path = os.path.join(tmpdir, f"snap-{id(dataset):x}.bin")
    dataset.instance_store().export_file(path)
    return attach_file(path)


def _query_sweep(
    figure: str,
    title: str,
    sweep_name: str,
    sweep_values: Iterable,
    dataset_for: Callable[[object], UncertainDataset],
    builders: Sequence[Callable[[UncertainDataset], IndexBundle]] = (
        build_rtree_bundle,
        build_pv_bundle,
    ),
    n_queries: int | None = None,
    io_mode: str = "simulated",
) -> FigureResult:
    """Generic 'query cost vs parameter' sweep over a set of indexes.

    ``io_mode="measured"`` additionally exports each sweep dataset to a
    real snapshot file and reports ``io_pages_measured`` — distinct
    4 KB file pages per query that gathering the answer's candidate
    pdfs touches — beside the simulated pager counters.
    """
    if io_mode not in ("simulated", "measured"):
        raise ValueError(
            f"io_mode must be 'simulated' or 'measured', not {io_mode!r}"
        )
    measured = io_mode == "measured"
    columns = (
        sweep_name, "index", "tq_ms", "t_or_ms", "t_pc_ms", "io_pages",
    )
    if measured:
        columns += ("io_pages_measured",)
    result = FigureResult(figure=figure, title=title, columns=columns)
    tmpdir = tempfile.mkdtemp(prefix="repro-fig-io-") if measured else None
    try:
        for value in sweep_values:
            dataset = dataset_for(value)
            queries = query_points(dataset, n=n_queries)
            snapshot = (
                _export_snapshot(dataset, tmpdir) if measured else None
            )
            for builder in builders:
                bundle = builder(dataset.copy())
                tq, t_or, t_pc, io, iom = _mean_query_ms(
                    bundle, queries, snapshot=snapshot
                )
                row = {
                    sweep_name: value,
                    "index": bundle.name,
                    "tq_ms": tq,
                    "t_or_ms": t_or,
                    "t_pc_ms": t_pc,
                    "io_pages": io,
                }
                if measured:
                    row["io_pages_measured"] = iom
                result.add(**row)
            if snapshot is not None:
                snapshot.close()
    finally:
        if tmpdir is not None:
            shutil.rmtree(tmpdir, ignore_errors=True)
    return result


# ----------------------------------------------------------------------
# Table I
# ----------------------------------------------------------------------
def table1_defaults() -> FigureResult:
    """Table I: parameters, paper values, and bench-scale values."""
    from .config import PAPER

    result = FigureResult(
        figure="Table I",
        title="Parameters and their default values",
        columns=("parameter", "paper_values", "paper_default",
                 "bench_values", "bench_default"),
        notes=(
            "Bench values keep every shape-defining parameter identical "
            "to the paper and scale |S| and the pdf sample count down "
            "for pure-Python runtimes (see DESIGN.md)."
        ),
    )
    rows = [
        ("|S|", PAPER.sizes, PAPER.default_size,
         SCALE.sizes, SCALE.default_size),
        ("d", PAPER.dims, PAPER.default_dims,
         SCALE.dims, SCALE.default_dims),
        ("|u(o)|", PAPER.u_maxes, PAPER.default_u_max,
         SCALE.u_maxes, SCALE.default_u_max),
        ("delta", PAPER.deltas, PAPER.default_delta,
         SCALE.deltas, SCALE.default_delta),
        ("m_max", PAPER.m_maxes, PAPER.default_m_max,
         SCALE.m_maxes, SCALE.default_m_max),
        ("k", PAPER.ks, PAPER.default_k, SCALE.ks, SCALE.default_k),
        ("kpartition", PAPER.kpartitions, PAPER.default_kpartition,
         SCALE.kpartitions, SCALE.default_kpartition),
        ("kglobal", (PAPER.default_kglobal,), PAPER.default_kglobal,
         (SCALE.default_kglobal,), SCALE.default_kglobal),
    ]
    for name, pv, pd, bv, bd in rows:
        result.add(
            parameter=name,
            paper_values=tuple(pv),
            paper_default=pd,
            bench_values=tuple(bv),
            bench_default=bd,
        )
    return result


# ----------------------------------------------------------------------
# Figure 9 — PNNQ performance
# ----------------------------------------------------------------------
def fig9a_query_vs_size(
    sizes: Sequence[int] | None = None,
    n_queries: int | None = None,
) -> FigureResult:
    """Fig 9(a): Tq vs |S| for R-tree and PV-index (3D synthetic)."""
    return _query_sweep(
        figure="Fig 9(a)",
        title="Query time vs database size (3D)",
        sweep_name="size",
        sweep_values=sizes or SCALE.sizes,
        dataset_for=lambda n: make_dataset(n=n),
        n_queries=n_queries,
    )


def fig9b_or_pc_split(
    size: int | None = None, n_queries: int | None = None
) -> FigureResult:
    """Fig 9(b): Tq decomposition into OR (Step 1) and PC (Step 2)."""
    dataset = make_dataset(n=size)
    queries = query_points(dataset, n=n_queries)
    result = FigureResult(
        figure="Fig 9(b)",
        title="OR / PC decomposition of the query time",
        columns=("index", "t_or_ms", "t_pc_ms", "or_fraction"),
        notes="PC is identical code for both; OR is where PV wins.",
    )
    for builder in (build_rtree_bundle, build_pv_bundle):
        bundle = builder(dataset.copy())
        _tq, t_or, t_pc, _io, _iom = _mean_query_ms(bundle, queries)
        result.add(
            index=bundle.name,
            t_or_ms=t_or,
            t_pc_ms=t_pc,
            or_fraction=t_or / max(t_or + t_pc, 1e-12),
        )
    return result


def fig9c_query_io_vs_size(
    sizes: Sequence[int] | None = None,
    n_queries: int | None = None,
    io_mode: str = "simulated",
) -> FigureResult:
    """Fig 9(c): per-query page I/O vs |S| (3D synthetic).

    ``io_mode="measured"`` adds an ``io_pages_measured`` column:
    distinct 4 KB pages of a real mmap snapshot file touched per query
    by the answer's candidate pdfs, next to the simulated counters.
    """
    result = _query_sweep(
        figure="Fig 9(c)",
        title="Query I/O (pages) vs database size (3D)",
        sweep_name="size",
        sweep_values=sizes or SCALE.sizes,
        dataset_for=lambda n: make_dataset(n=n),
        n_queries=n_queries,
        io_mode=io_mode,
    )
    result.notes = (
        "The paper reports I/O time; page accesses through the shared "
        "pager are its hardware-independent equivalent.  io_mode="
        "'measured' grounds them against real snapshot-file pages."
    )
    return result


def fig9d_query_vs_region(
    u_maxes: Sequence[float] | None = None,
    size: int | None = None,
    n_queries: int | None = None,
) -> FigureResult:
    """Fig 9(d): Tq vs maximum uncertainty-region side |u(o)|."""
    return _query_sweep(
        figure="Fig 9(d)",
        title="Query time vs uncertainty-region size (3D)",
        sweep_name="u_max",
        sweep_values=u_maxes or SCALE.u_maxes,
        dataset_for=lambda u: make_dataset(n=size, u_max=u),
        n_queries=n_queries,
    )


def _dims_sweep(
    figure: str,
    title: str,
    dims: Sequence[int] | None,
    size: int | None,
    n_queries: int | None,
    io_mode: str = "simulated",
) -> FigureResult:
    """Fig 9(e)-(g) share one sweep: d in {2..5}, UV at d=2 only."""
    if io_mode not in ("simulated", "measured"):
        raise ValueError(
            f"io_mode must be 'simulated' or 'measured', not {io_mode!r}"
        )
    measured = io_mode == "measured"
    columns = ("dims", "index", "tq_ms", "t_or_ms", "t_pc_ms", "io_pages")
    if measured:
        columns += ("io_pages_measured",)
    result = FigureResult(
        figure=figure,
        title=title,
        columns=columns,
        notes="UV-index rows appear only at d=2 (its supported case).",
    )
    tmpdir = tempfile.mkdtemp(prefix="repro-fig-io-") if measured else None
    try:
        for d in dims or SCALE.dims:
            dataset = make_dataset(n=size, dims=d)
            queries = query_points(dataset, n=n_queries)
            snapshot = (
                _export_snapshot(dataset, tmpdir) if measured else None
            )
            builders: list[Callable] = [build_rtree_bundle, build_pv_bundle]
            if d == 2:
                builders.append(build_uv_bundle)
            for builder in builders:
                bundle = builder(dataset.copy())
                tq, t_or, t_pc, io, iom = _mean_query_ms(
                    bundle, queries, snapshot=snapshot
                )
                row = dict(
                    dims=d, index=bundle.name, tq_ms=tq, t_or_ms=t_or,
                    t_pc_ms=t_pc, io_pages=io,
                )
                if measured:
                    row["io_pages_measured"] = iom
                result.add(**row)
            if snapshot is not None:
                snapshot.close()
    finally:
        if tmpdir is not None:
            shutil.rmtree(tmpdir, ignore_errors=True)
    return result


def fig9e_query_vs_dims(
    dims: Sequence[int] | None = None,
    size: int | None = None,
    n_queries: int | None = None,
) -> FigureResult:
    """Fig 9(e): Tq vs dimensionality (R-tree, PV; UV at 2D)."""
    return _dims_sweep(
        "Fig 9(e)", "Query time vs dimensionality", dims, size, n_queries
    )


def fig9f_or_vs_dims(
    dims: Sequence[int] | None = None,
    size: int | None = None,
    n_queries: int | None = None,
) -> FigureResult:
    """Fig 9(f): Step-1 (OR) time vs dimensionality."""
    return _dims_sweep(
        "Fig 9(f)", "Object-retrieval time vs dimensionality",
        dims, size, n_queries,
    )


def fig9g_io_vs_dims(
    dims: Sequence[int] | None = None,
    size: int | None = None,
    n_queries: int | None = None,
    io_mode: str = "simulated",
) -> FigureResult:
    """Fig 9(g): per-query page I/O vs dimensionality.

    ``io_mode="measured"`` adds an ``io_pages_measured`` column (real
    snapshot-file pages per query); see :func:`fig9c_query_io_vs_size`.
    """
    return _dims_sweep(
        "Fig 9(g)", "Query I/O (pages) vs dimensionality",
        dims, size, n_queries, io_mode=io_mode,
    )


def fig9h_real_datasets(
    names: Sequence[str] = ("roads", "rrlines", "airports"),
    size: int | None = None,
    n_queries: int | None = None,
) -> FigureResult:
    """Fig 9(h): Tq on the (simulated) real datasets."""
    result = FigureResult(
        figure="Fig 9(h)",
        title="Query time on real datasets",
        columns=("dataset", "index", "tq_ms", "t_or_ms", "t_pc_ms",
                 "io_pages"),
        notes="roads/rrlines are 2D (UV applicable); airports is 3D.",
    )
    for name in names:
        dataset = real_dataset(name, n=size)
        queries = query_points(dataset, n=n_queries)
        builders: list[Callable] = [build_rtree_bundle, build_pv_bundle]
        if dataset.dims == 2:
            builders.append(build_uv_bundle)
        for builder in builders:
            bundle = builder(dataset.copy())
            tq, t_or, t_pc, io, _iom = _mean_query_ms(bundle, queries)
            result.add(
                dataset=name, index=bundle.name, tq_ms=tq,
                t_or_ms=t_or, t_pc_ms=t_pc, io_pages=io,
            )
    return result


# ----------------------------------------------------------------------
# Figure 10 — construction and maintenance
# ----------------------------------------------------------------------
def fig10a_construction_vs_delta(
    deltas: Sequence[float] | None = None, size: int | None = None
) -> FigureResult:
    """Fig 10(a): PV-index construction time vs SE threshold Δ."""
    result = FigureResult(
        figure="Fig 10(a)",
        title="Construction time vs delta",
        columns=("delta", "tc_seconds", "se_iterations"),
        notes="Larger delta stops SE earlier: fewer bisection rounds.",
    )
    dataset = make_dataset(n=size)
    for delta in deltas or SCALE.deltas:
        bundle = build_pv_bundle(dataset.copy(), delta=delta)
        result.add(
            delta=delta,
            tc_seconds=bundle.build_seconds,
            se_iterations=bundle.index.se.stats.iterations,
        )
    return result


def fig10b_cset_all_fs_is(
    sizes: Sequence[int] | None = None,
) -> FigureResult:
    """Fig 10(b): construction time of ALL vs FS vs IS.

    ALL evaluates every domination test against the entire database, so
    its cost explodes; the paper runs it to 20k (103 hours) — the bench
    keeps it to tiny sizes to expose the same blow-up shape.
    """
    result = FigureResult(
        figure="Fig 10(b)",
        title="Construction time: ALL vs FS vs IS",
        columns=("size", "strategy", "tc_seconds"),
    )
    for n in sizes or SCALE.all_sizes:
        dataset = make_dataset(n=n)
        for strategy_name in ("ALL", "FS", "IS"):
            bundle = build_pv_bundle(
                dataset.copy(), strategy=strategy_by_name(strategy_name)
            )
            result.add(
                size=n,
                strategy=strategy_name,
                tc_seconds=bundle.build_seconds,
            )
    return result


def fig10c_construction_vs_size(
    sizes: Sequence[int] | None = None,
) -> FigureResult:
    """Fig 10(c): construction time of FS vs IS over |S|."""
    result = FigureResult(
        figure="Fig 10(c)",
        title="Construction time vs database size (FS vs IS)",
        columns=("size", "strategy", "tc_seconds", "mean_cset"),
    )
    for n in sizes or SCALE.sizes:
        dataset = make_dataset(n=n)
        for strategy_name in ("FS", "IS"):
            bundle = build_pv_bundle(
                dataset.copy(), strategy=strategy_by_name(strategy_name)
            )
            result.add(
                size=n,
                strategy=strategy_name,
                tc_seconds=bundle.build_seconds,
                mean_cset=bundle.index.se.stats.mean_cset_size,
            )
    return result


def fig10d_construction_vs_region(
    u_maxes: Sequence[float] | None = None, size: int | None = None
) -> FigureResult:
    """Fig 10(d): construction time of FS vs IS over |u(o)|."""
    result = FigureResult(
        figure="Fig 10(d)",
        title="Construction time vs uncertainty-region size (FS vs IS)",
        columns=("u_max", "strategy", "tc_seconds", "mean_cset"),
    )
    for u in u_maxes or SCALE.u_maxes:
        dataset = make_dataset(n=size, u_max=u)
        for strategy_name in ("FS", "IS"):
            bundle = build_pv_bundle(
                dataset.copy(), strategy=strategy_by_name(strategy_name)
            )
            result.add(
                u_max=u,
                strategy=strategy_name,
                tc_seconds=bundle.build_seconds,
                mean_cset=bundle.index.se.stats.mean_cset_size,
            )
    return result


def fig10e_se_time_split(size: int | None = None) -> FigureResult:
    """Fig 10(e): SE time split into chooseCSet and UBR computation."""
    result = FigureResult(
        figure="Fig 10(e)",
        title="SE time decomposition (chooseCSet vs UBR computation)",
        columns=("strategy", "choose_cset_s", "ubr_s", "mean_cset"),
        notes=(
            "IS spends more choosing its C-set but the smaller C-set "
            "makes the UBR phase cheaper — the paper's explanation for "
            "IS beating FS overall."
        ),
    )
    dataset = make_dataset(n=size)
    for strategy_name in ("FS", "IS"):
        bundle = build_pv_bundle(
            dataset.copy(), strategy=strategy_by_name(strategy_name)
        )
        stats = bundle.index.se.stats
        result.add(
            strategy=strategy_name,
            choose_cset_s=stats.choose_cset_seconds,
            ubr_s=stats.ubr_seconds,
            mean_cset=stats.mean_cset_size,
        )
    return result


def fig10f_real_construction(
    names: Sequence[str] = ("roads", "rrlines", "airports"),
    size: int | None = None,
) -> FigureResult:
    """Fig 10(f): construction time of FS vs IS on real datasets."""
    result = FigureResult(
        figure="Fig 10(f)",
        title="Construction time on real datasets (FS vs IS)",
        columns=("dataset", "strategy", "tc_seconds"),
    )
    for name in names:
        dataset = real_dataset(name, n=size)
        for strategy_name in ("FS", "IS"):
            bundle = build_pv_bundle(
                dataset.copy(), strategy=strategy_by_name(strategy_name)
            )
            result.add(
                dataset=name,
                strategy=strategy_name,
                tc_seconds=bundle.build_seconds,
            )
    return result


def fig10g_uv_speedup(
    names: Sequence[str] = ("roads", "rrlines"),
    size: int | None = None,
) -> FigureResult:
    """Fig 10(g): PV-index vs UV-index construction on 2D datasets.

    The paper reports the PV-index building 15-25x faster.
    """
    result = FigureResult(
        figure="Fig 10(g)",
        title="Construction speedup of PV- over UV-index (2D)",
        columns=("dataset", "pv_tc_seconds", "uv_tc_seconds", "speedup"),
    )
    for name in names:
        dataset = real_dataset(name, n=size)
        pv = build_pv_bundle(dataset.copy())
        uv = build_uv_bundle(dataset.copy())
        result.add(
            dataset=name,
            pv_tc_seconds=pv.build_seconds,
            uv_tc_seconds=uv.build_seconds,
            speedup=uv.build_seconds / max(pv.build_seconds, 1e-12),
        )
    return result


#: UV-index maintenance parameters for the update sweeps: a small
#: candidate set keeps each mutation's affected fraction low (the
#: locality regime the paper's update experiments run in) at feasible
#: bench sizes; the boxes stay conservative, so answers stay exact.
_UV_UPDATE_K_CAND = 8
_UV_UPDATE_DELTA = 1.0


def _update_sweep(
    figure: str,
    title: str,
    operation: str,
    sizes: Sequence[int] | None,
    update_fraction: float | None,
    dims: int | None = None,
) -> FigureResult:
    """Fig 10(h)/(i): per-object update cost, Inc vs Rebuild.

    Both maintained index families run both arms: the PV-index's
    Section VI-B incremental maintenance and the UV-index's localized
    cell recomputation, each against full reconstruction.  ``cells``
    counts the expensive unit of work — SE UBR / UV-cell derivations —
    over the whole update batch, and ``io_pages`` the simulated page
    traffic per updated object, both read off the shared index/pager
    instrumentation rather than driver-side re-bracketing.

    The incremental advantage depends on update *locality*: the
    affected set must be a small fraction of the database.  At the
    paper's density (60k objects in the 3D domain) that holds
    trivially; at bench scale the drivers default to denser 2D data so
    the same locality regime — and therefore the paper's shape — is
    reproduced at feasible sizes.
    """
    if operation not in ("insertion", "deletion"):
        raise ValueError("operation must be 'insertion' or 'deletion'")
    result = FigureResult(
        figure=figure,
        title=title,
        columns=(
            "size", "index", "method", "tu_seconds", "cells", "io_pages"
        ),
        notes=(
            "Tu is seconds per updated object; Rebuild reconstructs the "
            "whole index per batch and is amortized over the batch. "
            "cells counts UBR/UV-cell derivations over the batch."
        ),
    )
    fraction = (
        update_fraction
        if update_fraction is not None
        else SCALE.update_fraction
    )
    for n in sizes or SCALE.sizes:
        d = dims if dims is not None else 2
        dataset = make_dataset(n=n, dims=d)
        n_updates = max(1, int(n * fraction))
        rng = np.random.default_rng(7)
        victim_ids = [
            int(i)
            for i in rng.choice(dataset.ids, size=n_updates, replace=False)
        ]

        builders: list[tuple[str, Callable]] = [
            ("PV-index", build_pv_bundle)
        ]
        if d == 2:  # the UV-index is 2D-only
            builders.append((
                "UV-index",
                lambda ds: build_uv_bundle(
                    ds,
                    k_cand=_UV_UPDATE_K_CAND,
                    delta=_UV_UPDATE_DELTA,
                ),
            ))

        # Shared across index families: the reduced database (victims
        # removed) and the removed objects themselves.  Builders never
        # mutate their input, so only the Inc arms (which apply live
        # updates) get private copies.
        reduced = dataset.copy()
        victims = [reduced.delete(oid) for oid in victim_ids]

        for index_name, build in builders:
            if operation == "deletion":
                # Inc: delete the victims one at a time from a live
                # index; Rebuild: drop them, reconstruct from scratch.
                inc = build(dataset.copy())
                updates = [("delete", oid) for oid in victim_ids]
                rebuild_input = reduced
            else:
                # Paper protocol: remove the batch, then re-insert it.
                inc = build(reduced.copy())
                updates = [("insert", obj) for obj in victims]
                rebuild_input = dataset

            cells_before = inc.index.stats.cells_recomputed
            io_before = inc.pager.stats.snapshot()
            watch = Stopwatch()
            with watch:
                for op, arg in updates:
                    getattr(inc.index, op)(arg)
            result.add(
                size=n,
                index=index_name,
                method="Inc",
                tu_seconds=watch.seconds / n_updates,
                cells=inc.index.stats.cells_recomputed - cells_before,
                io_pages=inc.pager.stats.delta(io_before).total
                / n_updates,
            )
            watch = Stopwatch()
            with watch:
                rebuilt = build(rebuild_input)
            result.add(
                size=n,
                index=index_name,
                method="Rebuild",
                tu_seconds=watch.seconds / n_updates,
                cells=rebuilt.index.stats.cells_recomputed,
                io_pages=rebuilt.pager.stats.total / n_updates,
            )
    return result


def fig10h_insertion(
    sizes: Sequence[int] | None = None,
    update_fraction: float | None = None,
    dims: int | None = None,
) -> FigureResult:
    """Fig 10(h): per-object insertion cost, Inc vs Rebuild."""
    return _update_sweep(
        "Fig 10(h)", "Insertion: incremental vs rebuild",
        "insertion", sizes, update_fraction, dims,
    )


def fig10i_deletion(
    sizes: Sequence[int] | None = None,
    update_fraction: float | None = None,
    dims: int | None = None,
) -> FigureResult:
    """Fig 10(i): per-object deletion cost, Inc vs Rebuild."""
    return _update_sweep(
        "Fig 10(i)", "Deletion: incremental vs rebuild",
        "deletion", sizes, update_fraction, dims,
    )


# ----------------------------------------------------------------------
# Ablations (design choices called out in DESIGN.md)
# ----------------------------------------------------------------------
def ablation_mmax(
    m_maxes: Sequence[int] | None = None, size: int | None = None
) -> FigureResult:
    """A1: sensitivity to the domination-count partition budget m_max.

    Section V-B remarks that partition granularity trades test accuracy
    (UBR tightness) against runtime; this sweep quantifies both sides.
    """
    result = FigureResult(
        figure="Ablation A1",
        title="m_max: construction time vs UBR tightness",
        columns=("m_max", "tc_seconds", "mean_ubr_volume"),
    )
    dataset = make_dataset(n=size)
    for m in m_maxes or SCALE.m_maxes:
        bundle = build_pv_bundle(dataset.copy(), m_max=m)
        volumes = [
            bundle.index.ubr_of(oid).volume for oid in dataset.ids
        ]
        result.add(
            m_max=m,
            tc_seconds=bundle.build_seconds,
            mean_ubr_volume=float(np.mean(volumes)),
        )
    return result


def ablation_cset_parameters(
    ks: Sequence[int] | None = None,
    kpartitions: Sequence[int] | None = None,
    size: int | None = None,
    n_queries: int | None = None,
) -> FigureResult:
    """A2: k (FS) and kpartition (IS) sensitivity (Section VII-C(a)).

    The paper reports Tq 'quite stable' across these parameters; Tc
    grows with both.
    """
    result = FigureResult(
        figure="Ablation A2",
        title="C-set parameter sensitivity (FS k; IS kpartition)",
        columns=("strategy", "parameter", "value", "tc_seconds", "tq_ms"),
    )
    dataset = make_dataset(n=size)
    queries = query_points(dataset, n=n_queries)
    for k in ks or SCALE.ks:
        bundle = build_pv_bundle(
            dataset.copy(), strategy=FixedSelection(k=k)
        )
        tq, _or, _pc, _io, _iom = _mean_query_ms(bundle, queries)
        result.add(
            strategy="FS", parameter="k", value=k,
            tc_seconds=bundle.build_seconds, tq_ms=tq,
        )
    for kp in kpartitions or SCALE.kpartitions:
        bundle = build_pv_bundle(
            dataset.copy(),
            strategy=IncrementalSelection(
                kpartition=kp, kglobal=SCALE.default_kglobal
            ),
        )
        tq, _or, _pc, _io, _iom = _mean_query_ms(bundle, queries)
        result.add(
            strategy="IS", parameter="kpartition", value=kp,
            tc_seconds=bundle.build_seconds, tq_ms=tq,
        )
    return result


def ablation_ubr_tightness(
    deltas: Sequence[float] | None = None,
    size: int | None = None,
    n_probe: int = 4096,
) -> FigureResult:
    """A3: UBR volume vs a Monte-Carlo estimate of the true MBR.

    Checks the paper's claim that SE's UBR is 'only a bit larger' than
    the (intractable) exact MBR of the PV-cell, and that the looseness
    degrades gracefully with Δ.
    """
    result = FigureResult(
        figure="Ablation A3",
        title="UBR tightness vs Monte-Carlo MBR",
        columns=("delta", "mean_volume_ratio", "max_volume_ratio",
                 "containment_violations"),
        notes=(
            "volume_ratio = vol(UBR) / vol(MC-MBR) >= 1; violations "
            "count sampled PV-cell points outside their UBR (must be 0)."
        ),
    )
    from ..core.pvcell import pv_cell_contains_many

    dataset = make_dataset(n=size if size is not None else 120)
    for delta in deltas or (0.1, 1.0, 10.0, 100.0):
        bundle = build_pv_bundle(dataset.copy(), delta=delta)
        ratios = []
        violations = 0
        for oid in dataset.ids[:40]:
            ubr = bundle.index.ubr_of(oid)
            rng = np.random.default_rng(oid)
            mc_box = monte_carlo_mbr(
                dataset, oid, n_samples=n_probe, rng=rng
            )
            if mc_box.volume > 0:
                ratios.append(ubr.volume / mc_box.volume)
            probe = dataset.domain.sample_points(
                n_probe, np.random.default_rng(oid + 1)
            )
            inside = pv_cell_contains_many(dataset, oid, probe)
            for p in probe[inside]:
                if not ubr.contains_point(p):
                    violations += 1
        result.add(
            delta=delta,
            mean_volume_ratio=float(np.mean(ratios)) if ratios else 1.0,
            max_volume_ratio=float(np.max(ratios)) if ratios else 1.0,
            containment_violations=violations,
        )
    return result


def ablation_verifier(
    size: int | None = None,
    n_queries: int | None = None,
    tau: float = 0.1,
) -> FigureResult:
    """A4: probabilistic-verifier bounds vs full Step-2 evaluation.

    The paper notes ([11]) that cheap probability bounds shift PNNQ cost
    toward Step 1; this measures how many exact evaluations the verifier
    avoids at threshold tau.
    """
    result = FigureResult(
        figure="Ablation A4",
        title="Verifier: avoided exact Step-2 evaluations",
        columns=("index", "candidates", "exact_evals", "avoided_frac",
                 "tq_ms"),
    )
    # Large uncertainty regions so queries see several candidates —
    # the regime where bound-based pruning has something to prune.
    dataset = make_dataset(n=size, u_max=2000.0)
    queries = query_points(dataset, n=n_queries)
    bundle = build_pv_bundle(dataset.copy())
    verifier = VerifierEngine(dataset, bundle.index)
    total_candidates = 0
    watch = Stopwatch()
    for q in queries:
        with watch:
            decisions = verifier.query(q, tau=tau)
        total_candidates += len(decisions)
    n = max(len(queries), 1)
    avoided = verifier.verified_only / max(total_candidates, 1)
    result.add(
        index=bundle.name,
        candidates=total_candidates / n,
        exact_evals=verifier.exact_evaluations / n,
        avoided_frac=avoided,
        tq_ms=watch.seconds / n * 1e3,
    )
    return result


def ablation_bulkload(
    sizes: Sequence[int] | None = None,
) -> FigureResult:
    """A5: bulkloading and compression (conclusion's future work).

    Compares sequential construction against Z-order bulkloading on
    build time and write I/O, and reports pages reclaimed by compaction
    after construction.
    """
    from ..core.bulk import bulk_build, compact

    result = FigureResult(
        figure="Ablation A5",
        title="Bulkloading (Z-order) and compression vs sequential build",
        columns=("size", "method", "tc_seconds", "write_pages",
                 "pages_reclaimed"),
        notes=(
            "Both constructions produce identical indexes; bulkloading "
            "changes only the build I/O profile.  pages_reclaimed is "
            "post-build compaction yield."
        ),
    )
    for n in sizes or (200, 400):
        dataset = make_dataset(n=n)

        pager = Pager()
        watch = Stopwatch()
        with watch:
            index = PVIndex.build(dataset.copy(), pager=pager)
        from ..core.bulk import compact as _compact

        seq_reclaimed = _compact(index).pages_reclaimed
        result.add(
            size=n, method="sequential", tc_seconds=watch.seconds,
            write_pages=pager.stats.writes,
            pages_reclaimed=seq_reclaimed,
        )

        report = bulk_build(dataset.copy())
        bulk_reclaimed = compact(report.index).pages_reclaimed
        result.add(
            size=n, method="bulk(z-order)",
            tc_seconds=report.build_seconds,
            write_pages=report.write_pages,
            pages_reclaimed=bulk_reclaimed,
        )
    return result


def ablation_topk(
    ks: Sequence[int] = (1, 2, 4, 8),
    size: int | None = None,
    n_queries: int | None = None,
) -> FigureResult:
    """A6: top-k probable NN latency and bound-pruning yield vs k."""
    from ..core.topk import TopKEngine

    result = FigureResult(
        figure="Ablation A6",
        title="Top-k probable NN: latency and pruning vs k",
        columns=("k", "tq_ms", "mean_pruned", "mean_candidates"),
    )
    dataset = make_dataset(n=size, u_max=2000.0)
    bundle = build_pv_bundle(dataset.copy())
    queries = query_points(dataset, n=n_queries)
    for k in ks:
        engine = TopKEngine(dataset, bundle.index)
        pruned = RunningMean()
        candidates = RunningMean()
        watch = Stopwatch()
        for q in queries:
            with watch:
                res = engine.query(q, k=k)
            pruned.add(res.pruned)
            candidates.add(len(res.ranking))
        result.add(
            k=k,
            tq_ms=watch.seconds / max(len(queries), 1) * 1e3,
            mean_pruned=pruned.mean,
            mean_candidates=candidates.mean,
        )
    return result


def ablation_knn(
    ks: Sequence[int] = (1, 2, 4, 8),
    size: int | None = None,
    n_queries: int | None = None,
) -> FigureResult:
    """A7: probabilistic k-NN — candidate growth and Step-2 cost vs k.

    The PV-index accelerates k = 1; for k > 1 the exact k-th-maxdist
    filter takes over.  Step-2 cost grows with both the candidate count
    and the O(n·k) Poisson-binomial dynamic program.
    """
    from ..core.knn import KNNEngine

    result = FigureResult(
        figure="Ablation A7",
        title="k-PNN: candidates and query cost vs k",
        columns=("k", "tq_ms", "mean_candidates", "prob_mass"),
        notes=(
            "prob_mass = mean over queries of the summed membership "
            "probabilities; per query the sum is exactly "
            "min(k, candidates) — the expected answer-set size."
        ),
    )
    dataset = make_dataset(n=size, u_max=2000.0)
    bundle = build_pv_bundle(dataset.copy())
    queries = query_points(dataset, n=n_queries)
    for k in ks:
        engine = KNNEngine(dataset, retriever=bundle.index)
        cands = RunningMean()
        mass = RunningMean()
        watch = Stopwatch()
        for q in queries:
            with watch:
                res = engine.query(q, k=k)
            cands.add(len(res.candidate_ids))
            mass.add(sum(res.probabilities.values()))
        result.add(
            k=k,
            tq_ms=watch.seconds / max(len(queries), 1) * 1e3,
            mean_candidates=cands.mean,
            prob_mass=mass.mean,
        )
    return result


def ablation_batch(
    size: int | None = None,
    n_queries: int = 200,
    n_hot: int = 32,
) -> FigureResult:
    """A8: batched execution vs the equivalent single-query loop.

    Runs the same PNNQ workload twice through one PV-index engine —
    once as ``engine.query`` in a loop, once as one
    ``engine.query_batch`` call — and cross-checks that both produce
    identical answers.  The batch path deduplicates repeat queries,
    shares Step-1 retrieval, and vectorizes Step-2 distance work across
    queries with a common candidate set, so its advantage grows with
    workload locality: ``uniform`` bounds the overhead on all-distinct
    queries, ``hotspot`` is the serving regime the batch API targets.
    """
    result = FigureResult(
        figure="Ablation A8",
        title="Batched queries vs single-query loop (PNNQ, PV-index)",
        columns=("workload", "n_queries", "distinct", "loop_ms",
                 "batch_ms", "speedup"),
        notes=(
            "Identical engine and index for both paths; answers are "
            "cross-checked per query.  speedup = loop_ms / batch_ms."
        ),
    )
    dataset = make_dataset(n=size)
    bundle = build_pv_bundle(dataset.copy())
    engine = bundle.engine
    for name, queries in (
        ("uniform", query_points(dataset, n=n_queries)),
        ("hotspot", hotspot_query_points(
            dataset, n=n_queries, n_hot=n_hot
        )),
    ):
        engine.stats.reset()
        watch = Stopwatch()
        with watch:
            loop_results = [engine.query(q) for q in queries]
        loop_seconds = watch.seconds

        engine.stats.reset()
        watch = Stopwatch()
        with watch:
            batch_results = engine.query_batch(queries)
        batch_seconds = watch.seconds

        for single, batched in zip(loop_results, batch_results):
            assert set(single.candidate_ids) == set(batched.candidate_ids)
            assert set(single.probabilities) == set(batched.probabilities)
            assert all(
                abs(p - batched.probabilities[oid]) < 1e-9
                for oid, p in single.probabilities.items()
            )
        result.add(
            workload=name,
            n_queries=len(queries),
            distinct=len({q.tobytes() for q in np.asarray(queries)}),
            loop_ms=loop_seconds * 1e3,
            batch_ms=batch_seconds * 1e3,
            speedup=loop_seconds / max(batch_seconds, 1e-12),
        )
    return result


#: name -> driver registry used by the CLI and the smoke tests.
ALL_FIGURES: dict[str, Callable[..., FigureResult]] = {
    "table1": table1_defaults,
    "fig9a": fig9a_query_vs_size,
    "fig9b": fig9b_or_pc_split,
    "fig9c": fig9c_query_io_vs_size,
    "fig9d": fig9d_query_vs_region,
    "fig9e": fig9e_query_vs_dims,
    "fig9f": fig9f_or_vs_dims,
    "fig9g": fig9g_io_vs_dims,
    "fig9h": fig9h_real_datasets,
    "fig10a": fig10a_construction_vs_delta,
    "fig10b": fig10b_cset_all_fs_is,
    "fig10c": fig10c_construction_vs_size,
    "fig10d": fig10d_construction_vs_region,
    "fig10e": fig10e_se_time_split,
    "fig10f": fig10f_real_construction,
    "fig10g": fig10g_uv_speedup,
    "fig10h": fig10h_insertion,
    "fig10i": fig10i_deletion,
    "ablation_mmax": ablation_mmax,
    "ablation_cset": ablation_cset_parameters,
    "ablation_tightness": ablation_ubr_tightness,
    "ablation_verifier": ablation_verifier,
    "ablation_bulkload": ablation_bulkload,
    "ablation_topk": ablation_topk,
    "ablation_knn": ablation_knn,
    "ablation_batch": ablation_batch,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI: regenerate one figure and print its rows."""
    from .reporting import format_figure

    parser = argparse.ArgumentParser(
        description="Regenerate one paper figure/table."
    )
    parser.add_argument("figure", choices=sorted(ALL_FIGURES))
    parser.add_argument(
        "--io-mode",
        choices=("simulated", "measured"),
        default="simulated",
        help=(
            "For the I/O figures (fig9c, fig9g): 'measured' adds real "
            "snapshot-file page counts beside the simulated counters."
        ),
    )
    args = parser.parse_args(argv)
    driver = ALL_FIGURES[args.figure]
    kwargs: dict = {}
    if args.io_mode != "simulated":
        import inspect

        if "io_mode" not in inspect.signature(driver).parameters:
            parser.error(
                f"{args.figure} does not support --io-mode "
                "(only fig9c and fig9g report I/O columns)"
            )
        kwargs["io_mode"] = args.io_mode
    result = driver(**kwargs)
    print(format_figure(result))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
