"""Paper parameters (Table I) and the bench-scale mapping.

Two dataclasses:

* :class:`PaperDefaults` — the exact values of Table I of the paper, for
  reference and for EXPERIMENTS.md reporting.
* :class:`BenchScale` — the values the benchmarks actually run at.  The
  paper's C++ implementation handles |S| up to 100k objects with 500 pdf
  samples each; pure Python is two orders of magnitude slower on
  pointer-chasing index code, so default sweep sizes are scaled down
  ~100x while keeping every *shape-defining* parameter (dimensionality,
  domain size, uncertainty-region sizes, Δ, m_max, C-set parameters)
  identical.  All drivers accept overrides, so the harness can be run at
  paper scale given enough patience.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PaperDefaults", "BenchScale", "PAPER", "SCALE"]


@dataclass(frozen=True)
class PaperDefaults:
    """Table I of the paper: parameters and their default values."""

    #: database sizes swept in the synthetic experiments (default 60k)
    sizes: tuple[int, ...] = (20_000, 40_000, 60_000, 80_000, 100_000)
    default_size: int = 60_000
    #: dimensionalities swept (default 3)
    dims: tuple[int, ...] = (2, 3, 4, 5)
    default_dims: int = 3
    #: max uncertainty-region side lengths swept (default 60)
    u_maxes: tuple[float, ...] = (20.0, 40.0, 60.0, 80.0, 100.0)
    default_u_max: float = 60.0
    #: SE convergence thresholds swept (default 1)
    deltas: tuple[float, ...] = (0.1, 0.5, 1.0, 10.0, 100.0, 1000.0)
    default_delta: float = 1.0
    #: domination-count partition budgets swept (default 10)
    m_maxes: tuple[int, ...] = (2, 3, 4, 5, 10, 20, 40)
    default_m_max: int = 10
    #: FS candidate-set sizes swept (default 200)
    ks: tuple[int, ...] = (20, 40, 100, 200, 400)
    default_k: int = 200
    #: IS per-partition counters swept (default 10)
    kpartitions: tuple[int, ...] = (2, 5, 10, 20, 50)
    default_kpartition: int = 10
    #: IS global NN cutoff (fixed at 200)
    default_kglobal: int = 200
    #: pdf discretization (instances per object)
    n_samples: int = 500
    #: domain extent per dimension ([0, 10k]^d)
    domain_size: float = 10_000.0
    #: real dataset sizes: roads / rrlines / airports
    real_sizes: dict[str, int] = field(
        default_factory=lambda: {
            "roads": 30_000,
            "rrlines": 36_000,
            "airports": 20_000,
        }
    )
    #: R-tree fanout, main-memory budget, page size
    rtree_fanout: int = 100
    memory_budget: int = 5 * 1024 * 1024
    page_size: int = 4096


@dataclass(frozen=True)
class BenchScale:
    """Default scale the shipped benchmarks run at (see module docs).

    Every field mirrors a :class:`PaperDefaults` field; values that do
    not influence the *shape* of the curves (dimensions, u_max, Δ,
    m_max, k, kpartition) are unchanged from the paper.
    """

    sizes: tuple[int, ...] = (200, 400, 600, 800, 1_000)
    default_size: int = 600
    dims: tuple[int, ...] = (2, 3, 4, 5)
    default_dims: int = 3
    u_maxes: tuple[float, ...] = (20.0, 40.0, 60.0, 80.0, 100.0)
    default_u_max: float = 60.0
    deltas: tuple[float, ...] = (0.1, 0.5, 1.0, 10.0, 100.0, 1000.0)
    default_delta: float = 1.0
    m_maxes: tuple[int, ...] = (2, 3, 4, 5, 10, 20, 40)
    default_m_max: int = 10
    ks: tuple[int, ...] = (20, 40, 100, 200, 400)
    default_k: int = 200
    kpartitions: tuple[int, ...] = (2, 5, 10, 20, 50)
    default_kpartition: int = 10
    default_kglobal: int = 200
    #: pdf discretization, scaled 5x down (Step 2 is O(samples^2)-ish)
    n_samples: int = 100
    domain_size: float = 10_000.0
    #: simulated real datasets, scaled 10x down
    real_sizes: dict[str, int] = field(
        default_factory=lambda: {
            "roads": 1_500,
            "rrlines": 1_800,
            "airports": 1_000,
        }
    )
    rtree_fanout: int = 100
    #: memory budget scaled with |S| so octree depth behaves like the
    #: paper's (5 MB over 100k objects ≈ 52 B/object; keep the ratio).
    memory_budget: int = 64 * 1024
    page_size: int = 4096
    #: queries averaged per data point (paper: 50)
    n_queries: int = 20
    #: sizes used where the ALL strategy appears (it is O(|S|²) overall)
    all_sizes: tuple[int, ...] = (50, 100, 150, 200)
    #: update batch: the paper removes/re-inserts 1k of 20k (5%)
    update_fraction: float = 0.05


PAPER = PaperDefaults()
SCALE = BenchScale()
