"""Timing and I/O instrumentation used by every figure driver.

Per-query timing and I/O attribution now live on the engines
themselves: every engine populates a shared
:class:`~repro.engine.ExecutionStats` (re-exported here) with the
OR/PC wall-clock split and per-phase page traffic, so figure drivers
read one object instead of re-bracketing each call.  The helpers below
remain for instrumenting code *outside* an engine — index construction
(:class:`Stopwatch`), ad-hoc I/O windows (:func:`measure_io`), and
streaming aggregation (:class:`RunningMean`).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from ..engine import ExecutionStats
from ..storage import IOStats, Pager

__all__ = ["Stopwatch", "measure_io", "RunningMean", "ExecutionStats"]


class Stopwatch:
    """Accumulating wall-clock timer.

    Use as a context manager; re-enter to accumulate::

        watch = Stopwatch()
        with watch:
            work()
        print(watch.seconds)
    """

    def __init__(self) -> None:
        self.seconds = 0.0
        self._t0: float | None = None

    def __enter__(self) -> "Stopwatch":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._t0 is not None
        self.seconds += time.perf_counter() - self._t0
        self._t0 = None

    def reset(self) -> None:
        """Zero the accumulated time."""
        self.seconds = 0.0

    @property
    def millis(self) -> float:
        """Accumulated time in milliseconds."""
        return self.seconds * 1e3


@contextmanager
def measure_io(pager: Pager) -> Iterator[IOStats]:
    """Yield an :class:`IOStats` populated with the traffic of the block.

    The yielded object is filled in when the block exits::

        with measure_io(pager) as io:
            index.candidates(q)
        print(io.reads)
    """
    before = pager.stats.snapshot()
    out = IOStats()
    try:
        yield out
    finally:
        after = pager.stats.snapshot()
        delta = after.delta(before)
        out.reads = delta.reads
        out.writes = delta.writes


@dataclass
class RunningMean:
    """Streaming mean of a series of measurements."""

    total: float = 0.0
    count: int = 0
    values: list[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        """Record one measurement."""
        self.total += value
        self.count += 1
        self.values.append(value)

    @property
    def mean(self) -> float:
        """Average of all recorded measurements (0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count
