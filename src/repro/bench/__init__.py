"""Benchmark harness regenerating every table and figure of the paper.

The package is organised around one driver function per experiment
(:mod:`repro.bench.figures`); each driver builds its workload
(:mod:`repro.bench.workloads`), runs the indexes under instrumentation
(:mod:`repro.bench.instruments`), and returns a :class:`FigureResult`
whose rows mirror the series the paper plots.  Formatting helpers live
in :mod:`repro.bench.reporting`; paper defaults and the bench-scale
mapping live in :mod:`repro.bench.config`.

Typical use::

    from repro.bench import figures, reporting

    result = figures.fig9a_query_vs_size()
    print(reporting.format_figure(result))
"""

from .config import BenchScale, PaperDefaults, PAPER, SCALE
from .figures import FigureResult
from .instruments import Stopwatch, measure_io
from .reporting import format_figure, format_rows
from .workloads import (
    IndexBundle,
    build_pv_bundle,
    build_rtree_bundle,
    build_uv_bundle,
    make_dataset,
    query_points,
    real_dataset,
)

__all__ = [
    "BenchScale",
    "PaperDefaults",
    "PAPER",
    "SCALE",
    "FigureResult",
    "Stopwatch",
    "measure_io",
    "format_figure",
    "format_rows",
    "IndexBundle",
    "build_pv_bundle",
    "build_rtree_bundle",
    "build_uv_bundle",
    "make_dataset",
    "query_points",
    "real_dataset",
]
