"""Plain-text rendering of :class:`~repro.bench.figures.FigureResult`."""

from __future__ import annotations

from typing import Iterable

from .figures import FigureResult

__all__ = ["format_figure", "format_rows"]


def _fmt_value(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    if isinstance(value, tuple):
        return "(" + ", ".join(_fmt_value(v) for v in value) + ")"
    return str(value)


def format_rows(
    columns: Iterable[str], rows: Iterable[dict]
) -> str:
    """ASCII table of dict rows under the given column order."""
    cols = list(columns)
    rendered = [
        [_fmt_value(row[c]) for c in cols] for row in rows
    ]
    widths = [
        max(len(c), *(len(r[i]) for r in rendered)) if rendered else len(c)
        for i, c in enumerate(cols)
    ]
    header = " | ".join(c.ljust(w) for c, w in zip(cols, widths))
    rule = "-+-".join("-" * w for w in widths)
    body = [
        " | ".join(v.ljust(w) for v, w in zip(r, widths))
        for r in rendered
    ]
    return "\n".join([header, rule, *body])


def format_figure(result: FigureResult) -> str:
    """Full report for one figure: heading, table, notes."""
    parts = [f"{result.figure}: {result.title}"]
    parts.append("=" * len(parts[0]))
    parts.append(format_rows(result.columns, result.rows))
    if result.notes:
        parts.append("")
        parts.append(f"note: {result.notes}")
    return "\n".join(parts)
