"""repro.testing — deterministic fault injection for chaos testing.

The serving and storage stacks expose thin hook points
(:func:`repro.testing.faults.check`) that are no-ops until a
:class:`~repro.testing.faults.FaultPlan` is armed.  Tests arm a seeded,
trigger-counted plan and the stack under test starts failing exactly
where the plan says: WAL appends raise ``EIO`` or tear mid-record,
worker processes die or hang mid-chunk, shared-memory attaches fail.
"""

from .faults import (
    SITES,
    FaultInjected,
    FaultPlan,
    FaultRule,
    arm,
    check,
    disarm,
    injected,
)

__all__ = [
    "SITES",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "arm",
    "check",
    "disarm",
    "injected",
]
