"""Deterministic fault injection for the serving and storage stacks.

The chaos oracles need to *prove* fault-tolerance properties — "a
killed worker never loses a query", "a torn WAL append never corrupts
the log" — rather than hope a random kill schedule stumbles onto the
interesting interleavings.  This module provides the injection side:

* A :class:`FaultPlan` is a seeded, trigger-counted schedule of
  :class:`FaultRule` values.  Each rule names a **site** (a string
  like ``"wal.append"``), an **action**, and *when* to fire: skip the
  first ``after`` hits of the site, then fire for the next ``count``
  hits (optionally gated by a seeded coin flip).  Identical plans
  replay identical fault schedules — the plan is the random seed of
  the chaos test.
* Production code calls :func:`check` at its hook points.  Unarmed
  (the default, and always in production) this is one global load and
  a ``None`` comparison; armed, it consults the plan and either
  returns ``None`` (no rule fired), raises :class:`FaultInjected`
  (``eio`` / ``fail`` actions), sleeps (``hang``), kills the process
  (``kill``), or returns the fired rule so the caller can implement a
  structured fault itself (``torn`` — only the WAL knows how to tear
  a record at a byte offset).

Sites wired into the stack (the chaos matrix):

=====================  ==============================================
``wal.append``         before a WAL record is written (``eio`` aborts
                       the mutation; ``torn`` writes ``arg`` bytes of
                       the record then fails — the tear the recovery
                       scan must tolerate)
``wal.fsync``          between write and fsync (``eio``)
``durable.checkpoint`` before the snapshot export of a checkpoint
``proc.attach``        in a worker, before attaching the shared
                       segment (``fail`` — exercises attach retry)
``proc.chunk``         in a worker, before executing a dispatched
                       chunk (``kill`` / ``hang`` — exercises retry,
                       heartbeats, and stall detection)
``proc.fence``         in a worker, on receiving a re-attach fence
                       (``kill`` — exercises fence leak-freedom)
=====================  ==============================================

Plans are picklable: the process pool ships its plan to spawned
workers via the worker config, and each process replays rule counters
from zero (scope worker-specific rules with ``wid=``).
"""

from __future__ import annotations

import errno
import os
import random
import time
from dataclasses import dataclass
from typing import Any, Iterable

from ..analysis.locks import make_lock

__all__ = [
    "ACTIONS",
    "SITES",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "arm",
    "check",
    "disarm",
    "active",
    "injected",
]

#: Everything a rule may do when it fires.
ACTIONS = ("eio", "fail", "torn", "kill", "hang")

#: The registry of hook sites wired into the stack (the table above).
#: :func:`arm` rejects plans targeting unregistered sites — a typo'd
#: site used to arm successfully and then silently never fire — and
#: ``python -m repro.analysis`` cross-references every
#: ``faults.check(...)`` literal against this mapping, both ways.
SITES: dict[str, str] = {
    "wal.append": "before a WAL record is written",
    "wal.fsync": "between a WAL write and its fsync",
    "durable.checkpoint": "before the snapshot export of a checkpoint",
    "proc.attach": "worker-side, before attaching the shared segment",
    "proc.chunk": "worker-side, before executing a dispatched chunk",
    "proc.fence": "worker-side, on receiving a re-attach fence",
}

#: Exit code of a ``kill`` action, so a chaos test can tell an
#: injected death from a genuine crash in the worker.
KILL_EXIT_CODE = 117


class FaultInjected(OSError):
    """An injected I/O fault (``errno.EIO``) from an armed plan."""

    def __init__(self, site: str, action: str) -> None:
        super().__init__(errno.EIO, f"injected {action!r} fault at {site!r}")
        self.site = site
        self.action = action

    def __reduce__(self):  # OSError.__reduce__ drops the subclass args
        return (type(self), (self.site, self.action))


@dataclass(frozen=True)
class FaultRule:
    """One scheduled fault: fire ``action`` at ``site`` on hits
    ``[after, after + count)``, each gated by ``probability``.

    ``wid`` scopes the rule to one pool worker (sites that pass a
    ``wid`` context); ``arg`` parameterizes the action — byte offset
    of a ``torn`` write, sleep seconds of a ``hang``.
    """

    site: str
    action: str
    after: int = 0
    count: int = 1
    probability: float = 1.0
    wid: int | None = None
    arg: float | None = None

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r} "
                f"(expected one of {ACTIONS})"
            )
        if self.after < 0 or self.count < 1:
            raise ValueError("after must be >= 0 and count >= 1")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")


class FaultPlan:
    """A seeded, trigger-counted fault schedule.

    Thread-safe: hook sites are hit concurrently by scheduler workers
    and the durable listener.  Runtime state (per-rule hit counters,
    the fired log, the coin-flip stream) does **not** pickle — a plan
    shipped to a worker process starts counting from zero there, which
    is exactly what makes per-process schedules deterministic.
    """

    def __init__(
        self, rules: Iterable[FaultRule] = (), *, seed: int = 0
    ) -> None:
        self.rules: tuple[FaultRule, ...] = tuple(rules)
        self.seed = int(seed)
        self._reset_runtime()

    def _reset_runtime(self) -> None:
        self._lock = make_lock("faults.plan_lock")
        self._hits: dict[int, int] = {}
        self._fired: list[tuple[str, str, dict[str, Any]]] = []
        self._rng = random.Random(self.seed)

    # -- pickling (plans travel to spawned pool workers) ----------------
    def __getstate__(self) -> dict[str, Any]:
        return {"rules": self.rules, "seed": self.seed}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.rules = state["rules"]
        self.seed = state["seed"]
        self._reset_runtime()

    # ------------------------------------------------------------------
    @property
    def fired(self) -> list[tuple[str, str, dict[str, Any]]]:
        """Every fired fault so far: ``(site, action, context)``."""
        with self._lock:
            return list(self._fired)

    def trip(self, site: str, **ctx: Any) -> FaultRule | None:
        """One hook hit: fire the first matching eligible rule.

        Raises for ``eio``/``fail``, sleeps for ``hang``, exits the
        process for ``kill``; returns the rule for ``torn`` (the
        caller implements the tear) and ``None`` when nothing fired.
        """
        rule = None
        with self._lock:
            for i, candidate in enumerate(self.rules):
                if candidate.site != site:
                    continue
                if (
                    candidate.wid is not None
                    and ctx.get("wid") != candidate.wid
                ):
                    continue
                hit = self._hits.get(i, 0)
                self._hits[i] = hit + 1
                if not (
                    candidate.after <= hit < candidate.after + candidate.count
                ):
                    continue
                if (
                    candidate.probability < 1.0
                    and self._rng.random() >= candidate.probability
                ):
                    continue
                self._fired.append((site, candidate.action, dict(ctx)))
                rule = candidate
                break
        if rule is None:
            return None
        if rule.action == "hang":
            time.sleep(rule.arg if rule.arg is not None else 3600.0)
            return None
        if rule.action == "kill":
            os._exit(KILL_EXIT_CODE)
        if rule.action == "torn":
            return rule
        raise FaultInjected(site, rule.action)

    def __repr__(self) -> str:
        return (
            f"FaultPlan(seed={self.seed}, rules={len(self.rules)}, "
            f"fired={len(self.fired)})"
        )


#: The armed plan.  ``None`` (always, outside chaos tests) makes every
#: hook a single global load + comparison.
_PLAN: FaultPlan | None = None


def arm(plan: FaultPlan) -> FaultPlan:
    """Arm ``plan`` process-wide; hooks start consulting it.

    Rejects rules targeting sites absent from :data:`SITES`: an
    unregistered site has no hook, so the rule could never fire and
    the chaos test would silently assert nothing.
    """
    for rule in plan.rules:
        if rule.site not in SITES:
            raise ValueError(
                f"fault rule targets unregistered site {rule.site!r} "
                f"(known sites: {', '.join(sorted(SITES))})"
            )
    global _PLAN
    _PLAN = plan
    return plan


def disarm() -> None:
    """Disarm; every hook returns to its zero-cost path."""
    global _PLAN
    _PLAN = None


def active() -> FaultPlan | None:
    """The armed plan, or ``None``."""
    return _PLAN


def check(site: str, **ctx: Any) -> FaultRule | None:
    """The hook production code calls; see :meth:`FaultPlan.trip`."""
    plan = _PLAN
    if plan is None:
        return None
    return plan.trip(site, **ctx)


class injected:
    """``with injected(plan): ...`` — arm for the block, then disarm."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan

    def __enter__(self) -> FaultPlan:
        return arm(self.plan)

    def __exit__(self, *exc: Any) -> None:
        disarm()
