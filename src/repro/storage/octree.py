"""The paged octree — the PV-index's primary index.

Section VI-A: a multi-dimensional octree (quadtree when d = 2) whose root
covers the whole domain.  Non-leaf nodes hold ``2^d`` child pointers and
live in a bounded amount of main memory; leaf nodes live on disk as
linked lists of pages and store ``(object id, u(o))`` entries for every
object whose UBR overlaps the leaf's region.  A leaf that fills its first
page either chains another page (when the main-memory budget for non-leaf
nodes is exhausted) or splits into ``2^d`` children.

The octree is deliberately generic: it stores ``(key, rect, payload)``
entries by rectangle overlap and answers point lookups.  The PV-index
stores UBR-keyed entries; the UV-index reuses the same structure for its
candidate grids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from ..geometry import Rect
from .pager import PageChain, Pager

__all__ = ["OctreeConfig", "PagedOctree"]


@dataclass(frozen=True)
class OctreeConfig:
    """Tuning knobs of the paged octree.

    Parameters
    ----------
    memory_budget:
        Bytes of main memory available for non-leaf nodes (the paper's
        ``M``; 5 MB in the evaluation).  A split is allowed only while
        allocating ``2^d`` children stays within budget.
    nonleaf_node_bytes:
        Accounted size of one non-leaf node (``2^d`` child pointers plus
        bookkeeping); the paper's formula ``floor(M / 2^(d+2))`` nodes
        corresponds to 8-byte pointers.
    max_depth:
        Hard recursion limit (guards degenerate inputs where many equal
        rectangles can never be separated).
    entry_bytes:
        Declared on-page size of one leaf entry; defaults to
        ``8 + 16 d`` (id + uncertainty region) via :meth:`entry_size`.
    """

    memory_budget: int = 5 * 1024 * 1024
    nonleaf_node_bytes: int | None = None
    max_depth: int = 24

    def node_bytes(self, dims: int) -> int:
        """Accounted main-memory size of one non-leaf node."""
        if self.nonleaf_node_bytes is not None:
            return self.nonleaf_node_bytes
        return 8 * (1 << dims) + 32  # 2^d pointers + header

    @staticmethod
    def entry_size(dims: int) -> int:
        """On-page size of one (id, rect) leaf entry."""
        return 8 + 16 * dims


class _Node:
    """Internal octree node: either a leaf (page chain) or 2^d children."""

    __slots__ = ("region", "children", "chain", "entries")

    def __init__(self, region: Rect, pager: Pager) -> None:
        self.region = region
        self.children: list["_Node"] | None = None
        self.chain: PageChain | None = PageChain(pager)
        # In-memory mirror of the entries, used only to re-insert on
        # split; reads for queries go through the pager for accounting.
        self.entries: list[tuple[int, Rect, Any]] | None = []

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class PagedOctree:
    """A space-partitioning octree with paged leaves.

    Entries are ``(key, rect, payload)`` triples; an entry is replicated
    into every leaf whose region its rectangle overlaps (clipping
    replication, as in the paper's PV-index).

    Parameters
    ----------
    domain:
        Root region (the domain ``D``).
    pager:
        The shared simulated disk.
    config:
        Octree tuning; see :class:`OctreeConfig`.
    entry_bytes:
        Size charged per leaf entry; defaults to the (id, rect) layout.
    """

    def __init__(
        self,
        domain: Rect,
        pager: Pager,
        config: OctreeConfig | None = None,
        entry_bytes: int | None = None,
    ) -> None:
        self.config = config or OctreeConfig()
        self.pager = pager
        self.entry_bytes = (
            entry_bytes
            if entry_bytes is not None
            else OctreeConfig.entry_size(domain.dims)
        )
        self._root = _Node(domain, pager)
        self._memory_used = self.config.node_bytes(domain.dims)
        self._n_entries = 0
        self._n_nodes = 1
        self._n_leaves = 1

    # ------------------------------------------------------------------
    @property
    def domain(self) -> Rect:
        """The root region."""
        return self._root.region

    @property
    def n_entries(self) -> int:
        """Total stored entries (with replication)."""
        return self._n_entries

    @property
    def n_nodes(self) -> int:
        """Total nodes (leaves + non-leaves)."""
        return self._n_nodes

    @property
    def n_leaves(self) -> int:
        """Leaf count."""
        return self._n_leaves

    @property
    def memory_used(self) -> int:
        """Accounted main-memory bytes used by non-leaf structure."""
        return self._memory_used

    def _can_split(self, dims: int) -> bool:
        extra = (1 << dims) * self.config.node_bytes(dims)
        return self._memory_used + extra <= self.config.memory_budget

    # ------------------------------------------------------------------
    # Insertion (index-construction algorithm of Section VI-A)
    # ------------------------------------------------------------------
    def insert(self, key: int, rect: Rect, payload: Any = None) -> None:
        """Insert an entry into every leaf overlapping ``rect``."""
        if not self._root.region.intersects(rect):
            raise ValueError(
                f"rect {rect!r} lies outside the octree domain"
            )
        self._insert_into(self._root, key, rect, payload, depth=0)
        self._n_entries += 1

    def _insert_into(
        self, node: _Node, key: int, rect: Rect, payload: Any, depth: int
    ) -> None:
        if not node.is_leaf:
            for child in node.children:  # type: ignore[union-attr]
                if child.region.intersects(rect):
                    self._insert_into(child, key, rect, payload, depth + 1)
            return

        assert node.chain is not None and node.entries is not None
        head_free = self.pager.free_space(node.chain.head)
        fits_head = head_free >= self.entry_bytes
        if (
            not fits_head
            and depth < self.config.max_depth
            and self._can_split(node.region.dims)
            and self._split_helps(node, rect)
        ):
            self._split(node, depth)
            self._insert_into(node, key, rect, payload, depth)
            return
        # Either the head page has room, or we chain a page (budget
        # exhausted / too deep) — PageChain handles the chaining.
        node.chain.append_record(self.entry_bytes, (key, rect, payload))
        node.entries.append((key, rect, payload))

    @staticmethod
    def _split_helps(node: _Node, incoming: Rect) -> bool:
        """Would a split meaningfully separate this leaf's entries?

        Entries replicate into every child they overlap, so when the
        stored rectangles are large relative to the node, a split leaves
        every child almost as loaded as the parent while multiplying
        pages — recursing can then cascade to the depth limit (a real
        failure mode for clustered data whose PV-cells span much of the
        domain).  The split is performed only when the fullest would-be
        child receives at most 80% of the entries; otherwise the leaf
        chains another page, exactly what the paper's construction does
        once main memory runs out.
        """
        assert node.entries is not None
        rects = [rect for _key, rect, _payload in node.entries]
        rects.append(incoming)
        total = len(rects)
        worst = 0
        for child_region in node.region.quadrants():
            load = sum(
                1 for rect in rects if child_region.intersects(rect)
            )
            worst = max(worst, load)
        return worst <= 0.8 * total

    def _split(self, node: _Node, depth: int) -> None:
        """Turn a leaf into a non-leaf with 2^d children; re-insert."""
        assert node.chain is not None and node.entries is not None
        old_entries = node.entries
        node.chain.free_all()
        node.chain = None
        node.entries = None
        node.children = [
            _Node(region, self.pager) for region in node.region.quadrants()
        ]
        n_children = len(node.children)
        self._memory_used += n_children * self.config.node_bytes(
            node.region.dims
        )
        self._n_nodes += n_children
        self._n_leaves += n_children - 1
        for key, rect, payload in old_entries:
            for child in node.children:
                if child.region.intersects(rect):
                    self._insert_into(child, key, rect, payload, depth + 1)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def point_query(self, point: np.ndarray) -> list[tuple[int, Rect, Any]]:
        """Entries of the single leaf whose region contains ``point``.

        Traversal of non-leaf nodes is free (they are in memory); reading
        the leaf costs one page read per chained page.
        """
        p = np.asarray(point, dtype=np.float64)
        if not self._root.region.contains_point(p):
            raise ValueError("query point outside the domain")
        node = self._root
        while not node.is_leaf:
            node = self._child_containing(node, p)
        assert node.chain is not None
        return node.chain.read_all()

    def _child_containing(self, node: _Node, p: np.ndarray) -> _Node:
        """The child whose half-open region owns ``p``.

        Children share boundaries; ties resolve toward the high half so
        every point belongs to exactly one child.
        """
        mid = node.region.center
        index = 0
        for j in range(node.region.dims):
            if p[j] >= mid[j]:
                index |= 1 << j
        return node.children[index]  # type: ignore[index]

    def range_query_leaves(self, rect: Rect) -> list["_LeafView"]:
        """All leaves whose regions overlap ``rect`` (no I/O charged).

        Used by construction/maintenance (which subsequently reads or
        rewrites the leaves through the returned views, charging I/O at
        that point).
        """
        out: list[_LeafView] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not node.region.intersects(rect):
                continue
            if node.is_leaf:
                out.append(_LeafView(self, node))
            else:
                stack.extend(node.children)  # type: ignore[arg-type]
        return out

    def range_query(self, rect: Rect) -> list[tuple[int, Rect, Any]]:
        """Entries of every leaf overlapping ``rect`` (reads charged)."""
        out: list[tuple[int, Rect, Any]] = []
        for leaf in self.range_query_leaves(rect):
            out.extend(leaf.read())
        return out

    def iter_leaves(self) -> Iterator["_LeafView"]:
        """Every leaf of the tree (no I/O charged)."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield _LeafView(self, node)
            else:
                stack.extend(node.children)  # type: ignore[arg-type]

    def __repr__(self) -> str:
        return (
            f"PagedOctree(nodes={self._n_nodes}, leaves={self._n_leaves}, "
            f"entries={self._n_entries}, memory={self._memory_used}B)"
        )


class _LeafView:
    """Handle to one octree leaf, used by maintenance operations."""

    __slots__ = ("_tree", "_node")

    def __init__(self, tree: PagedOctree, node: _Node) -> None:
        self._tree = tree
        self._node = node

    @property
    def region(self) -> Rect:
        """The leaf's region."""
        return self._node.region

    def read(self) -> list[tuple[int, Rect, Any]]:
        """All entries (one read per chained page)."""
        assert self._node.chain is not None
        return self._node.chain.read_all()

    def peek(self) -> list[tuple[int, Rect, Any]]:
        """All entries without charging I/O (test/debug use only)."""
        assert self._node.entries is not None
        return list(self._node.entries)

    def remove_key(self, key: int) -> int:
        """Delete all entries with ``key``; returns how many were removed.

        Rewrites the page chain (one write per surviving page).
        """
        assert self._node.chain is not None and self._node.entries is not None
        keep = [e for e in self._node.entries if e[0] != key]
        removed = len(self._node.entries) - len(keep)
        if removed:
            delta = len(keep) - len(self._node.entries)
            self._node.entries = keep
            self._node.chain.rewrite_all(
                [(self._tree.entry_bytes, e) for e in keep]
            )
            self._tree._n_entries += delta
        return removed

    def add_entry(self, key: int, rect: Rect, payload: Any = None) -> None:
        """Append an entry directly to this leaf (append-page I/O)."""
        assert self._node.chain is not None and self._node.entries is not None
        self._node.chain.append_record(
            self._tree.entry_bytes, (key, rect, payload)
        )
        self._node.entries.append((key, rect, payload))
        self._tree._n_entries += 1

    def contains_key(self, key: int) -> bool:
        """Metadata check (no I/O) whether the leaf holds ``key``."""
        assert self._node.entries is not None
        return any(e[0] == key for e in self._node.entries)

    def compact(self) -> int:
        """Rewrite the page chain to its minimal length; returns pages freed.

        Construction and maintenance leave partially-filled pages behind
        (splits, deletions, head-chaining); compaction repacks the
        surviving entries densely, charging one write per resulting page.
        """
        assert self._node.chain is not None and self._node.entries is not None
        before = len(self._node.chain)
        self._node.chain.rewrite_all(
            [(self._tree.entry_bytes, e) for e in self._node.entries]
        )
        return before - len(self._node.chain)
