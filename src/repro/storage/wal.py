"""Write-ahead log keyed by the dataset mutation epoch.

The durable layer (``storage/durable.py``) persists an
:class:`~repro.uncertain.store.InstanceStore` snapshot plus a log of
the mutations applied since.  The dataset's monotonic mutation epoch
*is* the log sequence number: every ``insert``/``delete`` bumps the
epoch by exactly one, so "replay the WAL onto a snapshot at epoch E"
means "apply every record with epoch > E, in order, and demand they
are contiguous".

On-disk format
--------------
A 12-byte file header (``b"REPROWAL"`` magic + little-endian u32
layout version) followed by records.  Each record is::

    <u32 payload_len> <i64 epoch> <u8 op> <u32 crc32> <payload bytes>

The CRC covers the payload *and* the (length, epoch, op) header
fields, so a bit flip anywhere in a record is caught.  Scanning stops
at the first record whose header or body is truncated or whose CRC
fails — a torn tail from a crash mid-append is expected and tolerated;
everything before it is trusted.

Payloads serialize full objects (insert) or just the oid (delete), all
little-endian: an insert is ``(oid, m, d)`` as three i64 followed by
the region corners (``2·d`` f64), the ``m·d`` instance coordinates and
the ``m`` weights; a delete is a single i64 oid.  Records are
self-contained so replay needs no out-of-band schema.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from typing import BinaryIO

import numpy as np

from ..geometry import Rect
from ..testing.faults import FaultInjected, check as _fault_check
from ..uncertain.objects import UncertainObject

__all__ = [
    "OP_INSERT",
    "OP_DELETE",
    "WalRecord",
    "WalError",
    "WriteAheadLog",
    "encode_insert",
    "encode_delete",
    "decode_payload",
]

_FILE_MAGIC = b"REPROWAL"
_FILE_VERSION = 1
_FILE_HEADER = _FILE_MAGIC + struct.pack("<I", _FILE_VERSION)
_REC_HEADER = struct.Struct("<IqBI")  # payload_len, epoch, op, crc32

OP_INSERT = 1
OP_DELETE = 2

_INSERT_FIXED = struct.Struct("<qqq")  # oid, m (instances), d (dims)
_DELETE_FIXED = struct.Struct("<q")  # oid


class WalError(Exception):
    """A structurally invalid WAL file (bad magic/version, not torn tail)."""


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record."""

    epoch: int
    op: int
    payload: bytes

    def decode(self) -> tuple[str, UncertainObject | int]:
        """``("insert", UncertainObject)`` or ``("delete", oid)``."""
        return decode_payload(self.op, self.payload)


def encode_insert(obj: UncertainObject) -> bytes:
    """Serialize a full object for an OP_INSERT payload."""
    inst = np.ascontiguousarray(obj.instances, dtype=np.float64)
    w = np.ascontiguousarray(obj.weights, dtype=np.float64)
    lo = np.ascontiguousarray(obj.region.lo, dtype=np.float64)
    hi = np.ascontiguousarray(obj.region.hi, dtype=np.float64)
    m, d = inst.shape
    return b"".join(
        (
            _INSERT_FIXED.pack(obj.oid, m, d),
            lo.tobytes(),
            hi.tobytes(),
            inst.tobytes(),
            w.tobytes(),
        )
    )


def encode_delete(oid: int) -> bytes:
    """Serialize an oid for an OP_DELETE payload."""
    return _DELETE_FIXED.pack(oid)


def decode_payload(op: int, payload: bytes) -> tuple[str, UncertainObject | int]:
    """Decode a record payload back into its mutation."""
    if op == OP_DELETE:
        (oid,) = _DELETE_FIXED.unpack(payload)
        return "delete", oid
    if op != OP_INSERT:
        raise WalError(f"unknown WAL op {op}")
    oid, m, d = _INSERT_FIXED.unpack_from(payload, 0)
    off = _INSERT_FIXED.size
    expect = off + (2 * d + m * d + m) * 8
    if len(payload) != expect:
        raise WalError(
            f"insert payload for oid {oid} is {len(payload)} bytes, "
            f"expected {expect}"
        )
    lo = np.frombuffer(payload, dtype=np.float64, count=d, offset=off)
    off += d * 8
    hi = np.frombuffer(payload, dtype=np.float64, count=d, offset=off)
    off += d * 8
    inst = np.frombuffer(
        payload, dtype=np.float64, count=m * d, offset=off
    ).reshape(m, d)
    off += m * d * 8
    w = np.frombuffer(payload, dtype=np.float64, count=m, offset=off)
    obj = UncertainObject(
        oid=oid, region=Rect(lo, hi), instances=inst, weights=w
    )
    return "insert", obj


def _crc(payload: bytes, payload_len: int, epoch: int, op: int) -> int:
    head = struct.pack("<IqB", payload_len, epoch, op)
    return zlib.crc32(payload, zlib.crc32(head)) & 0xFFFFFFFF


class WriteAheadLog:
    """Append-only checksummed log of dataset mutations.

    Parameters
    ----------
    path:
        Log file; created (with its header) when absent.
    fsync:
        ``"always"`` fsyncs after every append — a record is durable
        before the in-memory mutation commits.  ``"off"`` leaves
        flushing to the OS: faster, and crash recovery still works (the
        torn tail is dropped), but the last few mutations may be lost.
    """

    def __init__(self, path: str | os.PathLike, *, fsync: str = "always"):
        if fsync not in ("always", "off"):
            raise ValueError(f"fsync must be 'always' or 'off', not {fsync!r}")
        self.path = os.fspath(path)
        self.fsync = fsync
        fresh = not os.path.exists(self.path)
        self._fh: BinaryIO = open(self.path, "ab" if not fresh else "wb")
        if fresh:
            self._fh.write(_FILE_HEADER)
            self._fh.flush()
            os.fsync(self._fh.fileno())
        else:
            # Append mode positions at end only on write; seek now so
            # tell() marks the record boundary before each append.
            self._fh.seek(0, os.SEEK_END)

    # ------------------------------------------------------------------
    def append(self, epoch: int, op: int, payload: bytes) -> None:
        """Append one record; durable before returning when fsync=always.

        **Failure atomicity:** an I/O error anywhere in the append
        (write, flush, fsync — injected or real) heals the file back
        to the pre-append record boundary before the error propagates,
        so a failed append can never leave a half-written record in
        *front* of later successful ones (the recovery scan stops at
        the first tear — mid-file damage would silently drop every
        record behind it).  The heal is best-effort: if truncation
        fails too, the tail is torn at the boundary the scan already
        tolerates.
        """
        if self._fh.closed:
            raise ValueError("WAL is closed")
        crc = _crc(payload, len(payload), epoch, op)
        record = _REC_HEADER.pack(len(payload), epoch, op, crc) + payload
        start = self._fh.tell()
        try:
            rule = _fault_check("wal.append", epoch=epoch)
            if rule is not None:  # "torn" — write a prefix, then fail
                cut = int(rule.arg) if rule.arg is not None else (
                    len(record) // 2
                )
                self._fh.write(record[: max(0, min(cut, len(record)))])
                self._fh.flush()
                raise FaultInjected("wal.append", "torn")
            self._fh.write(record)
            self._fh.flush()
            _fault_check("wal.fsync", epoch=epoch)
            if self.fsync == "always":
                os.fsync(self._fh.fileno())
        except OSError:
            try:
                self.truncate_to(start)
            except OSError:  # pragma: no cover - disk truly gone
                pass
            raise

    def flush(self) -> None:
        """Force buffered records to disk regardless of fsync policy."""
        if not self._fh.closed:
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def reset(self) -> None:
        """Truncate to an empty log (after a checkpoint made it obsolete)."""
        self.truncate_to(len(_FILE_HEADER))

    def truncate_to(self, nbytes: int) -> None:
        """Drop everything past ``nbytes`` (e.g. a torn tail from scan)."""
        self._fh.flush()
        self._fh.truncate(nbytes)
        self._fh.seek(0, os.SEEK_END)
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    @staticmethod
    def scan(
        path: str | os.PathLike,
    ) -> tuple[list[WalRecord], int, bool]:
        """Read every intact record.

        Returns ``(records, valid_bytes, damaged)``: the records in file
        order, the byte offset up to which the file is intact, and
        whether a torn/corrupt tail was found after it.  A missing file
        scans as empty and undamaged.  Raises :class:`WalError` only for
        a bad file header — that is not a crash artifact.
        """
        path = os.fspath(path)
        if not os.path.exists(path):
            return [], len(_FILE_HEADER), False
        with open(path, "rb") as fh:
            data = fh.read()
        if len(data) < len(_FILE_HEADER):
            # File created but header write was torn: treat as empty.
            return [], len(_FILE_HEADER), True
        if data[: len(_FILE_MAGIC)] != _FILE_MAGIC:
            raise WalError(f"{path} is not a WAL file (bad magic)")
        (version,) = struct.unpack_from("<I", data, len(_FILE_MAGIC))
        if version != _FILE_VERSION:
            raise WalError(
                f"{path}: WAL layout version {version} is not supported"
            )
        records: list[WalRecord] = []
        pos = len(_FILE_HEADER)
        damaged = False
        while pos < len(data):
            if pos + _REC_HEADER.size > len(data):
                damaged = True
                break
            plen, epoch, op, crc = _REC_HEADER.unpack_from(data, pos)
            body_start = pos + _REC_HEADER.size
            body_end = body_start + plen
            if body_end > len(data):
                damaged = True
                break
            payload = data[body_start:body_end]
            if _crc(payload, plen, epoch, op) != crc:
                damaged = True
                break
            records.append(WalRecord(epoch=epoch, op=op, payload=payload))
            pos = body_end
        return records, pos, damaged

    def __repr__(self) -> str:
        return f"WriteAheadLog(path={self.path!r}, fsync={self.fsync!r})"
