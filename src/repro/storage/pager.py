"""A simulated disk: fixed-size pages with read/write accounting.

The paper evaluates indexes on 4 KB disk pages and reports I/O counts
(Figures 9(c) and 9(g)).  Reproducing that on modern hardware — much less
from Python — is meaningless in absolute terms, so this module simulates
the disk: every index in the library (PV-index octree leaves, R-tree
leaves, UV-index leaves, the extensible hash table) stores its payloads
through one :class:`Pager`, and the benchmarks report *page accesses*,
which is exactly the quantity the paper's I/O figures measure up to a
hardware constant.

Pages hold opaque Python payloads, but admission is governed by declared
byte sizes, so capacity behaves like a real 4 KB page.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "DEFAULT_PAGE_SIZE",
    "PageFullError",
    "IOStats",
    "Page",
    "Pager",
    "PageChain",
]

DEFAULT_PAGE_SIZE = 4096
"""Page capacity in bytes (the paper's 4 KB disk pages)."""


class PageFullError(Exception):
    """Raised when a record does not fit in the remaining page capacity."""


@dataclass
class IOStats:
    """Counters of simulated disk traffic."""

    reads: int = 0
    writes: int = 0

    @property
    def total(self) -> int:
        """Reads plus writes."""
        return self.reads + self.writes

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0

    def snapshot(self) -> "IOStats":
        """An independent copy of the current counters."""
        return IOStats(reads=self.reads, writes=self.writes)

    def delta(self, earlier: "IOStats") -> "IOStats":
        """Traffic accumulated since ``earlier`` (a prior snapshot)."""
        return IOStats(
            reads=self.reads - earlier.reads,
            writes=self.writes - earlier.writes,
        )


@dataclass
class Page:
    """One disk page: a list of (size, payload) records."""

    page_id: int
    capacity: int
    used: int = 0
    records: list[tuple[int, Any]] = field(default_factory=list)

    @property
    def free(self) -> int:
        """Remaining capacity in bytes."""
        return self.capacity - self.used

    def fits(self, nbytes: int) -> bool:
        """True iff a record of ``nbytes`` bytes fits."""
        return nbytes <= self.free


class Pager:
    """Allocates pages and mediates every (simulated) disk access.

    All mutating/reading access must go through :meth:`read` /
    :meth:`append` / :meth:`rewrite` so the I/O counters stay truthful.
    """

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if page_size < 64:
            raise ValueError("page_size must be at least 64 bytes")
        self.page_size = page_size
        self.stats = IOStats()
        self._pages: dict[int, Page] = {}
        self._next_id = 0
        self._freed: set[int] = set()

    # ------------------------------------------------------------------
    @property
    def n_pages(self) -> int:
        """Number of live pages."""
        return len(self._pages)

    def allocate(self) -> int:
        """Create an empty page and return its id (one write).

        Ids are never reused: recycling a freed id would let a stale
        :class:`PageChain` silently read the *new* owner's records.
        Freed ids stay poisoned instead, so use-after-free raises.
        """
        pid = self._next_id
        self._next_id += 1
        self._pages[pid] = Page(page_id=pid, capacity=self.page_size)
        self.stats.writes += 1
        return pid

    def free(self, page_id: int) -> None:
        """Release a page (no I/O is charged; deallocation is metadata).

        The id is poisoned, not recycled: any later access through it
        raises ``KeyError`` instead of aliasing a newer page.
        """
        if page_id not in self._pages:
            raise KeyError(f"no page {page_id}")
        del self._pages[page_id]
        self._freed.add(page_id)

    def read(self, page_id: int) -> list[Any]:
        """All payloads on the page (one read)."""
        page = self._page(page_id)
        self.stats.reads += 1
        return [payload for _, payload in page.records]

    def append(self, page_id: int, nbytes: int, payload: Any) -> None:
        """Add a record to the page (one write).

        Raises
        ------
        PageFullError
            If the record does not fit; the caller is responsible for
            chaining a new page (linked lists of pages, Section VI-A).
        """
        page = self._page(page_id)
        if nbytes > self.page_size:
            raise ValueError(
                f"record of {nbytes} bytes exceeds page size "
                f"{self.page_size}"
            )
        if not page.fits(nbytes):
            raise PageFullError(
                f"page {page_id}: {nbytes} bytes requested, "
                f"{page.free} free"
            )
        page.records.append((nbytes, payload))
        page.used += nbytes
        self.stats.writes += 1

    def rewrite(self, page_id: int, records: list[tuple[int, Any]]) -> None:
        """Replace the whole page content (one write)."""
        page = self._page(page_id)
        used = sum(nbytes for nbytes, _ in records)
        if used > self.page_size:
            raise ValueError(
                f"{used} bytes exceed page size {self.page_size}"
            )
        page.records = list(records)
        page.used = used
        self.stats.writes += 1

    def free_space(self, page_id: int) -> int:
        """Remaining bytes on a page (metadata; no I/O charged)."""
        return self._page(page_id).free

    def record_count(self, page_id: int) -> int:
        """Number of records on a page (metadata; no I/O charged)."""
        return len(self._page(page_id).records)

    # ------------------------------------------------------------------
    def _page(self, page_id: int) -> Page:
        try:
            return self._pages[page_id]
        except KeyError:
            if page_id in self._freed:
                raise KeyError(
                    f"page {page_id} was freed (use-after-free)"
                ) from None
            raise KeyError(f"no page {page_id}") from None

    def __repr__(self) -> str:
        return (
            f"Pager(pages={self.n_pages}, page_size={self.page_size}, "
            f"reads={self.stats.reads}, writes={self.stats.writes})"
        )


class PageChain:
    """A linked list of pages, newest first (the paper's leaf layout).

    Section VI-A stores each octree leaf as "a linked list of disk
    pages", appending a fresh page at the head when the current head
    fills up.  The chain tracks its page ids in order so a full scan
    reads every page exactly once.
    """

    __slots__ = ("pager", "pages")

    def __init__(self, pager: Pager) -> None:
        self.pager = pager
        self.pages: list[int] = [pager.allocate()]

    @property
    def head(self) -> int:
        """Page id of the head (most recently attached) page."""
        if not self.pages:
            raise RuntimeError(
                "PageChain has been freed (free_all); allocate a new "
                "chain instead of reusing this one"
            )
        return self.pages[0]

    def append_record(self, nbytes: int, payload: Any) -> None:
        """Append to the head page, chaining a new page when full."""
        try:
            self.pager.append(self.head, nbytes, payload)
        except PageFullError:
            self.pages.insert(0, self.pager.allocate())
            self.pager.append(self.head, nbytes, payload)

    def read_all(self) -> list[Any]:
        """All records in the chain (one read per page)."""
        out: list[Any] = []
        for pid in self.pages:
            out.extend(self.pager.read(pid))
        return out

    def rewrite_all(self, records: list[tuple[int, Any]]) -> None:
        """Replace the chain content, compacting to as few pages as fit.

        All-or-nothing: every record size is validated before any page
        is touched, so a record larger than a page raises ``ValueError``
        with the chain (and the I/O counters) unchanged — never a
        half-old/half-new chain.
        """
        self.head  # noqa: B018 - freed-chain guard (raises RuntimeError)
        # Validate up front: once every record fits a page, the greedy
        # packing below can never overflow a page mid-loop.
        for nbytes, _payload in records:
            if nbytes > self.pager.page_size:
                raise ValueError(
                    f"record of {nbytes} bytes exceeds page size "
                    f"{self.pager.page_size}; rewrite_all left the "
                    "chain untouched"
                )
        # Pack greedily into existing pages, allocating/freeing as needed.
        packed: list[list[tuple[int, Any]]] = [[]]
        used = 0
        for nbytes, payload in records:
            if used + nbytes > self.pager.page_size:
                packed.append([])
                used = 0
            packed[-1].append((nbytes, payload))
            used += nbytes
        while len(self.pages) < len(packed):
            self.pages.insert(0, self.pager.allocate())
        while len(self.pages) > len(packed) and len(self.pages) > 1:
            self.pager.free(self.pages.pop(0))
        for pid, recs in zip(self.pages, packed):
            self.pager.rewrite(pid, recs)

    def free_all(self) -> None:
        """Release every page of the chain."""
        for pid in self.pages:
            self.pager.free(pid)
        self.pages = []

    def __len__(self) -> int:
        return len(self.pages)
