"""Snapshot + WAL durability for an uncertain dataset.

A durable database directory holds exactly two files:

* ``snapshot.bin`` — an :class:`~repro.uncertain.store.InstanceStore`
  image written by :meth:`~repro.uncertain.store.InstanceStore.
  export_file` (the same header layout the shared-memory path stamps:
  magic, layout version, epoch, n, size, dims).
* ``wal.log`` — a :class:`~repro.storage.wal.WriteAheadLog` of every
  mutation applied since the snapshot, keyed by the dataset's
  monotonic mutation epoch.

The contract:

* **Log before apply.**  :meth:`attach` registers a mutation listener
  that appends (and, under ``fsync="always"``, syncs) the WAL record
  *before* the in-memory mutation commits.  A WAL append that fails
  aborts the mutation, so memory never runs ahead of the log.
* **Recover = snapshot + contiguous replay.**  :meth:`recover` maps the
  snapshot, rebuilds the dataset at the snapshot epoch and applies
  every WAL record with a later epoch, demanding the epochs be exactly
  contiguous (each record advances the epoch by one).  Records at or
  below the snapshot epoch are skipped — replay is idempotent, so a
  crash between snapshot publication and WAL truncation is harmless.
* **Checkpoint order.**  :meth:`checkpoint` makes the new snapshot
  durable (tmp file + fsync + atomic rename + directory fsync) *before*
  truncating the WAL.  Every crash point leaves either the old
  snapshot + full WAL or the new snapshot + (possibly still full,
  harmlessly replayable) WAL.
* **Torn tails are expected.**  A SIGKILL mid-append leaves a
  truncated or CRC-broken final record; scanning stops there and
  :meth:`attach` truncates the damage before appending new records.
"""

from __future__ import annotations

import os
import threading
from typing import Callable

try:  # POSIX only; single-writer locking degrades gracefully without
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

from ..analysis.locks import make_lock
from ..testing.faults import check as _fault_check
from ..uncertain.dataset import UncertainDataset
from ..uncertain.objects import UncertainObject
from ..uncertain.store import attach_file
from .wal import (
    OP_DELETE,
    OP_INSERT,
    WalRecord,
    WriteAheadLog,
    encode_delete,
    encode_insert,
)

__all__ = [
    "DurableStore",
    "RecoveryError",
    "StoreLocked",
    "StoreReadOnly",
    "SNAPSHOT_FILE",
    "WAL_FILE",
]

SNAPSHOT_FILE = "snapshot.bin"
WAL_FILE = "wal.log"


class RecoveryError(Exception):
    """The snapshot + WAL pair cannot reproduce a consistent dataset."""


class StoreLocked(RuntimeError):
    """Another live session already owns this database directory.

    The WAL admits exactly one writer: a second opener would interleave
    records and corrupt the epoch contiguity the recovery path demands.
    Close (or kill) the other session first — the ``flock`` is released
    automatically when its process exits, so a crashed owner never
    wedges the directory.
    """


class StoreReadOnly(RuntimeError):
    """The store degraded to read-only after a WAL write failure.

    Raised by every mutation (and by :meth:`DurableStore.checkpoint`)
    once a WAL append failed under ``on_wal_error="read_only"``: the
    log can no longer be trusted to record new epochs, so instead of
    half-logging mutations the store refuses them while reads keep
    being served from the intact in-memory dataset.  Everything logged
    *before* the failure is still durable and recovers normally.
    """


class DurableStore:
    """Owns a database directory's snapshot and WAL.

    Parameters
    ----------
    path:
        Directory holding ``snapshot.bin`` and ``wal.log``; created on
        :meth:`initialize`.
    fsync:
        WAL sync policy, forwarded to :class:`WriteAheadLog`.
        ``"always"`` (default) makes every mutation durable before it
        commits; ``"off"`` trades the tail of the log for speed.
    on_wal_error:
        What a failed WAL append does to the store.  ``"fail_stop"``
        (default) re-raises the I/O error — the mutation is aborted
        (log-before-apply: memory never ran ahead) and the caller
        decides whether to retry; every later mutation attempts the
        log again.  ``"read_only"`` degrades gracefully instead: the
        failing mutation and every later one raise
        :class:`StoreReadOnly` while reads keep working — no epoch is
        ever half-logged, and :attr:`read_only` reports the
        degradation.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        fsync: str = "always",
        on_wal_error: str = "fail_stop",
    ):
        if on_wal_error not in ("fail_stop", "read_only"):
            raise ValueError(
                "on_wal_error must be 'fail_stop' or 'read_only', "
                f"not {on_wal_error!r}"
            )
        self.path = os.fspath(path)
        self.fsync = fsync
        self.on_wal_error = on_wal_error
        self._wal: WriteAheadLog | None = None
        self._dataset: UncertainDataset | None = None
        self._listener: Callable | None = None
        self._dir_fd: int | None = None  # flock holder (single writer)
        self._closed = False
        self._read_only = False
        #: Serializes checkpoint against checkpoint *and* close: a
        #: ``Database.close()`` racing an in-flight checkpoint (e.g.
        #: from a process-pool fence) must not interleave two
        #: export+reset sequences on one WAL (double reset could drop
        #: records appended between them) nor close the WAL under a
        #: checkpoint's feet.
        self._ckpt_lock = make_lock("durable.ckpt_lock")

    # ------------------------------------------------------------------
    @property
    def snapshot_path(self) -> str:
        return os.path.join(self.path, SNAPSHOT_FILE)

    @property
    def wal_path(self) -> str:
        return os.path.join(self.path, WAL_FILE)

    @classmethod
    def exists(cls, path: str | os.PathLike) -> bool:
        """True iff ``path`` looks like a durable database directory."""
        return os.path.exists(os.path.join(os.fspath(path), SNAPSHOT_FILE))

    # ------------------------------------------------------------------
    def _acquire_lock(self) -> None:
        """Take the directory-wide single-writer ``flock``.

        Idempotent while held.  The lock lives on the directory fd, so
        it conflicts between independent openers (other processes, or
        a second :class:`DurableStore` in this one) and evaporates when
        the owning process dies — no stale lockfiles to clean up.
        """
        if fcntl is None or self._dir_fd is not None:
            return
        fd = os.open(self.path, os.O_RDONLY)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            os.close(fd)
            raise StoreLocked(
                f"{self.path}: another session holds this database "
                "(the WAL admits one writer); close it before opening "
                "a second Database"
            ) from None
        self._dir_fd = fd

    def _release_lock(self) -> None:
        if self._dir_fd is not None:
            os.close(self._dir_fd)  # closing the fd drops the flock
            self._dir_fd = None

    # ------------------------------------------------------------------
    def initialize(self, dataset: UncertainDataset) -> None:
        """Create the directory with a snapshot of ``dataset`` + empty WAL."""
        os.makedirs(self.path, exist_ok=True)
        self._acquire_lock()
        dataset.instance_store().export_file(self.snapshot_path)
        if os.path.exists(self.wal_path):
            os.unlink(self.wal_path)
        WriteAheadLog(self.wal_path, fsync=self.fsync).close()

    def recover(self) -> UncertainDataset:
        """Rebuild the dataset: map the snapshot, replay the WAL.

        Raises
        ------
        RecoveryError
            When the snapshot is missing, a WAL record skips an epoch,
            or a replayed mutation fails to apply.
        """
        if not os.path.exists(self.snapshot_path):
            raise RecoveryError(
                f"{self.path}: no {SNAPSHOT_FILE}; not a durable "
                "database directory"
            )
        self._acquire_lock()
        snap = attach_file(self.snapshot_path)
        try:
            dataset = snap.build_dataset()
        finally:
            snap.close()
        records, _valid, _damaged = WriteAheadLog.scan(self.wal_path)
        self._replay(dataset, records)
        return dataset

    @staticmethod
    def _replay(
        dataset: UncertainDataset, records: list[WalRecord]
    ) -> None:
        """Apply WAL records onto a snapshot-recovered dataset."""
        for rec in records:
            if rec.epoch <= dataset.epoch:
                continue  # already in the snapshot: replay is idempotent
            if rec.epoch != dataset.epoch + 1:
                raise RecoveryError(
                    f"WAL skips from epoch {dataset.epoch} to "
                    f"{rec.epoch}; the log is not contiguous"
                )
            op, value = rec.decode()
            try:
                if op == "insert":
                    assert isinstance(value, UncertainObject)
                    dataset.insert(value)
                else:
                    assert isinstance(value, int)
                    dataset.delete(value)
            except (KeyError, ValueError) as exc:
                raise RecoveryError(
                    f"WAL epoch {rec.epoch} ({op}) failed to "
                    f"replay: {exc}"
                ) from exc

    def attach(self, dataset: UncertainDataset) -> None:
        """Start logging ``dataset``'s mutations into the WAL.

        Opens the WAL for appending (truncating any torn tail left by a
        crash) and registers the write-ahead listener.  The dataset's
        epoch must already reflect every intact WAL record — i.e. it
        came from :meth:`recover` or was just checkpointed.
        """
        if self._dataset is not None:
            raise RuntimeError("DurableStore is already attached")
        self._acquire_lock()
        _records, valid, damaged = WriteAheadLog.scan(self.wal_path)
        wal = WriteAheadLog(self.wal_path, fsync=self.fsync)
        if damaged:
            wal.truncate_to(valid)
        self._wal = wal

        def _on_mutation(op: str, obj, epoch: int) -> None:
            if self._closed:
                raise RuntimeError(
                    "durable store is closed; refusing an unlogged "
                    "mutation"
                )
            if self._read_only:
                raise StoreReadOnly(
                    f"{self.path}: store is read-only after a WAL "
                    "write failure; mutations are refused"
                )
            try:
                if op == "insert":
                    wal.append(epoch, OP_INSERT, encode_insert(obj))
                else:
                    wal.append(epoch, OP_DELETE, encode_delete(obj.oid))
            except OSError as exc:
                # The append healed the log back to the last record
                # boundary; the listener fires pre-apply, so raising
                # here aborts the mutation with memory untouched.
                if self.on_wal_error == "read_only":
                    self._read_only = True
                    raise StoreReadOnly(
                        f"{self.path}: WAL append for epoch {epoch} "
                        f"failed ({exc}); degrading to read-only — "
                        "this and later mutations are refused, reads "
                        "and already-logged epochs are unaffected"
                    ) from exc
                raise

        dataset.add_mutation_listener(_on_mutation)
        self._dataset = dataset
        self._listener = _on_mutation

    def checkpoint(self) -> int:
        """Write a fresh snapshot and truncate the WAL; returns the epoch.

        The snapshot is durable (atomic rename + fsync) *before* the
        WAL is reset, so a crash at any point recovers correctly.
        Serialized against concurrent checkpoints and :meth:`close`
        under one lock — a ``Database.close()`` racing a pool fence's
        checkpoint must not double-reset the WAL (the second reset
        would drop records appended between them).
        """
        with self._ckpt_lock:
            if self._dataset is None:
                raise RuntimeError(
                    "DurableStore is not attached to a dataset"
                )
            if self._closed:
                raise RuntimeError("durable store is closed")
            if self._read_only:
                raise StoreReadOnly(
                    f"{self.path}: store is read-only after a WAL "
                    "write failure; refusing to checkpoint (the "
                    "on-disk state is the last trustworthy one)"
                )
            _fault_check("durable.checkpoint")
            epoch = self._dataset.instance_store().export_file(
                self.snapshot_path
            )
            assert self._wal is not None
            self._wal.reset()
            return epoch

    @property
    def read_only(self) -> bool:
        """True once a WAL failure degraded the store (read_only policy)."""
        return self._read_only

    def close(self) -> None:
        """Detach from the dataset and close the WAL.

        Further mutations of a still-referenced dataset raise rather
        than silently going unlogged.  Waits out any in-flight
        checkpoint so the WAL is never closed under its feet.
        """
        with self._ckpt_lock:
            if self._closed:
                return
            self._closed = True
            if self._wal is not None:
                self._wal.close()
            self._release_lock()

    def __enter__(self) -> "DurableStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else (
            "attached" if self._dataset is not None else "detached"
        )
        return f"DurableStore(path={self.path!r}, {state})"
