"""Extensible hashing — the PV-index's secondary index.

Section VI-A of the paper stores, for every object id, its UBR and its
discretized uncertainty pdf in "an extensible hash table" kept on disk.
This is the classic Fagin-style extendible hashing scheme ([41] in the
paper): a directory of ``2^g`` bucket pointers (``g`` = global depth),
each bucket a disk page with a local depth; an overflowing bucket splits
by one bit, doubling the directory only when its local depth already
equals the global depth.

The directory is main-memory metadata; buckets live on the simulated
:class:`~repro.storage.pager.Pager`, so every probe costs exactly one
page read — the property the paper relies on when charging Step 2 with
one secondary-index access per answer object.
"""

from __future__ import annotations

from typing import Any, Iterator

from .pager import Pager

__all__ = ["ExtensibleHashTable"]


class _Bucket:
    """Directory-side metadata of one hash bucket."""

    __slots__ = ("page_id", "local_depth", "keys")

    def __init__(self, page_id: int, local_depth: int) -> None:
        self.page_id = page_id
        self.local_depth = local_depth
        self.keys: set[int] = set()


class ExtensibleHashTable:
    """An int-keyed extendible hash table over simulated disk pages.

    Parameters
    ----------
    pager:
        The shared simulated disk.
    record_size:
        Declared size in bytes of each record; with the default 4 KB
        pages a bucket holds ``4096 // record_size`` records.  Records
        larger than a page are stored as a single oversized logical
        record that costs ``ceil(record_size / page_size)`` reads to
        fetch (object pdfs routinely exceed one page).
    """

    def __init__(self, pager: Pager, record_size: int = 64) -> None:
        if record_size < 1:
            raise ValueError("record_size must be positive")
        self.pager = pager
        self.record_size = record_size
        self._bucket_capacity = max(1, pager.page_size // record_size)
        # Oversized records span several pages; model the extra I/O.
        self._pages_per_record = -(-record_size // pager.page_size)
        bucket = _Bucket(page_id=pager.allocate(), local_depth=0)
        self.global_depth = 0
        self._directory: list[_Bucket] = [bucket]
        self._store: dict[int, Any] = {}
        self._n_records = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n_records

    def __contains__(self, key: int) -> bool:
        return key in self._store

    def keys(self) -> Iterator[int]:
        """All stored keys."""
        return iter(self._store.keys())

    @property
    def directory_size(self) -> int:
        """Number of directory slots (``2^global_depth``)."""
        return len(self._directory)

    @property
    def n_buckets(self) -> int:
        """Number of distinct buckets (pages)."""
        return len({id(b) for b in self._directory})

    def disk_pages(self) -> int:
        """Total pages attributable to the table's records."""
        return self.n_buckets * self._pages_per_record

    # ------------------------------------------------------------------
    def _slot(self, key: int) -> int:
        """Directory slot for ``key``: low ``global_depth`` hash bits."""
        if self.global_depth == 0:
            return 0
        return hash(key) & ((1 << self.global_depth) - 1)

    def _bucket(self, key: int) -> _Bucket:
        return self._directory[self._slot(key)]

    def put(self, key: int, value: Any) -> None:
        """Insert or overwrite; splits buckets / doubles the directory.

        Costs one page write (plus redistribution writes on splits).
        """
        bucket = self._bucket(key)
        if key in self._store and key in bucket.keys:
            self._store[key] = value
            self.pager.stats.writes += self._pages_per_record
            return
        while len(bucket.keys) >= self._bucket_capacity:
            self._split(bucket)
            bucket = self._bucket(key)
        bucket.keys.add(key)
        self._store[key] = value
        self._n_records += 1
        self.pager.stats.writes += self._pages_per_record

    def get(self, key: int) -> Any:
        """Fetch the record (one probe = one read per record page).

        Raises
        ------
        KeyError
            If the key is absent (the probe read is still charged —
            a real system must read the bucket to discover absence).
        """
        self.pager.stats.reads += self._pages_per_record
        bucket = self._bucket(key)
        if key not in bucket.keys:
            raise KeyError(key)
        return self._store[key]

    def delete(self, key: int) -> Any:
        """Remove and return the record (one read + one write)."""
        self.pager.stats.reads += self._pages_per_record
        bucket = self._bucket(key)
        if key not in bucket.keys:
            raise KeyError(key)
        bucket.keys.discard(key)
        self._n_records -= 1
        self.pager.stats.writes += self._pages_per_record
        return self._store.pop(key)

    # ------------------------------------------------------------------
    def _split(self, bucket: _Bucket) -> None:
        """Split an overflowing bucket by one hash bit."""
        if bucket.local_depth == self.global_depth:
            # Double the directory: each new slot mirrors its low-bits twin.
            self._directory = self._directory + self._directory
            self.global_depth += 1

        new_depth = bucket.local_depth + 1
        sibling = _Bucket(
            page_id=self.pager.allocate(), local_depth=new_depth
        )
        bucket.local_depth = new_depth

        # Re-point directory slots: among the slots sharing the bucket's
        # old prefix, those with the new distinguishing bit set move to
        # the sibling.
        bit = 1 << (new_depth - 1)
        for slot in range(len(self._directory)):
            if self._directory[slot] is bucket and (slot & bit):
                self._directory[slot] = sibling

        # Redistribute keys between the two buckets.
        moved = {k for k in bucket.keys if hash(k) & bit}
        bucket.keys -= moved
        sibling.keys |= moved
        # Redistribution rewrites both pages.
        self.pager.stats.writes += 2 * self._pages_per_record

    def __repr__(self) -> str:
        return (
            f"ExtensibleHashTable(records={self._n_records}, "
            f"global_depth={self.global_depth}, buckets={self.n_buckets})"
        )
