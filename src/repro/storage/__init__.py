"""Storage substrate: pager, extensible hashing, octree, WAL durability."""

from .durable import DurableStore, RecoveryError, StoreLocked, StoreReadOnly
from .exthash import ExtensibleHashTable
from .octree import OctreeConfig, PagedOctree
from .pager import DEFAULT_PAGE_SIZE, IOStats, Page, PageChain, PageFullError, Pager
from .wal import WalError, WalRecord, WriteAheadLog

__all__ = [
    "Pager",
    "Page",
    "PageChain",
    "PageFullError",
    "IOStats",
    "DEFAULT_PAGE_SIZE",
    "ExtensibleHashTable",
    "PagedOctree",
    "OctreeConfig",
    "WriteAheadLog",
    "WalRecord",
    "WalError",
    "DurableStore",
    "RecoveryError",
    "StoreLocked",
    "StoreReadOnly",
]
