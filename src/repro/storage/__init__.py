"""Storage substrate: simulated disk pager, extensible hashing, octree."""

from .exthash import ExtensibleHashTable
from .octree import OctreeConfig, PagedOctree
from .pager import DEFAULT_PAGE_SIZE, IOStats, Page, PageChain, PageFullError, Pager

__all__ = [
    "Pager",
    "Page",
    "PageChain",
    "PageFullError",
    "IOStats",
    "DEFAULT_PAGE_SIZE",
    "ExtensibleHashTable",
    "PagedOctree",
    "OctreeConfig",
]
