"""Probabilistic reverse nearest neighbor (PRNN) queries.

References [13] (Cheema et al., TKDE 2010) and [14] (Bernecker et al.,
VLDB 2011) study reverse NN queries over uncertain data: given a query
object ``q``, find the database objects that have a non-zero probability
of having ``q`` as *their* nearest neighbor.  The paper's conclusion
names PRNN support as future work for the PV-index.

Semantics (possible-RNN, matching the paper's "non-zero probability"
query class): object ``o`` is an answer iff there exist attribute values
``o.a in u(o)``, ``q.a in u(q)`` and, for every other object ``x``,
values ``x.a in u(x)`` such that ``dist(o.a, q.a) <= dist(o.a, x.a)``.
Because each object's value can be chosen independently (attribute
uncertainty model), this reduces to a per-point condition on ``u(o)``:

``o`` qualifies iff some point ``p in u(o)`` satisfies
``distmin(q, p) <= min_{x != o, q} distmax(x, p)`` — i.e. some possible
position of ``o`` lies inside the PV-cell of ``q`` computed over
``S - {o} + {q}``.

Step-1 filtering uses the spatial-domination machinery: a candidate
``o`` is pruned when some third object ``x`` dominates ``u(o)`` with
respect to ``q`` (``distmax(x, p) < distmin(q, p)`` for all
``p in u(o)``) — then no position of ``o`` can have ``q`` as NN.  The
surviving candidates are resolved exactly on the discrete pdfs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..engine import (
    KERNEL_CHUNK_BYTES,
    BaseEngine,
    FrozenDict,
    survival_products,
)
from ..engine.batch import _chunk_rows, _distance_tensor
from ..geometry import Rect
from ..geometry.domination import margin_bounds_batch
from ..uncertain import UncertainObject

__all__ = ["ReverseNNResult", "ReverseNNEngine"]


@dataclass(frozen=True)
class ReverseNNResult:
    """Answer of one probabilistic reverse NN query (read-only)."""

    query_region: Rect
    candidate_ids: tuple[int, ...]
    probabilities: Mapping[int, float]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "candidate_ids", tuple(self.candidate_ids)
        )
        object.__setattr__(
            self, "probabilities", FrozenDict(self.probabilities)
        )


class ReverseNNEngine(BaseEngine):
    """PRNN evaluation over an uncertain database.

    Parameters
    ----------
    dataset:
        The uncertain database.
    retriever:
        Accepted for constructor uniformity with the other engines.
        PRNN Step 1 is domination-based over object regions and does
        not consult a point retriever; an index-backed reverse filter
        is a future refinement, and passing one today only wires its
        pager into the shared I/O accounting.
    """

    # ------------------------------------------------------------------
    def candidates(self, query: UncertainObject) -> list[int]:
        """Step 1: ids that may have ``query`` as their nearest neighbor.

        Conservative filter (no false dismissals): candidate ``o``
        survives unless some other object provably dominates all of
        ``u(o)`` with respect to ``query``.
        """
        ids, los, his = self.dataset.packed_regions()
        out: list[int] = []
        for i, oid in enumerate(ids):
            oid = int(oid)
            if oid == query.oid:
                continue
            region = self.dataset[oid].region
            # Other objects' regions, excluding o itself and the query.
            mask = np.ones(len(ids), dtype=bool)
            mask[i] = False
            if query.oid in self.dataset:
                mask &= ids != query.oid
            if not mask.any():
                out.append(oid)
                continue
            _mins, maxs = margin_bounds_batch(
                los[mask], his[mask], query.region, region
            )
            # maxs[j] < 0 would mean x_j dominates u(o) wrt q over all of
            # u(o) — wrong direction; we need domination of x over q.
            # margin f = distmax(x, p)^2 - distmin(q, p)^2 with
            # a := x, b := q, region := u(o):  max_p f < 0 means every
            # position of o is certainly closer to x than it can ever be
            # to q, so q can never be o's NN.
            if bool((maxs < 0.0).any()):
                continue
            out.append(oid)
        return out

    # ------------------------------------------------------------------
    def query(self, query: UncertainObject) -> ReverseNNResult:
        """Full PRNN: Step-1 filter, then exact instance-level check.

        Probabilities follow the discrete semantics of [13]: for each
        instance ``p`` of candidate ``o`` (weight ``w``), ``q`` is the NN
        of ``o`` at ``p`` with probability
        ``Pr[dist(q, p) <= min_x dist(x, p)]`` computed instance-wise
        over the independent pdfs; the candidate's probability is the
        weighted sum.
        """
        return self._run(query, {})

    def query_batch(self, queries) -> list[ReverseNNResult]:
        """PRNN answers for many query objects."""
        return self._run_batch(queries, {})

    # -- BaseEngine hooks ----------------------------------------------
    def _prepare(self, query: UncertainObject, params: dict):
        return query

    def _query_key(self, q: UncertainObject, params: dict):
        return (
            q.oid,
            q.instances.tobytes(),
            q.weights.tobytes(),
            np.asarray(q.region.lo).tobytes(),
            np.asarray(q.region.hi).tobytes(),
        )

    def _memo_point(self, q: UncertainObject):
        return None

    def _retrieve(self, q: UncertainObject, params: dict) -> list[int]:
        return self.candidates(q)

    def _compute(
        self, q: UncertainObject, ids: list[int], params: dict
    ) -> ReverseNNResult:
        probabilities: dict[int, float] = {}
        for oid in ids:
            prob = self._instance_probability(oid, q)
            if prob > 0.0:
                probabilities[oid] = prob
        return ReverseNNResult(
            query_region=q.region,
            candidate_ids=ids,
            probabilities=probabilities,
        )

    def _instance_probability(
        self, oid: int, query: UncertainObject
    ) -> float:
        """Exact Pr[query is the NN of object ``oid``] on discrete pdfs."""
        obj = self.dataset[oid]
        other_ids = [
            x.oid
            for x in self.dataset
            if x.oid != oid and x.oid != query.oid
        ]

        # Distances from each instance of o to each instance of q.
        diff = obj.instances[:, None, :] - query.instances[None, :, :]
        dq = np.sqrt(np.einsum("mnd,mnd->mn", diff, diff))  # (m, nq)
        if not other_ids:
            # Empty competitor product: q is o's NN with certainty.
            total = float(obj.weights.sum() * query.weights.sum())
            return float(np.clip(total, 0.0, 1.0))

        # o's instances play the kernel's query-row axis: one gather of
        # every competitor pdf, one (m, n_others, m_x) distance tensor,
        # and the survival products evaluated at the query-instance
        # radii — chunked over o's instances to bound peak memory.
        t0 = time.perf_counter()
        block = self.dataset.instance_store().gather(other_ids)
        self.stats.kernel_gather_seconds += time.perf_counter() - t0

        t1 = time.perf_counter()
        n_o, m_x = block.weights.shape
        # Same sizing as the main kernel: the budget must cover the
        # tie fallback's materialized survival tensors, not just the
        # log walk (tied coordinates are exactly when it matters).
        step = _chunk_rows(
            len(obj.instances), n_o, m_x, KERNEL_CHUNK_BYTES
        )
        total = 0.0
        for lo in range(0, len(obj.instances), step):
            points = obj.instances[lo : lo + step]
            D = _distance_tensor(block.instances, points)
            prod = survival_products(D, block.weights, dq[lo : lo + step])
            total += float(
                np.dot(obj.weights[lo : lo + step], prod @ query.weights)
            )
        self.stats.kernel_eval_seconds += time.perf_counter() - t1
        return float(np.clip(total, 0.0, 1.0))
