"""Top-k probable nearest neighbor queries.

Reference [10] of the paper (Beskales, Soliman, Ilyas, VLDB 2008)
studies retrieving the ``k`` objects most likely to be the nearest
neighbor of a query point.  The paper's conclusion lists supporting
such query variants through the PV-index as future work; this module
provides that support.

The evaluation reuses the PNNQ pipeline:

1. Step 1 through any :class:`~repro.core.pnnq.Retriever` (PV-index,
   R-tree, UV-index) — the top-k answer can only contain objects with
   non-zero qualification probability, so the PV-cell filter applies
   unchanged.
2. A bound-based pruning pass (:func:`~repro.core.verifier.probability_bounds`)
   discards candidates whose upper probability bound cannot reach the
   current k-th lower bound.
3. Exact Step-2 evaluation of the survivors, returning the k largest.

For small candidate sets step 2 is skipped — exact evaluation of a
handful of candidates is cheaper than computing histogram bounds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine import BaseEngine, readonly_array
from ..uncertain import UncertainDataset
from .pnnq import Retriever, qualification_probabilities
from .verifier import probability_bounds

__all__ = ["TopKResult", "TopKEngine"]

#: Candidate-set size below which bound-based pruning is not worth it.
_EXACT_THRESHOLD = 8


@dataclass(frozen=True)
class TopKResult:
    """Answer of one top-k probable NN query (deeply read-only)."""

    query: np.ndarray
    k: int
    #: ``(oid, probability)`` pairs, descending by probability.
    ranking: tuple[tuple[int, float], ...]
    #: Candidates removed by bound-based pruning (never exactly evaluated).
    pruned: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "query", readonly_array(self.query))
        object.__setattr__(self, "ranking", tuple(self.ranking))

    @property
    def ids(self) -> tuple[int, ...]:
        """Object ids of the ranking, most probable first."""
        return tuple(oid for oid, _ in self.ranking)


class TopKEngine(BaseEngine):
    """Top-k probable NN evaluation over any Step-1 retriever.

    Parameters
    ----------
    dataset:
        The uncertain database (pdf source).
    retriever:
        The Step-1 index (``None`` falls back to brute force).
    n_bins:
        Histogram resolution for the pruning bounds.

    The legacy ``TopKEngine(retriever, dataset, n_bins)`` order is
    accepted with a :class:`DeprecationWarning`.
    """

    def __init__(
        self,
        dataset: UncertainDataset,
        retriever: Retriever | None = None,
        n_bins: int = 8,
        *,
        secondary=None,
        result_cache_size: int = 0,
        memo_radius: float = 0.0,
    ) -> None:
        super().__init__(
            dataset,
            retriever,
            secondary=secondary,
            result_cache_size=result_cache_size,
            memo_radius=memo_radius,
        )
        self.n_bins = n_bins

    def query(self, query: np.ndarray, k: int = 1) -> TopKResult:
        """The ``k`` objects most likely to be the NN of ``query``.

        Fewer than ``k`` pairs are returned when fewer candidates have
        non-zero probability.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        return self._run(query, {"k": k})

    def query_batch(self, queries, k: int = 1) -> list[TopKResult]:
        """Top-k rankings for many query points."""
        if k < 1:
            raise ValueError("k must be >= 1")
        return self._run_batch(queries, {"k": k})

    # -- BaseEngine hooks ----------------------------------------------
    def _compute(
        self, q: np.ndarray, ids: list[int], params: dict
    ) -> TopKResult:
        k = params["k"]
        pruned = 0
        survivors = list(ids)
        if len(ids) > max(k, _EXACT_THRESHOLD):
            bounds = probability_bounds(
                self.dataset, ids, q, self.n_bins, stats=self.stats
            )
            # The k-th highest lower bound is a floor for the answer set;
            # anything whose upper bound falls below it is out.
            lowers = sorted(
                (b.lower for b in bounds.values()), reverse=True
            )
            floor = lowers[k - 1] if len(lowers) >= k else 0.0
            survivors = [
                oid for oid in ids if bounds[oid].upper >= floor
            ]
            pruned = len(ids) - len(survivors)

        # All candidates stay in the competitor set (their distance
        # distributions shape every survival product); only survivors
        # get the per-candidate evaluation loop.
        probabilities = qualification_probabilities(
            self.dataset, ids, q, evaluate_ids=survivors, stats=self.stats
        )
        ranking = sorted(
            probabilities.items(), key=lambda kv: (-kv[1], kv[0])
        )[:k]
        return TopKResult(
            query=q,
            k=k,
            ranking=tuple(ranking),
            pruned=pruned,
        )
