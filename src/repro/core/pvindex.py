"""The PV-index (Section VI): construction, querying, maintenance.

Two-part structure:

* **Primary index** — a paged octree over the domain.  Each leaf stores
  ``(object id, u(o))`` for every object whose UBR overlaps the leaf's
  region.  Non-leaf nodes occupy a bounded main-memory budget; leaves are
  linked lists of simulated disk pages.
* **Secondary index** — an extensible hash table mapping object id to
  ``(UBR, object)``; consulted for UBRs during maintenance and for pdfs
  during PNNQ Step 2.

A point query descends the octree (free — non-leaves are in memory),
reads the one leaf containing ``q`` (charged I/O), and then prunes the
leaf's candidate list with the min-max distance filter described in
Section VI-A: objects whose ``distmin`` from ``q`` exceed the smallest
``distmax`` among the leaf's candidates cannot have non-zero probability.

Maintenance follows Section VI-B.  On the Lemma 8 conditions: the paper's
scanned text renders conditions (3) and the corresponding Step-2 filters
with an ambiguous =/≠ glyph; by Lemma 2 (``dom(o', o) = ∅`` iff the
uncertainty regions intersect) an object whose region *intersects*
``u(o')`` is unconstrained by ``o'`` and therefore **unaffected** — the
implementation uses that logically forced direction.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from ..engine.cost import CostEstimate
from ..geometry import (
    Rect,
    maxdist_sq_point_rect,
    mindist_sq_point_rect,
)
from ..storage import ExtensibleHashTable, OctreeConfig, PagedOctree, Pager
from ..uncertain import (
    UncertainDataset,
    UncertainObject,
    check_index_in_sync,
)
from .cset import CSetStrategy, IncrementalSelection
from .se import SEConfig, ShrinkExpand

__all__ = ["PVIndex", "PVIndexStats", "SecondaryRecord"]


@dataclass(frozen=True)
class SecondaryRecord:
    """One secondary-index record: the object's UBR and the object."""

    ubr: Rect
    obj: UncertainObject


@dataclass
class PVIndexStats:
    """Construction / maintenance cost counters.

    ``cells_recomputed`` counts every SE UBR derivation (the expensive
    unit of work): a build contributes ``|S|``, an incremental update
    only the new object plus the Lemma 8 affected set — the locality
    the Fig 10(h)/(i) comparison rests on.
    """

    build_seconds: float = 0.0
    se_seconds: float = 0.0
    insert_seconds: float = 0.0
    update_affected: int = 0
    update_examined: int = 0
    cells_recomputed: int = 0

    def reset(self) -> None:
        self.build_seconds = 0.0
        self.se_seconds = 0.0
        self.insert_seconds = 0.0
        self.update_affected = 0
        self.update_examined = 0
        self.cells_recomputed = 0


class PVIndex:
    """The PV-index over an uncertain dataset.

    Build with :meth:`build`; query Step 1 with :meth:`candidates`;
    maintain with :meth:`insert` / :meth:`delete` (incremental, the
    contribution of Section VI-B) or rebuild from scratch.

    The index mutates the dataset it was built over on insert/delete —
    dataset and index evolve together, as in the paper's system model.
    """

    def __init__(
        self,
        dataset: UncertainDataset,
        se: ShrinkExpand,
        pager: Pager,
        primary: PagedOctree,
        secondary: ExtensibleHashTable,
    ) -> None:
        self.dataset = dataset
        self.se = se
        self.pager = pager
        self.primary = primary
        self.secondary = secondary
        self.stats = PVIndexStats()
        #: Dataset epoch the index contents are valid for; kept in sync
        #: by :meth:`insert` / :meth:`delete` so engines can tell a
        #: maintained index from one bypassed by a direct mutation.
        self.dataset_epoch = getattr(dataset, "epoch", 0)

    # ------------------------------------------------------------------
    # Construction (Section VI-A, "Index Construction")
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        dataset: UncertainDataset,
        strategy: CSetStrategy | None = None,
        se_config: SEConfig | None = None,
        octree_config: OctreeConfig | None = None,
        pager: Pager | None = None,
    ) -> "PVIndex":
        """Compute every UBR with SE and bulk-insert into the index."""
        t0 = time.perf_counter()
        pager = pager or Pager()
        se = ShrinkExpand(
            strategy=strategy or IncrementalSelection(),
            config=se_config or SEConfig(),
        )
        primary = PagedOctree(
            domain=dataset.domain,
            pager=pager,
            config=octree_config or OctreeConfig(),
        )
        sample_obj = next(iter(dataset))
        secondary = ExtensibleHashTable(
            pager,
            record_size=sample_obj.nbytes() + sample_obj.region.nbytes(),
        )
        index = cls(dataset, se, pager, primary, secondary)

        t_se0 = time.perf_counter()
        results = {
            obj.oid: se.compute_ubr(obj, dataset) for obj in dataset
        }
        index.stats.se_seconds += time.perf_counter() - t_se0
        index.stats.cells_recomputed += len(results)
        for obj in dataset:
            index._insert_entry(obj, results[obj.oid].ubr)
        index.stats.build_seconds += time.perf_counter() - t0
        return index

    def _insert_entry(self, obj: UncertainObject, ubr: Rect) -> None:
        """Steps 1–4 of the construction algorithm for one object."""
        self.primary.insert(obj.oid, ubr, payload=obj.region)
        self.secondary.put(obj.oid, SecondaryRecord(ubr=ubr, obj=obj))

    # ------------------------------------------------------------------
    # Query (PNNQ Step 1)
    # ------------------------------------------------------------------
    def candidates(self, query: np.ndarray) -> list[int]:
        """Ids of objects with non-zero probability of being NN of ``query``.

        One octree descent + leaf read, then the min-max pruning filter.
        """
        q = np.asarray(query, dtype=np.float64)
        entries = self.primary.point_query(q)
        if not entries:
            return []
        # Leaf entries are (oid, placement UBR, u(o)); the paper prunes L
        # with the min-max filter only.  Any object whose PV-cell holds q
        # has its UBR over this leaf, so the leaf contains the global
        # minimizer of distmax and the filter below is exact.
        live = [(oid, region) for oid, _ubr, region in entries]
        min_sq = np.array(
            [mindist_sq_point_rect(q, region) for _, region in live]
        )
        max_sq = np.array(
            [maxdist_sq_point_rect(q, region) for _, region in live]
        )
        bound = max_sq.min()
        return [
            oid for (oid, _), m in zip(live, min_sq) if m <= bound
        ]

    def ubr_of(self, oid: int) -> Rect:
        """The stored UBR of an object (one secondary-index probe)."""
        record: SecondaryRecord = self.secondary.get(oid)
        return record.ubr

    def cost_estimate(self) -> CostEstimate:
        """Per-query Step-1 cost from the index's own shape.

        A point query is one in-memory octree descent plus one leaf
        read plus a min-max filter over the leaf's entries, so the
        estimate is calibrated from the primary index's real occupancy:
        mean entries per leaf sets both the Python-level filter cost
        (~1 µs/entry in this implementation) and the pages per leaf
        chain; the descent depth follows from the leaf count and
        fan-out ``2^d``.
        """
        dims = self.dataset.dims
        leaves = max(1, self.primary.n_leaves)
        entries_per_leaf = self.primary.n_entries / leaves
        pages = max(
            1.0,
            math.ceil(
                entries_per_leaf
                * self.primary.entry_bytes
                / self.pager.page_size
            ),
        )
        depth = math.log(leaves, 2**dims) if leaves > 1 else 1.0
        step1_us = 12.0 + 3.0 * depth + 1.1 * entries_per_leaf * dims
        # The leaf's min-max filter keeps a fraction of its entries.
        candidates = max(1.0, entries_per_leaf / 3.0)
        return CostEstimate(
            step1_us=step1_us,
            page_reads=pages,
            candidates=candidates,
            source="index",
        )

    # ------------------------------------------------------------------
    # Incremental maintenance (Section VI-B)
    # ------------------------------------------------------------------
    def _check_in_sync(self) -> None:
        check_index_in_sync(self.dataset_epoch, self.dataset, "PV-index")

    def delete(self, oid: int) -> None:
        """Remove object ``oid``; incrementally refresh affected UBRs."""
        self._check_in_sync()
        t0 = time.perf_counter()
        record: SecondaryRecord = self.secondary.get(oid)
        removed = record.obj
        old_ubr = record.ubr

        # Step 2: candidate affected set from a primary range query.
        affected = self._affected_objects(
            probe_ubr=old_ubr, other=removed, exclude_oid=oid
        )

        # Apply the dataset change before recomputation (SE must see S').
        self.dataset.delete(oid)
        self.se.strategy.notify_delete(removed)

        # Step 3: warm-started SE — old UBR becomes the lower bound.
        new_ubrs: dict[int, Rect] = {}
        t_se0 = time.perf_counter()
        for obj in affected:
            old = self.secondary.get(obj.oid).ubr
            result = self.se.recompute_after_deletion(
                obj, self.dataset, old_ubr=old
            )
            new_ubrs[obj.oid] = result.ubr
        self.stats.se_seconds += time.perf_counter() - t_se0

        # Step 4: refresh the primary and secondary indexes.
        self._remove_primary_entries(oid, old_ubr)
        self.secondary.delete(oid)
        for obj in affected:
            old = self.secondary.get(obj.oid).ubr
            self._grow_primary_entries(obj, old, new_ubrs[obj.oid])
            self.secondary.put(
                obj.oid,
                SecondaryRecord(ubr=new_ubrs[obj.oid], obj=obj),
            )
        self.stats.update_affected += len(affected)
        self.stats.cells_recomputed += len(affected)
        self.dataset_epoch = getattr(self.dataset, "epoch", 0)
        self.stats.insert_seconds += time.perf_counter() - t0

    def insert(self, obj: UncertainObject) -> None:
        """Add ``obj``; incrementally refresh affected UBRs."""
        self._check_in_sync()
        t0 = time.perf_counter()
        self.dataset.insert(obj)
        self.se.strategy.notify_insert(obj)

        # Step 1: UBR of the new object via a full SE run on S'.
        t_se0 = time.perf_counter()
        new_obj_ubr = self.se.compute_ubr(obj, self.dataset).ubr
        self.stats.se_seconds += time.perf_counter() - t_se0

        # Step 2: affected set via a range query with B(S', o').
        affected = self._affected_objects(
            probe_ubr=new_obj_ubr, other=obj, exclude_oid=obj.oid
        )

        # Step 3: warm-started SE — old UBR becomes the upper bound.
        new_ubrs: dict[int, Rect] = {}
        t_se0 = time.perf_counter()
        for other in affected:
            old = self.secondary.get(other.oid).ubr
            result = self.se.recompute_after_insertion(
                other, self.dataset, old_ubr=old
            )
            new_ubrs[other.oid] = result.ubr
        self.stats.se_seconds += time.perf_counter() - t_se0

        # Step 4: shrink affected entries, then insert the new object.
        for other in affected:
            old = self.secondary.get(other.oid).ubr
            self._shrink_primary_entries(other, old, new_ubrs[other.oid])
            self.secondary.put(
                other.oid,
                SecondaryRecord(ubr=new_ubrs[other.oid], obj=other),
            )
        self._insert_entry(obj, new_obj_ubr)
        self.stats.update_affected += len(affected)
        self.stats.cells_recomputed += len(affected) + 1
        self.dataset_epoch = getattr(self.dataset, "epoch", 0)
        self.stats.insert_seconds += time.perf_counter() - t0

    # ------------------------------------------------------------------
    def _affected_objects(
        self,
        probe_ubr: Rect,
        other: UncertainObject,
        exclude_oid: int,
    ) -> list[UncertainObject]:
        """Lemma 8 filter: objects whose PV-cell may change.

        Starts from all objects found in leaves overlapping
        ``probe_ubr``, then discards:

        * objects whose uncertainty region intersects ``u(other)``
          (Lemma 2 ⇒ ``dom(other, o) = ∅`` ⇒ unaffected);
        * objects whose stored UBR does not intersect ``probe_ubr``
          (conservative surrogate for disjoint PV-cells, conditions
          (1)/(2) of Lemma 8).
        """
        seen: set[int] = set()
        for leaf in self.primary.range_query_leaves(probe_ubr):
            for oid, _ubr, _region in leaf.read():
                seen.add(oid)
        seen.discard(exclude_oid)
        affected: list[UncertainObject] = []
        for oid in sorted(seen):
            obj = self.dataset.get(oid)
            if obj is None:
                continue
            self.stats.update_examined += 1
            if obj.region.intersects(other.region):
                continue  # condition (3): never constrained by `other`
            stored: SecondaryRecord = self.secondary.get(oid)
            if not stored.ubr.intersects(probe_ubr):
                continue  # conditions (1)/(2) via UBR disjointness
            affected.append(obj)
        return affected

    def _remove_primary_entries(self, oid: int, ubr: Rect) -> None:
        """Drop every primary-index entry of ``oid``."""
        for leaf in self.primary.range_query_leaves(ubr):
            leaf.remove_key(oid)

    def _grow_primary_entries(
        self, obj: UncertainObject, old: Rect, new: Rect
    ) -> None:
        """After deletion: UBR can only grow; add entries to new leaves.

        The paper (Step 4) leaves old entries in place (``N' − N``) so
        non-leaf structure is not churned; entries carry the new UBR in
        freshly covered leaves only.
        """
        for leaf in self.primary.range_query_leaves(new):
            if leaf.region.intersects(old):
                continue  # already holds an entry for obj
            leaf.add_entry(obj.oid, new, payload=obj.region)

    def _shrink_primary_entries(
        self, obj: UncertainObject, old: Rect, new: Rect
    ) -> None:
        """After insertion: UBR can only shrink; drop entries in N − N'."""
        for leaf in self.primary.range_query_leaves(old):
            if leaf.region.intersects(new):
                continue
            leaf.remove_key(obj.oid)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.secondary)

    def __repr__(self) -> str:
        return (
            f"PVIndex(objects={len(self)}, octree={self.primary!r})"
        )
