"""Bulkloading and compression for the PV-index.

The paper's conclusion lists "other precomputation techniques (e.g.,
bulkloading and compression) for facilitating the access of uncertain
data" as future work.  This module provides both:

* :func:`bulk_build` — construct a PV-index by inserting UBRs in
  Z-order (Morton order) of their centers.  Consecutive insertions then
  touch the same octree subtrees, which keeps page chains warm and
  reduces the re-insertion churn of splits.  The resulting index is
  logically identical to sequential construction (same entries in the
  same leaves) — only the build I/O profile improves.
* :func:`compact` — compress an existing index by rewriting each leaf's
  page chain to the minimal number of pages (construction and
  maintenance can leave partially-filled pages behind) and dropping
  chains left empty by deletions.

Both operations preserve query answers exactly; tests assert this
against sequentially-built indexes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..storage import OctreeConfig, PagedOctree, Pager
from ..storage.exthash import ExtensibleHashTable
from ..uncertain import UncertainDataset
from .cset import CSetStrategy, IncrementalSelection
from .pvindex import PVIndex
from .se import SEConfig, ShrinkExpand

__all__ = ["BulkBuildReport", "CompactionReport", "bulk_build", "compact"]


@dataclass(frozen=True)
class BulkBuildReport:
    """Outcome of a bulk build."""

    index: PVIndex
    build_seconds: float
    write_pages: int


@dataclass(frozen=True)
class CompactionReport:
    """Outcome of compacting an index."""

    pages_before: int
    pages_after: int
    rewrite_seconds: float

    @property
    def pages_reclaimed(self) -> int:
        """Disk pages freed by the compaction."""
        return self.pages_before - self.pages_after


def _morton_key(coords: np.ndarray, bits: int = 16) -> int:
    """Morton (Z-order) key of quantized coordinates.

    ``coords`` must already be scaled to ``[0, 2**bits)`` integers.
    """
    key = 0
    for bit in range(bits):
        for j, c in enumerate(coords):
            key |= ((int(c) >> bit) & 1) << (bit * len(coords) + j)
    return key


def z_order(dataset: UncertainDataset, bits: int = 16) -> list[int]:
    """Object ids sorted by the Morton key of their region centers."""
    domain = dataset.domain
    span = np.maximum(domain.hi - domain.lo, 1e-12)
    scale = (1 << bits) - 1
    keyed = []
    for obj in dataset:
        normalized = (obj.region.center - domain.lo) / span
        quantized = np.clip(normalized * scale, 0, scale)
        keyed.append((_morton_key(quantized, bits), obj.oid))
    keyed.sort()
    return [oid for _key, oid in keyed]


def bulk_build(
    dataset: UncertainDataset,
    strategy: CSetStrategy | None = None,
    se_config: SEConfig | None = None,
    octree_config: OctreeConfig | None = None,
    pager: Pager | None = None,
) -> BulkBuildReport:
    """Build a PV-index with Z-order-sorted insertions.

    Same parameters as :meth:`PVIndex.build`; returns the index plus
    build-cost accounting so callers can compare against sequential
    construction.
    """
    t0 = time.perf_counter()
    pager = pager or Pager()
    writes_before = pager.stats.writes
    se = ShrinkExpand(
        strategy=strategy or IncrementalSelection(),
        config=se_config or SEConfig(),
    )
    primary = PagedOctree(
        domain=dataset.domain,
        pager=pager,
        config=octree_config or OctreeConfig(),
    )
    sample_obj = next(iter(dataset))
    secondary = ExtensibleHashTable(
        pager,
        record_size=sample_obj.nbytes() + sample_obj.region.nbytes(),
    )
    index = PVIndex(dataset, se, pager, primary, secondary)

    order = z_order(dataset)
    t_se0 = time.perf_counter()
    ubrs = {
        oid: se.compute_ubr(dataset[oid], dataset).ubr for oid in order
    }
    index.stats.se_seconds += time.perf_counter() - t_se0
    for oid in order:
        index._insert_entry(dataset[oid], ubrs[oid])
    index.stats.build_seconds += time.perf_counter() - t0
    return BulkBuildReport(
        index=index,
        build_seconds=index.stats.build_seconds,
        write_pages=pager.stats.writes - writes_before,
    )


def compact(index: PVIndex) -> CompactionReport:
    """Rewrite every leaf's page chain to its minimal length.

    Uses the octree's leaf iterator; each non-empty leaf is rewritten
    once (charged as page writes), and pages freed by deletions or
    splits are returned to the pager.
    """
    t0 = time.perf_counter()
    pages_before = index.pager.n_pages
    for leaf in index.primary.iter_leaves():
        leaf.compact()
    report = CompactionReport(
        pages_before=pages_before,
        pages_after=index.pager.n_pages,
        rewrite_seconds=time.perf_counter() - t0,
    )
    return report
