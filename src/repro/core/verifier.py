"""Probabilistic verifiers — bound-based pruning for PNNQ Step 2.

Reference [11] (Cheng et al., ICDE 2008) accelerates Step 2 by deriving
cheap lower/upper bounds on each candidate's qualification probability
before (or instead of) the expensive exact evaluation.  The paper's
footnote 11 observes that with such fast Step-2 methods, Step-1 cost
dominates even more — the motivation for the PV-index.

This module implements that idea for the discrete-pdf model:

* ``probability_bounds`` — per-candidate ``[L_i, U_i]`` intervals from
  coarse distance-histogram reasoning (a small number of radius
  breakpoints rather than all instances).
* ``VerifierEngine.query`` — a drop-in Step-2 replacement that first
  tries to classify candidates using the bounds against a probability
  threshold, falling back to the exact computation only for candidates
  whose interval straddles the threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine import BaseEngine, ExecutionStats, FrozenDict
from ..engine.batch import _rank_cumweights, instance_distance_matrix
from ..uncertain import UncertainDataset
from .pnnq import Retriever, qualification_probabilities

__all__ = ["ProbabilityBounds", "probability_bounds", "VerifierEngine"]


@dataclass(frozen=True)
class ProbabilityBounds:
    """A lower/upper bound pair for a candidate's probability."""

    lower: float
    upper: float

    def __post_init__(self) -> None:
        if not (
            -1e-9 <= self.lower <= self.upper + 1e-9
            and self.upper <= 1.0 + 1e-9
        ):
            raise ValueError(
                f"invalid bounds [{self.lower}, {self.upper}]"
            )

    def contains(self, p: float) -> bool:
        """True iff ``p`` is consistent with the interval."""
        return self.lower - 1e-9 <= p <= self.upper + 1e-9


def probability_bounds(
    dataset: UncertainDataset,
    candidate_ids: list[int],
    query: np.ndarray,
    n_bins: int = 8,
    *,
    stats: ExecutionStats | None = None,
) -> dict[int, ProbabilityBounds]:
    """Bound each candidate's qualification probability with histograms.

    The distance distribution of each candidate is summarized by
    ``n_bins`` quantile breakpoints.  For candidate ``i`` with distance
    bin ``[r_lo, r_hi]`` of mass ``w``:

    * optimistic factor — every rival is farther than ``r_lo`` with its
      own maximal survival;
    * pessimistic factor — rivals are only counted as farther when their
      entire support exceeds ``r_hi``.

    The result brackets the exact value computed by
    :func:`qualification_probabilities` (asserted by property tests) at
    a fraction of its cost for large instance counts.  Distances come
    from one packed-store gather, and both the bin masses and all
    ``surv_above`` factors are evaluated with the kernel's batched rank
    primitive — no per-pair Python loops.
    """
    q = np.asarray(query, dtype=np.float64)
    if not candidate_ids:
        return {}
    if len(candidate_ids) == 1:
        return {candidate_ids[0]: ProbabilityBounds(1.0, 1.0)}
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")

    D, W = instance_distance_matrix(dataset, candidate_ids, q, stats)
    n = len(candidate_ids)
    order = np.argsort(D, axis=1)
    SD = np.take_along_axis(D, order, axis=1)
    SW = np.take_along_axis(W, order, axis=1)

    # Quantile edges per candidate, endpoints pinned to the support
    # (padded entries replicate real values, so min/max are exact).
    E = np.quantile(D, np.linspace(0.0, 1.0, n_bins + 1), axis=1).T
    E[:, 0] = SD[:, 0]
    E[:, -1] = SD[:, -1]

    # Exact bin masses from cumulative weights at the edges: bins are
    # [lo, hi) except the last, which closes at the support maximum.
    lt_w = _rank_cumweights(SD, SW, E, needles_first=True)
    le_w = _rank_cumweights(SD, SW, E, needles_first=False)
    mass = np.diff(lt_w, axis=1)
    mass[:, -1] = le_w[:, -1] - lt_w[:, -2]

    # surv_above for every (competitor, radius) pair at once.  The
    # optimistic factor counts bins whose hi edge exceeds r, the
    # pessimistic one bins whose lo edge does; both are one rank pass
    # of the radii grid against the competitor's sorted edge rows.
    total = mass.sum(axis=1, keepdims=True)
    R_lo = np.broadcast_to(E[:, :-1].reshape(1, -1), (n, n * n_bins))
    R_hi = np.broadcast_to(E[:, 1:].reshape(1, -1), (n, n * n_bins))
    hi_edges = E[:, 1:]
    lo_edges = E[:, :-1]
    opt = np.minimum(
        1.0,
        total - _rank_cumweights(hi_edges, mass, R_lo, needles_first=False),
    ).reshape(n, n, n_bins)
    pes = np.minimum(
        1.0,
        total - _rank_cumweights(lo_edges, mass, R_hi, needles_first=False),
    ).reshape(n, n, n_bins)

    # Products over rivals (self excluded), then mass-weighted sums.
    self_idx = np.arange(n)
    opt[self_idx, self_idx, :] = 1.0
    pes[self_idx, self_idx, :] = 1.0
    hi_total = (mass * opt.prod(axis=0)).sum(axis=1)
    lo_total = (mass * pes.prod(axis=0)).sum(axis=1)

    return {
        oid: ProbabilityBounds(
            lower=float(min(lo_total[i], 1.0)),
            upper=float(min(hi_total[i], 1.0)),
        )
        for i, oid in enumerate(candidate_ids)
    }


class VerifierEngine(BaseEngine):
    """Threshold-PNNQ with verifier-first evaluation.

    Answers "which objects have qualification probability >= tau" while
    running the exact Step-2 computation only for candidates whose
    verifier interval straddles ``tau``.

    Parameters
    ----------
    dataset:
        The uncertain database.
    retriever:
        Step-1 index (``None`` falls back to brute force).
    n_bins:
        Histogram resolution of the bounds.

    The legacy ``VerifierEngine(retriever, dataset, n_bins)`` order is
    accepted with a :class:`DeprecationWarning`.  Decision dicts are
    returned as read-only :class:`~repro.engine.FrozenDict` objects
    (they are shared by the LRU cache and batch dedup).
    """

    def __init__(
        self,
        dataset: UncertainDataset,
        retriever: Retriever | None = None,
        n_bins: int = 8,
        *,
        secondary=None,
        result_cache_size: int = 0,
        memo_radius: float = 0.0,
    ) -> None:
        super().__init__(
            dataset,
            retriever,
            secondary=secondary,
            result_cache_size=result_cache_size,
            memo_radius=memo_radius,
        )
        self.n_bins = n_bins
        #: Candidates resolved by the exact Step-2 fallback / by bounds
        #: alone.  Both count *work actually performed*: queries answered
        #: from the LRU cache or by batch dedup do not re-increment them
        #: (so on hot workloads they track distinct executions, not
        #: ``stats.queries``), and ``stats.reset()`` leaves them alone.
        self.exact_evaluations = 0
        self.verified_only = 0

    def query(
        self, query: np.ndarray, tau: float = 0.1
    ) -> dict[int, bool]:
        """Id -> "probability >= tau" decisions for all candidates."""
        if not 0.0 <= tau <= 1.0:
            raise ValueError("tau must be in [0, 1]")
        return self._run(query, {"tau": tau})

    def query_batch(
        self, queries, tau: float = 0.1
    ) -> list[dict[int, bool]]:
        """Threshold decisions for many query points.

        Duplicate queries (and LRU hits, when a result cache is
        enabled) share one decision dict — treat the returned dicts as
        read-only.
        """
        if not 0.0 <= tau <= 1.0:
            raise ValueError("tau must be in [0, 1]")
        return self._run_batch(queries, {"tau": tau})

    # -- BaseEngine hooks ----------------------------------------------
    def _compute(
        self, q: np.ndarray, ids: list[int], params: dict
    ) -> dict[int, bool]:
        tau = params["tau"]
        bounds = probability_bounds(
            self.dataset, ids, q, self.n_bins, stats=self.stats
        )
        undecided = [
            oid
            for oid in ids
            if bounds[oid].lower < tau <= bounds[oid].upper
        ]
        undecided_set = set(undecided)
        decided = {
            oid: bounds[oid].lower >= tau
            for oid in ids
            if oid not in undecided_set
        }
        self.verified_only += len(decided)
        if undecided:
            # Exact fallback: every candidate stays in the survival
            # products (rivals matter), but only the undecided are
            # evaluated.
            exact = qualification_probabilities(
                self.dataset, ids, q,
                evaluate_ids=undecided, stats=self.stats,
            )
            self.exact_evaluations += len(undecided)
            for oid in undecided:
                decided[oid] = exact[oid] >= tau
        # Frozen: this dict is shared by the result cache / batch dedup.
        return FrozenDict(decided)
