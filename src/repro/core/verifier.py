"""Probabilistic verifiers — bound-based pruning for PNNQ Step 2.

Reference [11] (Cheng et al., ICDE 2008) accelerates Step 2 by deriving
cheap lower/upper bounds on each candidate's qualification probability
before (or instead of) the expensive exact evaluation.  The paper's
footnote 11 observes that with such fast Step-2 methods, Step-1 cost
dominates even more — the motivation for the PV-index.

This module implements that idea for the discrete-pdf model:

* ``probability_bounds`` — per-candidate ``[L_i, U_i]`` intervals from
  coarse distance-histogram reasoning (a small number of radius
  breakpoints rather than all instances).
* ``VerifierEngine.query`` — a drop-in Step-2 replacement that first
  tries to classify candidates using the bounds against a probability
  threshold, falling back to the exact computation only for candidates
  whose interval straddles the threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine import BaseEngine, FrozenDict
from ..uncertain import UncertainDataset
from .pnnq import Retriever, qualification_probabilities

__all__ = ["ProbabilityBounds", "probability_bounds", "VerifierEngine"]


@dataclass(frozen=True)
class ProbabilityBounds:
    """A lower/upper bound pair for a candidate's probability."""

    lower: float
    upper: float

    def __post_init__(self) -> None:
        if not (
            -1e-9 <= self.lower <= self.upper + 1e-9
            and self.upper <= 1.0 + 1e-9
        ):
            raise ValueError(
                f"invalid bounds [{self.lower}, {self.upper}]"
            )

    def contains(self, p: float) -> bool:
        """True iff ``p`` is consistent with the interval."""
        return self.lower - 1e-9 <= p <= self.upper + 1e-9


def probability_bounds(
    dataset: UncertainDataset,
    candidate_ids: list[int],
    query: np.ndarray,
    n_bins: int = 8,
) -> dict[int, ProbabilityBounds]:
    """Bound each candidate's qualification probability with histograms.

    The distance distribution of each candidate is summarized by
    ``n_bins`` quantile breakpoints.  For candidate ``i`` with distance
    bin ``[r_lo, r_hi]`` of mass ``w``:

    * optimistic factor — every rival is farther than ``r_lo`` with its
      own maximal survival;
    * pessimistic factor — rivals are only counted as farther when their
      entire support exceeds ``r_hi``.

    The result brackets the exact value computed by
    :func:`qualification_probabilities` (asserted by property tests) at
    a fraction of its cost for large instance counts.
    """
    q = np.asarray(query, dtype=np.float64)
    if not candidate_ids:
        return {}
    if len(candidate_ids) == 1:
        return {candidate_ids[0]: ProbabilityBounds(1.0, 1.0)}
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")

    edges: dict[int, np.ndarray] = {}
    masses: dict[int, np.ndarray] = {}
    for oid in candidate_ids:
        obj = dataset[oid]
        d = np.sort(obj.distance_samples(q))
        # Quantile edges; weights assumed uniform enough for binning —
        # mass per bin is computed exactly below.
        qs = np.linspace(0.0, 1.0, n_bins + 1)
        e = np.quantile(d, qs)
        e[0] = d[0]
        e[-1] = d[-1]
        w = np.asarray(obj.weights)
        order = np.argsort(obj.distance_samples(q))
        dw = w[order]
        ds = obj.distance_samples(q)[order]
        mass = np.empty(n_bins)
        for b in range(n_bins):
            lo, hi = e[b], e[b + 1]
            if b == n_bins - 1:
                sel = (ds >= lo) & (ds <= hi)
            else:
                sel = (ds >= lo) & (ds < hi)
            mass[b] = dw[sel].sum()
        edges[oid] = e
        masses[oid] = mass

    def surv_above(oid: int, r: float, optimistic: bool) -> float:
        """Bound on Pr[dist(oid) > r] from the histogram."""
        e = edges[oid]
        m = masses[oid]
        total = 0.0
        for b in range(len(m)):
            lo, hi = e[b], e[b + 1]
            if optimistic:
                if hi > r:  # bin may be entirely above r
                    total += m[b]
            else:
                if lo > r:  # bin certainly above r
                    total += m[b]
        return min(1.0, total)

    out: dict[int, ProbabilityBounds] = {}
    for oid in candidate_ids:
        e = edges[oid]
        m = masses[oid]
        lo_total = 0.0
        hi_total = 0.0
        for b in range(len(m)):
            r_lo, r_hi = e[b], e[b + 1]
            opt = 1.0
            pes = 1.0
            for other in candidate_ids:
                if other == oid:
                    continue
                opt *= surv_above(other, r_lo, optimistic=True)
                pes *= surv_above(other, r_hi, optimistic=False)
            hi_total += m[b] * opt
            lo_total += m[b] * pes
        out[oid] = ProbabilityBounds(
            lower=float(min(lo_total, 1.0)),
            upper=float(min(hi_total, 1.0)),
        )
    return out


class VerifierEngine(BaseEngine):
    """Threshold-PNNQ with verifier-first evaluation.

    Answers "which objects have qualification probability >= tau" while
    running the exact Step-2 computation only for candidates whose
    verifier interval straddles ``tau``.

    Parameters
    ----------
    dataset:
        The uncertain database.
    retriever:
        Step-1 index (``None`` falls back to brute force).
    n_bins:
        Histogram resolution of the bounds.

    The legacy ``VerifierEngine(retriever, dataset, n_bins)`` order is
    accepted with a :class:`DeprecationWarning`.  Decision dicts are
    returned as read-only :class:`~repro.engine.FrozenDict` objects
    (they are shared by the LRU cache and batch dedup).
    """

    def __init__(
        self,
        dataset: UncertainDataset,
        retriever: Retriever | None = None,
        n_bins: int = 8,
        *,
        secondary=None,
        result_cache_size: int = 0,
        memo_radius: float = 0.0,
    ) -> None:
        super().__init__(
            dataset,
            retriever,
            secondary=secondary,
            result_cache_size=result_cache_size,
            memo_radius=memo_radius,
        )
        self.n_bins = n_bins
        #: Candidates resolved by the exact Step-2 fallback / by bounds
        #: alone.  Both count *work actually performed*: queries answered
        #: from the LRU cache or by batch dedup do not re-increment them
        #: (so on hot workloads they track distinct executions, not
        #: ``stats.queries``), and ``stats.reset()`` leaves them alone.
        self.exact_evaluations = 0
        self.verified_only = 0

    def query(
        self, query: np.ndarray, tau: float = 0.1
    ) -> dict[int, bool]:
        """Id -> "probability >= tau" decisions for all candidates."""
        if not 0.0 <= tau <= 1.0:
            raise ValueError("tau must be in [0, 1]")
        return self._run(query, {"tau": tau})

    def query_batch(
        self, queries, tau: float = 0.1
    ) -> list[dict[int, bool]]:
        """Threshold decisions for many query points.

        Duplicate queries (and LRU hits, when a result cache is
        enabled) share one decision dict — treat the returned dicts as
        read-only.
        """
        if not 0.0 <= tau <= 1.0:
            raise ValueError("tau must be in [0, 1]")
        return self._run_batch(queries, {"tau": tau})

    # -- BaseEngine hooks ----------------------------------------------
    def _compute(
        self, q: np.ndarray, ids: list[int], params: dict
    ) -> dict[int, bool]:
        tau = params["tau"]
        bounds = probability_bounds(self.dataset, ids, q, self.n_bins)
        undecided = [
            oid
            for oid in ids
            if bounds[oid].lower < tau <= bounds[oid].upper
        ]
        decided = {
            oid: bounds[oid].lower >= tau
            for oid in ids
            if oid not in set(undecided)
        }
        self.verified_only += len(decided)
        if undecided:
            # Exact fallback over the full candidate set (rivals matter).
            exact = qualification_probabilities(self.dataset, ids, q)
            self.exact_evaluations += len(undecided)
            for oid in undecided:
                decided[oid] = exact[oid] >= tau
        # Frozen: this dict is shared by the result cache / batch dedup.
        return FrozenDict(decided)
