"""Probabilistic k-nearest-neighbor (k-PNN) queries.

Generalizes the paper's PNNQ (k = 1) to "objects with non-zero
probability of being among the k nearest neighbors of q", the query
class of Beskales et al. [10] and Cheng et al. [11].

* **Step 1** — candidate filter: object ``o`` can be among the k
  nearest iff ``distmin(o, q)`` is at most the k-th smallest
  ``distmax(x, q)`` over all objects.  (If k objects are *certainly*
  closer than ``o`` can ever be, ``o`` can never make the top k.)
  The PV-index accelerates the k = 1 case; for general k the filter
  runs over any retriever's superset or the whole database — it is a
  single vectorized pass.

* **Step 2** — exact probabilities on the discrete pdfs.  For each
  instance ``p`` of ``o`` (weight ``w``), the number of *other*
  candidates closer than ``p`` is a sum of independent Bernoulli
  variables (one per candidate, success probability
  ``Pr[dist(x, q) < |p - q|]``) — a Poisson-binomial distribution.
  ``Pr[o among k-NN at p] = Pr[at most k-1 successes]``, computed by
  the standard O(n·k) dynamic program per instance.

Invariant (tested): summing ``Pr[o in top-k]`` over all objects gives
exactly ``min(k, |candidates|)`` — the expected size of the answer set.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..engine import (
    BaseEngine,
    FrozenDict,
    element_survivals,
    readonly_array,
)
from ..engine.batch import _distance_tensor
from ..engine.retrievers import minmax_sq_chunks

__all__ = ["KNNResult", "KNNEngine"]


@dataclass(frozen=True)
class KNNResult:
    """Answer of one probabilistic k-NN query (deeply read-only)."""

    query: np.ndarray
    k: int
    candidate_ids: tuple[int, ...]
    #: oid -> Pr[object is among the k nearest neighbors of the query].
    probabilities: Mapping[int, float]

    def __post_init__(self) -> None:
        object.__setattr__(self, "query", readonly_array(self.query))
        object.__setattr__(
            self, "candidate_ids", tuple(self.candidate_ids)
        )
        object.__setattr__(
            self, "probabilities", FrozenDict(self.probabilities)
        )

    def top(self, n: int | None = None) -> list[tuple[int, float]]:
        """``(oid, probability)`` pairs, most probable first."""
        ranked = sorted(
            self.probabilities.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return ranked if n is None else ranked[:n]


class KNNEngine(BaseEngine):
    """k-PNN evaluation over an uncertain database.

    Parameters
    ----------
    dataset:
        The uncertain database.
    retriever:
        Optional Step-1 index.  For k = 1 its candidate set is used
        directly; for k > 1 the engine widens it with the exact
        k-th-maxdist filter over the whole database (still one
        vectorized pass — the index saves work only for k = 1, which
        is the case the paper's PV-index targets).
    """

    # ------------------------------------------------------------------
    def candidates(self, query: np.ndarray, k: int = 1) -> list[int]:
        """Step 1: ids with non-zero probability of making the top k."""
        if k < 1:
            raise ValueError("k must be >= 1")
        q = np.asarray(query, dtype=np.float64)
        if k == 1 and self.has_index:
            return list(self.retriever.candidates(q))

        ids, los, his = self.dataset.packed_regions()
        if len(ids) <= k:
            return [int(i) for i in ids]
        min_sq, max_sq = next(minmax_sq_chunks(q[None, :], los, his))
        kth_max = np.partition(max_sq[0], k - 1)[k - 1]
        keep = min_sq[0] <= kth_max
        return [int(i) for i in ids[keep]]

    # ------------------------------------------------------------------
    def query(self, query: np.ndarray, k: int = 1) -> KNNResult:
        """Full k-PNN: Step-1 filter, then exact Poisson-binomial Step 2."""
        if k < 1:
            raise ValueError("k must be >= 1")
        return self._run(query, {"k": k})

    def query_batch(self, queries, k: int = 1) -> list[KNNResult]:
        """Many k-PNNs; the k-th-maxdist filter runs as one broadcasted
        pass over all distinct queries."""
        if k < 1:
            raise ValueError("k must be >= 1")
        return self._run_batch(queries, {"k": k})

    # -- BaseEngine hooks ----------------------------------------------
    def _retrieve(self, q: np.ndarray, params: dict) -> list[int]:
        return self.candidates(q, params["k"])

    def _retrieve_batch(
        self, qs: list[np.ndarray], params: dict
    ) -> list[list[int]]:
        k = params["k"]
        if self.memo_radius > 0 or (k == 1 and self.has_index):
            # Per-query Step 1 under the base memo loop: the index path
            # has no vectorized form, and a positive memo_radius must
            # win over the vectorized filter (same contract as the
            # base fast path).
            return super()._retrieve_batch(qs, params)
        ids, los, his = self.dataset.packed_regions()
        if len(ids) <= k:
            return [[int(i) for i in ids] for _ in qs]
        Q = np.stack(qs)  # (b, d)
        out: list[list[int]] = []
        # Shared chunked kernel; only the bound differs from PNNQ
        # (k-th smallest maxdist instead of the smallest).
        for min_sq, max_sq in minmax_sq_chunks(Q, los, his):
            kth_max = np.partition(max_sq, k - 1, axis=1)[:, k - 1]
            keep = min_sq <= kth_max[:, None]
            out.extend([int(i) for i in ids[row]] for row in keep)
        return out

    def _compute(
        self, q: np.ndarray, ids: list[int], params: dict
    ) -> KNNResult:
        k = params["k"]
        probabilities = self._probabilities(ids, q, k)
        return KNNResult(
            query=q, k=k, candidate_ids=ids,
            probabilities=probabilities,
        )

    def _probabilities(
        self, ids: list[int], q: np.ndarray, k: int
    ) -> dict[int, float]:
        if not ids:
            return {}
        if len(ids) <= k:
            return {oid: 1.0 for oid in ids}

        # One packed-store gather + one distance einsum for the whole
        # candidate set; padded entries carry weight exactly 0.
        t0 = time.perf_counter()
        block = self.dataset.instance_store().gather(ids)
        self.stats.kernel_gather_seconds += time.perf_counter() - t0

        t1 = time.perf_counter()
        D = _distance_tensor(
            block.instances, np.asarray(q, dtype=np.float64)[None, :]
        )
        n, m = block.weights.shape
        W = block.weights
        # All "Pr[dist(x, q) < r]" factors in one pass: the survival
        # tensor of every candidate at every instance distance (the
        # self column is excluded below and never consumed).
        closer = 1.0 - element_survivals(D, W)[0].reshape(n, n, m)
        out: dict[int, float] = {}
        for i in range(n):
            # Bernoulli success probabilities of the *other*
            # candidates at candidate i's instance distances.
            p = np.delete(closer[:, i, :], i, axis=0)
            # Poisson-binomial DP, vectorized over instances:
            # dp[j, s] = Pr[exactly j of the first t others closer
            # than instance s]; we only need j <= k-1.
            dp = np.zeros((k, m))
            dp[0] = 1.0
            for t in range(len(p)):
                pt = p[t]
                # Update in place from high j to low (knapsack style).
                for j in range(min(t + 1, k - 1), 0, -1):
                    dp[j] = dp[j] * (1.0 - pt) + dp[j - 1] * pt
                dp[0] = dp[0] * (1.0 - pt)
            tail = dp.sum(axis=0)  # Pr[at most k-1 others closer]
            out[ids[i]] = float(
                np.clip(np.dot(W[i], tail), 0.0, 1.0)
            )
        self.stats.kernel_eval_seconds += time.perf_counter() - t1
        return out
