"""End-to-end probabilistic nearest neighbor queries (PNNQ).

Step 1 (object retrieval, "OR") is delegated to a pluggable retriever —
the PV-index, the R-tree branch-and-prune baseline, or the UV-index.
Step 2 (probability computation, "PC") follows the method of reference
[8] (Cheng et al., TKDE 2004) applied to the discrete pdf model: the
qualification probability of candidate ``o_i`` is

``P_i = Σ_s  w_i(s) · Π_{j ≠ i}  Pr[ dist(o_j, q) > dist(s, q) ]``

where ``s`` ranges over ``o_i``'s instances.  For discrete pdfs each
inner factor is a survival function of the candidate's instance-distance
distribution, evaluated here with sorted arrays and ``searchsorted`` —
the numpy equivalent of [8]'s one-dimensional integration over distance.

Both steps are timed separately (the Figure 9(b)/(f) split) and every
candidate's pdf fetch is charged as secondary-index I/O.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..engine import (
    BaseEngine,
    ExecutionStats,
    FrozenDict,
    Retriever,
    batched_qualification_probabilities,
    group_by_candidates,
    readonly_array,
)
from ..uncertain import UncertainDataset

__all__ = [
    "StepTimes",
    "PNNQResult",
    "Retriever",
    "PNNQEngine",
    "qualification_probabilities",
]

#: Backward-compatible name: the seed tracked OR/PC wall-clock in a
#: dedicated ``StepTimes``; the unified execution layer superseded it
#: with :class:`~repro.engine.stats.ExecutionStats` (same fields plus
#: I/O and reuse counters).
StepTimes = ExecutionStats


@dataclass(frozen=True)
class PNNQResult:
    """Answer of one PNNQ.

    Deeply read-only (results are shared by the LRU cache and batch
    dedup): ``candidate_ids`` is a tuple, ``probabilities`` a
    :class:`~repro.engine.FrozenDict`, and ``query`` a non-writeable
    copy.
    """

    query: np.ndarray
    candidate_ids: tuple[int, ...]
    probabilities: Mapping[int, float]

    def __post_init__(self) -> None:
        object.__setattr__(self, "query", readonly_array(self.query))
        object.__setattr__(
            self, "candidate_ids", tuple(self.candidate_ids)
        )
        object.__setattr__(
            self, "probabilities", FrozenDict(self.probabilities)
        )

    @property
    def best(self) -> int:
        """Id of the most probable nearest neighbor."""
        if not self.probabilities:
            raise ValueError("empty result")
        return max(self.probabilities, key=self.probabilities.__getitem__)


def qualification_probabilities(
    dataset: UncertainDataset,
    candidate_ids: list[int],
    query: np.ndarray,
    evaluate_ids: list[int] | None = None,
    *,
    stats: ExecutionStats | None = None,
) -> dict[int, float]:
    """Step 2 for a given candidate set (discrete-pdf evaluation of [8]).

    Exact with respect to the discrete instance model: sums over each
    candidate's instances the weight times the product over the other
    candidates of the probability that their distance is strictly
    greater.  Ties (equal distances) are counted half toward "greater",
    a symmetric convention that keeps the probabilities summing to one
    in expectation over continuous inputs.

    ``evaluate_ids`` restricts *whose* probabilities are returned; every
    member of ``candidate_ids`` still participates as a competitor in
    the survival products, so the returned values are exact.  Used by
    bound-based pruning (top-k, verifier) to skip the per-candidate
    evaluation loop for objects already known to lose.

    The math lives in one place —
    :func:`~repro.engine.batch.batched_qualification_probabilities` —
    of which this is the single-query (``b = 1``) view.
    """
    q = np.asarray(query, dtype=np.float64)
    return batched_qualification_probabilities(
        dataset, candidate_ids, np.atleast_2d(q),
        evaluate_ids=evaluate_ids, stats=stats,
    )[0]


class PNNQEngine(BaseEngine):
    """Step 1 + Step 2 orchestration with the paper's instrumentation.

    Parameters
    ----------
    dataset:
        The uncertain database (pdf source for Step 2).
    retriever:
        The Step-1 index (must implement :meth:`candidates`); ``None``
        falls back to the exact brute-force min-max filter.
    secondary:
        Optional extensible hash table; when provided, each candidate's
        pdf fetch is routed through it so Step-2 I/O is charged (the
        PV-index passes its own secondary index here).

    The legacy ``PNNQEngine(retriever, dataset)`` argument order is
    still accepted with a :class:`DeprecationWarning` (see
    :func:`~repro.engine.normalize_engine_args`).

    Timing, page I/O, and cache behavior live on :attr:`stats` (an
    :class:`~repro.engine.ExecutionStats`); ``result_cache_size`` and
    ``memo_radius`` are forwarded to
    :class:`~repro.engine.BaseEngine`.
    """

    def query(self, query: np.ndarray) -> PNNQResult:
        """Evaluate one PNNQ, timing OR and PC separately."""
        return self._run(query, {})

    def query_batch(self, queries) -> list[PNNQResult]:
        """Evaluate many PNNQs, sharing Step-1 work and vectorizing
        Step 2 across queries with a common candidate set."""
        return self._run_batch(queries, {})

    # -- BaseEngine hooks ----------------------------------------------
    def _compute(
        self, q: np.ndarray, ids: list[int], params: dict
    ) -> PNNQResult:
        probabilities = qualification_probabilities(
            self.dataset, ids, q, stats=self.stats
        )
        return PNNQResult(
            query=q, candidate_ids=ids, probabilities=probabilities
        )

    def _compute_batch(
        self,
        qs: list[np.ndarray],
        ids_list: list[list[int]],
        params: dict,
    ) -> list[PNNQResult]:
        """Group queries by candidate set and batch Step 2 per group."""
        results: list[PNNQResult | None] = [None] * len(qs)
        for ids_key, positions in group_by_candidates(ids_list).items():
            ids = list(ids_key)
            if len(positions) == 1:
                pos = positions[0]
                results[pos] = self._compute(qs[pos], ids, params)
                continue
            block = np.stack([qs[pos] for pos in positions])
            prob_maps = batched_qualification_probabilities(
                self.dataset, ids, block, stats=self.stats
            )
            for pos, probs in zip(positions, prob_maps):
                results[pos] = PNNQResult(
                    query=qs[pos], candidate_ids=ids, probabilities=probs
                )
        return results  # type: ignore[return-value]
