"""End-to-end probabilistic nearest neighbor queries (PNNQ).

Step 1 (object retrieval, "OR") is delegated to a pluggable retriever —
the PV-index, the R-tree branch-and-prune baseline, or the UV-index.
Step 2 (probability computation, "PC") follows the method of reference
[8] (Cheng et al., TKDE 2004) applied to the discrete pdf model: the
qualification probability of candidate ``o_i`` is

``P_i = Σ_s  w_i(s) · Π_{j ≠ i}  Pr[ dist(o_j, q) > dist(s, q) ]``

where ``s`` ranges over ``o_i``'s instances.  For discrete pdfs each
inner factor is a survival function of the candidate's instance-distance
distribution, evaluated here with sorted arrays and ``searchsorted`` —
the numpy equivalent of [8]'s one-dimensional integration over distance.

Both steps are timed separately (the Figure 9(b)/(f) split) and every
candidate's pdf fetch is charged as secondary-index I/O.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from ..uncertain import UncertainDataset

__all__ = [
    "StepTimes",
    "PNNQResult",
    "Retriever",
    "PNNQEngine",
    "qualification_probabilities",
]


class Retriever(Protocol):
    """Anything that answers PNNQ Step 1 (PV-index, R-tree, UV-index)."""

    def candidates(self, query: np.ndarray) -> list[int]:
        """Ids with non-zero probability of being the NN of ``query``."""
        ...


@dataclass
class StepTimes:
    """Accumulated wall-clock split between OR (Step 1) and PC (Step 2)."""

    object_retrieval: float = 0.0
    probability_computation: float = 0.0
    queries: int = 0

    @property
    def total(self) -> float:
        """OR + PC seconds."""
        return self.object_retrieval + self.probability_computation

    def reset(self) -> None:
        self.object_retrieval = 0.0
        self.probability_computation = 0.0
        self.queries = 0


@dataclass(frozen=True)
class PNNQResult:
    """Answer of one PNNQ."""

    query: np.ndarray
    candidate_ids: list[int]
    probabilities: dict[int, float]

    @property
    def best(self) -> int:
        """Id of the most probable nearest neighbor."""
        if not self.probabilities:
            raise ValueError("empty result")
        return max(self.probabilities, key=self.probabilities.__getitem__)


def qualification_probabilities(
    dataset: UncertainDataset,
    candidate_ids: list[int],
    query: np.ndarray,
    evaluate_ids: list[int] | None = None,
) -> dict[int, float]:
    """Step 2 for a given candidate set (discrete-pdf evaluation of [8]).

    Exact with respect to the discrete instance model: sums over each
    candidate's instances the weight times the product over the other
    candidates of the probability that their distance is strictly
    greater.  Ties (equal distances) are counted half toward "greater",
    a symmetric convention that keeps the probabilities summing to one
    in expectation over continuous inputs.

    ``evaluate_ids`` restricts *whose* probabilities are returned; every
    member of ``candidate_ids`` still participates as a competitor in
    the survival products, so the returned values are exact.  Used by
    bound-based pruning (top-k, verifier) to skip the per-candidate
    evaluation loop for objects already known to lose.
    """
    q = np.asarray(query, dtype=np.float64)
    if not candidate_ids:
        return {}
    if evaluate_ids is None:
        evaluate_ids = candidate_ids
    else:
        missing = set(evaluate_ids) - set(candidate_ids)
        if missing:
            raise ValueError(
                f"evaluate_ids not among candidates: {sorted(missing)}"
            )
    if len(candidate_ids) == 1:
        return {
            candidate_ids[0]: 1.0
        } if candidate_ids[0] in evaluate_ids else {}

    dists: dict[int, np.ndarray] = {}
    weights: dict[int, np.ndarray] = {}
    sorted_dists: dict[int, np.ndarray] = {}
    cum_weights: dict[int, np.ndarray] = {}
    for oid in candidate_ids:
        obj = dataset[oid]
        d = obj.distance_samples(q)
        order = np.argsort(d)
        dists[oid] = d
        weights[oid] = obj.weights
        sorted_dists[oid] = d[order]
        cum_weights[oid] = np.concatenate(
            ([0.0], np.cumsum(obj.weights[order]))
        )

    def survival(oid: int, radii: np.ndarray) -> np.ndarray:
        """Pr[dist(o, q) > r] for each r, with half-weight on ties."""
        sd = sorted_dists[oid]
        cw = cum_weights[oid]
        le = cw[np.searchsorted(sd, radii, side="right")]
        lt = cw[np.searchsorted(sd, radii, side="left")]
        return 1.0 - 0.5 * (le + lt)

    out: dict[int, float] = {}
    for oid in evaluate_ids:
        radii = dists[oid]
        prod = np.ones(len(radii))
        for other in candidate_ids:
            if other == oid:
                continue
            prod *= survival(other, radii)
        # The half-weight tie convention can produce values a few ulps
        # outside [0, 1]; clamp so callers never see e.g. -0.0000.
        out[oid] = float(np.clip(np.dot(weights[oid], prod), 0.0, 1.0))
    return out


class PNNQEngine:
    """Step 1 + Step 2 orchestration with the paper's instrumentation.

    Parameters
    ----------
    retriever:
        The Step-1 index (must implement :meth:`candidates`).
    dataset:
        The uncertain database (pdf source for Step 2).
    secondary:
        Optional extensible hash table; when provided, each candidate's
        pdf fetch is routed through it so Step-2 I/O is charged (the
        PV-index passes its own secondary index here).
    """

    def __init__(
        self,
        retriever: Retriever,
        dataset: UncertainDataset,
        secondary=None,
    ) -> None:
        self.retriever = retriever
        self.dataset = dataset
        self.secondary = secondary
        self.times = StepTimes()

    def query(self, query: np.ndarray) -> PNNQResult:
        """Evaluate one PNNQ, timing OR and PC separately."""
        q = np.asarray(query, dtype=np.float64)
        t0 = time.perf_counter()
        ids = self.retriever.candidates(q)
        t1 = time.perf_counter()
        if self.secondary is not None:
            for oid in ids:
                self.secondary.get(oid)  # charge pdf fetch I/O
        probabilities = qualification_probabilities(self.dataset, ids, q)
        t2 = time.perf_counter()
        self.times.object_retrieval += t1 - t0
        self.times.probability_computation += t2 - t1
        self.times.queries += 1
        return PNNQResult(
            query=q, candidate_ids=ids, probabilities=probabilities
        )
