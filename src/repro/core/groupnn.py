"""Probabilistic group nearest neighbor (PGNN) queries.

Reference [12] of the paper (Lian and Chen, TKDE 2008) studies group
nearest neighbor queries over uncertain data: given a *set* ``Q`` of
query points, find the objects that may minimize an aggregate distance

``adist(o, Q) = agg_{q in Q} dist(o, q)``   with ``agg`` one of
``sum`` / ``max`` / ``min``.

The paper's conclusion names PGNN support as future work for the
PV-index.  This module provides it, generalizing the PNNQ pipeline:

* **Step 1** — candidate filtering with aggregate min/max distance
  bounds.  For each object the aggregate of per-point ``distmin`` is a
  lower bound of its aggregate distance, and the aggregate of
  ``distmax`` an upper bound (all three aggregates are monotone).  An
  object whose lower bound exceeds the smallest upper bound can never
  be the group NN — the multi-point analogue of the min-max filter the
  indexes use for single-point queries.
* **Step 2** — exact qualification probabilities from the discrete
  pdfs, evaluated by the same survival-function construction as
  :func:`~repro.core.pnnq.qualification_probabilities`, applied to each
  instance's aggregate distance.

The Step-1 prefilter runs over the whole dataset by default, or over a
candidate superset produced by a Step-1 index (the union of per-point
candidate sets is a correct superset for ``min``; for ``sum`` / ``max``
the filter itself is cheap enough to run unindexed).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Literal, Mapping

import numpy as np

from ..engine import (
    BaseEngine,
    FrozenDict,
    element_survival_probabilities,
    readonly_array,
)
from ..geometry import maxdist_sq_point_rect, mindist_sq_point_rect

__all__ = ["Aggregate", "GroupNNResult", "GroupNNEngine"]

Aggregate = Literal["sum", "max", "min"]

_AGGREGATORS: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "sum": lambda d: d.sum(axis=-1),
    "max": lambda d: d.max(axis=-1),
    "min": lambda d: d.min(axis=-1),
}


@dataclass(frozen=True)
class GroupNNResult:
    """Answer of one probabilistic group NN query (deeply read-only)."""

    queries: np.ndarray
    aggregate: str
    candidate_ids: tuple[int, ...]
    probabilities: Mapping[int, float]

    def __post_init__(self) -> None:
        object.__setattr__(self, "queries", readonly_array(self.queries))
        object.__setattr__(
            self, "candidate_ids", tuple(self.candidate_ids)
        )
        object.__setattr__(
            self, "probabilities", FrozenDict(self.probabilities)
        )

    @property
    def best(self) -> int:
        """Id of the most probable group NN."""
        if not self.probabilities:
            raise ValueError("empty result")
        return max(self.probabilities, key=self.probabilities.__getitem__)


class GroupNNEngine(BaseEngine):
    """PGNN evaluation over an uncertain database.

    Parameters
    ----------
    dataset:
        The uncertain database.
    retriever:
        Optional Step-1 index used to pre-narrow candidates for the
        ``min`` aggregate (union of per-point PNNQ candidates); ``sum``
        and ``max`` always use the direct aggregate-bound filter.
    """

    # ------------------------------------------------------------------
    def candidates(
        self, queries: np.ndarray, aggregate: Aggregate = "sum"
    ) -> list[int]:
        """Step 1: ids with non-zero probability of being the group NN.

        Exact filter: keep ``o`` iff ``aggmin(o, Q) <= min_x aggmax(x, Q)``.
        """
        q = self._validate_queries(queries)
        agg = _AGGREGATORS[aggregate]

        ids = self.dataset.ids
        if self.has_index and aggregate == "min":
            # The min-aggregate group NN must be the single-point NN of
            # at least one query point, so the union of per-point
            # candidate sets is a correct superset.
            pool: set[int] = set()
            for point in q:
                pool.update(self.retriever.candidates(point))
            ids = sorted(pool)
        if not ids:
            return []

        lows = np.empty((len(ids), len(q)))
        highs = np.empty((len(ids), len(q)))
        for i, oid in enumerate(ids):
            region = self.dataset[oid].region
            for j, point in enumerate(q):
                lows[i, j] = np.sqrt(
                    mindist_sq_point_rect(point, region)
                )
                highs[i, j] = np.sqrt(
                    maxdist_sq_point_rect(point, region)
                )
        agg_low = agg(lows)
        agg_high = agg(highs)
        bound = agg_high.min()
        return [
            oid for oid, lo in zip(ids, agg_low) if lo <= bound
        ]

    # ------------------------------------------------------------------
    def query(
        self, queries: np.ndarray, aggregate: Aggregate = "sum"
    ) -> GroupNNResult:
        """Full PGNN: Step-1 filter, then exact probabilities."""
        if aggregate not in _AGGREGATORS:
            raise KeyError(aggregate)
        return self._run(queries, {"aggregate": aggregate})

    def query_batch(
        self, query_sets, aggregate: Aggregate = "sum"
    ) -> list[GroupNNResult]:
        """PGNN answers for many query-point *sets*."""
        if aggregate not in _AGGREGATORS:
            raise KeyError(aggregate)
        return self._run_batch(query_sets, {"aggregate": aggregate})

    # -- BaseEngine hooks ----------------------------------------------
    def _prepare(self, query, params: dict) -> np.ndarray:
        return self._validate_queries(query)

    def _memo_point(self, q: np.ndarray):
        # Candidate sets depend on the whole query set and the
        # aggregate; point-keyed memoization does not apply.
        return None

    def _retrieve(self, q: np.ndarray, params: dict) -> list[int]:
        return self.candidates(q, params["aggregate"])

    def _compute(
        self, q: np.ndarray, ids: list[int], params: dict
    ) -> GroupNNResult:
        aggregate = params["aggregate"]
        probabilities = self._probabilities(ids, q, aggregate)
        return GroupNNResult(
            queries=q,
            aggregate=aggregate,
            candidate_ids=ids,
            probabilities=probabilities,
        )

    def _probabilities(
        self, ids: list[int], q: np.ndarray, aggregate: Aggregate
    ) -> dict[int, float]:
        """Exact Pr[o minimizes the aggregate distance] per candidate.

        Same construction as single-point Step 2, with each instance's
        scalar distance replaced by its aggregate distance to ``Q``.
        """
        if not ids:
            return {}
        if len(ids) == 1:
            return {ids[0]: 1.0}
        agg = _AGGREGATORS[aggregate]

        # One packed gather; each instance's scalar distance is its
        # aggregate distance to Q, then the shared survival-product
        # kernel runs unchanged (padded entries carry weight 0).
        t0 = time.perf_counter()
        block = self.dataset.instance_store().gather(ids)
        self.stats.kernel_gather_seconds += time.perf_counter() - t0

        t1 = time.perf_counter()
        diff = block.instances[:, :, None, :] - q[None, None, :, :]
        D = agg(np.sqrt(np.einsum("nmqd,nmqd->nmq", diff, diff)))
        P = element_survival_probabilities(D[None], block.weights)[0]
        self.stats.kernel_eval_seconds += time.perf_counter() - t1
        return {oid: float(P[i]) for i, oid in enumerate(ids)}

    # ------------------------------------------------------------------
    def _validate_queries(self, queries: np.ndarray) -> np.ndarray:
        q = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if q.ndim != 2 or q.shape[0] == 0:
            raise ValueError("queries must be a non-empty (n, d) array")
        if q.shape[1] != self.dataset.dims:
            raise ValueError(
                f"query dimensionality {q.shape[1]} does not match "
                f"dataset dimensionality {self.dataset.dims}"
            )
        return q
