"""Expected-distance nearest neighbor — the semantics of reference [33].

The paper's related work (Section II) contrasts PNNQ with the *expected
Voronoi diagram* of Agarwal et al. (PODS 2012), which answers nearest
neighbor queries by **expected distance**: the answer to a query ``q``
is ``argmin_o E[dist(o, q)]`` — a single object, not a probability
distribution.

This module implements that comparator over the same discrete-pdf model
so the two semantics can be compared on identical data (the expected-NN
winner is often, but not always, the most probable NN — the divergence
cases are exactly what motivates probabilistic semantics):

* :func:`expected_distance` — ``E[dist(o, q)]`` for one object.
* :class:`ExpectedNNEngine` — full ranking by expected distance, with a
  cheap rectangle-bound prefilter (``E[dist]`` is bracketed by
  ``[distmin, distmax]``, so objects whose ``distmin`` exceeds the
  smallest ``distmax`` can never win).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..geometry import maxdist_sq_point_rect, mindist_sq_point_rect
from ..uncertain import UncertainDataset
from .pnnq import StepTimes

__all__ = ["expected_distance", "ExpectedNNResult", "ExpectedNNEngine"]


def expected_distance(
    dataset: UncertainDataset, oid: int, query: np.ndarray
) -> float:
    """``E[dist(o, q)]`` under the object's discrete pdf."""
    q = np.asarray(query, dtype=np.float64)
    obj = dataset[oid]
    return float(np.dot(obj.weights, obj.distance_samples(q)))


@dataclass(frozen=True)
class ExpectedNNResult:
    """Answer of one expected-distance NN query."""

    query: np.ndarray
    #: ``(oid, expected distance)`` ascending by distance.
    ranking: tuple[tuple[int, float], ...]

    @property
    def best(self) -> int:
        """The expected-distance nearest neighbor."""
        if not self.ranking:
            raise ValueError("empty result")
        return self.ranking[0][0]


class ExpectedNNEngine:
    """Expected-distance NN over an uncertain database ([33] semantics).

    Parameters
    ----------
    dataset:
        The uncertain database.
    """

    def __init__(self, dataset: UncertainDataset) -> None:
        self.dataset = dataset
        self.times = StepTimes()

    def candidates(self, query: np.ndarray) -> list[int]:
        """Objects that can minimize the expected distance.

        Since ``distmin(o, q) <= E[dist(o, q)] <= distmax(o, q)``, any
        object whose ``distmin`` exceeds the smallest ``distmax`` is
        out.  This is the same min-max filter PNNQ Step 1 uses, so the
        expected-NN candidate set is a subset of the PNNQ one.
        """
        q = np.asarray(query, dtype=np.float64)
        ids, los, his = self.dataset.packed_regions()
        gap = np.maximum(np.maximum(los - q, q - his), 0.0)
        min_sq = np.einsum("ij,ij->i", gap, gap)
        far = np.maximum(np.abs(q - los), np.abs(q - his))
        max_sq = np.einsum("ij,ij->i", far, far)
        bound = max_sq.min()
        return [int(i) for i in ids[min_sq <= bound]]

    def query(self, query: np.ndarray, top: int | None = None
              ) -> ExpectedNNResult:
        """Rank the candidates by expected distance (ascending)."""
        q = np.asarray(query, dtype=np.float64)
        t0 = time.perf_counter()
        ids = self.candidates(q)
        t1 = time.perf_counter()
        ranked = sorted(
            ((oid, expected_distance(self.dataset, oid, q))
             for oid in ids),
            key=lambda pair: (pair[1], pair[0]),
        )
        if top is not None:
            ranked = ranked[:top]
        t2 = time.perf_counter()
        self.times.object_retrieval += t1 - t0
        self.times.probability_computation += t2 - t1
        self.times.queries += 1
        return ExpectedNNResult(query=q, ranking=tuple(ranked))
