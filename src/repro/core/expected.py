"""Expected-distance nearest neighbor — the semantics of reference [33].

The paper's related work (Section II) contrasts PNNQ with the *expected
Voronoi diagram* of Agarwal et al. (PODS 2012), which answers nearest
neighbor queries by **expected distance**: the answer to a query ``q``
is ``argmin_o E[dist(o, q)]`` — a single object, not a probability
distribution.

This module implements that comparator over the same discrete-pdf model
so the two semantics can be compared on identical data (the expected-NN
winner is often, but not always, the most probable NN — the divergence
cases are exactly what motivates probabilistic semantics):

* :func:`expected_distance` — ``E[dist(o, q)]`` for one object.
* :class:`ExpectedNNEngine` — full ranking by expected distance, with a
  cheap rectangle-bound prefilter (``E[dist]`` is bracketed by
  ``[distmin, distmax]``, so objects whose ``distmin`` exceeds the
  smallest ``distmax`` can never win).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine import BaseEngine, instance_distance_matrix, readonly_array
from ..uncertain import UncertainDataset

__all__ = ["expected_distance", "ExpectedNNResult", "ExpectedNNEngine"]


def expected_distance(
    dataset: UncertainDataset, oid: int, query: np.ndarray
) -> float:
    """``E[dist(o, q)]`` under the object's discrete pdf."""
    q = np.asarray(query, dtype=np.float64)
    obj = dataset[oid]
    return float(np.dot(obj.weights, obj.distance_samples(q)))


@dataclass(frozen=True)
class ExpectedNNResult:
    """Answer of one expected-distance NN query (deeply read-only)."""

    query: np.ndarray
    #: ``(oid, expected distance)`` ascending by distance.
    ranking: tuple[tuple[int, float], ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "query", readonly_array(self.query))
        object.__setattr__(self, "ranking", tuple(self.ranking))

    @property
    def best(self) -> int:
        """The expected-distance nearest neighbor."""
        if not self.ranking:
            raise ValueError("empty result")
        return self.ranking[0][0]


class ExpectedNNEngine(BaseEngine):
    """Expected-distance NN over an uncertain database ([33] semantics).

    Parameters
    ----------
    dataset:
        The uncertain database.
    retriever:
        Optional Step-1 index.  The expected-NN winner always survives
        the min-max filter (``distmin <= E[dist] <= distmax``), so any
        PNNQ retriever is a valid Step-1 source; the default is the
        brute-force filter the seed engine used.
    """

    def candidates(self, query: np.ndarray) -> list[int]:
        """Objects that can minimize the expected distance.

        Since ``distmin(o, q) <= E[dist(o, q)] <= distmax(o, q)``, any
        object whose ``distmin`` exceeds the smallest ``distmax`` is
        out.  This is the same min-max filter PNNQ Step 1 uses, so the
        expected-NN candidate set is a subset of the PNNQ one.
        """
        q = np.asarray(query, dtype=np.float64)
        return self.retriever.candidates(q)

    def query(self, query: np.ndarray, top: int | None = None
              ) -> ExpectedNNResult:
        """Rank the candidates by expected distance (ascending)."""
        return self._run(query, {"top": top})

    def query_batch(
        self, queries, top: int | None = None
    ) -> list[ExpectedNNResult]:
        """Expected-distance rankings for many query points."""
        return self._run_batch(queries, {"top": top})

    # -- BaseEngine hooks ----------------------------------------------
    def _retrieve(self, q: np.ndarray, params: dict) -> list[int]:
        # Route through the public candidates() so subclass overrides
        # of the documented Step-1 API affect query execution.
        return self.candidates(q)

    def _retrieve_batch(self, qs, params: dict) -> list[list[int]]:
        # candidates() is a plain retriever delegate unless a subclass
        # overrides it, so the vectorized fast path stays available.
        if (
            self.memo_radius <= 0
            and type(self).candidates is ExpectedNNEngine.candidates
        ):
            batch = getattr(self.retriever, "candidates_batch", None)
            if batch is not None:
                return batch(np.stack(qs))
        return super()._retrieve_batch(qs, params)

    def _compute(
        self, q: np.ndarray, ids: list[int], params: dict
    ) -> ExpectedNNResult:
        if not ids:
            return ExpectedNNResult(query=q, ranking=())
        # One packed gather: E[dist] for all candidates is a single
        # weighted row sum of the distance matrix (padding weighs 0).
        D, W = instance_distance_matrix(
            self.dataset, ids, q, stats=self.stats
        )
        expected = np.einsum("nm,nm->n", D, W)
        ranked = sorted(
            zip(ids, (float(e) for e in expected)),
            key=lambda pair: (pair[1], pair[0]),
        )
        top = params["top"]
        if top is not None:
            ranked = ranked[:top]
        return ExpectedNNResult(query=q, ranking=tuple(ranked))
