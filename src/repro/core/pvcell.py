"""PV-cell semantics and reference (ground-truth) computations.

The Possible Voronoi cell ``V(o)`` (Definition 1) is never materialized
by the fast path — that is the whole point of the paper — but its
*membership predicate* is cheap thanks to Lemma 4:

``p ∈ V(o)``  ⇔  ``p ∈ I(S, o)``  ⇔  no ``x ∈ S`` has
``distmax(x, p) < distmin(o, p)``.

This module exposes that predicate (vectorized), plus Monte-Carlo
estimators of the PV-cell's MBR and volume used by tests and by the
UBR-tightness ablation.  All lemma-level properties of Section III/IV are
checked against these references in the test suite.
"""

from __future__ import annotations

import numpy as np

from ..geometry import Rect, maxdist_sq_point_rects, mindist_sq_point_rect
from ..geometry.distance import mindist_sq_points_rect
from ..uncertain import UncertainDataset

__all__ = [
    "pv_cell_contains",
    "pv_cell_contains_many",
    "possible_nn_ids",
    "monte_carlo_mbr",
    "monte_carlo_volume",
]


def pv_cell_contains(
    dataset: UncertainDataset, oid: int, point: np.ndarray
) -> bool:
    """True iff ``point`` lies in the PV-cell of object ``oid``.

    Exact (up to floating point): applies Lemma 4 directly against the
    full database.
    """
    p = np.asarray(point, dtype=np.float64)
    obj = dataset[oid]
    ids, los, his = dataset.packed_regions()
    mask = ids != oid
    if not mask.any():
        return True  # singleton database: o is always the NN
    max_sq = maxdist_sq_point_rects(p, los[mask], his[mask])
    min_sq = mindist_sq_point_rect(p, obj.region)
    return bool(np.all(max_sq >= min_sq))


def pv_cell_contains_many(
    dataset: UncertainDataset, oid: int, points: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`pv_cell_contains` over an ``(n, d)`` array.

    Computes, for every point, whether any other object dominates ``o``
    there.  O(n * |S|) but fully vectorized — fine for the test-scale
    sampling the references need.
    """
    pts = np.asarray(points, dtype=np.float64)
    obj = dataset[oid]
    ids, los, his = dataset.packed_regions()
    mask = ids != oid
    if not mask.any():
        return np.ones(len(pts), dtype=bool)
    min_sq = mindist_sq_points_rect(pts, obj.region)  # (n,)
    out = np.ones(len(pts), dtype=bool)
    # Chunk over objects to bound memory at (chunk, n).
    sel_los = los[mask]
    sel_his = his[mask]
    chunk = max(1, int(2_000_000 // max(len(pts), 1)))
    for start in range(0, len(sel_los), chunk):
        lo_c = sel_los[start : start + chunk]  # (c, d)
        hi_c = sel_his[start : start + chunk]
        far = np.maximum(
            np.abs(pts[None, :, :] - lo_c[:, None, :]),
            np.abs(hi_c[:, None, :] - pts[None, :, :]),
        )
        max_sq = np.einsum("cnd,cnd->cn", far, far)  # (c, n)
        out &= np.all(max_sq >= min_sq[None, :], axis=0)
        if not out.any():
            break
    return out


def possible_nn_ids(
    dataset: UncertainDataset, point: np.ndarray
) -> set[int]:
    """Ground-truth PNNQ Step-1 answer: ids whose PV-cell contains ``point``.

    Equivalent formulation used for cross-checking every index:
    ``{o : distmin(o, q) <= min_x distmax(x, q)}``.
    """
    p = np.asarray(point, dtype=np.float64)
    ids, los, his = dataset.packed_regions()
    max_sq = maxdist_sq_point_rects(p, los, his)
    gap = np.maximum(np.maximum(los - p, p - his), 0.0)
    min_sq = np.einsum("ij,ij->i", gap, gap)
    bound = max_sq.min()
    return set(ids[min_sq <= bound].tolist())


def monte_carlo_mbr(
    dataset: UncertainDataset,
    oid: int,
    n_samples: int = 20_000,
    rng: np.random.Generator | None = None,
) -> Rect:
    """Sampled inner approximation of the MBR of ``V(o)``.

    Uniform samples of the domain that fall in the PV-cell are bounded;
    the object's own region is included (Lemma 5 guarantees
    ``u(o) ⊆ V(o)``), so the result is never empty.  The estimate is an
    *inner* bound of the true ``M(o)`` — useful to check that a UBR
    contains the cell, and to measure UBR looseness from below.
    """
    rng = rng or np.random.default_rng(0)
    obj = dataset[oid]
    pts = dataset.domain.sample_points(n_samples, rng)
    inside = pv_cell_contains_many(dataset, oid, pts)
    rects = [obj.region]
    if inside.any():
        rects.append(Rect.bounding_points(pts[inside]))
    return Rect.bounding(rects)


def monte_carlo_volume(
    dataset: UncertainDataset,
    oid: int,
    within: Rect | None = None,
    n_samples: int = 20_000,
    rng: np.random.Generator | None = None,
) -> float:
    """Sampled volume of ``V(o) ∩ within`` (``within`` defaults to ``D``)."""
    rng = rng or np.random.default_rng(0)
    box = within if within is not None else dataset.domain
    pts = box.sample_points(n_samples, rng)
    inside = pv_cell_contains_many(dataset, oid, pts)
    return float(inside.mean() * box.volume)
