"""Core contribution: PV-cells, SE, C-set strategies, PV-index, PNNQ."""

from .cset import (
    AllCSet,
    CSet,
    CSetStrategy,
    FixedSelection,
    IncrementalSelection,
)
from .pnnq import (
    PNNQEngine,
    PNNQResult,
    Retriever,
    StepTimes,
    qualification_probabilities,
)
from .pvcell import (
    monte_carlo_mbr,
    monte_carlo_volume,
    possible_nn_ids,
    pv_cell_contains,
    pv_cell_contains_many,
)
from .pvindex import PVIndex, PVIndexStats, SecondaryRecord
from .se import SEConfig, SEResult, SEStats, ShrinkExpand
from .verifier import ProbabilityBounds, VerifierEngine, probability_bounds
from .expected import ExpectedNNEngine, ExpectedNNResult, expected_distance
from .knn import KNNEngine, KNNResult
from .topk import TopKEngine, TopKResult
from .groupnn import Aggregate, GroupNNEngine, GroupNNResult
from .reversenn import ReverseNNEngine, ReverseNNResult
from .bulk import (
    BulkBuildReport,
    CompactionReport,
    bulk_build,
    compact,
    z_order,
)

__all__ = [
    "CSet",
    "CSetStrategy",
    "AllCSet",
    "FixedSelection",
    "IncrementalSelection",
    "SEConfig",
    "SEStats",
    "SEResult",
    "ShrinkExpand",
    "PVIndex",
    "PVIndexStats",
    "SecondaryRecord",
    "PNNQEngine",
    "PNNQResult",
    "Retriever",
    "StepTimes",
    "qualification_probabilities",
    "pv_cell_contains",
    "pv_cell_contains_many",
    "possible_nn_ids",
    "monte_carlo_mbr",
    "monte_carlo_volume",
    "ProbabilityBounds",
    "probability_bounds",
    "VerifierEngine",
    "ExpectedNNEngine",
    "ExpectedNNResult",
    "expected_distance",
    "KNNEngine",
    "KNNResult",
    "TopKEngine",
    "TopKResult",
    "Aggregate",
    "GroupNNEngine",
    "GroupNNResult",
    "ReverseNNEngine",
    "ReverseNNResult",
    "BulkBuildReport",
    "CompactionReport",
    "bulk_build",
    "compact",
    "z_order",
]
