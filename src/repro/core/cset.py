"""C-set selection strategies (the ``chooseCSet`` routine, Section V-A).

SE bounds the PV-cell by the non-dominated intersection of a *candidate
set* ``Cset(o) ⊆ S`` (Definition 8).  By Lemma 7, any non-empty subset of
``S \\ {o}`` is valid — correctness never depends on the choice — but the
tightness of the resulting UBR and the cost of every domination test do.
Three strategies from the paper:

* :class:`AllCSet` — returns the whole database ("ALL" in Figure 10(b));
  tightest possible bound, prohibitively slow.
* :class:`FixedSelection` (FS) — the ``k`` objects with nearest mean
  positions.
* :class:`IncrementalSelection` (IS) — examines nearest neighbors of
  ``o`` one at a time via R-tree distance browsing, skips objects whose
  uncertainty regions overlap ``u(o)`` (their ``dom`` is empty by
  Lemma 2, so they cannot shrink anything), and spreads the selection
  over the ``2^d`` quadrants around ``o``'s mean until each quadrant has
  ``kpartition`` members or ``kglobal`` neighbors were scanned.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..rtree import RStarTree
from ..uncertain import UncertainDataset, UncertainObject

__all__ = [
    "CSet",
    "CSetStrategy",
    "AllCSet",
    "FixedSelection",
    "IncrementalSelection",
]


@dataclass(frozen=True)
class CSet:
    """A packed candidate set: ids plus corner arrays for vectorization."""

    ids: np.ndarray  # (n,) int64
    los: np.ndarray  # (n, d)
    his: np.ndarray  # (n, d)

    def __len__(self) -> int:
        return len(self.ids)

    @classmethod
    def from_objects(cls, objects: list[UncertainObject]) -> "CSet":
        """Pack a list of uncertain objects."""
        if not objects:
            d = 0
            return cls(
                ids=np.empty(0, dtype=np.int64),
                los=np.empty((0, d)),
                his=np.empty((0, d)),
            )
        return cls(
            ids=np.array([o.oid for o in objects], dtype=np.int64),
            los=np.array([o.region.lo for o in objects]),
            his=np.array([o.region.hi for o in objects]),
        )


class CSetStrategy(ABC):
    """Interface of a ``chooseCSet`` implementation."""

    name: str = "abstract"

    @abstractmethod
    def choose(
        self, obj: UncertainObject, dataset: UncertainDataset
    ) -> CSet:
        """Candidate set for the object's SE run (must exclude ``obj``)."""

    def bind(self, dataset: UncertainDataset) -> None:
        """Hook for strategies that precompute per-dataset structures.

        Called once before a batch of :meth:`choose` calls over the same
        dataset; the default is a no-op.
        """

    def notify_insert(self, obj: UncertainObject) -> None:
        """Hook: the bound dataset gained ``obj`` (default no-op)."""

    def notify_delete(self, obj: UncertainObject) -> None:
        """Hook: the bound dataset lost ``obj`` (default no-op)."""


class AllCSet(CSetStrategy):
    """``chooseCSet`` returning the entire database (minus ``o``)."""

    name = "ALL"

    def choose(
        self, obj: UncertainObject, dataset: UncertainDataset
    ) -> CSet:
        ids, los, his = dataset.packed_regions()
        mask = ids != obj.oid
        return CSet(ids=ids[mask], los=los[mask], his=his[mask])


class _RTreeBackedStrategy(CSetStrategy):
    """Shared machinery: an R*-tree over object means for NN search.

    FS and IS both rank objects by the distance between *mean positions*;
    a point R-tree over means supports that with the distance-browsing
    iterator.  The tree is built lazily per dataset and reused across the
    whole construction pass (the paper assumes "an R-tree of objects'
    uncertainty regions for efficient NN retrieval"; means give identical
    ordering for mean-distance ranking while keeping the tree slim).
    """

    def __init__(self) -> None:
        self._tree: RStarTree | None = None
        self._dataset_token: int | None = None
        self._dataset_len: int | None = None

    def bind(self, dataset: UncertainDataset) -> None:
        token = id(dataset)
        if (
            self._tree is None
            or self._dataset_token != token
            or self._dataset_len != len(dataset)
        ):
            tree = RStarTree(dims=dataset.dims, max_entries=32)
            from ..geometry import Rect

            for o in dataset:
                tree.insert(o.oid, Rect.from_point(o.mean))
            self._tree = tree
            self._dataset_token = token
            self._dataset_len = len(dataset)

    def notify_insert(self, obj: UncertainObject) -> None:
        """Maintain the cached mean tree after a dataset insertion.

        Keeps incremental PV-index maintenance from paying a full
        NN-structure rebuild per update (Section VI-B's point).
        """
        if self._tree is not None:
            from ..geometry import Rect

            self._tree.insert(obj.oid, Rect.from_point(obj.mean))
            if self._dataset_len is not None:
                self._dataset_len += 1

    def notify_delete(self, obj: UncertainObject) -> None:
        """Maintain the cached mean tree after a dataset deletion."""
        if self._tree is not None:
            from ..geometry import Rect

            self._tree.delete(obj.oid, Rect.from_point(obj.mean))
            if self._dataset_len is not None:
                self._dataset_len -= 1

    def _ensure_tree(self, dataset: UncertainDataset) -> RStarTree:
        self.bind(dataset)
        assert self._tree is not None
        return self._tree


class FixedSelection(_RTreeBackedStrategy):
    """FS: the ``k`` nearest objects by mean position.

    Parameters
    ----------
    k:
        Number of neighbors returned (Table I default 200).
    """

    name = "FS"

    def __init__(self, k: int = 200) -> None:
        super().__init__()
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k

    def choose(
        self, obj: UncertainObject, dataset: UncertainDataset
    ) -> CSet:
        tree = self._ensure_tree(dataset)
        hits = tree.knn(
            obj.mean, self.k, skip=lambda e: e.key == obj.oid
        )
        objects = [dataset[e.key] for _, e in hits]
        return CSet.from_objects(objects)


class IncrementalSelection(_RTreeBackedStrategy):
    """IS: quadrant-balanced incremental selection.

    Parameters
    ----------
    kpartition:
        Target number of selected neighbors per domain quadrant
        (Table I default 10).
    kglobal:
        Hard cap on how many nearest neighbors are examined
        (Table I default 200).
    """

    name = "IS"

    def __init__(self, kpartition: int = 10, kglobal: int = 200) -> None:
        super().__init__()
        if kpartition < 1:
            raise ValueError("kpartition must be >= 1")
        if kglobal < 1:
            raise ValueError("kglobal must be >= 1")
        self.kpartition = kpartition
        self.kglobal = kglobal

    def choose(
        self, obj: UncertainObject, dataset: UncertainDataset
    ) -> CSet:
        tree = self._ensure_tree(dataset)
        d = dataset.dims
        n_parts = 1 << d
        counters = np.zeros(n_parts, dtype=np.int64)
        mean = obj.mean
        selected: list[UncertainObject] = []
        examined = 0
        for _, entry in tree.nearest_iter(
            mean, skip=lambda e: e.key == obj.oid
        ):
            if examined >= self.kglobal:
                break
            examined += 1
            cand = dataset[entry.key]
            if cand.region.intersects(obj.region):
                # Lemma 2: dom(cand, o) is empty — useless for shrinking.
                continue
            parts = self._touched_partitions(cand, mean, d)
            counters[parts] += 1
            selected.append(cand)
            if np.all(counters >= self.kpartition):
                break
        return CSet.from_objects(selected)

    @staticmethod
    def _touched_partitions(
        cand: UncertainObject, mean: np.ndarray, d: int
    ) -> list[int]:
        """Indices of the 2^d quadrants intersected by ``u(cand)``.

        Quadrant bit ``j`` is set for the half-space ``x_j >= mean_j``.
        A region straddling the split plane in some dimension touches
        quadrants with either bit value there.
        """
        lo_side = cand.region.lo < mean  # touches the low half-space
        hi_side = cand.region.hi >= mean  # touches the high half-space
        parts = [0]
        for j in range(d):
            nxt = []
            if lo_side[j]:
                nxt.extend(parts)
            if hi_side[j]:
                nxt.extend(p | (1 << j) for p in parts)
            parts = nxt
        return parts
