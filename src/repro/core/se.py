"""The Shrink-and-Expand (SE) algorithm — Algorithm 1 of the paper.

SE computes the UBR ``B(o)`` of a PV-cell without ever materializing the
cell.  It keeps two rectangles sandwiching the cell's MBR ``M(o)``:

* ``l(o)`` — contained in ``M(o)``; initialized to ``u(o)`` (valid by
  Lemma 5: ``u(o) ⊆ V(o) ⊆ M(o)``);
* ``h(o)`` — containing ``M(o)``; initialized to the domain ``D``.

Each iteration sweeps every (dimension, direction) pair.  For direction
``ρ`` of dimension ``j`` it places the plane ``i^ρ_j`` midway between the
corresponding faces of ``h(o)`` and ``l(o)``, forms the slab ``R^ρ_j``
between ``i^ρ_j`` and ``h(o)``'s face, and asks whether the slab can
touch ``I(Cset(o), o) ⊇ V(o)``:

* provably not → *shrink*: ``h(o)``'s face moves to ``i^ρ_j``;
* possibly    → *expand*: ``l(o)``'s face moves to ``i^ρ_j``.

The per-direction gap halves every sweep, so
``log2(|D|_max / Δ) · 2d`` emptiness tests suffice (Section V,
Discussions).  The emptiness test is the domination-count estimation of
:mod:`repro.geometry.domination`; a conservative "may touch" answer can
only inflate the final UBR, never make it miss part of the cell.

The incremental variants of Section VI-B reuse the same loop with warm
starts: after a *deletion* the cell can only grow (Lemma 9), so the old
UBR becomes the new lower bound ``l(o)``; after an *insertion* the cell
can only shrink, so the old UBR becomes the new upper bound ``h(o)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..geometry import Rect
from ..geometry.domination import DominationTester, margin_bounds_batch
from ..uncertain import UncertainDataset, UncertainObject
from .cset import CSet, CSetStrategy, IncrementalSelection

__all__ = ["SEConfig", "SEStats", "SEResult", "ShrinkExpand"]


@dataclass(frozen=True)
class SEConfig:
    """Tuning parameters of the SE algorithm.

    Parameters
    ----------
    delta:
        Convergence threshold Δ: iteration stops once the maximum
        per-dimension distance between ``h(o)`` and ``l(o)`` drops below
        it (Table I default 1).
    m_max:
        Partition budget of the domination-count estimation (Table I
        default 10).
    """

    delta: float = 1.0
    m_max: int = 10

    def __post_init__(self) -> None:
        if self.delta < 0:
            raise ValueError("delta must be >= 0")
        if self.m_max < 1:
            raise ValueError("m_max must be >= 1")


@dataclass
class SEStats:
    """Accumulated cost counters across SE runs (Figure 10(e) split)."""

    choose_cset_seconds: float = 0.0
    ubr_seconds: float = 0.0
    runs: int = 0
    iterations: int = 0
    emptiness_tests: int = 0
    shrinks: int = 0
    expands: int = 0
    cset_sizes: list[int] = field(default_factory=list)

    def reset(self) -> None:
        self.choose_cset_seconds = 0.0
        self.ubr_seconds = 0.0
        self.runs = 0
        self.iterations = 0
        self.emptiness_tests = 0
        self.shrinks = 0
        self.expands = 0
        self.cset_sizes = []

    @property
    def mean_cset_size(self) -> float:
        """Average candidate-set size over all runs."""
        if not self.cset_sizes:
            return 0.0
        return float(np.mean(self.cset_sizes))


@dataclass(frozen=True)
class SEResult:
    """Outcome of one SE run."""

    ubr: Rect
    lower: Rect
    iterations: int
    cset_size: int


class ShrinkExpand:
    """Computes UBRs via the SE algorithm.

    Parameters
    ----------
    strategy:
        The ``chooseCSet`` implementation (defaults to IS with Table I
        parameters).
    config:
        Δ and partition budget.
    """

    def __init__(
        self,
        strategy: CSetStrategy | None = None,
        config: SEConfig | None = None,
    ) -> None:
        self.strategy = strategy or IncrementalSelection()
        self.config = config or SEConfig()
        self.stats = SEStats()

    # ------------------------------------------------------------------
    def compute_ubr(
        self, obj: UncertainObject, dataset: UncertainDataset
    ) -> SEResult:
        """Run SE for ``obj`` against ``dataset`` (Algorithm 1)."""
        t0 = time.perf_counter()
        self.strategy.bind(dataset)
        cset = self.strategy.choose(obj, dataset)
        t1 = time.perf_counter()
        result = self.refine(
            obj,
            cset,
            dataset.domain,
            lower=obj.region,
            upper=dataset.domain,
        )
        t2 = time.perf_counter()
        self.stats.choose_cset_seconds += t1 - t0
        self.stats.ubr_seconds += t2 - t1
        self.stats.runs += 1
        self.stats.cset_sizes.append(len(cset))
        return result

    def refine(
        self,
        obj: UncertainObject,
        cset: CSet,
        domain: Rect,
        lower: Rect,
        upper: Rect,
    ) -> SEResult:
        """The shrink/expand loop with explicit warm-start bounds.

        ``lower`` must be contained in the cell's MBR and ``upper`` must
        contain it; the standard run uses ``u(o)`` and ``D``, the
        incremental variants pass old UBRs (Section VI-B, Steps 3).
        """
        if not upper.contains_rect(lower):
            # A stale warm start (e.g. old UBR marginally tighter than
            # the new bound) is reconciled conservatively.
            lower = upper.intersection(lower) or Rect(
                np.clip(lower.lo, upper.lo, upper.hi),
                np.clip(lower.hi, upper.lo, upper.hi),
            )
        tester = DominationTester(m_max=self.config.m_max)
        h_lo = upper.lo.copy()
        h_hi = upper.hi.copy()
        l_lo = lower.lo.copy()
        l_hi = lower.hi.copy()
        d = domain.dims
        delta = self.config.delta
        iterations = 0
        # Working candidate arrays.  Candidates whose dominated region
        # provably misses the current h(o) can never prove emptiness for
        # any future slab (slabs only shrink with h), so they are culled
        # once per sweep — the effective C-set collapses toward the
        # object's true V-set as the sandwich tightens.
        act_los = cset.los
        act_his = cset.his

        def gap() -> float:
            return float(
                max(np.max(l_lo - h_lo), np.max(h_hi - l_hi))
            )

        while gap() >= delta and gap() > 0:
            iterations += 1
            if len(act_los):
                mins, _ = margin_bounds_batch(
                    act_los, act_his, obj.region, Rect(h_lo, h_hi)
                )
                live = mins < 0.0
                if not live.all():
                    act_los = act_los[live]
                    act_his = act_his[live]
            for j in range(d):
                # direction "low": the face at h_lo[j] vs l_lo[j].
                if l_lo[j] - h_lo[j] >= delta:
                    mid = (h_lo[j] + l_lo[j]) / 2.0
                    slab_lo = h_lo.copy()
                    slab_hi = h_hi.copy()
                    slab_hi[j] = mid
                    if self._slab_empty(
                        tester, Rect(slab_lo, slab_hi), act_los,
                        act_his, obj,
                    ):
                        h_lo[j] = mid
                        self.stats.shrinks += 1
                    else:
                        l_lo[j] = mid
                        self.stats.expands += 1
                # direction "high": the face at h_hi[j] vs l_hi[j].
                if h_hi[j] - l_hi[j] >= delta:
                    mid = (h_hi[j] + l_hi[j]) / 2.0
                    slab_lo = h_lo.copy()
                    slab_hi = h_hi.copy()
                    slab_lo[j] = mid
                    if self._slab_empty(
                        tester, Rect(slab_lo, slab_hi), act_los,
                        act_his, obj,
                    ):
                        h_hi[j] = mid
                        self.stats.shrinks += 1
                    else:
                        l_hi[j] = mid
                        self.stats.expands += 1
        self.stats.iterations += iterations
        self.stats.emptiness_tests += tester.stats.tests
        return SEResult(
            ubr=Rect(h_lo, h_hi),
            lower=Rect(l_lo, l_hi),
            iterations=iterations,
            cset_size=len(cset),
        )

    def _slab_empty(
        self,
        tester: DominationTester,
        slab: Rect,
        act_los,
        act_his,
        obj: UncertainObject,
    ) -> bool:
        """Step 9 of Algorithm 1: ``R^ρ_j ∩ I(Cset(o), o) = ∅``?"""
        return not tester.region_intersects_nondominated(
            slab, act_los, act_his, obj.region
        )

    # ------------------------------------------------------------------
    # Incremental variants (Section VI-B)
    # ------------------------------------------------------------------
    def recompute_after_deletion(
        self,
        obj: UncertainObject,
        dataset: UncertainDataset,
        old_ubr: Rect,
    ) -> SEResult:
        """New UBR of an affected object after a deletion.

        By Lemma 9 the PV-cell cannot shrink, so ``old_ubr`` (which
        contained the old cell and is contained in the new MBR's upper
        bound region only as a *lower* bound) warm-starts ``l(o)``.
        """
        t0 = time.perf_counter()
        self.strategy.bind(dataset)
        cset = self.strategy.choose(obj, dataset)
        t1 = time.perf_counter()
        result = self.refine(
            obj,
            cset,
            dataset.domain,
            lower=old_ubr,
            upper=dataset.domain,
        )
        t2 = time.perf_counter()
        self.stats.choose_cset_seconds += t1 - t0
        self.stats.ubr_seconds += t2 - t1
        self.stats.runs += 1
        self.stats.cset_sizes.append(len(cset))
        return result

    def recompute_after_insertion(
        self,
        obj: UncertainObject,
        dataset: UncertainDataset,
        old_ubr: Rect,
    ) -> SEResult:
        """New UBR of an affected object after an insertion.

        By Lemma 9 the PV-cell cannot grow, so ``old_ubr`` warm-starts
        ``h(o)`` — SE starts from a much smaller upper bound than ``D``.
        """
        t0 = time.perf_counter()
        self.strategy.bind(dataset)
        cset = self.strategy.choose(obj, dataset)
        t1 = time.perf_counter()
        lower = obj.region
        result = self.refine(
            obj,
            cset,
            dataset.domain,
            lower=lower,
            upper=old_ubr,
        )
        t2 = time.perf_counter()
        self.stats.choose_cset_seconds += t1 - t0
        self.stats.ubr_seconds += t2 - t1
        self.stats.runs += 1
        self.stats.cset_sizes.append(len(cset))
        return result
