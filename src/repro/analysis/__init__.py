"""Project-specific static analysis + runtime sanitizers.

Four checkers, each grounded in a bug class this repo has shipped or
nearly shipped (run them all with ``python -m repro.analysis``):

* :mod:`.stats_check` — every ``ExecutionStats`` field wired through
  all six sync methods, capture/delta tuple positions consistent;
* :mod:`.lock_check` — static ``with``-nesting check against the
  declared lock hierarchy (:data:`.locks.LOCK_HIERARCHY`), whose
  runtime twin is the ``REPRO_SANITIZE=1`` instrumented-lock factory
  in :mod:`.locks`;
* :mod:`.fault_check` — fault-hook literals ↔ ``faults.SITES``
  registry, both directions;
* :mod:`.process_check` — worker exceptions pickle-round-trip,
  ``time.time()`` banned from deadline paths.
"""

from __future__ import annotations

from pathlib import Path

from .findings import Finding, load_baseline, save_baseline
from .locks import (
    LOCK_HIERARCHY,
    LockOrderViolation,
    make_lock,
    make_rlock,
)

__all__ = [
    "Finding",
    "LOCK_HIERARCHY",
    "LockOrderViolation",
    "load_baseline",
    "make_lock",
    "make_rlock",
    "run_all",
    "save_baseline",
]


def _sources(root: Path, *subdirs: str) -> list[Path]:
    out: list[Path] = []
    for subdir in subdirs:
        base = root / "src" / "repro" / subdir
        if base.is_file():
            out.append(base)
        elif base.is_dir():
            out.extend(sorted(base.rglob("*.py")))
    return out


def run_all(root: Path) -> list[Finding]:
    """Every checker over the repository at ``root``."""
    from .fault_check import check_fault_sites
    from .lock_check import check_lock_order
    from .process_check import check_process_safety
    from .stats_check import check_stats

    src = root / "src" / "repro"
    findings: list[Finding] = []
    findings.extend(
        check_stats(
            src / "engine" / "stats.py",
            rel="src/repro/engine/stats.py",
        )
    )
    findings.extend(
        check_lock_order(
            _sources(
                root,
                "api",
                "service",
                "storage",
                "engine/base.py",
                "uncertain/dataset.py",
                "testing/faults.py",
            ),
            root=root,
        )
    )
    findings.extend(
        check_fault_sites(_sources(root, ""), root=root)
    )
    findings.extend(
        check_process_safety(
            _sources(root, "service", "engine"),
            root=root,
            procpool_path=src / "service" / "procpool.py",
        )
    )
    return findings
