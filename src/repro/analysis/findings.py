"""Structured findings and the baseline file for ``repro.analysis``.

Every checker returns a list of :class:`Finding` values; the CLI
renders them ``path:line: [checker] CODE message`` (clickable in most
editors/CI logs) and exits non-zero when any finding is not covered
by the optional baseline file.

The baseline exists so a checker can be introduced (or tightened)
without blocking on fixing every pre-existing hit at once: findings
whose :meth:`Finding.key` appears in the baseline are reported as
suppressed and do not fail the run.  Keys deliberately exclude the
line number so routine edits above a suppressed site do not
invalidate the baseline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

__all__ = ["Finding", "load_baseline", "save_baseline"]


@dataclass(frozen=True, order=True)
class Finding:
    """One violation of a project invariant.

    ``checker`` names the pass (``stats``, ``lock-order``,
    ``fault-sites``, ``process-safety``); ``code`` is a short stable
    identifier for the rule within it.
    """

    checker: str
    code: str
    path: str
    line: int
    message: str

    def key(self) -> str:
        """Stable identity for baseline matching (line-independent)."""
        return f"{self.checker}:{self.code}:{self.path}:{self.message}"

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.checker}] {self.code} {self.message}"


def load_baseline(path: str | Path) -> set[str]:
    """The suppressed finding keys recorded in ``path``."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "suppressed" not in data:
        raise ValueError(f"{path}: not a repro.analysis baseline file")
    return set(data["suppressed"])


def save_baseline(path: str | Path, findings: Iterable[Finding]) -> None:
    """Write a baseline suppressing every finding in ``findings``."""
    payload = {
        "version": 1,
        "suppressed": sorted({f.key() for f in findings}),
    }
    Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
