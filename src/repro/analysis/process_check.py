"""Cross-process discipline: picklable errors, monotonic deadlines.

Two rules, both grounded in bugs this stack has actually hit:

* **P001 — worker exceptions must survive the pipe.**  Errors raised
  in ``service/procpool.py`` worker paths travel to the parent as
  pickles; an exception class that does not round-trip (the classic:
  an ``OSError`` subclass with a custom multi-arg ``__init__`` and no
  ``__reduce__`` — exactly the bug ``FaultInjected.__reduce__``
  exists to fix) either crashes the pipe or reconstructs with garbage
  attributes.  The checker collects every ``raise <Name>(…)`` in the
  module, resolves the class, instantiates a specimen, and verifies
  ``pickle.loads(pickle.dumps(e))`` preserves type, ``args`` and
  ``__dict__``.
* **P002 — wall-clock time is banned from deadline paths.**
  ``time.time()`` jumps under NTP steps; every deadline/timeout
  computation in the kernel/scheduler/serving paths must use
  ``time.monotonic()``.  Timing *measurements* use
  ``time.perf_counter()``; there is no legitimate ``time.time()``
  call in ``src/`` today, and this keeps it that way.
"""

from __future__ import annotations

import ast
import pickle
from pathlib import Path

from .findings import Finding

__all__ = ["check_process_safety", "check_exception_roundtrip"]

#: Argument tuples tried when instantiating a specimen exception.
_CTOR_TRIALS: tuple[tuple, ...] = (
    ("injected-specimen",),
    (1, "injected-specimen"),
    ("injected-specimen", "detail"),
    (),
)


def _roundtrip_failure(exc_cls: type) -> str | None:
    """Why ``exc_cls`` fails a pickle round-trip, or ``None``."""
    specimen = None
    for args in _CTOR_TRIALS:
        try:
            specimen = exc_cls(*args)
            break
        except Exception:  # noqa: BLE001 - constructor probing
            continue
    if specimen is None:
        return None  # cannot build a specimen; nothing to verify
    try:
        clone = pickle.loads(pickle.dumps(specimen))
    except Exception as error:  # noqa: BLE001 - any failure is the finding
        return f"pickle round-trip raises {type(error).__name__}: {error}"
    if type(clone) is not type(specimen):
        return (
            f"pickle round-trip changes type to "
            f"{type(clone).__name__}"
        )
    if clone.args != specimen.args:
        return (
            f"pickle round-trip corrupts args: {specimen.args!r} -> "
            f"{clone.args!r}"
        )
    if clone.__dict__ != specimen.__dict__:
        return (
            f"pickle round-trip drops attributes: "
            f"{specimen.__dict__!r} -> {clone.__dict__!r}"
        )
    return None


def check_exception_roundtrip(
    path: str | Path,
    namespace: dict[str, object],
    *,
    rel: str | None = None,
) -> list[Finding]:
    """P001 over every ``raise <Name>(…)`` in ``path``.

    ``namespace`` resolves exception names to classes — the importing
    caller passes ``vars(module)`` so the checker never guesses at
    import side effects.
    """
    shown = rel if rel is not None else str(path)
    tree = ast.parse(
        Path(path).read_text(encoding="utf-8"), filename=str(path)
    )
    findings: list[Finding] = []
    seen: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        call = node.exc
        name = None
        if isinstance(call, ast.Call) and isinstance(
            call.func, ast.Name
        ):
            name = call.func.id
        elif isinstance(call, ast.Name):
            name = call.id
        if name is None or name in seen:
            continue
        seen.add(name)
        candidate = namespace.get(name)
        if not (
            isinstance(candidate, type)
            and issubclass(candidate, BaseException)
        ):
            continue
        why = _roundtrip_failure(candidate)
        if why is not None:
            findings.append(
                Finding(
                    "process-safety",
                    "P001",
                    shown,
                    node.lineno,
                    f"exception {name!r} raised in a worker path is "
                    f"not picklable: {why}",
                )
            )
    return findings


def check_monotonic(
    paths: list[Path], *, root: Path | None = None
) -> list[Finding]:
    """P002: no ``time.time()`` in the scanned deadline paths."""
    findings: list[Finding] = []
    for path in paths:
        posix = path.as_posix()
        shown = (
            path.relative_to(root).as_posix()
            if root is not None and path.is_relative_to(root)
            else posix
        )
        tree = ast.parse(
            path.read_text(encoding="utf-8"), filename=posix
        )
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "time"
                and isinstance(node.value, ast.Name)
                and node.value.id == "time"
            ):
                findings.append(
                    Finding(
                        "process-safety",
                        "P002",
                        shown,
                        node.lineno,
                        "time.time() in a deadline path — wall clock "
                        "jumps under NTP; use time.monotonic()",
                    )
                )
    return findings


def check_process_safety(
    monotonic_paths: list[Path],
    *,
    root: Path | None = None,
    procpool_path: Path | None = None,
) -> list[Finding]:
    """The full pass: P001 over procpool + P002 over deadline paths."""
    findings: list[Finding] = []
    if procpool_path is not None and procpool_path.exists():
        from ..service import procpool

        rel = (
            procpool_path.relative_to(root).as_posix()
            if root is not None and procpool_path.is_relative_to(root)
            else procpool_path.as_posix()
        )
        findings.extend(
            check_exception_roundtrip(
                procpool_path, vars(procpool), rel=rel
            )
        )
    findings.extend(check_monotonic(monotonic_paths, root=root))
    return findings
