"""stats-completeness: every ``ExecutionStats`` field wired everywhere.

``ExecutionStats`` fields must be hand-wired into six methods
(``reset`` / ``snapshot`` / ``capture`` / ``delta_since`` / ``delta``
/ ``merge``) — every PR since PR 1 has extended all six by
convention, and nothing but reviewer vigilance catches a miss.  This
checker parses ``engine/stats.py`` (no import, pure AST), derives the
field set from the dataclass annotations, and emits one finding per
field missing from a method.  It also verifies the two positional
contracts:

* the module-level ``_SCALAR_FIELDS`` tuple names exactly the scalar
  (``int`` / ``float``) fields, in the order ``capture`` emits them;
* ``delta_since`` subtracts ``captured[i]`` at the same ``i`` where
  ``capture`` placed that field — the silent-corruption bug class
  (two swapped indices produce plausible nonsense, not a crash).

A method that iterates ``_SCALAR_FIELDS`` (``merge`` does) covers
every scalar field at once; explicit ``self.<field>`` references and
constructor keywords cover fields one by one.
"""

from __future__ import annotations

import ast
from pathlib import Path

from .findings import Finding

__all__ = ["check_stats"]

#: The methods every counter must flow through.
SYNC_METHODS = (
    "reset",
    "snapshot",
    "capture",
    "delta_since",
    "delta",
    "merge",
)

_SCALAR_ANNOTATIONS = {"int", "float"}


def _annotation_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _self_attrs(node: ast.AST) -> set[str]:
    """Every ``self.<name>`` attribute read or written under ``node``."""
    out: set[str] = set()
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Attribute)
            and isinstance(sub.value, ast.Name)
            and sub.value.id == "self"
        ):
            out.add(sub.attr)
    return out


def _mentions_scalar_fields(node: ast.AST, tuple_name: str) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id == tuple_name
        for sub in ast.walk(node)
    )


def _call_keywords(node: ast.AST) -> set[str]:
    """Keyword argument names of every call under ``node``."""
    out: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            for kw in sub.keywords:
                if kw.arg is not None:
                    out.add(kw.arg)
    return out


def _capture_order(func: ast.FunctionDef) -> list[str]:
    """The flattened attribute path of each element of the returned
    tuple: ``self.queries`` → ``queries``, ``self.or_io.reads`` →
    ``or_io.reads``.  Non-attribute elements render as ``?``."""
    for stmt in ast.walk(func):
        if isinstance(stmt, ast.Return) and isinstance(
            stmt.value, ast.Tuple
        ):
            out = []
            for element in stmt.value.elts:
                parts: list[str] = []
                node: ast.expr = element
                while isinstance(node, ast.Attribute):
                    parts.append(node.attr)
                    node = node.value
                if isinstance(node, ast.Name) and node.id == "self":
                    out.append(".".join(reversed(parts)))
                else:
                    out.append("?")
            return out
    return []


def _subscript_indices(node: ast.AST, param: str) -> set[int]:
    """Integer ``param[i]`` indices appearing under ``node``."""
    out: set[int] = set()
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Subscript)
            and isinstance(sub.value, ast.Name)
            and sub.value.id == param
            and isinstance(sub.slice, ast.Constant)
            and isinstance(sub.slice.value, int)
        ):
            out.add(sub.slice.value)
    return out


def check_stats(
    path: str | Path, *, rel: str | None = None
) -> list[Finding]:
    """Check every stats-like class in ``path``.

    A class participates when it has dataclass-style annotated fields
    and at least one of the six sync methods.  ``rel`` overrides the
    path findings report (repo-relative in the CLI).
    """
    source = Path(path).read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    shown = rel if rel is not None else str(path)
    findings: list[Finding] = []

    # Module-level scalar-order tuple (any *_FIELDS tuple of strings).
    tuple_name = None
    tuple_order: list[str] = []
    tuple_line = 0
    for stmt in tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id.endswith("_FIELDS")
            and isinstance(stmt.value, ast.Tuple)
        ):
            tuple_name = stmt.targets[0].id
            tuple_line = stmt.lineno
            for element in stmt.value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    tuple_order.append(element.value)

    for cls in tree.body:
        if not isinstance(cls, ast.ClassDef):
            continue
        fields: list[str] = []
        scalars: list[str] = []
        for stmt in cls.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                name = stmt.target.id
                if name.startswith("_"):
                    continue
                fields.append(name)
                if (
                    _annotation_name(stmt.annotation)
                    in _SCALAR_ANNOTATIONS
                ):
                    scalars.append(name)
        methods = {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, ast.FunctionDef)
            and stmt.name in SYNC_METHODS
        }
        if not fields or not methods:
            continue
        io_fields = [f for f in fields if f not in scalars]

        # -- _SCALAR_FIELDS tuple completeness + order ------------------
        if tuple_name is not None:
            for name in scalars:
                if name not in tuple_order:
                    findings.append(
                        Finding(
                            "stats",
                            "S001",
                            shown,
                            tuple_line,
                            f"field {name!r} missing from {tuple_name}",
                        )
                    )
            for name in tuple_order:
                if name not in scalars:
                    findings.append(
                        Finding(
                            "stats",
                            "S002",
                            shown,
                            tuple_line,
                            f"{tuple_name} names unknown field {name!r}",
                        )
                    )

        # -- per-method field coverage ---------------------------------
        capture_order: list[str] = []
        if "capture" in methods:
            capture_order = _capture_order(methods["capture"])

        for method_name, func in methods.items():
            if tuple_name is not None and _mentions_scalar_fields(
                func, tuple_name
            ):
                covered = set(scalars)
            else:
                covered = set()
            covered |= _self_attrs(func)
            if method_name in ("snapshot", "delta_since", "delta"):
                covered |= _call_keywords(func)
            if method_name == "capture":
                covered |= {
                    spec.split(".", 1)[0] for spec in capture_order
                }
            for name in fields:
                if name not in covered:
                    findings.append(
                        Finding(
                            "stats",
                            "S003",
                            shown,
                            func.lineno,
                            f"field {name!r} not handled by "
                            f"{cls.name}.{method_name}",
                        )
                    )

        # -- capture order == _SCALAR_FIELDS order ---------------------
        if capture_order and tuple_order:
            expected = tuple_order + [
                f"{io}.{attr}"
                for io in io_fields
                for attr in ("reads", "writes")
            ]
            if (
                all(name in scalars for name in tuple_order)
                and capture_order != expected
            ):
                findings.append(
                    Finding(
                        "stats",
                        "S004",
                        shown,
                        methods["capture"].lineno,
                        f"{cls.name}.capture tuple order diverges from "
                        f"{tuple_name} + I/O tail "
                        f"(got {capture_order!r})",
                    )
                )

        # -- delta_since indices match capture positions ---------------
        if capture_order and "delta_since" in methods:
            func = methods["delta_since"]
            args = func.args.args
            param = args[1].arg if len(args) > 1 else None
            if param is not None:
                positions = {
                    spec: i for i, spec in enumerate(capture_order)
                }
                for sub in ast.walk(func):
                    if not isinstance(sub, ast.Call):
                        continue
                    for kw in sub.keywords:
                        if kw.arg is None or kw.arg not in fields:
                            continue
                        used = _subscript_indices(kw.value, param)
                        if not used:
                            continue
                        if kw.arg in scalars:
                            expect = {positions.get(kw.arg, -1)}
                        else:
                            expect = {
                                positions.get(f"{kw.arg}.reads", -1),
                                positions.get(f"{kw.arg}.writes", -1),
                            }
                        if not used <= expect:
                            findings.append(
                                Finding(
                                    "stats",
                                    "S005",
                                    shown,
                                    func.lineno,
                                    f"{cls.name}.delta_since subtracts "
                                    f"{param}[{sorted(used)}] for field "
                                    f"{kw.arg!r} but capture placed it "
                                    f"at {sorted(expect)}",
                                )
                            )
    return findings
