"""``python -m repro.analysis`` — run every project-invariant checker.

Exit status is non-zero when any finding is not covered by the
optional baseline file (``--baseline``); ``--write-baseline`` records
the current findings so a new checker can land before every
pre-existing hit is fixed.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from . import run_all
from .findings import load_baseline, save_baseline


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-specific static analysis for repro.",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repository root (default: derived from this package)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline file of suppressed finding keys",
    )
    parser.add_argument(
        "--write-baseline",
        type=Path,
        default=None,
        help="write current findings as the new baseline and exit 0",
    )
    args = parser.parse_args(argv)

    root = args.root
    if root is None:
        root = Path(__file__).resolve().parents[3]

    findings = run_all(root)

    if args.write_baseline is not None:
        save_baseline(args.write_baseline, findings)
        print(
            f"repro.analysis: wrote baseline with {len(findings)} "
            f"finding(s) to {args.write_baseline}"
        )
        return 0

    suppressed: set[str] = set()
    if args.baseline is not None and args.baseline.exists():
        suppressed = load_baseline(args.baseline)

    new = [f for f in findings if f.key() not in suppressed]
    old = len(findings) - len(new)
    for finding in sorted(new):
        print(finding.render())
    summary = f"repro.analysis: {len(new)} finding(s)"
    if old:
        summary += f" ({old} suppressed by baseline)"
    print(summary)
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
