"""The declared lock hierarchy and the runtime lock-order sanitizer.

The serving stack holds ~12 distinct locks with an implicit
acquisition order; PR 8 and PR 9 each fixed a latent inversion in
this layer.  This module makes the order explicit and machine-checked:

* :data:`LOCK_HIERARCHY` declares every participating lock and its
  rank.  Locks must be acquired in ascending rank order within a
  thread; re-acquiring the *same* object (RLock re-entrancy) is
  always fine.
* :func:`make_lock` / :func:`make_rlock` are drop-in factories the
  participating modules call instead of ``threading.Lock()`` /
  ``threading.RLock()``.  Unarmed (the default, and always in
  production) they return the plain primitive — zero overhead, same
  pattern as :mod:`repro.testing.faults`.  With ``REPRO_SANITIZE=1``
  in the environment (or after :func:`enable`), they return
  instrumented wrappers that record per-thread acquisition stacks,
  maintain the global lock-order graph, and raise
  :class:`LockOrderViolation` carrying **both** witness stacks the
  moment an inversion (a cycle in the order graph, or an acquisition
  that descends the declared ranks) is observed — long before the
  schedule that would actually deadlock.
* :data:`STATIC_LOCK_ATTRS` maps source files to the attribute names
  their locks live under, so the static half of the checker
  (:mod:`repro.analysis.lock_check`) can resolve ``with self._lock:``
  blocks to hierarchy ranks without importing anything.

Declaring a new lock: add its name and rank to
:data:`LOCK_HIERARCHY` (rank ordering = outermost first), construct
it via the factory, and — if it is acquired under a ``self.<attr>``
name in ``api/``, ``service/`` or ``storage/`` — add the attribute to
:data:`STATIC_LOCK_ATTRS` so the static pass sees it too.
"""

from __future__ import annotations

import os
import threading
import traceback
from typing import Any, Iterator

__all__ = [
    "LOCK_HIERARCHY",
    "STATIC_LOCK_ATTRS",
    "LockOrderViolation",
    "make_lock",
    "make_rlock",
    "enable",
    "disable",
    "enabled",
    "reset_graph",
    "held_locks",
]

#: Every participating lock, outermost (acquired first) to innermost.
#: A thread may only acquire a lock whose rank is >= every rank it
#: already holds (same-rank nesting of *different* objects is tracked
#: by the order graph instead of banned outright, so legitimate
#: same-class sibling locks stay expressible).
LOCK_HIERARCHY: dict[str, int] = {
    # Mutation serialization — taken around everything else.
    "db.mutation_order": 10,
    # Database planning / handle / engine-registry state.
    "db.lock": 20,
    # Per-engine query bracket (BaseEngine._lock, re-entrant).
    "engine.lock": 30,
    # Lazy index build (IndexHandle._build_lock; builds may read the
    # packed store, so it ranks above the engines but below the store).
    "handle.build_lock": 35,
    # Durable checkpoint bracket (snapshots the store, resets the WAL).
    "durable.ckpt_lock": 40,
    # Packed InstanceStore maintenance + mutation listeners (the WAL
    # append and fault hooks fire under this).
    "dataset.store_lock": 50,
    # Subscription registry (registered while the mutation order lock
    # is held; never wraps a store access).
    "subscriptions.reg_lock": 55,
    # QueryFuture state transitions (leaf: callbacks run outside it).
    "future.lock": 60,
    # Server lifecycle flags (leaves).
    "server.close_lock": 70,
    "server.recovery_lock": 72,
    # Parent-side per-worker pipe writes (leaf).
    "procpool.send_lock": 80,
    # Fault-plan trigger counters — hooks fire under the store lock,
    # so the plan lock must rank below (inside) it.
    "faults.plan_lock": 90,
}

#: Source-file → ``{attribute name: hierarchy name}`` for the static
#: checker.  Keys are path suffixes relative to ``src/repro``.
STATIC_LOCK_ATTRS: dict[str, dict[str, str]] = {
    "api/database.py": {
        "_mutation_order": "db.mutation_order",
        "_lock": "db.lock",
        "_build_lock": "handle.build_lock",
    },
    "engine/base.py": {"_lock": "engine.lock"},
    "uncertain/dataset.py": {"_store_lock": "dataset.store_lock"},
    "storage/durable.py": {"_ckpt_lock": "durable.ckpt_lock"},
    "service/server.py": {
        "_close_lock": "server.close_lock",
        "_recovery_lock": "server.recovery_lock",
    },
    "service/future.py": {"_lock": "future.lock"},
    "service/subscriptions.py": {"_reg_lock": "subscriptions.reg_lock"},
    "service/procpool.py": {"send_lock": "procpool.send_lock"},
    "testing/faults.py": {"_lock": "faults.plan_lock"},
}


class LockOrderViolation(RuntimeError):
    """Two locks were (or would be) acquired in conflicting orders.

    Raised *before* the offending acquisition completes, with the
    stack that established the opposite order (``held_stack``) and
    the stack attempting the conflicting acquisition
    (``acquire_stack``) — the two witnesses a deadlock post-mortem
    would otherwise have to reconstruct from a hung process.
    """

    def __init__(
        self, message: str, *, held_stack: str, acquire_stack: str
    ) -> None:
        self.held_stack = held_stack
        self.acquire_stack = acquire_stack
        super().__init__(
            f"{message}\n"
            f"--- first witness (order already established) ---\n"
            f"{held_stack}"
            f"--- second witness (conflicting acquisition) ---\n"
            f"{acquire_stack}"
        )


# ----------------------------------------------------------------------
# Sanitizer state
# ----------------------------------------------------------------------
_ENABLED = os.environ.get("REPRO_SANITIZE", "").strip() not in ("", "0")

_tls = threading.local()

# The global lock-order graph: edge (a, b) exists when some thread
# acquired lock name b while holding lock name a.  Guarded by a plain
# (uninstrumented) lock; values are the witness stack pair captured
# when the edge was first observed.
_graph_lock = threading.Lock()
_edges: dict[tuple[str, str], tuple[str, str]] = {}
_successors: dict[str, set[str]] = {}


def enabled() -> bool:
    """Whether the sanitizer is armed for newly created locks."""
    return _ENABLED


def enable() -> None:
    """Arm the sanitizer: factories start returning instrumented locks."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Disarm: factories return plain primitives again."""
    global _ENABLED
    _ENABLED = False


def reset_graph() -> None:
    """Forget every recorded ordering edge (test isolation)."""
    with _graph_lock:
        _edges.clear()
        _successors.clear()


def _held() -> list[_Held]:
    held = getattr(_tls, "held", None)
    if held is None:
        held = _tls.held = []
    return held


def held_locks() -> list[str]:
    """Names of the sanitized locks the calling thread holds, outermost
    first (re-entrant acquisitions appear once)."""
    return [entry.lock.name for entry in _held()]


class _Held:
    __slots__ = ("lock", "count", "stack")

    def __init__(self, lock: _SanitizedLock, stack: str) -> None:
        self.lock = lock
        self.count = 1
        self.stack = stack


def _format_stack() -> str:
    # Drop the two sanitizer frames (_format_stack, acquire) so the
    # witness starts at the caller's ``with`` statement.
    return "".join(traceback.format_stack(limit=16)[:-2])


def _reaches(start: str, goal: str) -> bool:
    """True when the order graph has a path start → … → goal."""
    seen = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        if node == goal:
            return True
        for nxt in _successors.get(node, ()):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return False


def _path_witness(start: str, goal: str) -> str:
    """The witness stack of the first edge on a start → goal path."""
    for (a, b), (held_stack, _acq) in _edges.items():
        if a == start and _reaches(b, goal) or (a, b) == (start, goal):
            return held_stack
    return "<witness stack unavailable>"


def _check_order(lock: _SanitizedLock, held: list[_Held]) -> None:
    acquire_stack = _format_stack()
    # Rank discipline: never descend the declared hierarchy.
    for entry in held:
        if lock.rank < entry.lock.rank:
            raise LockOrderViolation(
                f"lock order violation: acquiring {lock.name!r} "
                f"(rank {lock.rank}) while holding {entry.lock.name!r} "
                f"(rank {entry.lock.rank}) — declared order is "
                f"ascending rank",
                held_stack=entry.stack,
                acquire_stack=acquire_stack,
            )
    # Order graph: record innermost-held → new edge, refuse cycles.
    innermost = held[-1]
    a, b = innermost.lock.name, lock.name
    if a == b:
        # Same-rank sibling nesting (two distinct locks sharing a
        # hierarchy name, e.g. two engines) — a self-edge is already
        # a cycle: the sibling order is unordered by construction.
        raise LockOrderViolation(
            f"lock order violation: acquiring a second {b!r} lock "
            f"while one is already held — sibling locks of the same "
            f"rank have no declared sub-order",
            held_stack=innermost.stack,
            acquire_stack=acquire_stack,
        )
    with _graph_lock:
        if (a, b) not in _edges:
            if _reaches(b, a):
                reverse_witness = _path_witness(b, a)
                raise LockOrderViolation(
                    f"lock order cycle: this thread acquires {b!r} "
                    f"while holding {a!r}, but the opposite order "
                    f"{b!r} → {a!r} was already observed",
                    held_stack=reverse_witness,
                    acquire_stack=acquire_stack,
                )
            _edges[(a, b)] = (acquire_stack, innermost.stack)
            _successors.setdefault(a, set()).add(b)


class _SanitizedLock:
    """A Lock/RLock wrapper enforcing the declared hierarchy.

    Checks run *before* the underlying acquire, so a violation raises
    without taking the lock (and without deadlocking the test that
    provoked it).  Non-blocking acquires skip the order checks — a
    try-acquire cannot block the calling thread — but still maintain
    the per-thread held stack on success.
    """

    __slots__ = ("name", "rank", "_inner")

    def __init__(self, name: str, rank: int, inner: Any) -> None:
        self.name = name
        self.rank = rank
        self._inner = inner

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        held = _held()
        entry = None
        for candidate in held:
            if candidate.lock is self:
                entry = candidate
                break
        if blocking and entry is None and held:
            _check_order(self, held)
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            if entry is not None:
                entry.count += 1
            else:
                held.append(_Held(self, _format_stack()))
        return ok

    def release(self) -> None:
        self._inner.release()
        held = _held()
        for i in range(len(held) - 1, -1, -1):
            if held[i].lock is self:
                held[i].count -= 1
                if held[i].count == 0:
                    del held[i]
                return

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: Any) -> None:
        self.release()

    def __repr__(self) -> str:
        return (
            f"<sanitized {self._inner!r} name={self.name!r} "
            f"rank={self.rank}>"
        )


def _make(name: str, factory: Any) -> Any:
    rank = LOCK_HIERARCHY.get(name)
    if rank is None:
        raise KeyError(
            f"lock {name!r} is not declared in "
            f"repro.analysis.locks.LOCK_HIERARCHY — add it with a rank "
            f"before constructing it through the sanitized factory"
        )
    if not _ENABLED:
        return factory()
    return _SanitizedLock(name, rank, factory())


def make_lock(name: str) -> Any:
    """A ``threading.Lock`` participating in the declared hierarchy."""
    return _make(name, threading.Lock)


def make_rlock(name: str) -> Any:
    """A ``threading.RLock`` participating in the declared hierarchy."""
    return _make(name, threading.RLock)


def iter_hierarchy() -> Iterator[tuple[str, int]]:
    """(name, rank) pairs in ascending rank order."""
    return iter(sorted(LOCK_HIERARCHY.items(), key=lambda kv: kv[1]))
