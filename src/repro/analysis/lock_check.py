"""Static lock-order checking over ``with``-block nesting.

The cheap, always-on half of the lock-order story (the runtime
sanitizer in :mod:`repro.analysis.locks` is the other): resolve every
``with self.<attr>:`` / ``with <name>:`` acquisition in ``api/``,
``service/`` and ``storage/`` against :data:`STATIC_LOCK_ATTRS`, walk
the syntactic nesting inside each function, and flag any acquisition
of a lower-ranked lock while a higher-ranked one is held in the same
function body.

Purely syntactic by design — cross-function nesting (``checkpoint()``
taking the store lock under the ckpt lock) is the runtime sanitizer's
job; this pass catches the direct inversions a refactor introduces in
one screenful of code, with zero imports and zero false negatives on
the pattern it targets.
"""

from __future__ import annotations

import ast
from pathlib import Path

from .findings import Finding
from .locks import LOCK_HIERARCHY, STATIC_LOCK_ATTRS

__all__ = ["check_lock_order"]


def _resolve(node: ast.expr, attr_map: dict[str, str]) -> str | None:
    """The hierarchy name of a ``with``-item expression, if any."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return attr_map.get(node.attr)
    if isinstance(node, ast.Name):
        return attr_map.get(node.id)
    return None


class _FunctionWalker:
    def __init__(
        self,
        shown: str,
        attr_map: dict[str, str],
        findings: list[Finding],
    ) -> None:
        self.shown = shown
        self.attr_map = attr_map
        self.findings = findings

    def walk_body(
        self, body: list[ast.stmt], held: list[tuple[str, int]]
    ) -> None:
        for stmt in body:
            if isinstance(stmt, ast.With):
                self._enter_with(stmt, held)
            elif isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                # Nested defs execute later — a fresh held stack.
                self.walk_body(stmt.body, [])
            elif isinstance(stmt, ast.ClassDef):
                self.walk_body(stmt.body, [])
            else:
                for child_body in self._inner_bodies(stmt):
                    self.walk_body(child_body, held)

    @staticmethod
    def _inner_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
        out = []
        for field_name in ("body", "orelse", "finalbody"):
            block = getattr(stmt, field_name, None)
            if block:
                out.append(block)
        handlers = getattr(stmt, "handlers", None)
        if handlers:
            out.extend(handler.body for handler in handlers)
        return out

    def _enter_with(
        self, stmt: ast.With, held: list[tuple[str, int]]
    ) -> None:
        acquired: list[tuple[str, int]] = []
        for item in stmt.items:
            name = _resolve(item.context_expr, self.attr_map)
            if name is None:
                continue
            rank = LOCK_HIERARCHY[name]
            for held_name, held_rank in held + acquired:
                if rank < held_rank:
                    self.findings.append(
                        Finding(
                            "lock-order",
                            "L001",
                            self.shown,
                            stmt.lineno,
                            f"acquires {name!r} (rank {rank}) while "
                            f"{held_name!r} (rank {held_rank}) is "
                            f"held — declared order is ascending rank",
                        )
                    )
            acquired.append((name, rank))
        held.extend(acquired)
        self.walk_body(stmt.body, held)
        if acquired:
            del held[-len(acquired):]


def check_lock_order(
    paths: list[Path],
    *,
    root: Path | None = None,
    attr_maps: dict[str, dict[str, str]] | None = None,
) -> list[Finding]:
    """Check every file in ``paths``.

    Each file's attribute→lock table comes from ``attr_maps`` (default
    :data:`STATIC_LOCK_ATTRS`), matched by path suffix; files with no
    entry are checked against the union of all tables minus the
    ambiguous attribute names (``_lock`` means different locks in
    different files), so fixture/test modules can use the unambiguous
    names directly.
    """
    if attr_maps is None:
        attr_maps = STATIC_LOCK_ATTRS
    # Union table for unmatched files: drop attr names claimed by
    # more than one lock.
    union: dict[str, str] = {}
    ambiguous: set[str] = set()
    for table in attr_maps.values():
        for attr, lock_name in table.items():
            if attr in union and union[attr] != lock_name:
                ambiguous.add(attr)
            union[attr] = lock_name
    for attr in ambiguous:
        union.pop(attr, None)

    findings: list[Finding] = []
    for path in paths:
        posix = path.as_posix()
        table = union
        for suffix, candidate in attr_maps.items():
            if posix.endswith(suffix):
                table = candidate
                break
        shown = (
            path.relative_to(root).as_posix()
            if root is not None and path.is_relative_to(root)
            else posix
        )
        tree = ast.parse(
            path.read_text(encoding="utf-8"), filename=posix
        )
        walker = _FunctionWalker(shown, table, findings)
        walker.walk_body(tree.body, [])
    return findings
