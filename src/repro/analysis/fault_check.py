"""fault-site registry discipline: no silent chaos hooks.

A :class:`~repro.testing.faults.FaultRule` targets a site by string
name; before this pass, a typo'd site compiled, armed, and then
silently never fired — the chaos test "passed" while testing nothing.
Two directions are checked:

* every ``faults.check("…")`` / ``_fault_check("…")`` literal in the
  scanned sources must name a site declared in ``faults.SITES``;
* every declared site must have at least one call site (a rule can
  never target dead metadata), unless ``require_all_sites_used`` is
  off — fixture scans cover a single file and would otherwise flag
  every site as unused.

Call sites are recognized syntactically: a call of an attribute named
``check`` on a module alias (``faults.check(...)``,
``_faults.check(...)``) or a bare name bound by ``from … faults
import check`` (aliases included, e.g. ``_fault_check``), with a
string-literal first argument.
"""

from __future__ import annotations

import ast
from pathlib import Path

from .findings import Finding

__all__ = ["check_fault_sites", "declared_sites"]

_FAULTS_MODULE_SUFFIX = "faults"


def declared_sites() -> dict[str, str]:
    """The live ``faults.SITES`` registry (site → description)."""
    from ..testing import faults

    return dict(faults.SITES)


def _call_sites(
    tree: ast.Module,
) -> list[tuple[str, int]]:
    """(site literal, line) for every fault-check call in ``tree``."""
    module_aliases: set[str] = set()
    function_aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[-1] == _FAULTS_MODULE_SUFFIX:
                    module_aliases.add(
                        alias.asname or alias.name.split(".")[0]
                    )
        elif isinstance(node, ast.ImportFrom) and node.module:
            tail = node.module.split(".")[-1]
            for alias in node.names:
                if alias.name == _FAULTS_MODULE_SUFFIX:
                    module_aliases.add(alias.asname or alias.name)
                elif tail == _FAULTS_MODULE_SUFFIX and (
                    alias.name == "check"
                ):
                    function_aliases.add(alias.asname or alias.name)

    out: list[tuple[str, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        func = node.func
        is_hook = (
            isinstance(func, ast.Attribute)
            and func.attr == "check"
            and isinstance(func.value, ast.Name)
            and func.value.id in module_aliases
        ) or (
            isinstance(func, ast.Name) and func.id in function_aliases
        )
        if not is_hook:
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(
            first.value, str
        ):
            out.append((first.value, node.lineno))
    return out


def check_fault_sites(
    paths: list[Path],
    *,
    root: Path | None = None,
    sites: dict[str, str] | None = None,
    require_all_sites_used: bool = True,
) -> list[Finding]:
    """Cross-reference fault-hook literals against the registry."""
    if sites is None:
        sites = declared_sites()
    findings: list[Finding] = []
    used: set[str] = set()
    registry_path = ""
    for path in paths:
        posix = path.as_posix()
        shown = (
            path.relative_to(root).as_posix()
            if root is not None and path.is_relative_to(root)
            else posix
        )
        if posix.endswith("testing/faults.py"):
            registry_path = shown
            continue  # the registry itself (docs mention every site)
        tree = ast.parse(
            path.read_text(encoding="utf-8"), filename=posix
        )
        for site, line in _call_sites(tree):
            used.add(site)
            if site not in sites:
                findings.append(
                    Finding(
                        "fault-sites",
                        "F001",
                        shown,
                        line,
                        f"fault hook names undeclared site {site!r} "
                        f"(declare it in faults.SITES)",
                    )
                )
    if require_all_sites_used:
        for site in sorted(sites):
            if site not in used:
                findings.append(
                    Finding(
                        "fault-sites",
                        "F002",
                        registry_path or "faults.SITES",
                        0,
                        f"declared fault site {site!r} has no call "
                        f"site — rules targeting it can never fire",
                    )
                )
    return findings
