"""UV-index baseline ([9]) for 2D circular uncertainty regions."""

from .circles import (
    CircleSet,
    circle_maxdist,
    circle_mindist,
    circumscribed_circle,
)
from .uvindex import UVIndex, UVIndexStats

__all__ = [
    "CircleSet",
    "circumscribed_circle",
    "circle_mindist",
    "circle_maxdist",
    "UVIndex",
    "UVIndexStats",
]
