"""Circular uncertainty regions and circle-based domination.

The UV-index baseline ([9], Cheng et al., ICDE 2010) assumes each
object's uncertainty is bounded by a 2D circle.  For a circle with
center ``c`` and radius ``r``:

* ``distmin(o, p) = max(0, |p - c| - r)``
* ``distmax(o, p) = |p - c| + r``

Circle ``a`` dominates circle ``b`` over a region ``R`` when every point
of ``R`` is certainly closer to ``a``:

``∀p ∈ R:  |p - c_a| + r_a < max(0, |p - c_b| - r_b)``.

The test used here is the conservative relaxation

``maxdist(c_a, R) + r_a < mindist(c_b, R) - r_b``

which can only under-report domination — exactly the safe direction for
candidate-set computation (candidate sets stay supersets; query answers
stay correct).  Tightness is recovered by the same adaptive partitioning
used for rectangles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry import Rect
from ..uncertain import UncertainDataset, UncertainObject

__all__ = [
    "circumscribed_circle",
    "CircleSet",
    "circle_mindist",
    "circle_maxdist",
]


def circumscribed_circle(obj: UncertainObject) -> tuple[np.ndarray, float]:
    """The smallest circle containing the object's uncertainty region.

    [9] assumes natively circular regions; applying the UV-index to the
    rectangle model requires enclosing each rectangle, which keeps the
    candidate semantics conservative (a superset of the rectangle-model
    answer).
    """
    center = obj.region.center
    radius = float(np.linalg.norm(obj.region.hi - center))
    return center, radius


def circle_mindist(
    center: np.ndarray, radius: float, point: np.ndarray
) -> float:
    """``distmin`` from a point to the circle-bounded region."""
    return max(
        0.0, float(np.linalg.norm(point - center)) - radius
    )


def circle_maxdist(
    center: np.ndarray, radius: float, point: np.ndarray
) -> float:
    """``distmax`` from a point to the circle-bounded region."""
    return float(np.linalg.norm(point - center)) + radius


@dataclass(frozen=True)
class CircleSet:
    """Packed circles: ids, ``(n, 2)`` centers, ``(n,)`` radii."""

    ids: np.ndarray
    centers: np.ndarray
    radii: np.ndarray

    def __len__(self) -> int:
        return len(self.ids)

    @classmethod
    def from_dataset(cls, dataset: UncertainDataset) -> "CircleSet":
        """Circumscribe every object of a 2D dataset."""
        if dataset.dims != 2:
            raise ValueError("the UV-index supports 2D data only")
        ids = []
        centers = []
        radii = []
        for obj in dataset:
            c, r = circumscribed_circle(obj)
            ids.append(obj.oid)
            centers.append(c)
            radii.append(r)
        return cls(
            ids=np.array(ids, dtype=np.int64),
            centers=np.array(centers),
            radii=np.array(radii),
        )

    def subset(self, mask: np.ndarray) -> "CircleSet":
        """Rows selected by a boolean mask or index array."""
        return CircleSet(
            ids=self.ids[mask],
            centers=self.centers[mask],
            radii=self.radii[mask],
        )

    def with_circle(
        self, oid: int, center: np.ndarray, radius: float
    ) -> "CircleSet":
        """A new set with one circle appended (incremental insert)."""
        if bool(np.any(self.ids == oid)):
            raise ValueError(f"duplicate circle id {oid}")
        return CircleSet(
            ids=np.append(self.ids, np.int64(oid)),
            centers=np.vstack([self.centers, np.asarray(center)[None, :]]),
            radii=np.append(self.radii, float(radius)),
        )

    def without(self, oid: int) -> "CircleSet":
        """A new set with the circle of ``oid`` removed (incremental
        delete)."""
        keep = self.ids != oid
        if bool(keep.all()):
            raise KeyError(f"no circle with id {oid}")
        return self.subset(keep)

    def row_of(self, oid: int) -> int:
        """Current row index of ``oid`` (positions shift on mutation)."""
        rows = np.flatnonzero(self.ids == oid)
        if len(rows) == 0:
            raise KeyError(f"no circle with id {oid}")
        return int(rows[0])

    # ------------------------------------------------------------------
    def mindist_to_rect(self, rect: Rect) -> np.ndarray:
        """Per-circle lower bound of distmin to any point of ``rect``."""
        gap = np.maximum(
            np.maximum(rect.lo - self.centers, self.centers - rect.hi), 0.0
        )
        center_min = np.sqrt(np.einsum("ij,ij->i", gap, gap))
        return np.maximum(center_min - self.radii, 0.0)

    def maxdist_to_rect(self, rect: Rect) -> np.ndarray:
        """Per-circle upper bound of distmax to any point of ``rect``."""
        far = np.maximum(
            np.abs(self.centers - rect.lo), np.abs(rect.hi - self.centers)
        )
        center_max = np.sqrt(np.einsum("ij,ij->i", far, far))
        return center_max + self.radii

    def mindist_to_point(self, point: np.ndarray) -> np.ndarray:
        """Per-circle distmin to a point."""
        d = np.linalg.norm(self.centers - point, axis=1)
        return np.maximum(d - self.radii, 0.0)

    def maxdist_to_point(self, point: np.ndarray) -> np.ndarray:
        """Per-circle distmax to a point."""
        d = np.linalg.norm(self.centers - point, axis=1)
        return d + self.radii

    def any_dominates(
        self,
        region: Rect,
        target_center: np.ndarray,
        target_radius: float,
        exclude_id: int | None = None,
    ) -> bool:
        """Does any circle dominate the target circle over ``region``?

        Uses the conservative relaxation described in the module
        docstring.
        """
        upper = self.maxdist_to_rect(region)  # maxdist of dominators
        gap = np.maximum(
            np.maximum(region.lo - target_center, target_center - region.hi),
            0.0,
        )
        target_min = max(
            0.0, float(np.sqrt(np.dot(gap, gap))) - target_radius
        )
        verdict = upper < target_min
        if exclude_id is not None:
            verdict &= self.ids != exclude_id
        return bool(np.any(verdict))
