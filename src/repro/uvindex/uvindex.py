"""The UV-index baseline (reference [9]) for 2D uncertain data.

The UV-index stores, for each object, an approximation of its *UV-cell*
(the circular-region special case of the PV-cell) in an adaptive grid;
a point query locates the grid leaf containing ``q`` and returns the
stored candidates.

[9]'s construction derives each UV-cell's boundary from intersections of
hyperbolic arcs — expensive, high-precision 2D computational geometry
that is the very thing the paper's SE algorithm avoids.  Reproducing
that code path verbatim is neither possible (no closed-source artifact)
nor useful; what matters to the comparison (Figures 9(e)/(h), 10(g)) is
that the UV-index:

* answers a point query by one grid descent + one leaf read, with
  query-time behaviour comparable to the PV-index on 2D data; and
* pays a much higher *per-object construction* cost, because every
  object's cell must be derived against a large candidate set at high
  resolution.

This implementation mirrors that profile faithfully within our
framework: every object's UV-cell bounding box is computed by
bisection refinement with circle-domination tests against the object's
``k_cand`` nearest candidates at a finer convergence threshold than the
PV-index's SE (emulating [9]'s high-precision boundary derivation), and
boxes are inserted into the same paged octree used by the PV-index.
DESIGN.md records this substitution.
"""

from __future__ import annotations

import time

import numpy as np

from ..geometry import Rect
from ..storage import OctreeConfig, PagedOctree, Pager
from ..uncertain import UncertainDataset
from .circles import CircleSet

__all__ = ["UVIndex"]


class UVIndex:
    """Adaptive-grid index over UV-cell bounding boxes (2D only).

    Parameters
    ----------
    dataset:
        A 2D uncertain dataset.
    k_cand:
        Candidate-set size used when deriving each UV-cell box ([9]
        prunes against a comparable neighbor set; default 200 to match
        the paper's FS default).
    delta:
        Convergence threshold of the boundary refinement; [9] resolves
        cell boundaries at high precision, hence the default is four
        times finer than the PV-index's Δ = 1.
    refine_steps:
        Partition budget per domination test during refinement.
    """

    def __init__(
        self,
        dataset: UncertainDataset,
        pager: Pager | None = None,
        k_cand: int = 200,
        delta: float = 0.25,
        refine_steps: int = 20,
        octree_config: OctreeConfig | None = None,
    ) -> None:
        if dataset.dims != 2:
            raise ValueError("the UV-index supports 2D data only")
        self.dataset = dataset
        self.pager = pager or Pager()
        self.k_cand = k_cand
        self.delta = delta
        self.refine_steps = refine_steps
        self.circles = CircleSet.from_dataset(dataset)
        self.build_seconds = 0.0
        self.primary = PagedOctree(
            domain=dataset.domain,
            pager=self.pager,
            config=octree_config or OctreeConfig(),
        )
        self._build()

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, dataset: UncertainDataset, **kwargs) -> "UVIndex":
        """Construct the index (API symmetric to :meth:`PVIndex.build`)."""
        return cls(dataset, **kwargs)

    def _build(self) -> None:
        t0 = time.perf_counter()
        order = {oid: i for i, oid in enumerate(self.circles.ids)}
        for obj in self.dataset:
            box = self._uv_cell_box(order[obj.oid])
            self.primary.insert(obj.oid, box, payload=obj.oid)
        self.build_seconds = time.perf_counter() - t0

    def _candidates_for(self, row: int) -> CircleSet:
        """The ``k_cand`` nearest circles (by center) excluding self."""
        center = self.circles.centers[row]
        d = np.linalg.norm(self.circles.centers - center, axis=1)
        d[row] = np.inf
        k = min(self.k_cand, len(d) - 1)
        nearest = np.argpartition(d, k - 1)[:k] if k > 0 else np.array([], int)
        return self.circles.subset(nearest)

    def _uv_cell_box(self, row: int) -> Rect:
        """Bisection-refined bounding box of the object's UV-cell.

        The same sandwich refinement as SE, with circle domination as
        the emptiness oracle: a slab provably outside the cell (every
        sub-partition dominated by some candidate) moves the upper
        bound inward, otherwise the lower bound moves outward.
        """
        cands = self._candidates_for(row)
        center = self.circles.centers[row]
        radius = self.circles.radii[row]
        domain = self.dataset.domain
        h_lo = domain.lo.copy()
        h_hi = domain.hi.copy()
        l_lo = center - radius
        l_hi = center + radius
        np.clip(l_lo, domain.lo, domain.hi, out=l_lo)
        np.clip(l_hi, domain.lo, domain.hi, out=l_hi)

        def slab_outside(slab: Rect) -> bool:
            return self._slab_dominated(slab, cands, center, radius)

        gap = max(float(np.max(l_lo - h_lo)), float(np.max(h_hi - l_hi)))
        while gap >= self.delta and gap > 0:
            for j in range(2):
                if l_lo[j] - h_lo[j] >= self.delta:
                    mid = (h_lo[j] + l_lo[j]) / 2.0
                    hi = h_hi.copy()
                    hi[j] = mid
                    if slab_outside(Rect(h_lo.copy(), hi)):
                        h_lo[j] = mid
                    else:
                        l_lo[j] = mid
                if h_hi[j] - l_hi[j] >= self.delta:
                    mid = (h_hi[j] + l_hi[j]) / 2.0
                    lo = h_lo.copy()
                    lo[j] = mid
                    if slab_outside(Rect(lo, h_hi.copy())):
                        h_hi[j] = mid
                    else:
                        l_hi[j] = mid
            gap = max(
                float(np.max(l_lo - h_lo)), float(np.max(h_hi - l_hi))
            )
        return Rect(h_lo, h_hi)

    def _slab_dominated(
        self,
        slab: Rect,
        cands: CircleSet,
        center: np.ndarray,
        radius: float,
    ) -> bool:
        """Adaptive-partition circle domination over the slab."""
        if len(cands) == 0:
            return False
        pending = [slab]
        budget = self.refine_steps
        while pending:
            part = pending.pop()
            if cands.any_dominates(part, center, radius):
                continue
            if budget <= 0 or part.max_side <= self.delta / 4:
                return False
            j = int(np.argmax(part.side_lengths))
            mid = (part.lo[j] + part.hi[j]) / 2.0
            low, high = part.split_at(j, mid)
            pending.extend((low, high))
            budget -= 1
        return True

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def candidates(self, query: np.ndarray) -> list[int]:
        """PNNQ Step-1 answer under the circular uncertainty model.

        Grid descent + one leaf read, then the exact circle min-max
        filter (mirroring the PV-index's leaf filter).
        """
        q = np.asarray(query, dtype=np.float64)
        entries = self.primary.point_query(q)
        if not entries:
            return []
        ids = np.array(sorted({oid for oid, _, __ in entries}), np.int64)
        row_of = {oid: i for i, oid in enumerate(self.circles.ids)}
        rows = np.array([row_of[oid] for oid in ids], dtype=np.int64)
        sub = self.circles.subset(rows)
        mins = sub.mindist_to_point(q)
        maxs = sub.maxdist_to_point(q)
        bound = maxs.min()
        return [int(oid) for oid, m in zip(ids, mins) if m <= bound]

    def __len__(self) -> int:
        return len(self.dataset)

    def __repr__(self) -> str:
        return f"UVIndex(objects={len(self)}, octree={self.primary!r})"
