"""The UV-index baseline (reference [9]) for 2D uncertain data.

The UV-index stores, for each object, an approximation of its *UV-cell*
(the circular-region special case of the PV-cell) in an adaptive grid;
a point query locates the grid leaf containing ``q`` and returns the
stored candidates.

[9]'s construction derives each UV-cell's boundary from intersections of
hyperbolic arcs — expensive, high-precision 2D computational geometry
that is the very thing the paper's SE algorithm avoids.  Reproducing
that code path verbatim is neither possible (no closed-source artifact)
nor useful; what matters to the comparison (Figures 9(e)/(h), 10(g)) is
that the UV-index:

* answers a point query by one grid descent + one leaf read, with
  query-time behaviour comparable to the PV-index on 2D data; and
* pays a much higher *per-object construction* cost, because every
  object's cell must be derived against a large candidate set at high
  resolution.

This implementation mirrors that profile faithfully within our
framework: every object's UV-cell bounding box is computed by
bisection refinement with circle-domination tests against the object's
``k_cand`` nearest candidates at a finer convergence threshold than the
PV-index's SE (emulating [9]'s high-precision boundary derivation), and
boxes are inserted into the same paged octree used by the PV-index.
DESIGN.md records this substitution.

**Incremental maintenance** (the Fig 10(h)/(i) update experiments):
each object's stored box is a deterministic function of its candidate
set — its ``k_cand`` nearest circles by center distance — so a mutation
only invalidates the cells whose candidate set actually changes:

* insert of ``o'``: only the objects whose ``k_cand``-th candidate
  distance (the stored *candidate radius*) is at least ``|c_o - c'|``
  can gain ``o'`` as a candidate;
* delete of ``o'``: exactly the objects whose stored candidate set
  contains ``o'``.

Those cells (plus, on insert, the new object's own cell) are re-derived
against the post-mutation circle set; everything else keeps its box,
which is provably identical to what a from-scratch rebuild would
produce.  The affected count is tracked in :class:`UVIndexStats` so
benchmarks and tests can assert the locality win over rebuilding.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from ..engine.cost import CostEstimate
from ..geometry import Rect
from ..storage import OctreeConfig, PagedOctree, Pager
from ..uncertain import (
    UncertainDataset,
    UncertainObject,
    check_index_in_sync,
)
from .circles import CircleSet, circumscribed_circle

__all__ = ["UVIndex", "UVIndexStats"]


@dataclass
class UVIndexStats:
    """Construction / maintenance cost counters of one UV-index.

    ``cells_recomputed`` counts every UV-cell derivation (the expensive
    refinement): a build contributes ``n``, an incremental update only
    the affected cells — the quantity Fig 10(h)/(i) compare.
    """

    build_seconds: float = 0.0
    update_seconds: float = 0.0
    cells_recomputed: int = 0
    update_affected: int = 0
    update_examined: int = 0
    inserts: int = 0
    deletes: int = 0

    def reset(self) -> None:
        self.build_seconds = 0.0
        self.update_seconds = 0.0
        self.cells_recomputed = 0
        self.update_affected = 0
        self.update_examined = 0
        self.inserts = 0
        self.deletes = 0


class UVIndex:
    """Adaptive-grid index over UV-cell bounding boxes (2D only).

    Parameters
    ----------
    dataset:
        A 2D uncertain dataset.
    k_cand:
        Candidate-set size used when deriving each UV-cell box ([9]
        prunes against a comparable neighbor set; default 200 to match
        the paper's FS default).
    delta:
        Convergence threshold of the boundary refinement; [9] resolves
        cell boundaries at high precision, hence the default is four
        times finer than the PV-index's Δ = 1.
    refine_steps:
        Partition budget per domination test during refinement.
    """

    def __init__(
        self,
        dataset: UncertainDataset,
        pager: Pager | None = None,
        k_cand: int = 200,
        delta: float = 0.25,
        refine_steps: int = 20,
        octree_config: OctreeConfig | None = None,
    ) -> None:
        if dataset.dims != 2:
            raise ValueError("the UV-index supports 2D data only")
        self.dataset = dataset
        self.pager = pager or Pager()
        self.k_cand = k_cand
        self.delta = delta
        self.refine_steps = refine_steps
        self.circles = CircleSet.from_dataset(dataset)
        self.stats = UVIndexStats()
        self.primary = PagedOctree(
            domain=dataset.domain,
            pager=self.pager,
            config=octree_config or OctreeConfig(),
        )
        #: Per-object derived state: the stored UV-cell box, the
        #: candidate ids the box was derived against, and the candidate
        #: radius (distance of the ``k_cand``-th nearest center; inf
        #: while the candidate set is not full).
        self._boxes: dict[int, Rect] = {}
        self._cands: dict[int, frozenset[int]] = {}
        self._cand_radius: dict[int, float] = {}
        self.dataset_epoch = dataset.epoch
        self._build()

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, dataset: UncertainDataset, **kwargs) -> "UVIndex":
        """Construct the index (API symmetric to :meth:`PVIndex.build`)."""
        return cls(dataset, **kwargs)

    @property
    def build_seconds(self) -> float:
        """Construction wall-clock (alias of ``stats.build_seconds``)."""
        return self.stats.build_seconds

    def _build(self) -> None:
        t0 = time.perf_counter()
        for row, oid in enumerate(self.circles.ids):
            box = self._derive_cell(int(oid), row)
            self.primary.insert(int(oid), box, payload=int(oid))
        self.dataset_epoch = self.dataset.epoch
        self.stats.build_seconds = time.perf_counter() - t0

    def _candidate_rows(
        self, row: int
    ) -> tuple[np.ndarray, float]:
        """``(rows, radius)`` of the ``k_cand`` nearest circles.

        ``radius`` is the candidate-set boundary: a new circle whose
        center lands strictly closer than it displaces a candidate (and
        therefore invalidates the stored cell); ``inf`` while fewer
        than ``k_cand`` candidates exist, since then any new circle
        joins the set.
        """
        center = self.circles.centers[row]
        d = np.linalg.norm(self.circles.centers - center, axis=1)
        d[row] = np.inf
        k = min(self.k_cand, len(d) - 1)
        if k <= 0:
            return np.array([], dtype=np.int64), float("inf")
        nearest = np.argpartition(d, k - 1)[:k]
        radius = (
            float(d[nearest].max()) if k == self.k_cand else float("inf")
        )
        return nearest, radius

    def _derive_cell(self, oid: int, row: int) -> Rect:
        """Re-derive one object's UV-cell box and bookkeeping state."""
        rows, radius = self._candidate_rows(row)
        cands = self.circles.subset(rows)
        box = self._uv_cell_box(row, cands)
        self._boxes[oid] = box
        self._cands[oid] = frozenset(int(i) for i in cands.ids)
        self._cand_radius[oid] = radius
        self.stats.cells_recomputed += 1
        return box

    def _uv_cell_box(self, row: int, cands: CircleSet) -> Rect:
        """Bisection-refined bounding box of the object's UV-cell.

        The same sandwich refinement as SE, with circle domination as
        the emptiness oracle: a slab provably outside the cell (every
        sub-partition dominated by some candidate) moves the upper
        bound inward, otherwise the lower bound moves outward.
        """
        center = self.circles.centers[row]
        radius = self.circles.radii[row]
        domain = self.dataset.domain
        h_lo = domain.lo.copy()
        h_hi = domain.hi.copy()
        l_lo = center - radius
        l_hi = center + radius
        np.clip(l_lo, domain.lo, domain.hi, out=l_lo)
        np.clip(l_hi, domain.lo, domain.hi, out=l_hi)

        def slab_outside(slab: Rect) -> bool:
            return self._slab_dominated(slab, cands, center, radius)

        gap = max(float(np.max(l_lo - h_lo)), float(np.max(h_hi - l_hi)))
        while gap >= self.delta and gap > 0:
            for j in range(2):
                if l_lo[j] - h_lo[j] >= self.delta:
                    mid = (h_lo[j] + l_lo[j]) / 2.0
                    hi = h_hi.copy()
                    hi[j] = mid
                    if slab_outside(Rect(h_lo.copy(), hi)):
                        h_lo[j] = mid
                    else:
                        l_lo[j] = mid
                if h_hi[j] - l_hi[j] >= self.delta:
                    mid = (h_hi[j] + l_hi[j]) / 2.0
                    lo = h_lo.copy()
                    lo[j] = mid
                    if slab_outside(Rect(lo, h_hi.copy())):
                        h_hi[j] = mid
                    else:
                        l_hi[j] = mid
            gap = max(
                float(np.max(l_lo - h_lo)), float(np.max(h_hi - l_hi))
            )
        return Rect(h_lo, h_hi)

    def _slab_dominated(
        self,
        slab: Rect,
        cands: CircleSet,
        center: np.ndarray,
        radius: float,
    ) -> bool:
        """Adaptive-partition circle domination over the slab."""
        if len(cands) == 0:
            return False
        pending = [slab]
        budget = self.refine_steps
        while pending:
            part = pending.pop()
            if cands.any_dominates(part, center, radius):
                continue
            if budget <= 0 or part.max_side <= self.delta / 4:
                return False
            j = int(np.argmax(part.side_lengths))
            mid = (part.lo[j] + part.hi[j]) / 2.0
            low, high = part.split_at(j, mid)
            pending.extend((low, high))
            budget -= 1
        return True

    # ------------------------------------------------------------------
    # Incremental maintenance (Fig 10(h)/(i) update experiments)
    # ------------------------------------------------------------------
    def insert(self, obj: UncertainObject) -> None:
        """Add ``obj``; re-derive only the cells its circle invalidates.

        The dataset is mutated in place (bumping its epoch), the new
        object's own cell is derived, and every object whose candidate
        set gains the new circle — those with ``|c_o - c'|`` inside
        their stored candidate radius — is re-derived against the
        post-insertion circle set.  All other boxes are unchanged by
        construction, so the result matches a from-scratch rebuild.
        """
        self._check_in_sync()
        t0 = time.perf_counter()
        self.dataset.insert(obj)
        center, radius = circumscribed_circle(obj)

        # Affected set, decided against the pre-insertion circles: the
        # new circle can enter o's candidates only if it is at most as
        # close as o's current k-th candidate.  Ties (``==``) refresh
        # too, so tie-breaking runs through the same argpartition path
        # a from-scratch rebuild uses.
        dists = np.linalg.norm(self.circles.centers - center, axis=1)
        affected = [
            int(oid)
            for oid, d in zip(self.circles.ids, dists)
            if d <= self._cand_radius[int(oid)]
        ]
        self.stats.update_examined += len(self.circles)

        self.circles = self.circles.with_circle(obj.oid, center, radius)
        box = self._derive_cell(obj.oid, len(self.circles) - 1)
        self.primary.insert(obj.oid, box, payload=obj.oid)
        for oid in affected:
            self._refresh_cell(oid)

        self.stats.update_affected += len(affected)
        self.stats.inserts += 1
        self.dataset_epoch = self.dataset.epoch
        self.stats.update_seconds += time.perf_counter() - t0

    def delete(self, oid: int) -> UncertainObject:
        """Remove object ``oid``; re-derive only the cells that used it.

        Exactly the objects whose stored candidate set contains the
        deleted circle can change (losing a candidate admits the next
        nearest in its place); everything else keeps its box.
        """
        self._check_in_sync()
        t0 = time.perf_counter()
        removed = self.dataset.delete(oid)
        old_box = self._boxes.pop(oid)
        del self._cands[oid]
        del self._cand_radius[oid]

        affected = [
            other
            for other, cands in self._cands.items()
            if oid in cands
        ]
        self.stats.update_examined += len(self._cands)

        self.circles = self.circles.without(oid)
        for leaf in self.primary.range_query_leaves(old_box):
            leaf.remove_key(oid)
        for other in affected:
            self._refresh_cell(other)

        self.stats.update_affected += len(affected)
        self.stats.deletes += 1
        self.dataset_epoch = self.dataset.epoch
        self.stats.update_seconds += time.perf_counter() - t0
        return removed

    def _check_in_sync(self) -> None:
        check_index_in_sync(self.dataset_epoch, self.dataset, "UV-index")

    def _refresh_cell(self, oid: int) -> Rect:
        """Re-derive one affected cell and swap its primary entries."""
        old = self._boxes[oid]
        new = self._derive_cell(oid, self.circles.row_of(oid))
        for leaf in self.primary.range_query_leaves(old):
            leaf.remove_key(oid)
        self.primary.insert(oid, new, payload=oid)
        return new

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def cost_estimate(self) -> CostEstimate:
        """Per-query Step-1 cost from the grid's own shape.

        Query-time behaviour mirrors the PV-index (one descent + one
        leaf read + circle filter), except :meth:`candidates` also
        rebuilds an id→row map over *all* circles per query — an O(n)
        Python dict comprehension that dominates for large databases
        and is what keeps the planner from picking the UV-index off its
        2D home turf even there.
        """
        n = max(1, len(self.dataset))
        leaves = max(1, self.primary.n_leaves)
        entries_per_leaf = self.primary.n_entries / leaves
        pages = max(
            1.0,
            math.ceil(
                entries_per_leaf
                * self.primary.entry_bytes
                / self.pager.page_size
            ),
        )
        depth = math.log(leaves, 4) if leaves > 1 else 1.0
        step1_us = (
            15.0 + 3.0 * depth + 0.05 * n + 1.3 * entries_per_leaf
        )
        candidates = max(1.0, entries_per_leaf / 3.0)
        return CostEstimate(
            step1_us=step1_us,
            page_reads=pages,
            candidates=candidates,
            source="index",
        )

    def candidates(self, query: np.ndarray) -> list[int]:
        """PNNQ Step-1 answer under the circular uncertainty model.

        Grid descent + one leaf read, then the exact circle min-max
        filter (mirroring the PV-index's leaf filter).
        """
        q = np.asarray(query, dtype=np.float64)
        entries = self.primary.point_query(q)
        if not entries:
            return []
        ids = np.array(sorted({oid for oid, _, __ in entries}), np.int64)
        row_of = {oid: i for i, oid in enumerate(self.circles.ids)}
        rows = np.array([row_of[oid] for oid in ids], dtype=np.int64)
        sub = self.circles.subset(rows)
        mins = sub.mindist_to_point(q)
        maxs = sub.maxdist_to_point(q)
        bound = maxs.min()
        return [int(oid) for oid, m in zip(ids, mins) if m <= bound]

    def __len__(self) -> int:
        return len(self.dataset)

    def __repr__(self) -> str:
        return f"UVIndex(objects={len(self)}, octree={self.primary!r})"
