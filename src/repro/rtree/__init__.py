"""R*-tree substrate and the R-tree PNNQ Step-1 baseline."""

from .node import Entry, Node
from .pnnq import RTreePNNQ, build_region_rtree
from .rstar import RStarTree

__all__ = [
    "Entry",
    "Node",
    "RStarTree",
    "RTreePNNQ",
    "build_region_rtree",
]
