"""R-tree baseline for PNNQ Step 1 (branch-and-prune).

Reference [8] (Cheng, Kalashnikov, Prabhakar, TKDE 2004) retrieves the
objects with non-zero qualification probability by a branch-and-prune
traversal of an R-tree over uncertainty regions:

1. Best-first traversal by mindist maintains a running bound
   ``best_maxdist`` — the smallest ``distmax(o, q)`` seen so far; any
   subtree/object with ``mindist > best_maxdist`` can never reach the
   query before some other object certainly does, and is pruned.
2. A second pass over the collected candidates discards those whose
   mindist exceeds the final bound.

The result is exactly the set ``{o : mindist(o, q) <= min_o'
maxdist(o', q)}`` — the same candidate set the PV-index produces after
its leaf-level filter, so Step 2 is identical for both and the
comparison isolates Step-1 cost (the paper's stated goal).
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from ..engine.cost import CostEstimate
from ..geometry import (
    maxdist_sq_point_rect,
    mindist_sq_point_rect,
)
from ..uncertain import UncertainDataset
from .node import Entry
from .rstar import RStarTree

__all__ = ["RTreePNNQ", "build_region_rtree"]


def build_region_rtree(
    dataset: UncertainDataset,
    max_entries: int = 100,
    pager=None,
) -> RStarTree:
    """Index all uncertainty regions of a dataset in an R*-tree."""
    tree = RStarTree(
        dims=dataset.dims, max_entries=max_entries, pager=pager
    )
    for obj in dataset:
        tree.insert(obj.oid, obj.region)
    return tree


class RTreePNNQ:
    """Branch-and-prune Step-1 evaluator over an R*-tree.

    Parameters
    ----------
    tree:
        An R*-tree indexing uncertainty regions keyed by object id.
    """

    def __init__(self, tree: RStarTree) -> None:
        self.tree = tree

    @classmethod
    def build(
        cls, dataset: UncertainDataset, max_entries: int = 100, pager=None
    ) -> "RTreePNNQ":
        """Construct the baseline index for ``dataset``.

        The built index snapshots the dataset's mutation epoch: the
        R-tree has no incremental maintenance, so engines treat it as
        stale (and fall back to brute force) once the dataset mutates.
        """
        index = cls(build_region_rtree(dataset, max_entries, pager))
        index.dataset_epoch = getattr(dataset, "epoch", 0)
        return index

    def cost_estimate(self) -> CostEstimate:
        """Per-query Step-1 cost from the tree's own shape.

        Branch-and-prune visits the root-to-leaf path plus a few extra
        leaves near the query, paying Python-level heap work per entry
        visited (~2 µs each here — the R-tree's handicap against the
        PV-index's single leaf filter); page traffic is the visited
        leaves times the pages one leaf occupies.
        """
        tree = self.tree
        n = max(1, len(tree))
        dims = tree.dims
        fanout = max(2, tree.max_entries // 2)  # typical fill ~50%
        height = max(1, tree.height)
        leaves_read = 2.0  # best-first reads the target leaf + spill
        entries_visited = height * fanout + leaves_read * fanout
        step1_us = 18.0 + 2.0 * entries_visited * max(1.0, dims / 2.0)
        pages = leaves_read * max(1, tree._leaf_pages())
        candidates = max(1.0, min(n, fanout / 3.0))
        return CostEstimate(
            step1_us=step1_us,
            page_reads=pages,
            candidates=candidates,
            source="index",
        )

    def candidates(self, query: np.ndarray) -> list[int]:
        """Object ids with non-zero probability of being the NN of ``query``.

        Implements the branch-and-prune traversal described above;
        returns ids in no particular order.
        """
        q = np.asarray(query, dtype=np.float64)
        root = self.tree._root
        if root.mbr is None:
            return []
        counter = itertools.count()
        heap: list[tuple[float, int, object]] = [
            (mindist_sq_point_rect(q, root.mbr), next(counter), root)
        ]
        best_max_sq = float("inf")
        collected: list[tuple[float, Entry]] = []
        while heap:
            dist_sq, _, item = heapq.heappop(heap)
            if dist_sq > best_max_sq:
                break  # everything remaining is at least this far
            if isinstance(item, Entry):
                collected.append((dist_sq, item))
                best_max_sq = min(
                    best_max_sq, maxdist_sq_point_rect(q, item.rect)
                )
                continue
            node = item
            if node.is_leaf:
                self.tree.charge_leaf_read(node)
                for entry in node.children:
                    e_min = mindist_sq_point_rect(q, entry.rect)
                    if e_min <= best_max_sq:
                        heapq.heappush(
                            heap, (e_min, next(counter), entry)
                        )
                        best_max_sq = min(
                            best_max_sq,
                            maxdist_sq_point_rect(q, entry.rect),
                        )
            else:
                for child in node.children:
                    c_min = mindist_sq_point_rect(q, child.mbr)
                    if c_min <= best_max_sq:
                        heapq.heappush(
                            heap, (c_min, next(counter), child)
                        )
        return [
            entry.key
            for dist_sq, entry in collected
            if dist_sq <= best_max_sq
        ]
