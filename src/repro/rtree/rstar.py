"""An R*-tree (Beckmann et al., SIGMOD 1990), implemented from scratch.

The paper uses an R*-tree with fanout 100 both as the PNNQ Step-1
baseline and as the NN-search backbone of the FS / IS C-set strategies
(Section V-A).  This implementation provides:

* insertion with *ChooseSubtree* (least overlap enlargement at the leaf
  level, least area enlargement above), *forced reinsertion* (30% of the
  farthest-from-center children, once per level per insert), and the
  R*-topological split (choose split axis by minimum margin sum, choose
  distribution by minimum overlap then minimum area);
* deletion with condense-and-reinsert;
* rectangle range queries, point-containment queries;
* best-first incremental nearest-neighbor browsing (Hjaltason & Samet,
  TODS 1999 — reference [39], used by the IS strategy).

Leaf nodes are backed by pages of the shared simulated pager; queries
charge one read per distinct visited leaf page (inner nodes are assumed
memory-resident, as the paper assumes for all three indexes).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterator

import numpy as np

from ..geometry import (
    Rect,
    mindist_sq_point_rect,
)
from ..storage import Pager
from .node import Entry, Node

__all__ = ["RStarTree"]

REINSERT_FRACTION = 0.3
"""Share of children force-reinserted on first overflow (R* default p=30%)."""


class RStarTree:
    """An in-memory R*-tree with paged leaves.

    Parameters
    ----------
    dims:
        Dimensionality of the indexed rectangles.
    max_entries:
        Node capacity ``M`` (the paper uses fanout 100).
    min_entries:
        Minimum fill ``m``; defaults to ``max(2, M * 0.4)`` (R* default).
    pager:
        Optional shared simulated disk.  When provided, each leaf node
        occupies ``ceil(M * entry_bytes / page_size)`` pages and queries
        charge reads for every visited leaf.
    entry_bytes:
        Declared size of one leaf entry (id + rectangle by default).
    """

    def __init__(
        self,
        dims: int,
        max_entries: int = 100,
        min_entries: int | None = None,
        pager: Pager | None = None,
        entry_bytes: int | None = None,
    ) -> None:
        if dims < 1:
            raise ValueError("dims must be >= 1")
        if max_entries < 4:
            raise ValueError("max_entries must be >= 4")
        self.dims = dims
        self.max_entries = max_entries
        self.min_entries = (
            min_entries
            if min_entries is not None
            else max(2, int(round(0.4 * max_entries)))
        )
        if not 2 <= self.min_entries <= max_entries // 2:
            raise ValueError(
                f"min_entries={self.min_entries} must be in "
                f"[2, {max_entries // 2}]"
            )
        self.pager = pager
        self.entry_bytes = (
            entry_bytes if entry_bytes is not None else 8 + 16 * dims
        )
        self._root = Node(level=0)
        self._register_leaf(self._root)
        self._size = 0
        self._height = 1

    # ------------------------------------------------------------------
    # Public metadata
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (1 for a single leaf root)."""
        return self._height

    @property
    def root_mbr(self) -> Rect | None:
        """Bounding rectangle of the whole tree (None when empty)."""
        return self._root.mbr

    # ------------------------------------------------------------------
    # Pager integration
    # ------------------------------------------------------------------
    def _leaf_pages(self) -> int:
        return max(
            1,
            -(-self.max_entries * self.entry_bytes // self.pager.page_size)
            if self.pager
            else 1,
        )

    def _register_leaf(self, node: Node) -> None:
        if self.pager is not None and node.page_id is None:
            node.page_id = self.pager.allocate()

    def charge_leaf_read(self, node: Node) -> None:
        """Charge the reads for visiting one leaf node."""
        if self.pager is not None:
            self.pager.stats.reads += self._leaf_pages()

    def _charge_leaf_write(self, node: Node) -> None:
        if self.pager is not None:
            self.pager.stats.writes += 1

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, key: int, rect: Rect, payload: Any = None) -> None:
        """Insert an entry."""
        if rect.dims != self.dims:
            raise ValueError("rect dimensionality mismatch")
        self._insert(Entry(key, rect, payload), level=0, first_pass=True)
        self._size += 1

    def _insert(self, item: Any, level: int, first_pass: bool) -> None:
        node = self._choose_subtree(item, level)
        node.add(item)
        if node.is_leaf:
            self._charge_leaf_write(node)
        self._overflow_chain(node, {level: not first_pass})

    def _overflow_chain(
        self, node: Node | None, reinserted: dict[int, bool]
    ) -> None:
        """Walk up the tree fixing overflows; adjust MBRs on the way."""
        while node is not None:
            if len(node.children) > self.max_entries:
                self._overflow_treatment(node, reinserted)
            else:
                node.recompute_mbr()
            node = node.parent

    def _choose_subtree(self, item: Any, level: int) -> Node:
        """Descend to the node at ``level`` best suited for ``item``."""
        rect = item.rect if isinstance(item, Entry) else item.mbr
        node = self._root
        while node.level > level:
            children: list[Node] = node.children
            if node.level == level + 1 and node.level == 1:
                # Children are leaves: minimize overlap enlargement.
                best = min(
                    children,
                    key=lambda c: (
                        self._overlap_enlargement(children, c, rect),
                        self._area_enlargement(c.mbr, rect),
                        c.mbr.volume,
                    ),
                )
            else:
                best = min(
                    children,
                    key=lambda c: (
                        self._area_enlargement(c.mbr, rect),
                        c.mbr.volume,
                    ),
                )
            node = best
        return node

    @staticmethod
    def _area_enlargement(mbr: Rect, rect: Rect) -> float:
        return mbr.union(rect).volume - mbr.volume

    @staticmethod
    def _overlap(a: Rect, b: Rect) -> float:
        inter = a.intersection(b)
        return 0.0 if inter is None else inter.volume

    def _overlap_enlargement(
        self, siblings: list[Node], candidate: Node, rect: Rect
    ) -> float:
        grown = candidate.mbr.union(rect)
        before = after = 0.0
        for sib in siblings:
            if sib is candidate:
                continue
            before += self._overlap(candidate.mbr, sib.mbr)
            after += self._overlap(grown, sib.mbr)
        return after - before

    # ------------------------------------------------------------------
    # Overflow: forced reinsert, then split
    # ------------------------------------------------------------------
    def _overflow_treatment(
        self, node: Node, reinserted: dict[int, bool]
    ) -> None:
        if node is not self._root and not reinserted.get(node.level, False):
            reinserted[node.level] = True
            self._forced_reinsert(node, reinserted)
        else:
            self._split_node(node, reinserted)

    def _forced_reinsert(
        self, node: Node, reinserted: dict[int, bool]
    ) -> None:
        """Evict the p% children farthest from the node center."""
        node.recompute_mbr()
        center = node.mbr.center
        dist = [
            float(
                np.sum((node.child_rect(c).center - center) ** 2)
            )
            for c in node.children
        ]
        order = np.argsort(dist)  # close first; evict the tail
        n_evict = max(1, int(round(REINSERT_FRACTION * len(node.children))))
        keep_idx = set(order[: len(node.children) - n_evict].tolist())
        evicted = [
            c for i, c in enumerate(node.children) if i not in keep_idx
        ]
        node.children = [
            c for i, c in enumerate(node.children) if i in keep_idx
        ]
        node.recompute_mbr()
        ancestor = node.parent
        while ancestor is not None:
            ancestor.recompute_mbr()
            ancestor = ancestor.parent
        for item in evicted:  # close-reinsert order
            target = self._choose_subtree(item, node.level)
            target.add(item)
            if target.is_leaf:
                self._charge_leaf_write(target)
            self._overflow_chain(target, reinserted)

    def _split_node(self, node: Node, reinserted: dict[int, bool]) -> None:
        """R*-topological split into two nodes."""
        children = node.children
        rects = [node.child_rect(c) for c in children]
        m = self.min_entries
        k_range = range(m, len(children) - m + 1)

        # 1. Choose split axis: minimum total margin over distributions.
        best_axis, best_margin = 0, float("inf")
        sorted_per_axis: list[list[int]] = []
        for axis in range(self.dims):
            by_lo = sorted(
                range(len(children)), key=lambda i, axis=axis: rects[i].lo[axis]
            )
            by_hi = sorted(
                range(len(children)), key=lambda i, axis=axis: rects[i].hi[axis]
            )
            margin = 0.0
            for order in (by_lo, by_hi):
                for k in k_range:
                    left = Rect.bounding([rects[i] for i in order[:k]])
                    right = Rect.bounding([rects[i] for i in order[k:]])
                    margin += left.margin() + right.margin()
            if margin < best_margin:
                best_margin = margin
                best_axis = axis
                sorted_per_axis = [by_lo, by_hi]

        # 2. Choose distribution on that axis: min overlap, then min area.
        best = None
        for order in sorted_per_axis:
            for k in k_range:
                left = Rect.bounding([rects[i] for i in order[:k]])
                right = Rect.bounding([rects[i] for i in order[k:]])
                overlap = self._overlap(left, right)
                area = left.volume + right.volume
                cand = (overlap, area, order, k)
                if best is None or cand[:2] < best[:2]:
                    best = cand
        assert best is not None
        _, __, order, k = best

        sibling = Node(level=node.level)
        left_children = [children[i] for i in order[:k]]
        right_children = [children[i] for i in order[k:]]
        node.children = []
        node.mbr = None
        for c in left_children:
            node.add(c)
        for c in right_children:
            sibling.add(c)
        if node.is_leaf:
            self._register_leaf(sibling)
            self._charge_leaf_write(node)
            self._charge_leaf_write(sibling)

        if node is self._root:
            new_root = Node(level=node.level + 1)
            new_root.add(node)
            new_root.add(sibling)
            self._root = new_root
            self._height += 1
        else:
            parent = node.parent
            assert parent is not None
            parent.add(sibling)
            parent.recompute_mbr()
            if len(parent.children) > self.max_entries:
                self._overflow_treatment(parent, reinserted)

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------
    def delete(self, key: int, rect: Rect) -> bool:
        """Remove one entry with the given key whose rect intersects.

        Returns True when an entry was removed.
        """
        found = self._find_leaf(self._root, key, rect)
        if found is None:
            return False
        leaf, idx = found
        leaf.children.pop(idx)
        self._charge_leaf_write(leaf)
        self._size -= 1
        self._condense(leaf)
        return True

    def _find_leaf(
        self, node: Node, key: int, rect: Rect
    ) -> tuple[Node, int] | None:
        if node.mbr is None or not node.mbr.intersects(rect):
            return None
        if node.is_leaf:
            for i, entry in enumerate(node.children):
                if entry.key == key:
                    return node, i
            return None
        for child in node.children:
            hit = self._find_leaf(child, key, rect)
            if hit is not None:
                return hit
        return None

    def _condense(self, node: Node) -> None:
        """Remove underfull nodes bottom-up and reinsert orphans."""
        orphans: list[tuple[Any, int]] = []
        while node is not self._root:
            parent = node.parent
            assert parent is not None
            if len(node.children) < self.min_entries:
                parent.children.remove(node)
                orphans.extend((c, node.level) for c in node.children)
            else:
                node.recompute_mbr()
            node = parent
        self._root.recompute_mbr()
        for item, level in orphans:
            if isinstance(item, Entry):
                self._insert(item, level=0, first_pass=False)
            else:
                self._insert(item, level=item.level + 1, first_pass=False)
        # Shrink the root when it lost all but one child.
        while (
            not self._root.is_leaf and len(self._root.children) == 1
        ):
            self._root = self._root.children[0]
            self._root.parent = None
            self._height -= 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_query(self, rect: Rect) -> list[Entry]:
        """All entries whose rectangles intersect ``rect``."""
        out: list[Entry] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.mbr is None or not node.mbr.intersects(rect):
                continue
            if node.is_leaf:
                self.charge_leaf_read(node)
                out.extend(
                    e for e in node.children if e.rect.intersects(rect)
                )
            else:
                stack.extend(node.children)
        return out

    def point_query(self, point: np.ndarray) -> list[Entry]:
        """All entries whose rectangles contain ``point``."""
        p = np.asarray(point, dtype=np.float64)
        out: list[Entry] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.mbr is None or not node.mbr.contains_point(p):
                continue
            if node.is_leaf:
                self.charge_leaf_read(node)
                out.extend(
                    e for e in node.children if e.rect.contains_point(p)
                )
            else:
                stack.extend(node.children)
        return out

    def iter_entries(self) -> Iterator[Entry]:
        """All entries (no I/O charged; testing/maintenance helper)."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.children
            else:
                stack.extend(node.children)

    # ------------------------------------------------------------------
    # Nearest-neighbor browsing (Hjaltason & Samet)
    # ------------------------------------------------------------------
    def nearest_iter(
        self,
        point: np.ndarray,
        skip: Callable[[Entry], bool] | None = None,
    ) -> Iterator[tuple[float, Entry]]:
        """Entries in ascending order of mindist to ``point``.

        The incremental 'distance browsing' algorithm: a priority queue
        mixes nodes and entries keyed by squared mindist; an entry popped
        before every node with smaller mindist is guaranteed to be the
        next nearest.  Yields ``(mindist, entry)`` pairs lazily — exactly
        what IS consumes ("examines the nearest neighbor of o one at a
        time", Section V-A).

        Parameters
        ----------
        point:
            Query point.
        skip:
            Optional predicate; matching entries are silently skipped
            (used to exclude the query object itself).
        """
        p = np.asarray(point, dtype=np.float64)
        counter = itertools.count()
        heap: list[tuple[float, int, bool, Any]] = []
        if self._root.mbr is not None:
            heapq.heappush(
                heap,
                (
                    mindist_sq_point_rect(p, self._root.mbr),
                    next(counter),
                    False,
                    self._root,
                ),
            )
        while heap:
            dist_sq, _, is_entry, item = heapq.heappop(heap)
            if is_entry:
                yield float(np.sqrt(dist_sq)), item
                continue
            node: Node = item
            if node.is_leaf:
                self.charge_leaf_read(node)
                for entry in node.children:
                    if skip is not None and skip(entry):
                        continue
                    heapq.heappush(
                        heap,
                        (
                            mindist_sq_point_rect(p, entry.rect),
                            next(counter),
                            True,
                            entry,
                        ),
                    )
            else:
                for child in node.children:
                    heapq.heappush(
                        heap,
                        (
                            mindist_sq_point_rect(p, child.mbr),
                            next(counter),
                            False,
                            child,
                        ),
                    )

    def knn(
        self,
        point: np.ndarray,
        k: int,
        skip: Callable[[Entry], bool] | None = None,
    ) -> list[tuple[float, Entry]]:
        """The ``k`` nearest entries by mindist (ties arbitrary)."""
        if k < 1:
            raise ValueError("k must be >= 1")
        return list(itertools.islice(self.nearest_iter(point, skip), k))

    # ------------------------------------------------------------------
    # Structural invariants (for tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise AssertionError when any R-tree invariant is violated."""
        def recurse(node: Node, is_root: bool) -> int:
            assert len(node.children) <= self.max_entries, "overfull node"
            if not is_root:
                assert (
                    len(node.children) >= self.min_entries
                ), "underfull node"
            if node.mbr is not None:
                for c in node.children:
                    assert node.mbr.contains_rect(
                        node.child_rect(c)
                    ), "MBR does not cover child"
            if node.is_leaf:
                return 1
            depths = set()
            for c in node.children:
                assert c.parent is node, "broken parent pointer"
                assert c.level == node.level - 1, "broken level"
                depths.add(recurse(c, False))
            assert len(depths) == 1, "leaves at different depths"
            return depths.pop() + 1
        n = sum(1 for _ in self.iter_entries())
        assert n == self._size, f"size mismatch: {n} vs {self._size}"
        if self._size:
            recurse(self._root, True)

    def __repr__(self) -> str:
        return (
            f"RStarTree(dims={self.dims}, size={self._size}, "
            f"height={self._height}, M={self.max_entries})"
        )
