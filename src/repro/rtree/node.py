"""R*-tree node structure.

Nodes hold either child nodes (inner level) or ``(key, rect)`` data
entries (leaf level).  Leaf payloads are stored through the shared
simulated pager so that query I/O of the R-tree baseline is measured in
the same units as the PV-index (see DESIGN.md).
"""

from __future__ import annotations

from typing import Any

from ..geometry import Rect

__all__ = ["Entry", "Node"]


class Entry:
    """One data entry: a key, its bounding rectangle, optional payload."""

    __slots__ = ("key", "rect", "payload")

    def __init__(self, key: int, rect: Rect, payload: Any = None) -> None:
        self.key = key
        self.rect = rect
        self.payload = payload

    def __repr__(self) -> str:
        return f"Entry(key={self.key}, rect={self.rect!r})"


class Node:
    """An R*-tree node.

    ``level`` is 0 at the leaf level and grows toward the root; leaves
    store :class:`Entry` objects in ``children``, inner nodes store
    :class:`Node` objects.
    """

    __slots__ = ("level", "children", "mbr", "parent", "page_id")

    def __init__(self, level: int) -> None:
        self.level = level
        self.children: list[Any] = []
        self.mbr: Rect | None = None
        self.parent: "Node | None" = None
        self.page_id: int | None = None

    @property
    def is_leaf(self) -> bool:
        """True at the data level."""
        return self.level == 0

    def child_rect(self, child: Any) -> Rect:
        """The bounding rectangle of a child (entry or node)."""
        if isinstance(child, Node):
            assert child.mbr is not None
            return child.mbr
        return child.rect

    def recompute_mbr(self) -> None:
        """Tighten this node's MBR to its children."""
        if not self.children:
            self.mbr = None
            return
        self.mbr = Rect.bounding(
            [self.child_rect(c) for c in self.children]
        )

    def add(self, child: Any) -> None:
        """Attach a child and grow the MBR."""
        self.children.append(child)
        if isinstance(child, Node):
            child.parent = self
        rect = self.child_rect(child)
        self.mbr = rect.copy() if self.mbr is None else self.mbr.union(rect)

    def __repr__(self) -> str:
        return (
            f"Node(level={self.level}, fanout={len(self.children)}, "
            f"mbr={self.mbr!r})"
        )
