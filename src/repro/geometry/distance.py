"""Minimum / maximum Euclidean distances between points and rectangles.

The paper's machinery is built entirely on two distance functions
(Section III-A):

* ``distmin(o, p)`` — the smallest possible distance between a point ``p``
  and any point of the uncertainty region ``u(o)``;
* ``distmax(o, p)`` — the largest such distance.

Both decompose per dimension for axis-parallel rectangles, which is what
makes the exact domination test of :mod:`repro.geometry.domination`
possible.  This module provides scalar versions, batched (vectorized)
versions over many rectangles or many points, and the rectangle-rectangle
min/max distances the R-tree and the domination test need.
"""

from __future__ import annotations

import numpy as np

from .rect import Rect

__all__ = [
    "mindist_sq_point_rect",
    "maxdist_sq_point_rect",
    "mindist_point_rect",
    "maxdist_point_rect",
    "mindist_sq_points_rect",
    "maxdist_sq_points_rect",
    "mindist_sq_point_rects",
    "maxdist_sq_point_rects",
    "mindist_rect_rect",
    "maxdist_rect_rect",
    "mindist_sq_rect_rect",
    "maxdist_sq_rect_rect",
]


# ----------------------------------------------------------------------
# Scalar point <-> rect
# ----------------------------------------------------------------------
def mindist_sq_point_rect(point: np.ndarray, rect: Rect) -> float:
    """Squared minimum distance from ``point`` to ``rect``.

    Zero when the point lies inside the rectangle.
    """
    p = np.asarray(point, dtype=np.float64)
    gap = np.maximum(np.maximum(rect.lo - p, p - rect.hi), 0.0)
    return float(np.dot(gap, gap))


def maxdist_sq_point_rect(point: np.ndarray, rect: Rect) -> float:
    """Squared maximum distance from ``point`` to ``rect``.

    Attained at the rectangle corner farthest from the point; computed
    per dimension without enumerating corners.
    """
    p = np.asarray(point, dtype=np.float64)
    far = np.maximum(np.abs(p - rect.lo), np.abs(rect.hi - p))
    return float(np.dot(far, far))


def mindist_point_rect(point: np.ndarray, rect: Rect) -> float:
    """``distmin(rect, point)`` from Section III-A."""
    return float(np.sqrt(mindist_sq_point_rect(point, rect)))


def maxdist_point_rect(point: np.ndarray, rect: Rect) -> float:
    """``distmax(rect, point)`` from Section III-A."""
    return float(np.sqrt(maxdist_sq_point_rect(point, rect)))


# ----------------------------------------------------------------------
# Batched: many points against one rect
# ----------------------------------------------------------------------
def mindist_sq_points_rect(points: np.ndarray, rect: Rect) -> np.ndarray:
    """Squared min distances from an ``(n, d)`` point array to one rect."""
    pts = np.asarray(points, dtype=np.float64)
    gap = np.maximum(np.maximum(rect.lo - pts, pts - rect.hi), 0.0)
    return np.einsum("ij,ij->i", gap, gap)


def maxdist_sq_points_rect(points: np.ndarray, rect: Rect) -> np.ndarray:
    """Squared max distances from an ``(n, d)`` point array to one rect."""
    pts = np.asarray(points, dtype=np.float64)
    far = np.maximum(np.abs(pts - rect.lo), np.abs(rect.hi - pts))
    return np.einsum("ij,ij->i", far, far)


# ----------------------------------------------------------------------
# Batched: one point against many rects (as (n, d) lo / hi arrays)
# ----------------------------------------------------------------------
def mindist_sq_point_rects(
    point: np.ndarray, los: np.ndarray, his: np.ndarray
) -> np.ndarray:
    """Squared min distances from one point to ``n`` rectangles.

    ``los`` and ``his`` are ``(n, d)`` arrays of rectangle corners — the
    packed representation used throughout the hot paths (avoids creating
    ``n`` :class:`Rect` objects).
    """
    p = np.asarray(point, dtype=np.float64)
    gap = np.maximum(np.maximum(los - p, p - his), 0.0)
    return np.einsum("ij,ij->i", gap, gap)


def maxdist_sq_point_rects(
    point: np.ndarray, los: np.ndarray, his: np.ndarray
) -> np.ndarray:
    """Squared max distances from one point to ``n`` rectangles."""
    p = np.asarray(point, dtype=np.float64)
    far = np.maximum(np.abs(p - los), np.abs(his - p))
    return np.einsum("ij,ij->i", far, far)


# ----------------------------------------------------------------------
# Rect <-> rect
# ----------------------------------------------------------------------
def mindist_sq_rect_rect(a: Rect, b: Rect) -> float:
    """Squared distance between the closest pair of points of ``a``, ``b``.

    Zero iff the rectangles intersect.
    """
    gap = np.maximum(np.maximum(a.lo - b.hi, b.lo - a.hi), 0.0)
    return float(np.dot(gap, gap))


def maxdist_sq_rect_rect(a: Rect, b: Rect) -> float:
    """Squared distance between the farthest pair of points of ``a``, ``b``."""
    far = np.maximum(np.abs(a.hi - b.lo), np.abs(b.hi - a.lo))
    return float(np.dot(far, far))


def mindist_rect_rect(a: Rect, b: Rect) -> float:
    """Distance between the closest pair of points of ``a`` and ``b``."""
    return float(np.sqrt(mindist_sq_rect_rect(a, b)))


def maxdist_rect_rect(a: Rect, b: Rect) -> float:
    """Distance between the farthest pair of points of ``a`` and ``b``."""
    return float(np.sqrt(maxdist_sq_rect_rect(a, b)))
