"""Axis-parallel hyper-rectangles.

The :class:`Rect` is the workhorse geometric primitive of the whole library:
uncertainty regions ``u(o)``, UBRs ``B(o)``, SE's lower/upper bounds ``l(o)``
and ``h(o)``, octree node regions, and R-tree MBRs are all axis-parallel
rectangles in a ``d``-dimensional domain.

Rectangles are *closed*: a point on the boundary is contained.  Coordinates
are stored as two ``float64`` numpy arrays ``lo`` and ``hi`` with
``lo[j] <= hi[j]`` for every dimension ``j``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["Rect"]


class Rect:
    """A closed axis-parallel hyper-rectangle ``[lo[0], hi[0]] x ...``.

    Parameters
    ----------
    lo, hi:
        Array-likes of equal length giving the lower and upper corner.

    Raises
    ------
    ValueError
        If the corners have mismatched lengths, are empty, or if any
        ``lo[j] > hi[j]``.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Iterable[float], hi: Iterable[float]) -> None:
        lo_arr = np.asarray(lo, dtype=np.float64)
        hi_arr = np.asarray(hi, dtype=np.float64)
        if lo_arr.ndim != 1 or hi_arr.ndim != 1:
            raise ValueError("Rect corners must be 1-dimensional arrays")
        if lo_arr.shape != hi_arr.shape:
            raise ValueError(
                f"corner shapes differ: {lo_arr.shape} vs {hi_arr.shape}"
            )
        if lo_arr.size == 0:
            raise ValueError("Rect must have at least one dimension")
        if np.any(lo_arr > hi_arr):
            raise ValueError(f"lo must be <= hi, got lo={lo_arr}, hi={hi_arr}")
        self.lo = lo_arr
        self.hi = hi_arr

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_point(cls, point: Iterable[float]) -> "Rect":
        """A degenerate rectangle covering exactly one point."""
        arr = np.asarray(point, dtype=np.float64)
        return cls(arr, arr.copy())

    @classmethod
    def from_center(cls, center: Iterable[float], half_widths) -> "Rect":
        """Rectangle centered at ``center`` with the given half side lengths.

        ``half_widths`` may be a scalar (same extent in every dimension) or a
        per-dimension array-like.
        """
        c = np.asarray(center, dtype=np.float64)
        h = np.broadcast_to(
            np.asarray(half_widths, dtype=np.float64), c.shape
        )
        if np.any(h < 0):
            raise ValueError("half_widths must be non-negative")
        return cls(c - h, c + h)

    @classmethod
    def cube(cls, lo: float, hi: float, dims: int) -> "Rect":
        """The hyper-cube ``[lo, hi]^dims`` — typically the domain ``D``."""
        if dims < 1:
            raise ValueError("dims must be >= 1")
        return cls(np.full(dims, lo), np.full(dims, hi))

    @classmethod
    def bounding(cls, rects: Sequence["Rect"]) -> "Rect":
        """Minimum bounding rectangle of a non-empty sequence of rectangles."""
        if not rects:
            raise ValueError("cannot bound an empty sequence of rectangles")
        lo = np.min([r.lo for r in rects], axis=0)
        hi = np.max([r.hi for r in rects], axis=0)
        return cls(lo, hi)

    @classmethod
    def bounding_points(cls, points: np.ndarray) -> "Rect":
        """Minimum bounding rectangle of an ``(n, d)`` array of points."""
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, d) array")
        return cls(pts.min(axis=0), pts.max(axis=0))

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def dims(self) -> int:
        """Number of dimensions."""
        return self.lo.size

    @property
    def center(self) -> np.ndarray:
        """The geometric center (the *mean position* used by FS/IS)."""
        return (self.lo + self.hi) / 2.0

    @property
    def side_lengths(self) -> np.ndarray:
        """Per-dimension extents ``hi - lo``."""
        return self.hi - self.lo

    @property
    def max_side(self) -> float:
        """Length of the longest side."""
        return float(np.max(self.hi - self.lo))

    @property
    def volume(self) -> float:
        """Product of side lengths (zero for degenerate rectangles)."""
        return float(np.prod(self.hi - self.lo))

    def margin(self) -> float:
        """Sum of side lengths (the R*-tree 'margin' heuristic)."""
        return float(np.sum(self.hi - self.lo))

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains_point(self, point: Iterable[float]) -> bool:
        """True iff ``point`` lies inside this (closed) rectangle."""
        p = np.asarray(point, dtype=np.float64)
        return bool(np.all(self.lo <= p) and np.all(p <= self.hi))

    def contains_rect(self, other: "Rect") -> bool:
        """True iff ``other`` lies entirely inside this rectangle."""
        return bool(
            np.all(self.lo <= other.lo) and np.all(other.hi <= self.hi)
        )

    def intersects(self, other: "Rect") -> bool:
        """True iff this rectangle and ``other`` share at least one point."""
        return bool(
            np.all(self.lo <= other.hi) and np.all(other.lo <= self.hi)
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlap rectangle, or ``None`` when disjoint."""
        lo = np.maximum(self.lo, other.lo)
        hi = np.minimum(self.hi, other.hi)
        if np.any(lo > hi):
            return None
        return Rect(lo, hi)

    def union(self, other: "Rect") -> "Rect":
        """Minimum bounding rectangle of this rectangle and ``other``."""
        return Rect(
            np.minimum(self.lo, other.lo), np.maximum(self.hi, other.hi)
        )

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def clip_point(self, point: np.ndarray) -> np.ndarray:
        """The point of this rectangle closest to ``point``."""
        return np.clip(np.asarray(point, dtype=np.float64), self.lo, self.hi)

    def corners(self) -> np.ndarray:
        """All ``2^d`` corner points as a ``(2^d, d)`` array.

        Exponential in ``d`` — intended for tests and low-dimensional
        visualisation, never for the hot path (the paper's whole point is
        avoiding corner enumeration).
        """
        d = self.dims
        out = np.empty((1 << d, d))
        for j in range(d):
            mask = (np.arange(1 << d) >> j) & 1
            out[:, j] = np.where(mask, self.hi[j], self.lo[j])
        return out

    def split_at(self, dim: int, coord: float) -> tuple["Rect", "Rect"]:
        """Split into (low part, high part) at ``coord`` along ``dim``.

        ``coord`` must lie inside the rectangle's extent along ``dim``.
        """
        if not (self.lo[dim] <= coord <= self.hi[dim]):
            raise ValueError(
                f"split coordinate {coord} outside [{self.lo[dim]}, "
                f"{self.hi[dim]}] in dim {dim}"
            )
        lo_hi = self.hi.copy()
        lo_hi[dim] = coord
        hi_lo = self.lo.copy()
        hi_lo[dim] = coord
        return Rect(self.lo, lo_hi), Rect(hi_lo, self.hi)

    def quadrant(self, index: int) -> "Rect":
        """The ``index``-th of the ``2^d`` equal sub-rectangles.

        Bit ``j`` of ``index`` selects the high half along dimension ``j``.
        Used by the octree primary index, whose children split every
        dimension in half.
        """
        d = self.dims
        if not 0 <= index < (1 << d):
            raise ValueError(f"quadrant index {index} out of range for d={d}")
        mid = self.center
        lo = self.lo.copy()
        hi = self.hi.copy()
        for j in range(d):
            if (index >> j) & 1:
                lo[j] = mid[j]
            else:
                hi[j] = mid[j]
        return Rect(lo, hi)

    def quadrants(self) -> Iterator["Rect"]:
        """Iterate over all ``2^d`` equal sub-rectangles."""
        for index in range(1 << self.dims):
            yield self.quadrant(index)

    def sample_points(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """``n`` points uniformly distributed inside the rectangle."""
        if n < 0:
            raise ValueError("n must be non-negative")
        return rng.uniform(self.lo, self.hi, size=(n, self.dims))

    def expanded(self, amount: float) -> "Rect":
        """A copy grown by ``amount`` on every side (may be negative)."""
        grown_lo = self.lo - amount
        grown_hi = self.hi + amount
        if np.any(grown_lo > grown_hi):
            raise ValueError("expansion amount collapses the rectangle")
        return Rect(grown_lo, grown_hi)

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rect):
            return NotImplemented
        return bool(
            np.array_equal(self.lo, other.lo)
            and np.array_equal(self.hi, other.hi)
        )

    def __hash__(self) -> int:
        return hash((self.lo.tobytes(), self.hi.tobytes()))

    def __repr__(self) -> str:
        return f"Rect(lo={self.lo.tolist()}, hi={self.hi.tolist()})"

    def copy(self) -> "Rect":
        """An independent copy (corner arrays are not shared)."""
        return Rect(self.lo.copy(), self.hi.copy())

    def nbytes(self) -> int:
        """Serialized size used by the simulated pager (two float64 rows)."""
        return 16 * self.dims
