"""Bisector surfaces between uncertain rectangles (Equation 1).

The hyperplane ``H_{o',o} = { p : distmax(o', p) = distmin(o, p) }``
separates the domain into the half-space where ``o'`` certainly beats
``o`` (``dom(o', o)``) and the rest (``¬dom(o', o)``).  The paper never
materializes these piecewise-curvilinear surfaces — that is exactly the
expensive operation the SE algorithm avoids — but they are invaluable as
*ground truth* for tests: membership of a point on either side is a
trivial distance comparison, and the surface can be located to arbitrary
precision along any ray by bisection because the margin function

``f(p) = distmax(o', p) - distmin(o, p)``

is continuous.

This module provides those reference utilities.  Nothing here is used on
the query or construction hot paths.
"""

from __future__ import annotations

import numpy as np

from .distance import (
    maxdist_point_rect,
    maxdist_sq_points_rect,
    mindist_point_rect,
    mindist_sq_points_rect,
)
from .rect import Rect

__all__ = [
    "domination_margin",
    "domination_margins",
    "point_in_dom",
    "point_in_nondom",
    "locate_bisector_on_segment",
    "sample_bisector",
]


def domination_margin(a: Rect, b: Rect, point: np.ndarray) -> float:
    """``distmax(a, p) - distmin(b, p)``.

    Negative inside ``dom(a, b)``, zero on ``H_{a,b}``, positive in
    ``¬dom(a, b)``.
    """
    return maxdist_point_rect(point, a) - mindist_point_rect(point, b)


def domination_margins(a: Rect, b: Rect, points: np.ndarray) -> np.ndarray:
    """Vectorized :func:`domination_margin` over an ``(n, d)`` array."""
    return np.sqrt(maxdist_sq_points_rect(points, a)) - np.sqrt(
        mindist_sq_points_rect(points, b)
    )


def point_in_dom(a: Rect, b: Rect, point: np.ndarray) -> bool:
    """True iff ``point ∈ dom(a, b)`` (Definition 3, strict inequality)."""
    return domination_margin(a, b, point) < 0.0


def point_in_nondom(a: Rect, b: Rect, point: np.ndarray) -> bool:
    """True iff ``point ∈ ¬dom(a, b)`` (Definition 4)."""
    return not point_in_dom(a, b, point)


def locate_bisector_on_segment(
    a: Rect,
    b: Rect,
    inside: np.ndarray,
    outside: np.ndarray,
    tol: float = 1e-9,
    max_iter: int = 200,
) -> np.ndarray:
    """Find a point of ``H_{a,b}`` on the segment ``inside -> outside``.

    ``inside`` must lie in ``dom(a, b)`` and ``outside`` in ``¬dom(a, b)``
    (or vice versa); the margin changes sign along the segment, so plain
    bisection converges.

    Raises
    ------
    ValueError
        If both endpoints are on the same side of the bisector.
    """
    p_in = np.asarray(inside, dtype=np.float64)
    p_out = np.asarray(outside, dtype=np.float64)
    m_in = domination_margin(a, b, p_in)
    m_out = domination_margin(a, b, p_out)
    if m_in == 0.0:
        return p_in.copy()
    if m_out == 0.0:
        return p_out.copy()
    if (m_in < 0.0) == (m_out < 0.0):
        raise ValueError("segment endpoints are on the same side of H_{a,b}")
    lo, hi = p_in, p_out
    for _ in range(max_iter):
        mid = (lo + hi) / 2.0
        m_mid = domination_margin(a, b, mid)
        if abs(m_mid) <= tol:
            return mid
        if (m_mid < 0.0) == (m_in < 0.0):
            lo = mid
        else:
            hi = mid
        if float(np.linalg.norm(hi - lo)) <= tol:
            break
    return (lo + hi) / 2.0


def sample_bisector(
    a: Rect,
    b: Rect,
    domain: Rect,
    n: int,
    rng: np.random.Generator,
    tol: float = 1e-9,
) -> np.ndarray:
    """Sample up to ``n`` points on ``H_{a,b}`` inside ``domain``.

    Random segments are drawn in the domain; each segment whose endpoints
    straddle the bisector contributes one located point.  Returns an
    ``(m, d)`` array with ``m <= n`` (``m`` can fall short when the
    bisector barely intersects the domain, e.g. overlapping regions where
    ``dom(a, b)`` is empty by Lemma 2 — then the result is empty).
    """
    found: list[np.ndarray] = []
    attempts = 0
    max_attempts = 50 * max(n, 1)
    while len(found) < n and attempts < max_attempts:
        attempts += 1
        seg = domain.sample_points(2, rng)
        m0 = domination_margin(a, b, seg[0])
        m1 = domination_margin(a, b, seg[1])
        if (m0 < 0.0) != (m1 < 0.0):
            found.append(
                locate_bisector_on_segment(a, b, seg[0], seg[1], tol=tol)
            )
    if not found:
        return np.empty((0, domain.dims))
    return np.vstack(found)
