"""Geometric substrate: rectangles, distances, domination tests.

Everything in the PV-index reproduction reduces to axis-parallel
rectangle geometry; this package holds those primitives.
"""

from .bisector import (
    domination_margin,
    domination_margins,
    locate_bisector_on_segment,
    point_in_dom,
    point_in_nondom,
    sample_bisector,
)
from .distance import (
    maxdist_point_rect,
    maxdist_rect_rect,
    maxdist_sq_point_rect,
    maxdist_sq_point_rects,
    maxdist_sq_points_rect,
    maxdist_sq_rect_rect,
    mindist_point_rect,
    mindist_rect_rect,
    mindist_sq_point_rect,
    mindist_sq_point_rects,
    mindist_sq_points_rect,
    mindist_sq_rect_rect,
)
from .domination import (
    DominationTester,
    dominates,
    dominates_batch,
    max_domination_margin,
    region_fully_dominated,
)
from .rect import Rect

__all__ = [
    "Rect",
    "mindist_point_rect",
    "maxdist_point_rect",
    "mindist_sq_point_rect",
    "maxdist_sq_point_rect",
    "mindist_sq_points_rect",
    "maxdist_sq_points_rect",
    "mindist_sq_point_rects",
    "maxdist_sq_point_rects",
    "mindist_rect_rect",
    "maxdist_rect_rect",
    "mindist_sq_rect_rect",
    "maxdist_sq_rect_rect",
    "dominates",
    "dominates_batch",
    "max_domination_margin",
    "region_fully_dominated",
    "DominationTester",
    "domination_margin",
    "domination_margins",
    "point_in_dom",
    "point_in_nondom",
    "locate_bisector_on_segment",
    "sample_bisector",
]
