"""Spatial domination and domination-count estimation.

This module implements the two pruning techniques from Emrich et al.
(SIGMOD 2010) that the paper uses in Step 9 of the SE algorithm
(Section V-B):

* **Spatial domination** — decide, for rectangles ``A``, ``B`` and a query
  region ``R``, whether *every* point ``r`` of ``R`` is strictly closer to
  every point of ``A`` than to every point of ``B``, i.e. whether
  ``R ⊆ dom(A, B)`` with ``dom`` as in Definition 3 of the paper.

* **Domination-count estimation** — decide whether a region ``R`` is
  entirely covered by the union of dominated regions ``dom(x, o)`` over a
  candidate set, i.e. whether ``R ∩ I(Cset, o) = ∅`` (Definition 5 /
  Lemma 3).  A single dominator often does not cover ``R`` even when the
  union does (Figure 6(b) in the paper), so ``R`` is adaptively partitioned
  and each partition is tested individually.

The domination decision is *exact* (not corner-sampling).  Writing

``f(r) = distmax(A, r)^2 - distmin(B, r)^2 = Σ_j g_j(r_j)``

each per-dimension term ``g_j`` is continuous piecewise with pieces that
are linear or convex quadratics (the ``r^2`` coefficients of the max- and
min-distance branches cancel to 0 or 1).  Both the maximum *and* the
minimum of such a function over a closed interval are attained at piece
boundaries or the convex piece's vertex, and the only such coordinates
are: the interval's two ends, the midpoint of ``A``'s extent (branch
switch of the farthest corner, also the convex vertex), and the two
bounds of ``B``'s extent (branch switches of the closest point).
Evaluating ``g_j`` at those five candidates therefore yields the exact
per-dimension extrema in O(1), and because the dimensions decouple over
a box,

``max_{r∈R} f(r) = Σ_j max g_j``   and   ``min_{r∈R} f(r) = Σ_j min g_j``.

The emptiness test exploits both directions:

* ``max f < 0`` for some candidate ⇒ the whole region is dominated;
* ``min f >= 0`` for a candidate ⇒ it dominates *no* point of the region
  and can be dropped before partitioning (a large constant-factor win —
  this is what keeps SE fast in Python);
* any sampled point of ``R`` dominated by *no* candidate is an exact
  witness that ``R`` intersects ``I(Cset, o)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .rect import Rect

__all__ = [
    "dominates",
    "dominates_batch",
    "max_domination_margin",
    "margin_bounds_batch",
    "region_fully_dominated",
    "DominationTester",
    "DominationStats",
]


def _margin_extrema(
    a_lo: np.ndarray,
    a_hi: np.ndarray,
    b_lo: np.ndarray,
    b_hi: np.ndarray,
    r_lo: np.ndarray,
    r_hi: np.ndarray,
    want_min: bool,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Exact per-candidate extrema of ``f(r)`` over the box ``R``.

    Inputs broadcast with the last axis indexing dimensions.  Returns
    ``(max_margins, min_margins)`` summed over dimensions; the minima are
    ``None`` unless ``want_min``.
    """
    a_mid = (a_lo + a_hi) * 0.5
    a_half = (a_hi - a_lo) * 0.5
    b_mid = (b_lo + b_hi) * 0.5
    b_half = (b_hi - b_lo) * 0.5

    # Five exact candidate coordinates per dimension (see module doc).
    zeros = np.zeros(np.broadcast_shapes(a_mid.shape, np.shape(r_lo)))
    x = np.stack(
        (
            r_lo + zeros,
            r_hi + zeros,
            np.clip(a_mid, r_lo, r_hi) + zeros,
            np.clip(b_lo, r_lo, r_hi) + zeros,
            np.clip(b_hi, r_lo, r_hi) + zeros,
        ),
        axis=-1,
    )  # (..., d, 5)

    far = np.abs(x - a_mid[..., None])
    far += a_half[..., None]
    gap = np.abs(x - b_mid[..., None])
    gap -= b_half[..., None]
    np.maximum(gap, 0.0, out=gap)
    g = far * far
    g -= gap * gap  # (..., d, 5)
    g_max = g.max(axis=-1).sum(axis=-1)
    g_min = g.min(axis=-1).sum(axis=-1) if want_min else None
    return g_max, g_min


def max_domination_margin(a: Rect, b: Rect, region: Rect) -> float:
    """``max_{r in region} [distmax(a, r)^2 - distmin(b, r)^2]``, exactly.

    Negative iff ``region ⊆ dom(a, b)``.
    """
    g_max, _ = _margin_extrema(
        a.lo, a.hi, b.lo, b.hi, region.lo, region.hi, want_min=False
    )
    return float(g_max)


def dominates(a: Rect, b: Rect, region: Rect) -> bool:
    """True iff every point of ``region`` lies in ``dom(a, b)``.

    I.e. for all ``r`` in ``region``: ``distmax(a, r) < distmin(b, r)``.
    Exact — no false positives and no false negatives.
    """
    return max_domination_margin(a, b, region) < 0.0


def dominates_batch(
    a_los: np.ndarray,
    a_his: np.ndarray,
    b: Rect,
    region: Rect,
) -> np.ndarray:
    """Vectorized :func:`dominates` for ``n`` candidate dominators.

    ``a_los`` / ``a_his`` are ``(n, d)`` packed corners; returns a
    boolean ``(n,)`` array, entry ``i`` True iff ``region ⊆ dom(A_i, b)``.
    """
    g_max, _ = _margin_extrema(
        np.asarray(a_los, dtype=np.float64),
        np.asarray(a_his, dtype=np.float64),
        b.lo[None, :],
        b.hi[None, :],
        region.lo[None, :],
        region.hi[None, :],
        want_min=False,
    )
    return g_max < 0.0


def margin_bounds_batch(
    a_los: np.ndarray,
    a_his: np.ndarray,
    b: Rect,
    region: Rect,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact ``(min, max)`` domination margins for ``n`` candidates.

    ``max[i] < 0``  ⇔ candidate ``i`` dominates all of ``region``;
    ``min[i] >= 0`` ⇔ candidate ``i`` dominates no point of ``region``.
    """
    g_max, g_min = _margin_extrema(
        np.asarray(a_los, dtype=np.float64),
        np.asarray(a_his, dtype=np.float64),
        b.lo[None, :],
        b.hi[None, :],
        region.lo[None, :],
        region.hi[None, :],
        want_min=True,
    )
    assert g_min is not None
    return g_min, g_max


def _any_point_undominated(
    points: np.ndarray,
    a_los: np.ndarray,
    a_his: np.ndarray,
    b: Rect,
) -> bool:
    """Exact witness test: is some point dominated by *no* candidate?

    A pointwise membership check of ``I(Cset, b)`` (Lemma 4 direction):
    point ``p`` is in the non-dominated intersection iff every candidate
    has ``distmax(a, p) >= distmin(b, p)``.
    """
    a_mid = (a_los + a_his) * 0.5  # (n, d)
    a_half = (a_his - a_los) * 0.5
    far = np.abs(points[:, None, :] - a_mid[None, :, :])
    far += a_half[None, :, :]
    max_sq = np.einsum("knd,knd->kn", far, far)  # (k, n)
    gap = np.maximum(
        np.maximum(b.lo - points, points - b.hi), 0.0
    )
    min_sq = np.einsum("kd,kd->k", gap, gap)  # (k,)
    dominated = (max_sq < min_sq[:, None]).any(axis=1)
    return bool((~dominated).any())


def _slice_region(
    region: Rect, n_slices: int
) -> tuple[np.ndarray, np.ndarray]:
    """Uniform slabs of ``region`` along its longest side.

    Returns ``(los, his)`` arrays of shape ``(n_slices, d)``.
    """
    dim = int(np.argmax(region.side_lengths))
    edges = np.linspace(region.lo[dim], region.hi[dim], n_slices + 1)
    los = np.tile(region.lo, (n_slices, 1))
    his = np.tile(region.hi, (n_slices, 1))
    los[:, dim] = edges[:-1]
    his[:, dim] = edges[1:]
    return los, his


def _grid_covered(
    a_los: np.ndarray,
    a_his: np.ndarray,
    b: Rect,
    part_los: np.ndarray,
    part_his: np.ndarray,
) -> bool:
    """True iff every partition is dominated by some candidate.

    One fused evaluation of the exact per-dimension max margins over a
    ``(n_parts, n_cands)`` grid.
    """
    a_mid = ((a_los + a_his) * 0.5)[None, :, :, None]  # (1, n, d, 1)
    a_half = ((a_his - a_los) * 0.5)[None, :, :, None]
    b_mid = ((b.lo + b.hi) * 0.5)[None, None, :, None]
    b_half = ((b.hi - b.lo) * 0.5)[None, None, :, None]
    r_lo = part_los[:, None, :]  # (m, 1, d)
    r_hi = part_his[:, None, :]

    m, d = part_los.shape
    n = len(a_los)
    x = np.empty((m, n, d, 5))
    x[..., 0] = r_lo
    x[..., 1] = r_hi
    x[..., 2] = np.clip((a_los + a_his) * 0.5, r_lo, r_hi)
    x[..., 3] = np.clip(b.lo, r_lo, r_hi)
    x[..., 4] = np.clip(b.hi, r_lo, r_hi)

    far = np.abs(x - a_mid)
    far += a_half
    gap = np.abs(x - b_mid)
    gap -= b_half
    np.maximum(gap, 0.0, out=gap)
    g = far * far
    g -= gap * gap
    margins = g.max(axis=-1).sum(axis=-1)  # (m, n)
    return bool((margins < 0.0).any(axis=1).all())


@dataclass
class DominationStats:
    """Counters describing the work done by a :class:`DominationTester`."""

    tests: int = 0
    partitions_examined: int = 0
    splits: int = 0
    fast_empty: int = 0
    fast_intersect: int = 0

    def reset(self) -> None:
        self.tests = 0
        self.partitions_examined = 0
        self.splits = 0
        self.fast_empty = 0
        self.fast_intersect = 0


@dataclass
class DominationTester:
    """Domination-count estimation with adaptive partitioning.

    Decides (conservatively) whether a region ``R`` intersects the
    non-dominated intersection ``I(Cset, o)``.  The answer is safe in one
    direction: ``False`` ("does not intersect") is always correct, while
    ``True`` ("may intersect") can be a false alarm when the partition
    budget ``m_max`` is too coarse.  In SE a false alarm only prevents a
    shrink, producing a looser — still conservative — UBR (Section V-B).

    Parameters
    ----------
    m_max:
        Maximum number of partitions of ``R`` (Table I's ``m_max``,
        default 10).
    """

    m_max: int = 10
    stats: DominationStats = field(default_factory=DominationStats)

    def __post_init__(self) -> None:
        if self.m_max < 1:
            raise ValueError("m_max must be >= 1")

    def region_intersects_nondominated(
        self,
        region: Rect,
        cset_los: np.ndarray,
        cset_his: np.ndarray,
        obj_region: Rect,
    ) -> bool:
        """Conservative test for ``region ∩ I(Cset, o) ≠ ∅``.

        Pipeline: (1) exact min/max margins over the whole region — one
        fused vector call — settle the easy verdicts and shed candidates
        that cannot dominate any point; (2) exact pointwise witnesses at
        the region's center and corners; (3) adaptive largest-first
        partitioning within the ``m_max`` budget.
        """
        self.stats.tests += 1
        if len(cset_los) == 0:
            return True  # empty C-set dominates nothing

        mins, maxs = margin_bounds_batch(
            cset_los, cset_his, obj_region, region
        )
        if bool((maxs < 0.0).any()):
            self.stats.fast_empty += 1
            return False  # a single candidate dominates all of R
        active = mins < 0.0
        if not bool(active.any()):
            # No candidate dominates any point: R ⊆ I(Cset, o).
            self.stats.fast_intersect += 1
            return True
        act_los = cset_los[active]
        act_his = cset_his[active]

        if region.dims <= 6:
            witnesses = np.vstack(
                [region.center[None, :], region.corners()]
            )
        else:
            witnesses = region.center[None, :]
        if _any_point_undominated(witnesses, act_los, act_his, obj_region):
            self.stats.fast_intersect += 1
            return True

        # Domination-count estimation over a uniform partitioning of R
        # ([17]'s scheme): m_max slices along R's longest side, each
        # tested against every active candidate in one fused call.  The
        # slices cut SE's long thin slabs crosswise, so each slice can be
        # covered by the locally nearest dominator.
        if self.m_max == 1:
            return True  # whole-region test already failed above
        part_los, part_his = _slice_region(region, self.m_max)
        self.stats.partitions_examined += len(part_los)
        self.stats.splits += len(part_los) - 1
        covered = _grid_covered(
            act_los, act_his, obj_region, part_los, part_his
        )
        return not covered


def region_fully_dominated(
    region: Rect,
    cset_los: np.ndarray,
    cset_his: np.ndarray,
    obj_region: Rect,
    m_max: int = 10,
) -> bool:
    """Convenience wrapper: True iff ``region ∩ I(Cset, o) = ∅`` is proven.

    Equivalent to ``not DominationTester(m_max).region_intersects_...``.
    """
    tester = DominationTester(m_max=m_max)
    return not tester.region_intersects_nondominated(
        region, cset_los, cset_his, obj_region
    )
