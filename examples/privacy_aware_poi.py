"""Privacy-aware points of interest: PNNQ over perturbed locations.

The paper's third motivating scenario (citing [2]): a location database
released to the public is perturbed with noise so that individual
positions cannot be recovered, yet aggregate services — "which point of
interest is probably closest to me?" — must keep working.

Each POI's published record is a *cloaking rectangle* that is guaranteed
to contain the true position, plus a discrete pdf over plausible
positions inside it.  Popular POIs get larger cloaks (more privacy).
The example compares the three Step-1 retrievers of the paper (PV-index,
R-tree branch-and-prune, UV-index — the data is 2D) on the same queries
and confirms they return identical candidate sets.

Run with::

    python examples/privacy_aware_poi.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import (
    PNNQEngine,
    PVIndex,
    RTreePNNQ,
    UVIndex,
    UncertainObject,
    uniform_pdf,
)
from repro.core.pvcell import possible_nn_ids
from repro.geometry import Rect
from repro.uncertain import UncertainDataset

N_POI = 250
DOMAIN = 10_000.0
N_QUERIES = 25


def make_poi_database(rng: np.random.Generator) -> UncertainDataset:
    """POIs with privacy cloaks sized by popularity."""
    domain = Rect.cube(0.0, DOMAIN, 2)
    objects = []
    for oid in range(N_POI):
        # Popularity follows a heavy tail; cloak side grows with it.
        popularity = rng.pareto(2.5) + 1.0
        half = min(20.0 * popularity, 300.0)
        center = rng.uniform(half, DOMAIN - half, size=2)
        region = Rect.from_center(center, [half, half])
        instances, weights = uniform_pdf(region, 100, rng)
        objects.append(
            UncertainObject(
                oid=oid, region=region, instances=instances,
                weights=weights,
            )
        )
    return UncertainDataset(objects, domain=domain)


def main() -> None:
    rng = np.random.default_rng(77)
    database = make_poi_database(rng)
    print(f"published database: {N_POI} POIs with privacy cloaks")

    retrievers = {}
    for name, builder in (
        ("PV-index", lambda: PVIndex.build(database)),
        ("R-tree", lambda: RTreePNNQ.build(database)),
        ("UV-index", lambda: UVIndex.build(database)),
    ):
        t0 = time.perf_counter()
        retrievers[name] = builder()
        print(f"  built {name:9s} in {time.perf_counter() - t0:6.2f}s")

    queries = rng.uniform(0.0, DOMAIN, size=(N_QUERIES, 2))

    # One PNNQEngine per retriever: the engines share the unified
    # execution layer, so Step-1 latency comes straight from each
    # engine's ExecutionStats instead of hand-rolled perf_counter
    # bracketing, and the whole workload runs as one batch.
    engines = {
        name: PNNQEngine(database, retriever)
        for name, retriever in retrievers.items()
    }
    answers = {
        name: engine.query_batch(queries)
        for name, engine in engines.items()
    }

    candidate_counts = []
    for i, q in enumerate(queries):
        truth = possible_nn_ids(database, q)
        # PV-index and R-tree are exact under the rectangle model; the
        # UV-index bounds each cloak by its circumscribed circle ([9]'s
        # native model), so its answer is a conservative superset.
        assert set(answers["PV-index"][i].candidate_ids) == truth
        assert set(answers["R-tree"][i].candidate_ids) == truth
        assert set(answers["UV-index"][i].candidate_ids) >= truth
        # Step 2 must agree across retrievers: superset candidates can
        # only add zero-probability entries, never change the rest.
        pv = answers["PV-index"][i].probabilities
        for name in ("R-tree", "UV-index"):
            other = answers[name][i].probabilities
            assert all(
                abs(other.get(oid, 0.0) - p) < 1e-9
                for oid, p in pv.items()
            )
        candidate_counts.append(len(truth))

    print(
        f"\n{N_QUERIES} user queries; PV-index and R-tree exact, "
        f"UV-index conservative (mean {np.mean(candidate_counts):.1f} "
        f"possible NNs per query); Step-2 probabilities agree across "
        f"all three retrievers"
    )
    print("mean Step-1 latency per query:")
    ranked = sorted(
        engines.items(), key=lambda kv: kv[1].stats.object_retrieval
    )
    for name, engine in ranked:
        per_query = engine.stats.object_retrieval / N_QUERIES * 1e3
        print(f"  {name:9s} {per_query:7.3f} ms")


if __name__ == "__main__":
    main()
