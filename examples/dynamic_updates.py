"""Dynamic updates: mutable datasets, epochs, and cache invalidation.

Runs end-to-end in a few seconds::

    python examples/dynamic_updates.py

Walks through serving a live, mutating uncertain database:

1. build a 2D database plus an incrementally maintained UV-index;
2. answer queries through a cached engine, then insert an object
   *through the index* — only the cells whose candidate set changed
   are re-derived, and the engine's epoch check flushes its caches so
   the very next query reflects the insert;
3. delete an object the same way;
4. mutate the dataset *directly* under an engine holding an
   unmaintained index: the engine detects the stale retriever and
   swaps in the exact brute-force fallback rather than serving stale
   Step-1 answers.
"""

from __future__ import annotations

import numpy as np

from repro import PNNQEngine, Rect, UncertainObject, UVIndex, synthetic_dataset
from repro.rtree import RTreePNNQ
from repro.uncertain import uniform_pdf


def make_object(oid: int, center, half: float = 30.0, seed: int = 0):
    region = Rect.from_center(np.asarray(center, float), half)
    instances, weights = uniform_pdf(
        region, 4, np.random.default_rng(seed)
    )
    return UncertainObject(oid, region, instances, weights)


def main(n: int = 200) -> None:
    # 1. A 2D database and an incrementally maintained UV-index.
    dataset = synthetic_dataset(n=n, dims=2, u_max=60.0, seed=7)
    index = UVIndex.build(dataset, k_cand=12, delta=4.0)
    print(
        f"database: {len(dataset)} objects (epoch {dataset.epoch}); "
        f"UV-index built in {index.build_seconds:.2f}s "
        f"({index.stats.cells_recomputed} cells)"
    )

    engine = PNNQEngine(dataset, index, result_cache_size=32)
    query = np.array([5000.0, 5000.0])
    before = engine.query(query)
    print(f"\nPNNQ at {query.tolist()}: best = object {before.best}")

    # 2. Insert an object glued to the query point, through the index:
    #    the dataset epoch bumps, the index re-derives only the affected
    #    cells, and the engine flushes its result cache.
    cells0 = index.stats.cells_recomputed
    newcomer = make_object(100_000, query, half=2.0, seed=8)
    index.insert(newcomer)
    print(
        f"\nafter inserting object {newcomer.oid} "
        f"(epoch {dataset.epoch}): "
        f"{index.stats.cells_recomputed - cells0} of {len(dataset)} "
        f"cells re-derived"
    )
    after = engine.query(query)
    print(
        f"same query now: best = object {after.best} "
        f"(cache invalidations: {engine.stats.invalidations})"
    )
    assert after.best == newcomer.oid
    assert engine.has_index, "maintained index must be kept"

    # 3. Delete it again — the answer reverts.
    index.delete(newcomer.oid)
    reverted = engine.query(query)
    print(
        f"after deleting it: best = object {reverted.best} "
        f"(epoch {dataset.epoch})"
    )
    assert reverted.best == before.best

    # 4. An engine holding an *unmaintained* index (the R-tree has no
    #    incremental maintenance) under a direct dataset mutation: the
    #    stale retriever is replaced by the brute-force fallback.
    rtree_engine = PNNQEngine(dataset, RTreePNNQ.build(dataset))
    rtree_engine.query(query)
    dataset.insert(make_object(100_001, query, half=2.0, seed=9))
    result = rtree_engine.query(query)
    print(
        f"\ndirect dataset.insert under an R-tree engine: "
        f"best = object {result.best}, "
        f"fell back to {type(rtree_engine.retriever).__name__} "
        f"(retriever fallbacks: {rtree_engine.stats.retriever_fallbacks})"
    )
    assert result.best == 100_001
    assert not rtree_engine.has_index
    print("\nall dynamic-update checks passed")


if __name__ == "__main__":
    main()
