"""Quickstart: build a PV-index and answer probabilistic NN queries.

Runs end-to-end in a few seconds::

    python examples/quickstart.py

Walks through the full pipeline of the paper:

1. generate an uncertain database (objects = rectangular uncertainty
   regions + discrete pdfs);
2. build the PV-index (SE computes one UBR per object; the octree
   primary index and hash-table secondary index store them);
3. answer PNNQs — Step 1 (retrieve objects with non-zero probability)
   through the index, Step 2 (compute the probabilities) from the pdfs;
4. cross-check Step 1 against the brute-force ground truth.
"""

from __future__ import annotations

import numpy as np

from repro import PNNQEngine, PVIndex, synthetic_dataset
from repro.core.pvcell import possible_nn_ids


def main(n: int = 300) -> None:
    # 1. A 2D uncertain database: n objects with uniform-pdf
    #    uncertainty regions in the [0, 10000]^2 domain.
    dataset = synthetic_dataset(n=n, dims=2, u_max=60.0, seed=42)
    print(f"database: {len(dataset)} objects, d={dataset.dims}")

    # 2. Build the PV-index.  IS (incremental selection) picks each
    #    object's candidate set; SE shrinks the domain down to a UBR.
    index = PVIndex.build(dataset)
    stats = index.se.stats
    print(
        f"built PV-index in {index.stats.build_seconds:.2f}s "
        f"(mean C-set size {stats.mean_cset_size:.0f}, "
        f"{stats.iterations} SE iterations)"
    )

    # 3. Answer a PNNQ at the domain center.
    engine = PNNQEngine(index, dataset, secondary=index.secondary)
    query = np.array([5000.0, 5000.0])
    result = engine.query(query)
    print(f"\nPNNQ at {query.tolist()}:")
    for oid in sorted(
        result.probabilities, key=result.probabilities.get, reverse=True
    ):
        prob = result.probabilities[oid]
        print(f"  object {oid:4d}  P[is NN] = {prob:.4f}")
    print(f"most probable NN: object {result.best}")

    # 4. Cross-check Step 1 against brute force over all objects.
    truth = possible_nn_ids(dataset, query)
    assert set(result.candidate_ids) == truth, "Step-1 mismatch!"
    print(
        f"\nStep-1 verified against brute force "
        f"({len(truth)} possible NNs)"
    )

    # 5. The index is incrementally maintainable: insert a new object
    #    right at the query point and watch it take over.
    from repro import UncertainObject, uniform_pdf
    from repro.geometry import Rect

    new_region = Rect.from_center(query, half_widths=[5.0, 5.0])
    instances, weights = uniform_pdf(
        new_region, n_samples=100, rng=np.random.default_rng(7)
    )
    new_obj = UncertainObject(
        oid=max(dataset.ids) + 1,
        region=new_region,
        instances=instances,
        weights=weights,
    )
    index.insert(new_obj)
    result2 = engine.query(query)
    print(
        f"\nafter inserting object {new_obj.oid} at the query point: "
        f"P[new is NN] = {result2.probabilities[new_obj.oid]:.4f}"
    )
    assert result2.best == new_obj.oid

    # 6. Serving mode: answer a whole block of queries in one call.
    #    query_batch deduplicates repeats, shares Step-1 retrieval, and
    #    vectorizes Step-2 across queries; the engine's ExecutionStats
    #    reports the OR/PC time split and per-phase page I/O.
    rng = np.random.default_rng(3)
    hot_spots = dataset.domain.sample_points(10, rng)
    batch = hot_spots[rng.integers(0, 10, size=50)]  # 50 queries, 10 spots
    engine.stats.reset()
    results = engine.query_batch(batch)
    stats = engine.stats
    print(
        f"\nbatch of {stats.queries} queries "
        f"({stats.dedup_hits} answered by dedup): "
        f"OR {stats.object_retrieval * 1e3:.1f} ms, "
        f"PC {stats.probability_computation * 1e3:.1f} ms, "
        f"{stats.page_reads} page reads"
    )
    assert len(results) == len(batch)


if __name__ == "__main__":
    main()
