"""Quickstart: one front door — the declarative ``Database`` session API.

Runs end-to-end in a few seconds::

    python examples/quickstart.py

The session object owns the uncertain database and everything derived
from it.  You declare *what* you want — nearest neighbor, k-NN, top-k,
threshold, group, reverse, expected-distance — and the cost-based
planner decides *how*: which Step-1 index to build and use (PV-index,
R-tree, UV-index, or the exact brute-force filter), explained on
request via ``db.explain``.  Indexes are built lazily, maintained
incrementally through ``db.insert`` / ``db.delete``, and replaced
automatically when a mutation leaves them stale.
"""

from __future__ import annotations

import numpy as np

from repro import synthetic_dataset
from repro.api import Database, Q
from repro.core.pvcell import possible_nn_ids


def main(n: int = 300) -> None:
    # 1. A 2D uncertain database: n objects with uniform-pdf
    #    uncertainty regions in the [0, 10000]^2 domain, wrapped in a
    #    session.  No engines, no index choices — one front door.
    dataset = synthetic_dataset(n=n, dims=2, u_max=60.0, seed=42)
    db = Database(dataset)
    print(f"database: {len(db)} objects, d={db.dims}")

    # 2. The planner explains every query class before running any of
    #    them: chosen retriever + its cost estimate (µs equivalents).
    print("\nplans (before any query):")
    for kind, params in [
        ("nn", {}),
        ("knn", {"k": 3}),
        ("topk", {"k": 3}),
        ("threshold", {"p": 0.2}),
        ("group_nn", {"aggregate": "min"}),
        ("reverse_nn", {}),
        ("expected_nn", {}),
    ]:
        plan = db.explain(kind, **params)
        cost = f"{plan.cost:8.1f} us" if plan.cost is not None else "   (n/a)"
        print(f"  {kind:<12} -> {plan.retriever:<6} {cost}")

    # 3. Answer a probabilistic NN query at the domain center.  The
    #    result is a frozen envelope: answer + plan + per-query stats.
    query = np.array([5000.0, 5000.0])
    result = db.nn(query)
    print(f"\nPNNQ at {query.tolist()} via {result.plan.retriever}:")
    for oid, prob in sorted(
        result.probabilities.items(), key=lambda kv: -kv[1]
    ):
        print(f"  object {oid:4d}  P[is NN] = {prob:.4f}")
    print(f"most probable NN: object {result.best}")

    # 4. Cross-check Step 1 against brute force over all objects.
    truth = possible_nn_ids(dataset, query)
    assert set(result.answer.candidate_ids) == truth, "Step-1 mismatch!"
    print(
        f"\nStep-1 verified against brute force "
        f"({len(truth)} possible NNs)"
    )

    # 5. The session maintains its indexes incrementally: insert a new
    #    object right at the query point and watch it take over.  Any
    #    built maintainable index absorbs the mutation; stale ones are
    #    dropped and the planner replans (fresh plan epoch).
    from repro import UncertainObject, uniform_pdf
    from repro.geometry import Rect

    new_region = Rect.from_center(query, half_widths=[5.0, 5.0])
    instances, weights = uniform_pdf(
        new_region, n_samples=100, rng=np.random.default_rng(7)
    )
    new_obj = UncertainObject(
        oid=max(dataset.ids) + 1,
        region=new_region,
        instances=instances,
        weights=weights,
    )
    db.insert(new_obj)
    result2 = db.nn(query)
    print(
        f"\nafter inserting object {new_obj.oid} at the query point: "
        f"P[new is NN] = {result2.probabilities[new_obj.oid]:.4f} "
        f"(plan epoch {result2.plan.epoch})"
    )
    assert result2.best == new_obj.oid

    # 6. Results are frozen — sharing through the result cache and
    #    batch dedup cannot be corrupted by a caller.
    try:
        result2.probabilities[new_obj.oid] = 0.0
    except TypeError:
        print("result envelopes are read-only (mutation raises)")

    # 7. Serving mode: declare a whole block at once.  Queries sharing
    #    a template are planned once and executed through the batched
    #    engine path (dedup + shared Step-1 + vectorized Step-2).
    rng = np.random.default_rng(3)
    hot_spots = dataset.domain.sample_points(10, rng)
    block = hot_spots[rng.integers(0, 10, size=50)]  # 50 queries, 10 spots
    results = db.batch([Q.nn(q) for q in block])
    stats = results[0].stats
    print(
        f"\nbatch of {stats.queries} queries "
        f"({stats.dedup_hits} answered by dedup) "
        f"via {results[0].plan.retriever}: "
        f"OR {stats.object_retrieval * 1e3:.1f} ms, "
        f"PC {stats.probability_computation * 1e3:.1f} ms, "
        f"{stats.page_reads} page reads"
    )
    assert len(results) == len(block)


if __name__ == "__main__":
    main()
