"""Vehicle tracking: PNNQ over moving, imprecisely-located vehicles.

The paper's motivating scenario: a location database whose positions
come from error-prone extraction (GPS drift, satellite imagery, privacy
perturbation).  Each vehicle's true position is only known to lie inside
a rectangular uncertainty region.

The example simulates a fleet whose vehicles move between epochs and
shows the PV-index's headline maintenance feature: instead of rebuilding
the whole index each epoch, vehicles that moved are deleted and
re-inserted *incrementally* (Section VI-B), which only refreshes the
UBRs of objects whose PV-cells were actually affected.

Run with::

    python examples/vehicle_tracking.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import PNNQEngine, PVIndex, UncertainObject, uniform_pdf
from repro.core.pvcell import possible_nn_ids
from repro.geometry import Rect
from repro.uncertain import UncertainDataset

N_VEHICLES = 400
N_MOVERS = 5  # vehicles that move per epoch
N_EPOCHS = 3
DOMAIN = 10_000.0
GPS_ERROR = 40.0  # half-width of the uncertainty rectangle
SPEED = 400.0  # max displacement per epoch


def make_fleet(rng: np.random.Generator) -> UncertainDataset:
    """A fleet of vehicles with GPS-sized uncertainty regions."""
    domain = Rect.cube(0.0, DOMAIN, 2)
    objects = []
    for oid in range(N_VEHICLES):
        center = rng.uniform(GPS_ERROR, DOMAIN - GPS_ERROR, size=2)
        region = Rect.from_center(center, [GPS_ERROR, GPS_ERROR])
        instances, weights = uniform_pdf(region, 100, rng)
        objects.append(
            UncertainObject(
                oid=oid, region=region, instances=instances,
                weights=weights,
            )
        )
    return UncertainDataset(objects, domain=domain)


def moved_vehicle(
    obj: UncertainObject, rng: np.random.Generator
) -> UncertainObject:
    """The same vehicle after one epoch of movement."""
    step = rng.uniform(-SPEED, SPEED, size=2)
    center = np.clip(
        obj.region.center + step, GPS_ERROR, DOMAIN - GPS_ERROR
    )
    region = Rect.from_center(center, [GPS_ERROR, GPS_ERROR])
    instances, weights = uniform_pdf(region, 100, rng)
    return UncertainObject(
        oid=obj.oid, region=region, instances=instances, weights=weights
    )


def main() -> None:
    rng = np.random.default_rng(2013)
    fleet = make_fleet(rng)
    print(f"fleet: {N_VEHICLES} vehicles, GPS error ±{GPS_ERROR} m")

    t0 = time.perf_counter()
    index = PVIndex.build(fleet)
    print(f"initial PV-index build: {time.perf_counter() - t0:.2f}s\n")
    engine = PNNQEngine(fleet, index, secondary=index.secondary)

    # A dispatcher at the center keeps asking: which vehicle is nearest?
    dispatcher = np.array([DOMAIN / 2, DOMAIN / 2])

    for epoch in range(1, N_EPOCHS + 1):
        # Some vehicles report new positions: delete + insert, both
        # incremental (only affected UBRs are recomputed).
        movers = rng.choice(fleet.ids, size=N_MOVERS, replace=False)
        t0 = time.perf_counter()
        for oid in movers:
            vehicle = fleet[int(oid)]
            index.delete(int(oid))
            index.insert(moved_vehicle(vehicle, rng))
        update_s = time.perf_counter() - t0

        result = engine.query(dispatcher)
        truth = possible_nn_ids(fleet, dispatcher)
        assert set(result.candidate_ids) == truth

        best = result.best
        print(
            f"epoch {epoch}: moved {N_MOVERS} vehicles in "
            f"{update_s:.2f}s ({update_s / (2 * N_MOVERS) * 1e3:.0f} ms "
            f"per update); {len(truth)} possible NNs; dispatching "
            f"vehicle {best} (P = {result.probabilities[best]:.3f})"
        )

    # Contrast with the rebuild-from-scratch alternative.
    t0 = time.perf_counter()
    PVIndex.build(fleet)
    rebuild_s = time.perf_counter() - t0
    print(
        f"\nfull rebuild would cost {rebuild_s:.2f}s per epoch — "
        f"incremental maintenance is the difference between refreshing "
        f"{2 * N_MOVERS} objects and recomputing {N_VEHICLES} UBRs."
    )


if __name__ == "__main__":
    main()
