"""Vehicle tracking: a *standing* PNNQ over moving vehicles.

The paper's motivating scenario: a location database whose positions
come from error-prone extraction (GPS drift, satellite imagery, privacy
perturbation).  Each vehicle's true position is only known to lie inside
a rectangular uncertainty region.

Earlier revisions of this example re-polled the dispatcher's query
after every batch of movements.  With continuous queries the dispatcher
*subscribes* once — ``db.subscribe("nn", center)`` — and the database
pushes an epoch-tagged revision whenever a movement could have changed
the nearest vehicle, suppressing the (vast majority of) movements that
provably could not.  Movements still apply incrementally through the
PV-index (Section VI-B): delete + insert refresh only the affected
UBRs, never the whole index.

Run with::

    python examples/vehicle_tracking.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import UncertainObject, uniform_pdf
from repro.api import Database
from repro.geometry import Rect
from repro.uncertain import UncertainDataset

N_VEHICLES = 400
N_MOVERS = 5  # vehicles that move per epoch
N_EPOCHS = 3
DOMAIN = 10_000.0
GPS_ERROR = 40.0  # half-width of the uncertainty rectangle
SPEED = 400.0  # max displacement per epoch


def make_fleet(rng: np.random.Generator) -> UncertainDataset:
    """A fleet of vehicles with GPS-sized uncertainty regions."""
    domain = Rect.cube(0.0, DOMAIN, 2)
    objects = []
    for oid in range(N_VEHICLES):
        center = rng.uniform(GPS_ERROR, DOMAIN - GPS_ERROR, size=2)
        region = Rect.from_center(center, [GPS_ERROR, GPS_ERROR])
        instances, weights = uniform_pdf(region, 100, rng)
        objects.append(
            UncertainObject(
                oid=oid, region=region, instances=instances,
                weights=weights,
            )
        )
    return UncertainDataset(objects, domain=domain)


def moved_vehicle(
    obj: UncertainObject,
    rng: np.random.Generator,
    toward: np.ndarray | None = None,
) -> UncertainObject:
    """The same vehicle after one epoch of movement.

    ``toward`` biases the step (a dispatched vehicle heading for the
    center) instead of a random drift.
    """
    if toward is None:
        step = rng.uniform(-SPEED, SPEED, size=2)
    else:
        heading = toward - obj.region.center
        distance = float(np.linalg.norm(heading))
        step = heading * min(1.0, SPEED / max(distance, 1e-9))
    center = np.clip(
        obj.region.center + step, GPS_ERROR, DOMAIN - GPS_ERROR
    )
    region = Rect.from_center(center, [GPS_ERROR, GPS_ERROR])
    instances, weights = uniform_pdf(region, 100, rng)
    return UncertainObject(
        oid=obj.oid, region=region, instances=instances, weights=weights
    )


def main() -> None:
    rng = np.random.default_rng(2013)
    db = Database(make_fleet(rng), indexes=("pv",))
    print(f"fleet: {N_VEHICLES} vehicles, GPS error ±{GPS_ERROR} m")

    # The dispatcher at the center subscribes once instead of polling.
    dispatcher = np.array([DOMAIN / 2, DOMAIN / 2])
    sub = db.subscribe("nn", dispatcher)
    baseline = sub.poll()
    best = baseline.answer.best
    print(
        f"dispatcher subscribed at epoch {baseline.epoch}: nearest "
        f"vehicle {best} "
        f"(P = {baseline.answer.probabilities[best]:.3f})\n"
    )

    for epoch in range(1, N_EPOCHS + 1):
        # Vehicles report new positions: delete + insert, both
        # incremental (only affected UBRs are recomputed) — and each
        # mutation is classified against the standing query.
        movers = rng.choice(db.dataset.ids, size=N_MOVERS, replace=False)
        t0 = time.perf_counter()
        for i, oid in enumerate(movers):
            vehicle = db.dataset[int(oid)]
            db.delete(int(oid))
            # The first mover is a dispatched vehicle heading for the
            # center; the rest drift randomly.
            db.insert(
                moved_vehicle(
                    vehicle, rng, toward=dispatcher if i == 0 else None
                )
            )
        update_s = time.perf_counter() - t0

        pushed = 0
        while (revision := sub.poll()) is not None:
            pushed += 1
            best = revision.answer.best
            print(
                f"  -> revision @epoch {revision.epoch}: dispatch "
                f"vehicle {best} "
                f"(P = {revision.answer.probabilities[best]:.3f}, "
                f"{revision.suppressed_since_last} quiet epochs "
                "suppressed)"
            )
        print(
            f"epoch {epoch}: moved {N_MOVERS} vehicles in {update_s:.2f}s "
            f"({2 * N_MOVERS} mutations) — {pushed} revisions pushed, "
            "none re-polled"
        )

    stats = db.subscriptions.stats_snapshot()
    total = stats.revisions_emitted + stats.revisions_suppressed
    print(
        f"\nstanding query summary: {stats.revisions_emitted - 1} "
        f"change revisions from {2 * N_MOVERS * N_EPOCHS} mutations "
        f"(suppression ratio "
        f"{stats.revisions_suppressed / max(1, total):.2f}) — the "
        "relevance filter re-executed only movements that could touch "
        "the dispatcher's min-max watch radius."
    )
    sub.unsubscribe()
    db.close()


if __name__ == "__main__":
    main()
