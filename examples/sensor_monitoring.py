"""Sensor monitoring: a standing anomaly watch over noisy readings.

The paper's second motivating scenario: a natural-habitat monitoring
network where each node reports a (temperature, humidity, wind speed)
vector contaminated with measurement error.  Readings are uncertain
objects in a 3D attribute space; "which sensor most resembles reference
conditions?" is a PNNQ at the reference vector.

Earlier revisions of this example ran the query once and stopped.
With continuous queries the operator *subscribes* a threshold watch —
``db.subscribe("threshold", reference, p=0.2)`` — and every new batch
of sensor readings pushes a revision only when the set of confidently
matching sensors actually changes; readings that provably cannot affect
the answer are suppressed without re-running the verifier.  Each pushed
revision is cross-checked here against exact Step-2 probabilities (the
probabilistic verifier of Ablation A4 / reference [11] must agree with
the exact computation at every epoch).

Run with::

    python examples/sensor_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import UncertainObject, gaussian_pdf
from repro.api import Database
from repro.geometry import Rect
from repro.uncertain import UncertainDataset

N_SENSORS = 120
N_ROUNDS = 4  # reporting rounds (each re-reads a few sensors)
N_REPORTS = 4  # sensors reporting fresh readings per round
TAU = 0.2
#: attribute space: temperature [0,50] C, humidity [0,100] %,
#: wind speed [0,30] m/s — normalized to a common [0,1000] scale so
#: Euclidean distance weighs the attributes comparably.
SCALE = 1000.0


def make_reading(
    oid: int, mean: np.ndarray, rng: np.random.Generator
) -> UncertainObject:
    """One sensor reading: a truncated Gaussian in its ±3σ box."""
    sigma = rng.uniform(3.0, 12.0)
    lo = np.maximum(mean - 3.0 * sigma, 0.0)
    hi = np.minimum(mean + 3.0 * sigma, SCALE)
    region = Rect(lo, hi)
    instances, weights = gaussian_pdf(
        region, n_samples=100, rng=rng, sigma=sigma,
        mean=np.clip(mean, region.lo, region.hi),
    )
    return UncertainObject(
        oid=oid, region=region, instances=instances, weights=weights
    )


def make_network(rng: np.random.Generator) -> UncertainDataset:
    """Sensors with Gaussian measurement error, clustered by biome."""
    domain = Rect.cube(0.0, SCALE, 3)
    biomes = rng.uniform(100.0, SCALE - 100.0, size=(6, 3))
    objects = []
    for oid in range(N_SENSORS):
        biome = biomes[oid % len(biomes)]
        mean = np.clip(
            biome + rng.normal(scale=60.0, size=3), 20.0, SCALE - 20.0
        )
        objects.append(make_reading(oid, mean, rng))
    return UncertainDataset(objects, domain=domain)


def main() -> None:
    rng = np.random.default_rng(29)
    db = Database(make_network(rng), indexes=("pv",))
    print(
        f"network: {N_SENSORS} sensors, 3D attribute space "
        f"(temperature, humidity, wind)"
    )

    # Reference conditions we want the most similar live reading to.
    reference = np.array([480.0, 510.0, 495.0])
    watch = db.subscribe("threshold", reference, p=TAU)
    nn_sub = db.subscribe("nn", reference)

    def confident(decisions) -> list[int]:
        return sorted(oid for oid, ok in decisions.items() if ok)

    def check_against_exact(decisions) -> None:
        # The verifier's bound-based decisions must agree with exact
        # Step-2 probabilities at the same epoch.
        exact = db.nn(reference).answer.probabilities
        for oid, ok in decisions.items():
            assert ok == (exact.get(oid, 0.0) >= TAU), (
                f"verifier disagrees on sensor {oid}"
            )

    baseline = watch.poll()
    check_against_exact(baseline.answer)
    print(
        f"subscribed at epoch {baseline.epoch}: sensors with "
        f"P[NN] >= {TAU}: {confident(baseline.answer)}\n"
    )

    checked = 1
    for round_no in range(1, N_ROUNDS + 1):
        # A few sensors report fresh readings near the reference —
        # delete + insert, each classified against the standing watch.
        reporters = rng.choice(
            db.dataset.ids, size=min(N_REPORTS, len(db.dataset)),
            replace=False,
        )
        for oid in reporters:
            drift = rng.normal(scale=80.0, size=3)
            mean = np.clip(
                reference + drift, 20.0, SCALE - 20.0
            )
            db.delete(int(oid))
            db.insert(make_reading(int(oid), mean, rng))
        pushed = 0
        while (revision := watch.poll()) is not None:
            pushed += 1
            if revision.epoch == db.epoch:
                # Only the newest revision still reflects the live
                # state the exact re-computation would see.
                checked += 1
                check_against_exact(revision.answer)
            print(
                f"  alert @epoch {revision.epoch}: confident set -> "
                f"{confident(revision.answer)} of "
                f"{len(revision.answer)} candidates "
                f"({revision.suppressed_since_last} quiet epochs)"
            )
        print(
            f"round {round_no}: {2 * len(reporters)} mutations, "
            f"{pushed} alerts pushed"
        )
        while nn_sub.poll() is not None:
            pass  # the NN stream rides the same mutation epochs

    summary = db.describe()["subscriptions"]
    print(
        f"\n{summary['live']} standing queries; "
        f"{summary['revisions_emitted']} revisions emitted, "
        f"{summary['revisions_suppressed']} suppressed"
    )
    print(
        f"verifier decisions match exact Step-2 probabilities at all "
        f"{checked} checked revisions"
    )
    db.close()


if __name__ == "__main__":
    main()
