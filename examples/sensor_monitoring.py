"""Sensor monitoring: similarity search over noisy 3D sensor readings.

The paper's second motivating scenario: a natural-habitat monitoring
network where each node reports a (temperature, humidity, wind speed)
vector contaminated with measurement error.  Readings are uncertain
objects in a 3D attribute space; "which sensor most resembles reference
conditions?" is a PNNQ at the reference vector.

The example also demonstrates the probabilistic verifier (Ablation A4 /
reference [11] of the paper): deciding "is P[NN] >= tau?" from cheap
bounds, falling back to exact Step-2 evaluation only for borderline
candidates.

Run with::

    python examples/sensor_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import PNNQEngine, PVIndex, UncertainObject, gaussian_pdf
from repro.core.verifier import VerifierEngine
from repro.geometry import Rect
from repro.uncertain import UncertainDataset

N_SENSORS = 120
#: attribute space: temperature [0,50] C, humidity [0,100] %,
#: wind speed [0,30] m/s — normalized to a common [0,1000] scale so
#: Euclidean distance weighs the attributes comparably.
SCALE = 1000.0


def make_network(rng: np.random.Generator) -> UncertainDataset:
    """Sensors with Gaussian measurement error, clustered by biome."""
    domain = Rect.cube(0.0, SCALE, 3)
    biomes = rng.uniform(100.0, SCALE - 100.0, size=(6, 3))
    objects = []
    for oid in range(N_SENSORS):
        biome = biomes[oid % len(biomes)]
        mean = np.clip(
            biome + rng.normal(scale=60.0, size=3), 20.0, SCALE - 20.0
        )
        # Error bar per attribute: the uncertainty region is the
        # +-3 sigma box, the pdf a truncated Gaussian inside it.
        sigma = rng.uniform(3.0, 12.0)
        # +-3 sigma box, clipped to the attribute domain.
        lo = np.maximum(mean - 3.0 * sigma, 0.0)
        hi = np.minimum(mean + 3.0 * sigma, SCALE)
        region = Rect(lo, hi)
        instances, weights = gaussian_pdf(
            region, n_samples=100, rng=rng, sigma=sigma,
            mean=np.clip(mean, region.lo, region.hi),
        )
        objects.append(
            UncertainObject(
                oid=oid, region=region, instances=instances,
                weights=weights,
            )
        )
    return UncertainDataset(objects, domain=domain)


def main() -> None:
    rng = np.random.default_rng(29)
    network = make_network(rng)
    print(
        f"network: {N_SENSORS} sensors, 3D attribute space "
        f"(temperature, humidity, wind)"
    )

    index = PVIndex.build(network)
    print(f"PV-index built in {index.stats.build_seconds:.2f}s\n")

    # Reference conditions we want the most similar live reading to.
    reference = np.array([480.0, 510.0, 495.0])
    engine = PNNQEngine(network, index, secondary=index.secondary)
    result = engine.query(reference)

    print(f"sensors possibly nearest to reference {reference.tolist()}:")
    ranked = sorted(
        result.probabilities.items(), key=lambda kv: -kv[1]
    )
    for oid, prob in ranked[:5]:
        center = network[oid].region.center
        print(
            f"  sensor {oid:3d}  P = {prob:.4f}  "
            f"reading ≈ {np.round(center, 1).tolist()}"
        )

    # Threshold query via the verifier: who is NN with P >= 0.2?
    verifier = VerifierEngine(network, index)
    decisions = verifier.query(reference, tau=0.2)
    confident = sorted(oid for oid, ok in decisions.items() if ok)
    print(
        f"\nsensors with P[NN] >= 0.2: {confident} "
        f"(exact Step-2 evaluations: {verifier.exact_evaluations} of "
        f"{len(decisions)} candidates)"
    )

    # Verifier decisions agree with the exact probabilities.
    for oid, ok in decisions.items():
        assert ok == (result.probabilities.get(oid, 0.0) >= 0.2), (
            f"verifier disagrees on sensor {oid}"
        )
    print("verifier decisions match exact Step-2 probabilities")


if __name__ == "__main__":
    main()
