"""Concurrent clients: sessions, futures, and the coalescing scheduler.

Runs end-to-end in a few seconds::

    python examples/concurrent_clients.py

Walks through the submit-and-serve surface:

1. open a ``Database`` as a context manager and attach the serving
   layer with ``db.serve()``;
2. run several client threads, each holding its own ``Session`` and
   submitting probabilistic-NN queries that return ``QueryFuture``
   values immediately — concurrent queries of one template coalesce
   into single batched kernel dispatches;
3. interleave an ``insert`` from one client: it applies as an *epoch
   barrier*, so every future is tagged with the exact dataset epoch
   its answer reflects;
4. read the scheduler's counters to see how much concurrency became
   batch width.
"""

from __future__ import annotations

import threading

import numpy as np

from repro import Rect, UncertainObject, synthetic_dataset
from repro.api import Database
from repro.service import as_completed
from repro.uncertain import uniform_pdf


def make_object(oid: int, center, half: float = 30.0, seed: int = 0):
    region = Rect.from_center(np.asarray(center, float), half)
    instances, weights = uniform_pdf(
        region, 6, np.random.default_rng(seed)
    )
    return UncertainObject(oid, region, instances, weights)


def main(n: int = 300, clients: int = 4, queries_each: int = 25) -> None:
    with Database(
        synthetic_dataset(n=n, dims=2, u_max=400.0, n_samples=32, seed=7)
    ) as db:
        server = db.serve(workers=2)
        print(f"serving {db!r}")

        # 2. Client threads: submit everything, then gather futures.
        all_futures = []
        lock = threading.Lock()

        def client(cid: int) -> None:
            rng = np.random.default_rng(cid)
            session = server.session()
            points = db.dataset.domain.sample_points(queries_each, rng)
            futures = [session.nn(q) for q in points]
            if cid == 0:
                # 3. One client mutates mid-stream: an epoch barrier.
                futures.append(
                    session.insert(
                        make_object(99_000, [500.0, 500.0], seed=cid)
                    )
                )
                futures.append(session.nn(np.array([500.0, 500.0])))
            with lock:
                all_futures.extend(futures)

        threads = [
            threading.Thread(target=client, args=(cid,))
            for cid in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        by_epoch: dict[int, int] = {}
        for future in as_completed(all_futures, timeout=60):
            future.result()  # raises if the execution failed
            by_epoch[future.epoch] = by_epoch.get(future.epoch, 0) + 1
        print(f"completed {len(all_futures)} futures; answers per epoch:")
        for epoch in sorted(by_epoch):
            print(f"  epoch {epoch}: {by_epoch[epoch]} results")

        # 4. How much concurrency became batch width?
        stats = server.stats
        print(
            f"scheduler: {stats.submitted} submitted, "
            f"{stats.groups_dispatched} group dispatches, "
            f"{stats.coalesced} queries coalesced "
            f"(largest group {stats.largest_group}), "
            f"{stats.barriers} mutation barrier(s)"
        )
    print("database closed; server drained and detached")


if __name__ == "__main__":
    main()
