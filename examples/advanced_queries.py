"""Advanced query types: top-k, group NN, and reverse NN.

The paper's conclusion lists group NN [12] and reverse NN [13], [14]
queries as future work for the PV-index; this library implements them
(plus top-k probable NN [10]) on top of the same machinery.  The
scenario: a ride-hailing service over imprecisely-located drivers.

* **Top-k** — "show the rider the 3 drivers most likely to be closest".
* **Group NN** — "three friends share one pickup: which driver minimizes
  the total distance to all of them?"
* **Reverse NN** — "if we place a new surge-pricing beacon here, which
  drivers would have it as their nearest beacon?"

Run with::

    python examples/advanced_queries.py
"""

from __future__ import annotations

import numpy as np

from repro import PVIndex, UncertainObject, uniform_pdf
from repro.core import GroupNNEngine, ReverseNNEngine, TopKEngine
from repro.geometry import Rect
from repro.uncertain import UncertainDataset

N_DRIVERS = 120
DOMAIN = 10_000.0
LOCATION_ERROR = 350.0  # drivers report stale/imprecise positions


def make_drivers(rng: np.random.Generator) -> UncertainDataset:
    domain = Rect.cube(0.0, DOMAIN, 2)
    objects = []
    for oid in range(N_DRIVERS):
        center = rng.uniform(
            LOCATION_ERROR, DOMAIN - LOCATION_ERROR, size=2
        )
        region = Rect.from_center(
            center, [LOCATION_ERROR, LOCATION_ERROR]
        )
        instances, weights = uniform_pdf(region, 80, rng)
        objects.append(
            UncertainObject(
                oid=oid, region=region, instances=instances,
                weights=weights,
            )
        )
    return UncertainDataset(objects, domain=domain)


def main() -> None:
    rng = np.random.default_rng(11)
    drivers = make_drivers(rng)
    index = PVIndex.build(drivers)
    print(
        f"{N_DRIVERS} drivers indexed "
        f"(build {index.stats.build_seconds:.1f}s)\n"
    )

    # ------------------------------------------------------------------
    # Top-k probable NN: rank drivers for a single rider.
    rider = np.array([5200.0, 4700.0])
    topk = TopKEngine(drivers, index)
    result = topk.query(rider, k=3)
    print(f"top-3 drivers for rider at {rider.tolist()}:")
    for rank, (oid, prob) in enumerate(result.ranking, 1):
        print(f"  #{rank}: driver {oid:3d}  P[closest] = {prob:.3f}")
    print(f"  ({result.pruned} candidates pruned by probability bounds)")

    # ------------------------------------------------------------------
    # Group NN: one pickup point for three friends (sum of distances).
    friends = np.array(
        [[4500.0, 4500.0], [5500.0, 4200.0], [5000.0, 5600.0]]
    )
    group = GroupNNEngine(drivers, retriever=index)
    g = group.query(friends, aggregate="sum")
    print(
        f"\ngroup pickup for {len(friends)} friends "
        f"(sum-distance aggregate):"
    )
    for oid in sorted(g.probabilities, key=g.probabilities.get,
                      reverse=True)[:3]:
        print(f"  driver {oid:3d}  P[minimizes total] = "
              f"{g.probabilities[oid]:.3f}")

    # Max aggregate: minimize the worst friend's walk instead.
    g_max = group.query(friends, aggregate="max")
    print(
        f"  (fairness variant: driver {g_max.best} minimizes the "
        f"farthest friend's distance)"
    )

    # ------------------------------------------------------------------
    # Reverse NN: which drivers would a new beacon capture?
    beacon_region = Rect.from_center([5000.0, 5000.0], [50.0, 50.0])
    instances, weights = uniform_pdf(beacon_region, 50, rng)
    beacon = UncertainObject(
        oid=10_000, region=beacon_region, instances=instances,
        weights=weights,
    )
    rnn = ReverseNNEngine(drivers)
    r = rnn.query(beacon)
    captured = {
        oid: p for oid, p in r.probabilities.items() if p >= 0.5
    }
    print(
        f"\nbeacon at domain center: {len(r.candidate_ids)} candidate "
        f"drivers, {len(r.probabilities)} with non-zero probability, "
        f"{len(captured)} captured with P >= 0.5"
    )
    for oid, p in sorted(captured.items())[:5]:
        print(f"  driver {oid:3d}  P[beacon is NN] = {p:.3f}")

    # ------------------------------------------------------------------
    # Serving mode: all query engines share one batched API.  A block
    # of riders hitting the same few pickup zones is answered in one
    # call — repeats are deduplicated and Step-1 work is shared.
    zones = rng.uniform(1000.0, 9000.0, size=(4, 2))
    riders = zones[rng.integers(0, len(zones), size=24)]
    topk.stats.reset()
    rankings = topk.query_batch(riders, k=3)
    print(
        f"\nbatched top-3 for {len(riders)} riders over "
        f"{len(zones)} pickup zones: {topk.stats.dedup_hits} answered "
        f"by dedup, OR {topk.stats.object_retrieval * 1e3:.1f} ms, "
        f"PC {topk.stats.probability_computation * 1e3:.1f} ms"
    )
    assert len(rankings) == len(riders)


if __name__ == "__main__":
    main()
