"""Setuptools shim for environments without the wheel package.

All metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-build-isolation --no-use-pep517``.
"""

from setuptools import setup

setup()
