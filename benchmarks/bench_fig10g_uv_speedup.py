"""Fig 10(g): construction speedup of the PV-index over the UV-index.

Paper result: the PV-index builds 15-25x faster than the UV-index on 2D
data.  Our UV substitute shares the fast domination machinery instead of
[9]'s costly hyperbola intersections, so the measured factor is smaller;
the direction (PV faster) and its cause (per-object boundary refinement
in the UV-index) are preserved.  See EXPERIMENTS.md.
"""

from repro.bench import figures


def test_fig10g_uv_speedup(benchmark, record_figure, profile):
    kwargs = {"size": 200} if profile == "smoke" else {}
    result = benchmark.pedantic(
        figures.fig10g_uv_speedup,
        kwargs=kwargs,
        rounds=1,
        iterations=1,
    )
    record_figure(result)

    for row in result.rows:
        assert row["speedup"] > 1.0, (
            f"PV should build faster than UV on {row['dataset']}"
        )
