"""Fig 10(e): SE time decomposition — chooseCSet vs UBR computation.

Paper result: most of SE's time goes to UBR computation; IS spends more
on selection than FS but wins it back with a smaller C-set.
"""

from repro.bench import figures


def test_fig10e_se_time_split(benchmark, record_figure, profile):
    # Above k=200 objects so IS's C-set is genuinely smaller than FS's.
    kwargs = {"size": 300} if profile == "smoke" else {}
    result = benchmark.pedantic(
        figures.fig10e_se_time_split,
        kwargs=kwargs,
        rounds=1,
        iterations=1,
    )
    record_figure(result)

    rows = {r["strategy"]: r for r in result.rows}
    # The UBR phase dominates the selection phase for both strategies.
    for strategy in ("FS", "IS"):
        assert rows[strategy]["ubr_s"] >= rows[strategy]["choose_cset_s"]
    # IS's selection is the costlier of the two, its C-set the smaller.
    assert rows["IS"]["choose_cset_s"] >= rows["FS"]["choose_cset_s"] * 0.5
    assert rows["IS"]["mean_cset"] <= rows["FS"]["mean_cset"] + 1.0
