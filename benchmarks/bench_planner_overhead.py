"""Planner overhead: ``Database`` front door vs hand-picked engines.

The API PR's acceptance bar, measured over Fig 9(a)/(e)-style sweeps
(database size at 2D; dimensionality at fixed size):

* with the plan cache warm, answering through ``db.nn`` costs < 5%
  over calling the chosen engine directly (planning is one dict probe
  plus envelope assembly — off the hot path);
* the planner's pick is never worse than 1.5x the best hand-picked
  retriever (after its observed-cost calibration has seen each
  retriever run, which the serving loop provides for free).
"""

from __future__ import annotations

import contextlib
import gc
import time

import numpy as np

from repro import PNNQEngine, synthetic_dataset
from repro.api import Database
from repro.bench.figures import FigureResult

#: Forced queries per retriever during the calibration warmup.
N_CALIBRATE = 8
#: Measurement repetitions (per-query minimum taken).
ROUNDS = 10


@contextlib.contextmanager
def _gc_paused():
    """Collector off inside the timed region (the envelope path
    allocates more objects, so gen-0 collections would otherwise fire
    preferentially inside the side under test — a systematic bias,
    not a real per-query cost)."""
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _time_loop(fn, queries, rounds: int = ROUNDS) -> float:
    """Sum over the block of each query's best-of-rounds seconds.

    Per-query minima rather than block minima: a scheduler stall hits
    one call in one round, not the same call in every round, so the
    summed minima converge on the true cost while whole-block timing
    stays at the mercy of machine-load drift.
    """
    best = [float("inf")] * len(queries)
    with _gc_paused():
        for _ in range(rounds):
            for i, q in enumerate(queries):
                t0 = time.perf_counter()
                fn(q)
                best[i] = min(best[i], time.perf_counter() - t0)
    return sum(best)


def _paired_times(fn_a, fn_b, queries) -> tuple[float, float]:
    """Per-query best-of-ROUNDS for two functions, calls interleaved.

    A and B answer the same query back to back within each round, so
    both sides sample the same noise distribution; the pair order
    alternates per round because whoever runs second inherits warm CPU
    caches for that query's pdf arrays — with minima on both sides,
    each function keeps its best warm-position round.
    """
    best_a = [float("inf")] * len(queries)
    best_b = [float("inf")] * len(queries)
    with _gc_paused():
        for round_no in range(ROUNDS):
            first, second = (
                (fn_a, fn_b) if round_no % 2 else (fn_b, fn_a)
            )
            for i, q in enumerate(queries):
                t0 = time.perf_counter()
                first(q)
                t1 = time.perf_counter()
                second(q)
                t2 = time.perf_counter()
                d_first, d_second = t1 - t0, t2 - t1
                d_a, d_b = (
                    (d_first, d_second)
                    if first is fn_a
                    else (d_second, d_first)
                )
                best_a[i] = min(best_a[i], d_a)
                best_b[i] = min(best_b[i], d_b)
    return sum(best_a), sum(best_b)


def planner_overhead(
    sweeps: list[tuple[int, int]], n_queries: int = 40
) -> FigureResult:
    """Planned vs hand-picked PNNQ execution across (n, dims) sweeps."""
    result = FigureResult(
        figure="Planner overhead",
        title="Database front door vs hand-picked engines (PNNQ)",
        columns=(
            "n", "dims", "picked", "planned_ms", "picked_ms",
            "overhead_pct", "best_manual", "best_ms", "vs_best",
        ),
        notes=(
            "planned_ms = db.nn loop with a warm plan cache; "
            "picked_ms = direct engine loop with the same retriever; "
            "vs_best = planned_ms / best manual retriever's ms."
        ),
    )
    for n, dims in sweeps:
        # Large, dense uncertainty regions: candidate sets of several
        # objects make Step 2 dominate each query (around a
        # millisecond), so the per-query envelope cost is measured
        # against realistic work, not against a trivial lookup.  The
        # instance count is sized against the *tensorized* Step-2
        # kernel — at the pre-tensorization m=100 a query now costs
        # ~150 µs and any Python envelope would dwarf the 5% bar.
        dataset = synthetic_dataset(
            n=n, dims=dims, u_max=2000.0, n_samples=500, seed=n + dims
        )
        # No result caching on either side: repeats are not the thing
        # being measured, planning and envelope assembly are.
        db = Database(dataset, result_cache_size=0)
        rng_queries = dataset.domain.sample_points(
            n_queries, np.random.default_rng(99)
        )

        handles = ["brute", "pv", "rtree"] + (["uv"] if dims == 2 else [])
        # Calibration: run every retriever through the front door so
        # the planner's observed-cost averages cover all of them (and
        # the indexes get built outside the timed region).
        for name in handles:
            for q in rng_queries[:N_CALIBRATE]:
                db.nn(q, retriever=name)

        # Replan from the calibrated observations, then measure the
        # warm-cache front door against the direct engine holding the
        # very retriever the plan picked — interleaved, so the <5%
        # overhead claim is not at the mercy of machine-load drift.
        db.planner.invalidate()
        picked = db.explain("nn").retriever
        picked_index = None if picked == "brute" else db.index(picked)
        picked_engine = PNNQEngine(dataset, picked_index)
        planned_s, picked_s = _paired_times(
            db.nn, picked_engine.query, rng_queries
        )
        planned_ms, picked_ms = 1e3 * planned_s, 1e3 * picked_s

        # Hand-picked baselines for the remaining retrievers.
        manual_ms: dict[str, float] = {picked: picked_ms}
        for name in handles:
            if name == picked:
                continue
            index = None if name == "brute" else db.index(name)
            engine = PNNQEngine(dataset, index)
            manual_ms[name] = 1e3 * _time_loop(engine.query, rng_queries)

        best_manual = min(manual_ms, key=manual_ms.__getitem__)
        result.add(
            n=n,
            dims=dims,
            picked=picked,
            planned_ms=planned_ms,
            picked_ms=picked_ms,
            overhead_pct=100.0 * (planned_ms / picked_ms - 1.0),
            best_manual=best_manual,
            best_ms=manual_ms[best_manual],
            vs_best=planned_ms / manual_ms[best_manual],
        )
    return result


def test_planner_overhead(benchmark, record_figure, profile):
    sweeps = (
        [(100, 2), (200, 2), (120, 3)]
        if profile == "smoke"
        else [(200, 2), (400, 2), (800, 2), (200, 3), (200, 4)]
    )
    result = benchmark.pedantic(
        planner_overhead,
        kwargs={"sweeps": sweeps},
        rounds=1,
        iterations=1,
    )
    record_figure(result)

    for row in result.rows:
        # Warm-plan overhead vs calling the same engine directly.
        assert row["overhead_pct"] < 5.0, row
        # Never worse than 1.5x the best hand-picked retriever.
        assert row["vs_best"] < 1.5, row
