"""Fig 9(h): query time on the (simulated) real datasets.

Paper result: UV/PV are ~40% faster than the R-tree on the 2D datasets
(roads, rrlines); the PV-index is ~45% better on 3D airports.
"""

from repro.bench import figures


def test_fig9h_real_dbs(benchmark, record_figure, profile):
    kwargs = (
        {"size": 400, "n_queries": 10} if profile == "smoke" else {}
    )
    result = benchmark.pedantic(
        figures.fig9h_real_datasets,
        kwargs=kwargs,
        rounds=1,
        iterations=1,
    )
    record_figure(result)

    datasets = set(result.series("dataset"))
    assert datasets == {"roads", "rrlines", "airports"}
    # UV applies only to the 2D datasets.
    uv_datasets = {
        r["dataset"] for r in result.rows if r["index"] == "UV-index"
    }
    assert uv_datasets == {"roads", "rrlines"}
