"""Ablation A5: Z-order bulkloading and page compression.

The paper's conclusion lists bulkloading and compression as future
precomputation techniques; this bench quantifies them on the simulated
pager: bulk construction must produce an equivalent index, and
compaction reclaims the partially-filled pages construction leaves
behind.
"""

from repro.bench import figures


def test_ablation_bulkload(benchmark, record_figure, profile):
    sizes = (100, 200) if profile == "smoke" else (200, 400)
    result = benchmark.pedantic(
        figures.ablation_bulkload,
        kwargs={"sizes": sizes},
        rounds=1,
        iterations=1,
    )
    record_figure(result)

    for row in result.rows:
        assert row["tc_seconds"] > 0
        assert row["write_pages"] > 0
        assert row["pages_reclaimed"] >= 0
