"""Fig 9(e): query time vs dimensionality (R-tree, PV-index, UV at 2D).

Paper result: the PV-index is 20-40% faster than the R-tree at every d;
UV- and PV-index perform similarly at d=2 (UV's only supported case).
"""

from repro.bench import figures


def test_fig9e_query_vs_dim(benchmark, record_figure, profile):
    kwargs = (
        {"dims": (2, 3, 4), "size": 120, "n_queries": 10}
        if profile == "smoke"
        else {}
    )
    result = benchmark.pedantic(
        figures.fig9e_query_vs_dims,
        kwargs=kwargs,
        rounds=1,
        iterations=1,
    )
    record_figure(result)

    names = set(result.series("index"))
    assert names == {"R-tree", "PV-index", "UV-index"}
    # UV rows exist only at d=2.
    assert all(
        row["dims"] == 2
        for row in result.rows
        if row["index"] == "UV-index"
    )
