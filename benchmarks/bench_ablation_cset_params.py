"""Ablation A2: sensitivity to k (FS) and kpartition (IS).

Section VII-C(a): query time is quite stable across these parameters
(so choosing them is easy); construction time grows with both.
"""

from repro.bench import figures


def test_ablation_cset_params(benchmark, record_figure, profile):
    kwargs = (
        {
            "ks": (20, 100, 400),
            "kpartitions": (2, 10, 50),
            "size": 100,
            "n_queries": 10,
        }
        if profile == "smoke"
        else {}
    )
    result = benchmark.pedantic(
        figures.ablation_cset_parameters,
        kwargs=kwargs,
        rounds=1,
        iterations=1,
    )
    record_figure(result)

    # Construction time grows with k for FS (more domination tests).
    fs = [r for r in result.rows if r["strategy"] == "FS"]
    assert fs[-1]["tc_seconds"] >= fs[0]["tc_seconds"] * 0.8
    # All query times are finite and positive — the 'stability' claim is
    # a magnitude statement best judged from the recorded table.
    assert all(r["tq_ms"] >= 0 for r in result.rows)
