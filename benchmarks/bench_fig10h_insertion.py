"""Fig 10(h): per-object insertion cost — incremental vs rebuild.

Paper result: Inc is more than two orders of magnitude faster than
Rebuild (e.g. 2s vs 350s per object at 20k).  Both maintained index
families (PV-index and UV-index) report Inc and Rebuild as separate
series; incremental maintenance must also recompute strictly fewer
cells than reconstruction.
"""

from repro.bench import figures


def test_fig10h_insertion(benchmark, record_figure, profile):
    sizes = (300, 500) if profile == "smoke" else None
    result = benchmark.pedantic(
        figures.fig10h_insertion,
        kwargs={"sizes": sizes},
        rounds=1,
        iterations=1,
    )
    record_figure(result)

    largest = max(result.series("size"))
    rows = {
        (r["index"], r["method"]): r
        for r in result.rows
        if r["size"] == largest
    }
    for index in ("PV-index", "UV-index"):
        inc, rebuild = rows[(index, "Inc")], rows[(index, "Rebuild")]
        assert inc["tu_seconds"] < rebuild["tu_seconds"]
        assert inc["cells"] < rebuild["cells"]
