"""Ablation A4: probabilistic-verifier bounds vs full Step-2 evaluation.

The paper notes (referencing [11]) that cheap probability bounds can
avoid expensive exact Step-2 integrations; this measures the fraction of
candidates decided by bounds alone at threshold tau = 0.1.
"""

from repro.bench import figures


def test_ablation_verifier(benchmark, record_figure, profile):
    kwargs = (
        {"size": 150, "n_queries": 10} if profile == "smoke" else {}
    )
    result = benchmark.pedantic(
        figures.ablation_verifier,
        kwargs=kwargs,
        rounds=1,
        iterations=1,
    )
    record_figure(result)

    row = result.rows[0]
    assert 0.0 <= row["avoided_frac"] <= 1.0
    # The verifier decides at least some candidates without exact
    # evaluation at tau = 0.1 on uniform data.
    assert row["avoided_frac"] > 0.0
