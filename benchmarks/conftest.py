"""Shared fixtures for the figure-regeneration benchmarks.

Each benchmark runs one figure driver from :mod:`repro.bench.figures`
once (``benchmark.pedantic`` with a single round — the drivers do their
own repetition and averaging internally, mirroring the paper's
50-run averages), records the regenerated rows, and the collected tables
are appended to the terminal summary and written to
``benchmarks/results/``.

Two profiles control the sweep sizes:

* ``smoke`` (default) — small sweeps; the whole suite finishes in
  minutes on a laptop.
* ``full``  — the bench-scale defaults of :data:`repro.bench.config.SCALE`
  (set ``REPRO_BENCH_PROFILE=full``).
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
_COLLECTED: dict[str, str] = {}


@pytest.fixture(scope="session")
def profile() -> str:
    """Benchmark profile name: 'smoke' (default) or 'full'."""
    value = os.environ.get("REPRO_BENCH_PROFILE", "smoke")
    if value not in ("smoke", "full"):
        raise ValueError(
            f"REPRO_BENCH_PROFILE must be 'smoke' or 'full', got {value!r}"
        )
    return value


@pytest.fixture()
def record_figure():
    """Callable ``record(result)`` that archives a regenerated figure."""
    from repro.bench.reporting import format_figure

    def record(result) -> None:
        text = format_figure(result)
        _COLLECTED[result.figure] = text
        RESULTS_DIR.mkdir(exist_ok=True)
        slug = (
            result.figure.lower()
            .replace(" ", "_")
            .replace("(", "")
            .replace(")", "")
        )
        (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")

    return record


def pytest_terminal_summary(terminalreporter) -> None:
    if not _COLLECTED:
        return
    terminalreporter.write_sep("=", "regenerated paper figures")
    for name in sorted(_COLLECTED):
        terminalreporter.write_line(_COLLECTED[name])
        terminalreporter.write_line("")
