"""Table I: parameters and their default values (paper vs bench scale)."""

from repro.bench import figures


def test_table1_defaults(benchmark, record_figure):
    result = benchmark.pedantic(
        figures.table1_defaults, rounds=1, iterations=1
    )
    record_figure(result)
    assert len(result.rows) == 8
    params = result.series("parameter")
    assert params[0] == "|S|" and "delta" in params
