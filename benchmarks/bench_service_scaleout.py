"""Scale-out serving: shared-memory process pool vs thread workers.

M concurrent sessions issue a clustered PNNQ workload against a large
dataset through ``db.serve()`` twice per worker count — once with the
thread tier (brute-force Step 1, parallelism limited by the GIL) and
once with the process tier (``mode="process"``: workers attach the
packed instance store over ``multiprocessing.shared_memory`` and run
sharded scatter-gather Step 1, pruning MBR-dominated shards before
touching a single instance).  Queries are jittered object centers:
every query is distinct, so coalescing dedup and the result cache
(disabled anyway) cannot help either tier and the comparison isolates
execution, not reuse.

Writes ``benchmarks/results/BENCH_service_scaleout.json`` and
enforces the scale-out acceptance gate (also run by the CI perf-smoke
job):

* process-tier answers match thread-tier answers bit-for-bit;
* process QPS >= 1.8x thread QPS at 4 workers;
* the shard pruner actually pruned (counters are non-zero).

On single-core machines the win comes from shard pruning alone; on
multi-core machines process workers add true CPU parallelism on top.
The JSON records ``cpus`` so results are interpretable either way.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time

import numpy as np

from repro.api import Database
from repro.uncertain import clustered_dataset

RESULTS = pathlib.Path(__file__).parent / "results"

#: The acceptance bar: process QPS >= 1.8x thread QPS at 4 workers.
REQUIRED_SPEEDUP = 1.8

WORKER_COUNTS = (1, 2, 4)
GATE_WORKERS = 4

SMOKE = {"n_objects": 16_000, "n_samples": 8, "sessions": 4,
         "queries_per_session": 96, "repeats": 2}
FULL = {"n_objects": 24_000, "n_samples": 8, "sessions": 6,
        "queries_per_session": 128, "repeats": 3}


def make_db(n_objects: int, n_samples: int) -> Database:
    dataset = clustered_dataset(
        n=n_objects, dims=2, seed=5, n_samples=n_samples
    )
    # Cache off and no single-process indexes: the thread tier runs
    # brute-force Step 1, the process tier its sharded counterpart.
    return Database(dataset, indexes=(), result_cache_size=0)


def make_workload(
    db: Database, sessions: int, queries_per_session: int
) -> list[np.ndarray]:
    """Per-session arrays of distinct jittered object-center queries.

    Clustered centers keep the workload CPU-bound and prunable (most
    shards are MBR-dominated per query); the jitter keeps every query
    unique so in-flight dedup never fires.
    """
    ids, los, his = db.dataset.packed_regions()
    centers = (los + his) / 2.0
    workload = []
    for sid in range(sessions):
        rng = np.random.default_rng(900 + sid)
        pick = rng.integers(0, len(ids), size=queries_per_session)
        jitter = rng.normal(0.0, 5.0, size=(queries_per_session, 2))
        workload.append(
            np.clip(
                centers[pick] + jitter,
                db.dataset.domain.lo,
                db.dataset.domain.hi,
            )
        )
    return workload


def run_tier(params: dict, mode: str, workers: int):
    """One (mode, workers) cell: serve the whole workload, return QPS.

    The warm-up burst is large enough to scatter one coalesced group
    across every pool worker, so per-worker lazy initialisation
    (shared-segment attach, octree shard layout build) happens off the
    clock — the measurement is steady-state serving only.
    """
    db = make_db(params["n_objects"], params["n_samples"])
    workload = make_workload(
        db, params["sessions"], params["queries_per_session"]
    )
    options = {"workers": workers}
    if mode == "process":
        options["mode"] = "process"
    server = db.serve(**options)
    try:
        warm_session = server.session()
        warm = [warm_session.nn(q) for q in workload[0][:64]]
        for future in warm:
            future.result(timeout=300)

        answers = {}
        lock = threading.Lock()
        barrier = threading.Barrier(len(workload))

        def client(sid: int, queries: np.ndarray) -> None:
            session = server.session()
            barrier.wait(timeout=60)
            futures = [session.nn(q) for q in queries]
            resolved = [f.result(timeout=600) for f in futures]
            with lock:
                for qid, result in enumerate(resolved):
                    answers[(sid, qid)] = result

        threads = [
            threading.Thread(target=client, args=(sid, queries))
            for sid, queries in enumerate(workload)
        ]
        t0 = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=900)
        elapsed = time.perf_counter() - t0

        n_queries = params["sessions"] * params["queries_per_session"]
        assert len(answers) == n_queries, "lost answers"
        snapshot = getattr(server, "scaleout_snapshot", None)
        scaleout = snapshot() if snapshot is not None else {}
    finally:
        db.close()
    return n_queries / elapsed, answers, scaleout


def measure(params: dict) -> tuple[list[dict], dict]:
    """All (mode, workers) cells plus the bit-identity cross-check."""
    cells = []
    gate_answers: dict[str, dict] = {}
    for workers in WORKER_COUNTS:
        row: dict = {"workers": workers}
        for mode in ("thread", "process"):
            repeats = params["repeats"] if workers == GATE_WORKERS else 1
            best_qps, answers, scaleout = 0.0, None, {}
            for _ in range(repeats):
                qps, run_answers, run_scaleout = run_tier(
                    params, mode, workers
                )
                if qps > best_qps:
                    best_qps, answers, scaleout = (
                        qps, run_answers, run_scaleout
                    )
            row[f"{mode}_qps"] = best_qps
            if mode == "process":
                row["n_shards"] = scaleout.get("n_shards")
                row["shards_dispatched"] = scaleout.get(
                    "shards_dispatched"
                )
                row["shards_pruned"] = scaleout.get("shards_pruned")
            if workers == GATE_WORKERS:
                gate_answers[mode] = answers
        row["speedup"] = row["process_qps"] / row["thread_qps"]
        cells.append(row)

    # Bit-identity across tiers at the gate cell: the sharded
    # scatter-gather path must answer exactly like brute force.
    thread_answers = gate_answers["thread"]
    process_answers = gate_answers["process"]
    assert thread_answers.keys() == process_answers.keys()
    sharded_plans = 0
    for key, want in thread_answers.items():
        got = process_answers[key]
        assert dict(got.probabilities) == dict(want.probabilities), key
        sharded_plans += got.plan.retriever == "sharded"
    assert sharded_plans == len(process_answers), (
        "process tier did not run the sharded retriever"
    )
    gate = next(c for c in cells if c["workers"] == GATE_WORKERS)
    return cells, gate


def test_service_scaleout(profile, record_figure):
    from repro.bench.figures import FigureResult

    params = SMOKE if profile == "smoke" else FULL
    cells, gate = measure(params)

    RESULTS.mkdir(exist_ok=True)
    payload = {
        "benchmark": "service_scaleout",
        "profile": profile,
        "cpus": os.cpu_count(),
        "required_speedup": REQUIRED_SPEEDUP,
        "gate_workers": GATE_WORKERS,
        "params": params,
        "cells": cells,
    }
    (RESULTS / "BENCH_service_scaleout.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    result = FigureResult(
        figure="BENCH service scaleout",
        title="Thread workers vs shared-memory process pool (PNNQ)",
        columns=(
            "workers", "thread_qps", "process_qps", "speedup",
            "shards", "dispatched", "pruned",
        ),
        notes=(
            "clustered jittered-center workload, result cache off; "
            "thread tier = brute Step 1, process tier = shm attach + "
            f"sharded scatter-gather; cpus={os.cpu_count()}."
        ),
    )
    for cell in cells:
        result.add(
            workers=cell["workers"],
            thread_qps=cell["thread_qps"],
            process_qps=cell["process_qps"],
            speedup=cell["speedup"],
            shards=cell["n_shards"],
            dispatched=cell["shards_dispatched"],
            pruned=cell["shards_pruned"],
        )
    record_figure(result)

    assert gate["shards_pruned"] > 0, "shard pruner never pruned"
    assert gate["speedup"] >= REQUIRED_SPEEDUP, gate
