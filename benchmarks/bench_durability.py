"""Durability: WAL append throughput, checkpoint cost, replay speed.

Runs the insert/delete workload through a :class:`~repro.storage.
DurableStore` under both fsync policies, then times a cold recovery
(snapshot mmap + full WAL replay) and cross-checks that the recovered
dataset is bit-identical to the uninterrupted one — the same contract
the kill-and-recover oracle enforces under SIGKILL.

Writes ``benchmarks/results/BENCH_durability.json`` and enforces the
durability acceptance gate (also run by the CI perf-smoke job):

* recovery replays the WAL at >= 200 mutations/s (a deliberately
  generous floor — regressions of interest are order-of-magnitude,
  e.g. accidentally rebuilding an index per record);
* the recovered dataset matches the live one bit-for-bit (ids,
  epochs, instance and weight arrays, and a probe PNNQ answer).
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np

from repro.api import Database
from repro.geometry import Rect
from repro.storage import DurableStore
from repro.uncertain import UncertainObject, synthetic_dataset, uniform_pdf

RESULTS = pathlib.Path(__file__).parent / "results"

#: Floor on cold-recovery WAL replay speed, mutations per second.
REQUIRED_REPLAY_RATE = 200.0

SMOKE = {"n_objects": 2_000, "n_samples": 4, "mutations": 300}
FULL = {"n_objects": 8_000, "n_samples": 4, "mutations": 1_000}

_INSERT_BASE_OID = 1_000_000


def make_dataset(params: dict):
    return synthetic_dataset(
        n=params["n_objects"],
        dims=2,
        seed=17,
        n_samples=params["n_samples"],
    )


def apply_mutation(dataset, i: int) -> None:
    """Deterministic mutation ``i``: ~1/3 deletes, 2/3 fresh inserts."""
    rng = np.random.default_rng(40_000 + i)
    live = dataset.ids
    if rng.random() < 0.33 and len(live) > 2:
        dataset.delete(live[int(rng.integers(len(live)))])
        return
    lo = rng.uniform(500.0, 9_000.0, size=2)
    region = Rect(lo, lo + rng.uniform(20.0, 120.0, size=2))
    instances, weights = uniform_pdf(region, 4, rng)
    dataset.insert(
        UncertainObject(
            oid=_INSERT_BASE_OID + i,
            region=region,
            instances=instances,
            weights=weights,
        )
    )


def run_policy(tmp_path, params: dict, fsync: str) -> dict:
    """One fsync policy: WAL throughput, checkpoint cost, recovery."""
    n = params["mutations"]
    path = tmp_path / f"db-{fsync}"
    dataset = make_dataset(params)
    store = DurableStore(path, fsync=fsync)
    store.initialize(dataset)
    store.attach(dataset)

    t0 = time.perf_counter()
    for i in range(n):
        apply_mutation(dataset, i)
    wal_seconds = time.perf_counter() - t0
    store._wal.flush()  # fsync="off": make the tail durable for replay

    t0 = time.perf_counter()
    recovered = DurableStore(path).recover()
    recovery_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    checkpoint_epoch = store.checkpoint()
    checkpoint_seconds = time.perf_counter() - t0
    store.close()

    # Bit-identity: recovery reproduced the uninterrupted run exactly.
    assert recovered.epoch == dataset.epoch == checkpoint_epoch
    assert recovered.ids == dataset.ids
    for oid in dataset.ids:
        assert np.array_equal(
            recovered[oid].instances, dataset[oid].instances
        )
        assert np.array_equal(
            recovered[oid].weights, dataset[oid].weights
        )
    probe = [5_000.0, 5_000.0]
    want = Database(dataset).nn(probe)
    got = Database(recovered).nn(probe)
    assert dict(got.answer.probabilities) == dict(
        want.answer.probabilities
    )

    return {
        "fsync": fsync,
        "mutations": n,
        "wal_seconds": wal_seconds,
        "wal_mutations_per_s": n / wal_seconds,
        "checkpoint_seconds": checkpoint_seconds,
        "recovery_seconds": recovery_seconds,
        "replay_mutations_per_s": n / max(recovery_seconds, 1e-9),
    }


def test_durability(profile, record_figure, tmp_path):
    from repro.bench.figures import FigureResult

    params = SMOKE if profile == "smoke" else FULL
    rows = [
        run_policy(tmp_path, params, fsync)
        for fsync in ("off", "always")
    ]

    RESULTS.mkdir(exist_ok=True)
    payload = {
        "benchmark": "durability",
        "profile": profile,
        "required_replay_rate": REQUIRED_REPLAY_RATE,
        "params": params,
        "rows": rows,
    }
    (RESULTS / "BENCH_durability.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    result = FigureResult(
        figure="BENCH durability",
        title="WAL throughput, checkpoint cost, and replay speed",
        columns=(
            "fsync", "mutations", "wal_mutations_per_s",
            "checkpoint_seconds", "recovery_seconds",
            "replay_mutations_per_s",
        ),
        notes=(
            "snapshot mmap + contiguous WAL replay; bit-identity with "
            "the uninterrupted run is asserted per row."
        ),
    )
    for row in rows:
        result.add(**{k: row[k] for k in result.columns})
    record_figure(result)

    for row in rows:
        assert row["replay_mutations_per_s"] >= REQUIRED_REPLAY_RATE, (
            f"replay too slow under fsync={row['fsync']}: "
            f"{row['replay_mutations_per_s']:.0f} < {REQUIRED_REPLAY_RATE}"
        )
