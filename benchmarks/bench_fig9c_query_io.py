"""Fig 9(c): per-query page I/O vs database size (3D).

Paper result: the PV-index's leaf-access cost is ~20% of the R-tree's —
one octree leaf per point query vs several overlapping R-tree leaves.
"""

from repro.bench import figures


def test_fig9c_query_io(benchmark, record_figure, profile):
    sizes = (100, 200) if profile == "smoke" else None
    result = benchmark.pedantic(
        figures.fig9c_query_io_vs_size,
        kwargs={"sizes": sizes, "n_queries": 10},
        rounds=1,
        iterations=1,
    )
    record_figure(result)

    largest = max(result.series("size"))
    rows = {
        row["index"]: row
        for row in result.rows
        if row["size"] == largest
    }
    assert rows["PV-index"]["io_pages"] <= rows["R-tree"]["io_pages"]
