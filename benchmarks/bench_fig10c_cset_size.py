"""Fig 10(c): construction time of FS vs IS across database sizes.

Paper result: IS always beats FS — it selects a smaller C-set (~120 vs
200 objects), which more than pays for its costlier selection phase.
"""

from repro.bench import figures


def test_fig10c_construction_vs_size(benchmark, record_figure, profile):
    # IS's smaller C-set only materializes once |S| exceeds FS's k=200
    # (below that both strategies return essentially the whole DB).
    sizes = (250, 450) if profile == "smoke" else None
    result = benchmark.pedantic(
        figures.fig10c_construction_vs_size,
        kwargs={"sizes": sizes},
        rounds=1,
        iterations=1,
    )
    record_figure(result)

    largest = max(result.series("size"))
    rows = {
        r["strategy"]: r for r in result.rows if r["size"] == largest
    }
    # IS's C-set is smaller than FS's fixed k at every scale the paper
    # tests; time comparisons at smoke scale are noisy, the C-set size
    # relation is the structural claim.
    assert rows["IS"]["mean_cset"] <= rows["FS"]["mean_cset"] + 1.0
