"""Ablation A8: batched query execution vs the single-query loop.

The unified execution layer's ``query_batch`` deduplicates repeat
queries, shares Step-1 retrieval, and vectorizes Step-2 across queries
with a common candidate set.  On a 200-query serving workload drawn
from a small set of hot spots it must beat the equivalent
``engine.query`` loop; on an all-distinct uniform workload its overhead
must stay negligible.
"""

from repro.bench import figures


def test_ablation_batch(benchmark, record_figure, profile):
    kwargs = (
        {"size": 120, "n_queries": 200, "n_hot": 32}
        if profile == "smoke"
        else {"n_queries": 200}
    )
    result = benchmark.pedantic(
        figures.ablation_batch,
        kwargs=kwargs,
        rounds=1,
        iterations=1,
    )
    record_figure(result)

    rows = {row["workload"]: row for row in result.rows}
    # The acceptance bar: batch beats the loop on the 200-query
    # hot-spot workload (it answers only the distinct fraction).
    assert rows["hotspot"]["n_queries"] == 200
    assert rows["hotspot"]["speedup"] > 1.0
    # All-distinct queries bound the batch overhead.
    assert rows["uniform"]["speedup"] > 0.5
