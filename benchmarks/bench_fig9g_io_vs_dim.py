"""Fig 9(g): per-query page I/O vs dimensionality.

Paper result: the PV-index's page accesses stay below the R-tree's at
every dimensionality, mirroring the Fig 9(c) gap.
"""

from repro.bench import figures


def test_fig9g_io_vs_dim(benchmark, record_figure, profile):
    kwargs = (
        {"dims": (2, 3), "size": 120, "n_queries": 10}
        if profile == "smoke"
        else {}
    )
    result = benchmark.pedantic(
        figures.fig9g_io_vs_dims,
        kwargs=kwargs,
        rounds=1,
        iterations=1,
    )
    record_figure(result)

    for d in set(result.series("dims")):
        rows = {
            r["index"]: r for r in result.rows if r["dims"] == d
        }
        assert (
            rows["PV-index"]["io_pages"]
            <= rows["R-tree"]["io_pages"] + 1.0
        )
