"""Ablation A6: top-k probable NN latency and bound pruning vs k.

Reference [10]'s query class on top of the PV-index: latency should be
flat-ish in k (Step 1 dominates) and the number of returned answers
grows toward the candidate-set size.
"""

from repro.bench import figures


def test_ablation_topk(benchmark, record_figure, profile):
    kwargs = (
        {"ks": (1, 2, 4), "size": 150, "n_queries": 10}
        if profile == "smoke"
        else {}
    )
    result = benchmark.pedantic(
        figures.ablation_topk,
        kwargs=kwargs,
        rounds=1,
        iterations=1,
    )
    record_figure(result)

    # Returned answers never exceed k and grow with it.
    counts = result.series("mean_candidates")
    ks = result.series("k")
    assert all(c <= k for c, k in zip(counts, ks))
    assert counts == sorted(counts)
