"""Fig 10(b): construction time with ALL vs FS vs IS C-set strategies.

Paper result: ALL is catastrophically slow (103 hours at 20k objects);
FS and IS finish in minutes.  The bench keeps ALL to tiny databases and
exposes the same blow-up.
"""

from repro.bench import figures


def test_fig10b_cset_all_fs_is(benchmark, record_figure, profile):
    # ALL's cost blow-up appears once |S| clearly exceeds FS's k = 200
    # (below that, the whole database is a *smaller* C-set than FS's).
    sizes = (100, 250, 400) if profile == "smoke" else None
    result = benchmark.pedantic(
        figures.fig10b_cset_all_fs_is,
        kwargs={"sizes": sizes},
        rounds=1,
        iterations=1,
    )
    record_figure(result)

    largest = max(result.series("size"))
    rows = {
        r["strategy"]: r["tc_seconds"]
        for r in result.rows
        if r["size"] == largest
    }
    # ALL must be the slowest strategy at the largest size.
    assert rows["ALL"] >= rows["FS"]
    assert rows["ALL"] >= rows["IS"]
