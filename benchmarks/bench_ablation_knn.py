"""Ablation A7: probabilistic k-NN cost and candidate growth vs k.

k = 1 is the paper's PNNQ (PV-index-accelerated); larger k exercises
the exact k-th-maxdist Step-1 filter and the Poisson-binomial Step 2.
"""

from repro.bench import figures


def test_ablation_knn(benchmark, record_figure, profile):
    kwargs = (
        {"ks": (1, 2, 4), "size": 150, "n_queries": 10}
        if profile == "smoke"
        else {}
    )
    result = benchmark.pedantic(
        figures.ablation_knn,
        kwargs=kwargs,
        rounds=1,
        iterations=1,
    )
    record_figure(result)

    # Candidates grow with k.  Probability mass is min(k, candidates)
    # per query (the exact invariant is unit-tested); the mean over
    # queries is therefore bounded by both k and the mean candidate
    # count, and grows with k.
    cands = result.series("mean_candidates")
    assert cands == sorted(cands)
    masses = result.series("prob_mass")
    assert masses == sorted(masses)
    for row in result.rows:
        assert row["prob_mass"] <= row["k"] + 1e-6
        assert row["prob_mass"] <= row["mean_candidates"] + 1e-6
