"""Continuous queries: revision throughput and suppression ratio.

A moving-sensor workload — a fleet of uncertain objects, a panel of
standing ``nn`` subscriptions, and a mutation stream of delete+reinsert
movements — pumped through the subscription manager twice:

* **filtered** — the production path: each mutation is classified
  against every subscription's min-max watch radius (plus the UV
  candidate probe where applicable) and only affected subscriptions
  re-execute;
* **naive** — the same subscriptions with ``eager=True``, re-executing
  every subscription at every epoch (the poll-loop the subsystem
  replaces).

Both paths must produce identical revision streams (asserted per
subscription); the filtered path earns its keep by skipping provably
irrelevant work.  Writes ``benchmarks/results/BENCH_subscriptions.json``
and enforces the acceptance gate (also run by the CI perf-smoke job):

* filtered mutation throughput >= ``REQUIRED_SPEEDUP`` x naive;
* suppression ratio >= ``REQUIRED_SUPPRESSION`` (most movements are
  provably irrelevant to most watches, so the filter must say so).
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np

from repro.api import Database
from repro.geometry import Rect
from repro.service.subscriptions import answers_equal
from repro.uncertain import UncertainDataset, UncertainObject, uniform_pdf

RESULTS = pathlib.Path(__file__).parent / "results"

#: Gate: filtered mutation throughput must beat eager re-execution by
#: at least this factor on the moving-sensor workload.
REQUIRED_SPEEDUP = 3.0
#: Gate: fraction of (subscription x epoch) slots suppressed.
REQUIRED_SUPPRESSION = 0.5

SMOKE = {"n_objects": 400, "n_subs": 24, "mutations": 60}
FULL = {"n_objects": 2_000, "n_subs": 64, "mutations": 300}

DOMAIN_HI = 10_000.0
HALF = 30.0  # uncertainty half-width of a sensor reading
N_SAMPLES = 20


def make_object(oid: int, center: np.ndarray, rng) -> UncertainObject:
    region = Rect.from_center(
        np.clip(center, HALF, DOMAIN_HI - HALF), [HALF, HALF]
    )
    instances, weights = uniform_pdf(region, N_SAMPLES, rng)
    return UncertainObject(
        oid=oid, region=region, instances=instances, weights=weights
    )


def make_fleet(params: dict) -> UncertainDataset:
    rng = np.random.default_rng(17)
    objects = [
        make_object(oid, rng.uniform(0.0, DOMAIN_HI, size=2), rng)
        for oid in range(params["n_objects"])
    ]
    return UncertainDataset(objects, domain=Rect.cube(0.0, DOMAIN_HI, 2))


def movement(db: Database, i: int) -> None:
    """Mutation ``i``: one sensor moves (delete + reinsert)."""
    rng = np.random.default_rng(40_000 + i)
    ids = db.dataset.ids
    oid = int(ids[int(rng.integers(len(ids)))])
    center = db.dataset[oid].region.center + rng.uniform(
        -300.0, 300.0, size=2
    )
    db.delete(oid)
    db.insert(make_object(oid, center, rng))


def run_mode(params: dict, eager: bool) -> dict:
    """Pump the movement stream through n_subs standing queries."""
    rng = np.random.default_rng(7)
    db = Database(make_fleet(params), indexes=())
    subs = [
        db.subscribe(
            "nn",
            rng.uniform(0.0, DOMAIN_HI, size=2),
            eager=eager,
            max_pending=params["mutations"] + 2,
        )
        for _ in range(params["n_subs"])
    ]
    streams = {sub.sid: [sub.poll()] for sub in subs}

    n = params["mutations"]
    t0 = time.perf_counter()
    for i in range(n):
        movement(db, i)
    for sub in subs:  # drain (movement pumps inline; poll is a no-op)
        while (revision := sub.poll()) is not None:
            streams[sub.sid].append(revision)
    seconds = time.perf_counter() - t0

    stats = db.subscriptions.stats_snapshot()
    emitted = stats.revisions_emitted - len(subs)  # minus baselines
    suppressed = stats.revisions_suppressed
    db.close()
    return {
        "mode": "naive" if eager else "filtered",
        "mutations": n,
        "subscriptions": len(subs),
        "seconds": seconds,
        "mutations_per_s": n / max(seconds, 1e-9),
        "revisions_emitted": emitted,
        "revisions_suppressed": suppressed,
        "suppression_ratio": suppressed / max(1, emitted + suppressed),
        "streams": streams,
    }


def test_subscriptions(profile, record_figure):
    from repro.bench.figures import FigureResult

    params = SMOKE if profile == "smoke" else FULL
    filtered = run_mode(params, eager=False)
    naive = run_mode(params, eager=True)

    # Identical revision streams: the filter is pure optimization.
    for sid, want in naive.pop("streams").items():
        got = filtered["streams"][sid]
        assert [r.epoch for r in got] == [r.epoch for r in want]
        for a, b in zip(got, want):
            assert answers_equal("nn", a.answer, b.answer)
    filtered.pop("streams")

    rows = [filtered, naive]
    speedup = (
        filtered["mutations_per_s"] / max(naive["mutations_per_s"], 1e-9)
    )

    RESULTS.mkdir(exist_ok=True)
    payload = {
        "benchmark": "subscriptions",
        "profile": profile,
        "required_speedup": REQUIRED_SPEEDUP,
        "required_suppression": REQUIRED_SUPPRESSION,
        "params": params,
        "speedup": speedup,
        "rows": rows,
    }
    (RESULTS / "BENCH_subscriptions.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    result = FigureResult(
        figure="BENCH subscriptions",
        title="Standing-query pump: filtered vs eager re-execution",
        columns=(
            "mode", "mutations", "subscriptions", "mutations_per_s",
            "revisions_emitted", "revisions_suppressed",
            "suppression_ratio",
        ),
        notes=(
            f"moving-sensor workload; filtered speedup {speedup:.1f}x "
            "over eager; identical revision streams asserted per "
            "subscription."
        ),
    )
    for row in rows:
        result.add(**{k: row[k] for k in result.columns})
    record_figure(result)

    assert speedup >= REQUIRED_SPEEDUP, (
        f"relevance filter too weak: filtered is only {speedup:.2f}x "
        f"naive (< {REQUIRED_SPEEDUP}x)"
    )
    assert filtered["suppression_ratio"] >= REQUIRED_SUPPRESSION, (
        f"suppression ratio {filtered['suppression_ratio']:.2f} < "
        f"{REQUIRED_SUPPRESSION}"
    )
