"""Fig 10(a): PV-index construction time vs the SE threshold delta.

Paper result: Tc drops as delta grows — SE needs fewer bisection rounds
to converge.
"""

from repro.bench import figures


def test_fig10a_construction_vs_delta(benchmark, record_figure, profile):
    kwargs = (
        {"size": 100} if profile == "smoke" else {}
    )
    result = benchmark.pedantic(
        figures.fig10a_construction_vs_delta,
        kwargs=kwargs,
        rounds=1,
        iterations=1,
    )
    record_figure(result)

    # Iterations decrease monotonically in delta; time follows suit
    # modulo noise, so assert the robust endpoint comparison.
    iters = result.series("se_iterations")
    assert iters == sorted(iters, reverse=True)
    assert result.rows[-1]["tc_seconds"] <= result.rows[0]["tc_seconds"]
