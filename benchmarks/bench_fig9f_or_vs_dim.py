"""Fig 9(f): Step-1 object-retrieval time vs dimensionality.

Paper result: T_OR rises with d and the PV-index's stays below the
R-tree's; for d >= 3 the R-tree spends over 60% of Tq on OR.
"""

from repro.bench import figures


def test_fig9f_or_vs_dim(benchmark, record_figure, profile):
    kwargs = (
        {"dims": (2, 3), "size": 120, "n_queries": 10}
        if profile == "smoke"
        else {}
    )
    result = benchmark.pedantic(
        figures.fig9f_or_vs_dims,
        kwargs=kwargs,
        rounds=1,
        iterations=1,
    )
    record_figure(result)
    assert all(row["t_or_ms"] >= 0.0 for row in result.rows)
