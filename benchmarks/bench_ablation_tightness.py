"""Ablation A3: UBR tightness against a Monte-Carlo PV-cell MBR.

Checks Section V's claim that SE's UBR is only slightly larger than the
(intractable) exact MBR, and that no sampled PV-cell point ever falls
outside its UBR (conservativeness — the correctness invariant).
"""

from repro.bench import figures


def test_ablation_tightness(benchmark, record_figure, profile):
    kwargs = (
        {"deltas": (1.0, 100.0), "size": 60, "n_probe": 2048}
        if profile == "smoke"
        else {}
    )
    result = benchmark.pedantic(
        figures.ablation_ubr_tightness,
        kwargs=kwargs,
        rounds=1,
        iterations=1,
    )
    record_figure(result)

    # Conservativeness is non-negotiable at every delta.
    assert all(r["containment_violations"] == 0 for r in result.rows)
    # The UBR contains the MC inner bound, so the ratio is >= ~1.
    assert all(r["mean_volume_ratio"] >= 0.99 for r in result.rows)
    # Looseness does not improve when delta gets coarser.
    ratios = result.series("mean_volume_ratio")
    assert ratios[-1] >= ratios[0] * 0.99
