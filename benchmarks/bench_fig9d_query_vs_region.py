"""Fig 9(d): query time vs uncertainty-region size |u(o)|.

Paper result: Tq grows with |u(o)| for both indexes (larger regions mean
more non-zero-probability answers), with the PV-index consistently
faster thanks to its better I/O profile.
"""

from repro.bench import figures


def test_fig9d_query_vs_region(benchmark, record_figure, profile):
    kwargs = (
        {"u_maxes": (20.0, 60.0, 100.0), "size": 120, "n_queries": 10}
        if profile == "smoke"
        else {"n_queries": None}
    )
    result = benchmark.pedantic(
        figures.fig9d_query_vs_region,
        kwargs=kwargs,
        rounds=1,
        iterations=1,
    )
    record_figure(result)

    # Tq trends upward in |u(o)| for each index (allowing noise at the
    # small smoke scale: last point >= first point).
    for name in ("R-tree", "PV-index"):
        series = [r for r in result.rows if r["index"] == name]
        assert series[-1]["t_pc_ms"] >= 0.0
        assert len(series) >= 2
