"""Fig 9(a): query time vs database size, PV-index vs R-tree (3D).

Paper result: the PV-index is 38-40% faster than the R-tree across all
database sizes, because Step-1 object retrieval is ~6x cheaper.
"""

from repro.bench import figures


def test_fig9a_query_vs_size(benchmark, record_figure, profile):
    sizes = (100, 200, 300) if profile == "smoke" else None
    result = benchmark.pedantic(
        figures.fig9a_query_vs_size,
        kwargs={"sizes": sizes, "n_queries": 10},
        rounds=1,
        iterations=1,
    )
    record_figure(result)

    # Shape check: PV Step-1 (OR) time beats the R-tree's on the largest
    # database, which is what drives the paper's overall Tq win.
    by_index = {}
    largest = max(result.series("size"))
    for row in result.rows:
        if row["size"] == largest:
            by_index[row["index"]] = row
    assert by_index["PV-index"]["t_or_ms"] <= by_index["R-tree"]["t_or_ms"]
