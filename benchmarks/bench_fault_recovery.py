"""Fault recovery: the latency cost of losing a worker mid-service.

Serves a steady stream of PNNQ queries through the shared-memory
process pool, then repeats the stream while one worker process is
SIGKILLed halfway through.  Every query must still complete, exactly
once, with answers bit-identical to a brute-force reference — the
retry machinery may re-dispatch or fall back inline, but it must not
drop, duplicate, or corrupt anything.

Writes ``benchmarks/results/BENCH_fault_recovery.json`` and enforces
the recovery acceptance gate (also run by the CI chaos job):

* the kill-phase p99 latency stays within ``MAX_P99_RATIO`` x the
  fault-free baseline p99 (with an absolute floor so micro-latency
  noise cannot trip the ratio) — i.e. losing a worker costs bounded
  tail latency, not a stall;
* the pool actually recovered: the retry and worker-restart counters
  both advanced.
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np

from repro.api import Database
from repro.uncertain import synthetic_dataset

RESULTS = pathlib.Path(__file__).parent / "results"

#: Kill-phase p99 may cost at most this multiple of the baseline p99.
MAX_P99_RATIO = 5.0
#: ...but never less than this many seconds (micro-latency noise guard).
P99_FLOOR_SECONDS = 0.5

SMOKE = {"n_objects": 400, "n_samples": 4, "queries": 80}
FULL = {"n_objects": 2_000, "n_samples": 4, "queries": 300}


def make_queries(db: Database, n: int) -> np.ndarray:
    rng = np.random.default_rng(47)
    return rng.uniform(
        db.dataset.domain.lo, db.dataset.domain.hi, size=(n, 2)
    )


def run_stream(db, queries, *, kill_server=None) -> tuple[list, list]:
    """Serve the stream; optionally SIGKILL one worker halfway."""
    kill_at = len(queries) // 2 if kill_server is not None else None
    latencies: list[float] = []
    answers: list[dict] = []
    for i, q in enumerate(queries):
        if i == kill_at:
            victim = kill_server._procs[0]
            victim.proc.kill()
            victim.proc.join(5)
        t0 = time.perf_counter()
        result = db.nn(q)
        latencies.append(time.perf_counter() - t0)
        answers.append(dict(result.probabilities))
    return latencies, answers


def test_fault_recovery(profile, record_figure):
    from repro.bench.figures import FigureResult

    params = SMOKE if profile == "smoke" else FULL
    dataset = synthetic_dataset(
        n=params["n_objects"],
        dims=2,
        seed=23,
        n_samples=params["n_samples"],
    )
    reference = Database(
        synthetic_dataset(
            n=params["n_objects"],
            dims=2,
            seed=23,
            n_samples=params["n_samples"],
        )
    )
    db = Database(dataset)
    try:
        server = db.serve(workers=2, mode="process")
        queries = make_queries(db, params["queries"])
        want = [
            dict(reference.nn(q, retriever="brute").probabilities)
            for q in queries
        ]

        base_lat, base_answers = run_stream(db, queries)
        kill_lat, kill_answers = run_stream(db, queries, kill_server=server)
        recovery = server.recovery_snapshot()
    finally:
        db.close()
        reference.close()

    # Exactly-once, uncorrupted: every query of both phases answered,
    # bit-identical to the brute-force reference.
    assert len(base_answers) == len(kill_answers) == len(queries)
    for got_base, got_kill, expected in zip(
        base_answers, kill_answers, want
    ):
        assert got_base == expected
        assert got_kill == expected
    assert recovery["retries"] >= 1, "the kill never forced a retry"
    assert recovery["worker_restarts"] >= 1, "no replacement was spawned"

    base_p99 = float(np.percentile(base_lat, 99))
    kill_p99 = float(np.percentile(kill_lat, 99))
    budget = max(MAX_P99_RATIO * base_p99, P99_FLOOR_SECONDS)

    row = {
        "queries": len(queries),
        "baseline_p50_ms": float(np.percentile(base_lat, 50)) * 1e3,
        "baseline_p99_ms": base_p99 * 1e3,
        "kill_p50_ms": float(np.percentile(kill_lat, 50)) * 1e3,
        "kill_p99_ms": kill_p99 * 1e3,
        "p99_ratio": kill_p99 / max(base_p99, 1e-9),
        "retries": recovery["retries"],
        "worker_restarts": recovery["worker_restarts"],
    }

    RESULTS.mkdir(exist_ok=True)
    payload = {
        "benchmark": "fault_recovery",
        "profile": profile,
        "max_p99_ratio": MAX_P99_RATIO,
        "p99_floor_seconds": P99_FLOOR_SECONDS,
        "params": params,
        "rows": [row],
    }
    (RESULTS / "BENCH_fault_recovery.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    result = FigureResult(
        figure="BENCH fault recovery",
        title="Tail-latency cost of one worker kill mid-stream",
        columns=(
            "queries", "baseline_p50_ms", "baseline_p99_ms",
            "kill_p50_ms", "kill_p99_ms", "p99_ratio",
            "retries", "worker_restarts",
        ),
        notes=(
            "one worker SIGKILLed at the stream midpoint; all answers "
            "asserted bit-identical to brute force in both phases."
        ),
    )
    result.add(**row)
    record_figure(result)

    assert kill_p99 <= budget, (
        f"worker-kill p99 {kill_p99 * 1e3:.1f}ms exceeds the recovery "
        f"budget {budget * 1e3:.1f}ms "
        f"(baseline p99 {base_p99 * 1e3:.1f}ms x {MAX_P99_RATIO})"
    )
