"""Fig 10(d): construction time of FS vs IS across |u(o)|.

Paper result: Tc rises with the uncertainty-region size for both
strategies, and IS stays below FS.
"""

from repro.bench import figures


def test_fig10d_construction_vs_region(benchmark, record_figure, profile):
    kwargs = (
        {"u_maxes": (20.0, 100.0), "size": 250}
        if profile == "smoke"
        else {}
    )
    result = benchmark.pedantic(
        figures.fig10d_construction_vs_region,
        kwargs=kwargs,
        rounds=1,
        iterations=1,
    )
    record_figure(result)
    assert all(r["tc_seconds"] > 0 for r in result.rows)
    assert {r["strategy"] for r in result.rows} == {"FS", "IS"}
