"""Old-vs-new Step-2 kernel: the tensorization speedup, measured.

Times the retained pre-tensorization reference
(``tests/reference_step2.py``) against the packed-store global-sort
kernel across an ``(n candidates, m samples, b queries)`` grid, checks
the answers agree to 1e-9, and writes the machine-readable trajectory
file ``benchmarks/results/BENCH_step2_kernel.json``.

Gates (also enforced as the CI perf-smoke job):

* answers match the reference to <= 1e-9 on every cell;
* the tensorized kernel is faster than the reference everywhere, and
  at least 5x faster on the pinned ``n=32, m=500, b=8`` cell (the
  acceptance cell of the tensorization PR).
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

import numpy as np

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "tests")
)
from reference_step2 import (  # noqa: E402
    reference_qualification_probabilities,
)

from repro import synthetic_dataset  # noqa: E402
from repro.engine import (  # noqa: E402
    batched_qualification_probabilities,
)

RESULTS = pathlib.Path(__file__).parent / "results"
#: The acceptance cell: >= 5x over the reference is required here.
PINNED_CELL = (32, 500, 8)
ROUNDS = 3

SMOKE_GRID = [(8, 100, 4), PINNED_CELL]
FULL_GRID = SMOKE_GRID + [
    (64, 500, 8),
    (32, 500, 32),
    (16, 1000, 16),
    (128, 200, 8),
]


def _best_of(fn, rounds: int = ROUNDS) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def measure_cell(n: int, m: int, b: int, seed: int = 1) -> dict:
    """One grid cell: both kernels on identical candidates/queries."""
    ds = synthetic_dataset(
        n=n + 8, dims=2, u_max=600.0, n_samples=m, seed=seed
    )
    ids = ds.ids[:n]
    queries = ds.domain.sample_points(b, np.random.default_rng(seed))
    ds.instance_store()  # build outside the timed region

    ref_s, ref_rows = _best_of(
        lambda: reference_qualification_probabilities(ds, ids, queries)
    )
    new_s, new_rows = _best_of(
        lambda: batched_qualification_probabilities(ds, ids, queries)
    )

    max_diff = max(
        abs(ref_row[oid] - new_row[oid])
        for ref_row, new_row in zip(ref_rows, new_rows)
        for oid in ref_row
    )
    return {
        "n": n,
        "m": m,
        "b": b,
        "reference_seconds": ref_s,
        "tensorized_seconds": new_s,
        "speedup": ref_s / new_s,
        "max_abs_diff": max_diff,
    }


def test_step2_kernel_speedup(profile, record_figure):
    from repro.bench.figures import FigureResult

    grid = SMOKE_GRID if profile == "smoke" else FULL_GRID
    cells = [measure_cell(n, m, b) for n, m, b in grid]

    RESULTS.mkdir(exist_ok=True)
    payload = {
        "benchmark": "step2_kernel",
        "profile": profile,
        "pinned_cell": {"n": PINNED_CELL[0], "m": PINNED_CELL[1],
                        "b": PINNED_CELL[2]},
        "cells": cells,
    }
    (RESULTS / "BENCH_step2_kernel.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    result = FigureResult(
        figure="BENCH step2 kernel",
        title="Step-2 kernel: packed-store tensorized vs reference",
        columns=(
            "n", "m", "b", "ref_ms", "new_ms", "speedup", "max_diff",
        ),
        notes=(
            "best-of-3 wall clock on one shared candidate set; "
            "max_diff is over all (query, candidate) probabilities."
        ),
    )
    for cell in cells:
        result.add(
            n=cell["n"],
            m=cell["m"],
            b=cell["b"],
            ref_ms=1e3 * cell["reference_seconds"],
            new_ms=1e3 * cell["tensorized_seconds"],
            speedup=cell["speedup"],
            max_diff=cell["max_abs_diff"],
        )
    record_figure(result)

    for cell in cells:
        assert cell["max_abs_diff"] <= 1e-9, cell
        assert cell["speedup"] >= 1.0, cell
        if (cell["n"], cell["m"], cell["b"]) == PINNED_CELL:
            assert cell["speedup"] >= 5.0, cell
