"""Serving throughput: the coalescing scheduler vs per-query calls.

M concurrent sessions issue a hot-spot PNNQ workload (the serving
regime: heavy traffic concentrated on a small set of popular
locations, so identical in-flight queries are common) through
``db.serve()``; the same workload is then issued sequentially, one
synchronous ``db.nn`` call per query, against an identically
configured database.  The result cache is disabled in **both** paths
so the comparison isolates the scheduler itself — in-flight
coalescing (single-flight dedup of identical queued queries) plus
batched Step-1/Step-2 dispatch — rather than completed-result reuse,
which would benefit both paths equally.

Writes ``benchmarks/results/BENCH_service_throughput.json`` and
enforces the serving-layer acceptance gate (also run by the CI
perf-smoke job):

* answers from the served path match the sequential path exactly;
* coalesced throughput is at least 2x sequential throughput.
"""

from __future__ import annotations

import json
import pathlib
import threading
import time

import numpy as np

from repro import synthetic_dataset
from repro.api import Database
from repro.bench.workloads import hotspot_query_points

RESULTS = pathlib.Path(__file__).parent / "results"

#: The acceptance bar: served QPS must be >= 2x sequential QPS.
REQUIRED_SPEEDUP = 2.0

SMOKE = {"n_objects": 300, "n_samples": 96, "u_max": 900.0,
         "sessions": 6, "queries_per_session": 40, "n_hot": 12,
         "workers": 2}
FULL = {"n_objects": 400, "n_samples": 128, "u_max": 1200.0,
        "sessions": 12, "queries_per_session": 60, "n_hot": 16,
        "workers": 2}


def make_db(n_objects: int, n_samples: int, u_max: float) -> Database:
    dataset = synthetic_dataset(
        n=n_objects, dims=2, u_max=u_max, n_samples=n_samples, seed=7
    )
    # Cache off: isolate scheduling, not result reuse (see module doc).
    return Database(dataset, indexes=(), result_cache_size=0)


def make_workload(
    db: Database, sessions: int, queries_per_session: int, n_hot: int
) -> list[np.ndarray]:
    """Per-session query arrays over one shared hot-spot set."""
    return [
        hotspot_query_points(
            db.dataset,
            n=queries_per_session,
            n_hot=n_hot,
            seed=100 + i,
        )
        for i in range(sessions)
    ]


def run_sequential(db: Database, workload: list[np.ndarray]):
    """The baseline: every query its own synchronous call."""
    answers = {}
    t0 = time.perf_counter()
    for sid, queries in enumerate(workload):
        for qid, q in enumerate(queries):
            answers[(sid, qid)] = db.nn(q)
    return time.perf_counter() - t0, answers


def run_served(db: Database, workload: list[np.ndarray], workers: int):
    """M client threads submitting through coalescing sessions."""
    server = db.serve(workers=workers)
    answers = {}
    lock = threading.Lock()
    barrier = threading.Barrier(len(workload))

    def client(sid: int, queries: np.ndarray) -> None:
        session = server.session()
        barrier.wait(timeout=60)
        futures = [session.nn(q) for q in queries]
        resolved = [future.result(timeout=120) for future in futures]
        with lock:
            for qid, result in enumerate(resolved):
                answers[(sid, qid)] = result

    threads = [
        threading.Thread(target=client, args=(sid, queries))
        for sid, queries in enumerate(workload)
    ]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    elapsed = time.perf_counter() - t0
    stats = server.stats
    server.close()
    return elapsed, answers, stats


def measure(profile_params: dict) -> dict:
    params = dict(profile_params)
    workers = params.pop("workers")
    sessions = params.pop("sessions")
    queries_per_session = params.pop("queries_per_session")
    n_hot = params.pop("n_hot")

    seq_db = make_db(**params)
    workload = make_workload(seq_db, sessions, queries_per_session, n_hot)
    seq_seconds, seq_answers = run_sequential(seq_db, workload)

    srv_db = make_db(**params)
    srv_seconds, srv_answers, stats = run_served(
        srv_db, workload, workers
    )

    assert seq_answers.keys() == srv_answers.keys()
    for key, want in seq_answers.items():
        got = srv_answers[key]
        assert dict(got.probabilities) == dict(want.probabilities), key

    n_queries = sessions * queries_per_session
    return {
        "n_objects": params["n_objects"],
        "n_samples": params["n_samples"],
        "u_max": params["u_max"],
        "sessions": sessions,
        "queries_per_session": queries_per_session,
        "n_hot": n_hot,
        "workers": workers,
        "n_queries": n_queries,
        "sequential_seconds": seq_seconds,
        "served_seconds": srv_seconds,
        "sequential_qps": n_queries / seq_seconds,
        "served_qps": n_queries / srv_seconds,
        "speedup": seq_seconds / srv_seconds,
        "groups_dispatched": stats.groups_dispatched,
        "coalesced": stats.coalesced,
        "largest_group": stats.largest_group,
    }


def test_service_throughput(profile, record_figure):
    from repro.bench.figures import FigureResult

    cell = measure(SMOKE if profile == "smoke" else FULL)

    RESULTS.mkdir(exist_ok=True)
    payload = {
        "benchmark": "service_throughput",
        "profile": profile,
        "required_speedup": REQUIRED_SPEEDUP,
        "cell": cell,
    }
    (RESULTS / "BENCH_service_throughput.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    result = FigureResult(
        figure="BENCH service throughput",
        title="Coalescing scheduler vs sequential per-query execution",
        columns=(
            "sessions", "queries", "seq_qps", "served_qps", "speedup",
            "groups", "coalesced", "max_group",
        ),
        notes=(
            "hot-spot PNNQ workload, result cache off in both paths; "
            "served = M client threads through db.serve() sessions."
        ),
    )
    result.add(
        sessions=cell["sessions"],
        queries=cell["n_queries"],
        seq_qps=cell["sequential_qps"],
        served_qps=cell["served_qps"],
        speedup=cell["speedup"],
        groups=cell["groups_dispatched"],
        coalesced=cell["coalesced"],
        max_group=cell["largest_group"],
    )
    record_figure(result)

    assert cell["coalesced"] > 0, "scheduler never coalesced anything"
    assert cell["speedup"] >= REQUIRED_SPEEDUP, cell
