"""Fig 10(f): construction time (FS vs IS) on the real datasets.

Paper result: IS is faster than FS on all three datasets.
"""

from repro.bench import figures


def test_fig10f_real_construction(benchmark, record_figure, profile):
    kwargs = {"size": 200} if profile == "smoke" else {}
    result = benchmark.pedantic(
        figures.fig10f_real_construction,
        kwargs=kwargs,
        rounds=1,
        iterations=1,
    )
    record_figure(result)
    assert {r["dataset"] for r in result.rows} == {
        "roads", "rrlines", "airports",
    }
    assert all(r["tc_seconds"] > 0 for r in result.rows)
