"""Fig 10(i): per-object deletion cost — incremental vs rebuild.

Paper result: Inc is much faster than Rebuild at every database size.
"""

from repro.bench import figures


def test_fig10i_deletion(benchmark, record_figure, profile):
    sizes = (300, 500) if profile == "smoke" else None
    result = benchmark.pedantic(
        figures.fig10i_deletion,
        kwargs={"sizes": sizes},
        rounds=1,
        iterations=1,
    )
    record_figure(result)

    largest = max(result.series("size"))
    rows = {
        r["method"]: r["tu_seconds"]
        for r in result.rows
        if r["size"] == largest
    }
    assert rows["Inc"] < rows["Rebuild"]
