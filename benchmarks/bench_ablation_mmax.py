"""Ablation A1: m_max — partition budget of domination-count estimation.

Section V-B remark: partition granularity trades the accuracy of the
emptiness test (and therefore UBR tightness) against its runtime.  A
coarser m_max must never make a UBR *tighter*; it can only leave it
looser (the conservative direction).
"""

from repro.bench import figures


def test_ablation_mmax(benchmark, record_figure, profile):
    kwargs = (
        {"m_maxes": (2, 5, 10, 20), "size": 80}
        if profile == "smoke"
        else {}
    )
    result = benchmark.pedantic(
        figures.ablation_mmax,
        kwargs=kwargs,
        rounds=1,
        iterations=1,
    )
    record_figure(result)

    # Mean UBR volume is non-increasing in m_max (finer partitioning
    # detects more empty slabs, so SE shrinks more).
    volumes = result.series("mean_ubr_volume")
    assert volumes[-1] <= volumes[0] * 1.0000001
