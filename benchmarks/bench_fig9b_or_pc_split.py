"""Fig 9(b): decomposition of the query time into OR and PC.

Paper result: PC cost is identical for both indexes (same Step-2 code);
the PV-index spends about 1/6 of the R-tree's time on OR.
"""

from repro.bench import figures


def test_fig9b_or_pc_split(benchmark, record_figure, profile):
    size = 200 if profile == "smoke" else None
    result = benchmark.pedantic(
        figures.fig9b_or_pc_split,
        kwargs={"size": size, "n_queries": 10},
        rounds=1,
        iterations=1,
    )
    record_figure(result)

    rows = {row["index"]: row for row in result.rows}
    assert set(rows) == {"R-tree", "PV-index"}
    # PC uses identical code on an identical candidate set: within noise.
    pc = [row["t_pc_ms"] for row in result.rows]
    assert min(pc) >= 0.0
    # The PV-index's OR phase is the cheaper one.
    assert rows["PV-index"]["t_or_ms"] <= rows["R-tree"]["t_or_ms"] * 1.5
