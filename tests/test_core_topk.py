"""Tests for top-k probable NN queries (repro.core.topk)."""

import numpy as np
import pytest

from repro import PVIndex, synthetic_dataset
from repro.core import TopKEngine, qualification_probabilities
from repro.core.pvcell import possible_nn_ids


@pytest.fixture(scope="module")
def dense():
    """A dense 2D dataset where queries see several candidates."""
    dataset = synthetic_dataset(
        n=60, dims=2, u_max=2500.0, n_samples=60, seed=11
    )
    index = PVIndex.build(dataset)
    return dataset, index


def brute_force_ranking(dataset, query, k):
    ids = sorted(possible_nn_ids(dataset, query))
    probs = qualification_probabilities(dataset, ids, query)
    ranked = sorted(probs.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked[:k]


class TestTopKCorrectness:
    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_matches_brute_force(self, dense, k):
        dataset, index = dense
        engine = TopKEngine(dataset, index)
        rng = np.random.default_rng(5)
        for query in rng.uniform(0, 10_000, size=(8, 2)):
            result = engine.query(query, k=k)
            expected = brute_force_ranking(dataset, query, k)
            assert list(result.ids) == [oid for oid, _ in expected]
            for (oid, p), (eoid, ep) in zip(result.ranking, expected):
                assert oid == eoid
                assert p == pytest.approx(ep, abs=1e-12)

    def test_k_larger_than_candidates(self, dense):
        dataset, index = dense
        engine = TopKEngine(dataset, index)
        query = np.array([5000.0, 5000.0])
        n_candidates = len(index.candidates(query))
        result = engine.query(query, k=n_candidates + 10)
        assert len(result.ranking) <= n_candidates

    def test_probabilities_descending(self, dense):
        dataset, index = dense
        engine = TopKEngine(dataset, index)
        result = engine.query(np.array([3000.0, 7000.0]), k=5)
        probs = [p for _oid, p in result.ranking]
        assert probs == sorted(probs, reverse=True)

    def test_top1_is_pnnq_best(self, dense):
        dataset, index = dense
        from repro.core import PNNQEngine

        topk = TopKEngine(dataset, index)
        pnnq = PNNQEngine(dataset, index)
        for query in np.random.default_rng(9).uniform(
            0, 10_000, size=(5, 2)
        ):
            top = topk.query(query, k=1)
            full = pnnq.query(query)
            if full.probabilities:
                best_prob = max(full.probabilities.values())
                assert top.ranking[0][1] == pytest.approx(
                    best_prob, abs=1e-12
                )


class TestTopKPruning:
    def test_pruned_candidates_cannot_reach_topk(self, dense):
        """Pruning must never change the returned ranking."""
        dataset, index = dense
        eager = TopKEngine(dataset, index, n_bins=16)
        rng = np.random.default_rng(13)
        for query in rng.uniform(0, 10_000, size=(10, 2)):
            result = eager.query(query, k=2)
            expected = brute_force_ranking(dataset, query, 2)
            assert list(result.ids) == [oid for oid, _ in expected]

    def test_pruned_counter_nonnegative(self, dense):
        dataset, index = dense
        engine = TopKEngine(dataset, index)
        result = engine.query(np.array([1234.0, 5678.0]), k=1)
        assert result.pruned >= 0


class TestTopKValidation:
    def test_k_zero_rejected(self, dense):
        dataset, index = dense
        engine = TopKEngine(dataset, index)
        with pytest.raises(ValueError, match="k must be >= 1"):
            engine.query(np.array([0.0, 0.0]), k=0)

    def test_times_accumulate(self, dense):
        dataset, index = dense
        engine = TopKEngine(dataset, index)
        engine.query(np.array([100.0, 100.0]), k=1)
        engine.query(np.array([200.0, 200.0]), k=1)
        assert engine.times.queries == 2
        assert engine.times.total > 0.0
