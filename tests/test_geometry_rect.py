"""Unit tests for repro.geometry.rect."""

import numpy as np
import pytest

from repro.geometry import Rect


class TestConstruction:
    def test_basic(self):
        r = Rect([0, 0], [1, 2])
        assert r.dims == 2
        assert r.volume == 2.0

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            Rect([1, 0], [0, 1])

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError):
            Rect([0, 0], [1, 1, 1])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Rect([], [])

    def test_rejects_2d_corner_arrays(self):
        with pytest.raises(ValueError):
            Rect([[0, 0]], [[1, 1]])

    def test_from_point_is_degenerate(self):
        r = Rect.from_point([3, 4, 5])
        assert r.volume == 0.0
        assert r.contains_point([3, 4, 5])

    def test_from_center_scalar_half_width(self):
        r = Rect.from_center([5, 5], 2)
        assert np.allclose(r.lo, [3, 3])
        assert np.allclose(r.hi, [7, 7])

    def test_from_center_vector_half_width(self):
        r = Rect.from_center([0, 0], [1, 2])
        assert np.allclose(r.side_lengths, [2, 4])

    def test_from_center_negative_half_width(self):
        with pytest.raises(ValueError):
            Rect.from_center([0, 0], -1)

    def test_cube(self):
        r = Rect.cube(0, 10, 4)
        assert r.dims == 4
        assert r.volume == 10**4

    def test_cube_rejects_zero_dims(self):
        with pytest.raises(ValueError):
            Rect.cube(0, 1, 0)

    def test_bounding(self):
        r = Rect.bounding([Rect([0, 0], [1, 1]), Rect([2, -1], [3, 0.5])])
        assert np.allclose(r.lo, [0, -1])
        assert np.allclose(r.hi, [3, 1])

    def test_bounding_empty(self):
        with pytest.raises(ValueError):
            Rect.bounding([])

    def test_bounding_points(self):
        pts = np.array([[0.0, 5.0], [2.0, 1.0], [1.0, 3.0]])
        r = Rect.bounding_points(pts)
        assert np.allclose(r.lo, [0, 1])
        assert np.allclose(r.hi, [2, 5])

    def test_bounding_points_empty(self):
        with pytest.raises(ValueError):
            Rect.bounding_points(np.empty((0, 2)))


class TestProperties:
    def test_center(self):
        assert np.allclose(Rect([0, 0], [4, 2]).center, [2, 1])

    def test_margin(self):
        assert Rect([0, 0], [4, 2]).margin() == 6.0

    def test_max_side(self):
        assert Rect([0, 0, 0], [1, 5, 2]).max_side == 5.0

    def test_nbytes_scales_with_dims(self):
        assert Rect.cube(0, 1, 3).nbytes() == 48


class TestPredicates:
    def test_contains_point_boundary(self):
        r = Rect([0, 0], [1, 1])
        assert r.contains_point([0, 0])
        assert r.contains_point([1, 1])
        assert not r.contains_point([1.0001, 0.5])

    def test_contains_rect(self):
        outer = Rect([0, 0], [10, 10])
        assert outer.contains_rect(Rect([1, 1], [9, 9]))
        assert outer.contains_rect(outer)
        assert not outer.contains_rect(Rect([1, 1], [11, 9]))

    def test_intersects_touching(self):
        a = Rect([0, 0], [1, 1])
        b = Rect([1, 0], [2, 1])  # shares an edge
        assert a.intersects(b)

    def test_intersects_disjoint(self):
        assert not Rect([0, 0], [1, 1]).intersects(Rect([2, 2], [3, 3]))

    def test_intersection(self):
        inter = Rect([0, 0], [2, 2]).intersection(Rect([1, 1], [3, 3]))
        assert inter == Rect([1, 1], [2, 2])

    def test_intersection_disjoint_is_none(self):
        assert Rect([0, 0], [1, 1]).intersection(Rect([5, 5], [6, 6])) is None

    def test_union(self):
        u = Rect([0, 0], [1, 1]).union(Rect([2, -1], [3, 0]))
        assert u == Rect([0, -1], [3, 1])


class TestGeometryHelpers:
    def test_clip_point_inside(self):
        r = Rect([0, 0], [1, 1])
        assert np.allclose(r.clip_point(np.array([0.5, 0.5])), [0.5, 0.5])

    def test_clip_point_outside(self):
        r = Rect([0, 0], [1, 1])
        assert np.allclose(r.clip_point(np.array([5, -3])), [1, 0])

    def test_corners_count(self):
        assert Rect.cube(0, 1, 3).corners().shape == (8, 3)

    def test_corners_values_2d(self):
        corners = Rect([0, 0], [1, 2]).corners()
        expected = {(0, 0), (1, 0), (0, 2), (1, 2)}
        assert {tuple(c) for c in corners} == expected

    def test_split_at(self):
        low, high = Rect([0, 0], [4, 4]).split_at(0, 1.0)
        assert low == Rect([0, 0], [1, 4])
        assert high == Rect([1, 0], [4, 4])

    def test_split_at_outside_raises(self):
        with pytest.raises(ValueError):
            Rect([0, 0], [4, 4]).split_at(0, 5.0)

    def test_quadrants_partition_volume(self):
        r = Rect([0, 0, 0], [2, 4, 6])
        quads = list(r.quadrants())
        assert len(quads) == 8
        assert np.isclose(sum(q.volume for q in quads), r.volume)

    def test_quadrant_index_bits(self):
        r = Rect([0, 0], [2, 2])
        q3 = r.quadrant(3)  # high in both dims
        assert q3 == Rect([1, 1], [2, 2])

    def test_quadrant_out_of_range(self):
        with pytest.raises(ValueError):
            Rect([0, 0], [1, 1]).quadrant(4)

    def test_sample_points_inside(self):
        rng = np.random.default_rng(0)
        r = Rect([1, 2], [3, 4])
        pts = r.sample_points(100, rng)
        assert pts.shape == (100, 2)
        assert all(r.contains_point(p) for p in pts)

    def test_expanded(self):
        r = Rect([0, 0], [1, 1]).expanded(0.5)
        assert r == Rect([-0.5, -0.5], [1.5, 1.5])

    def test_expanded_collapse_raises(self):
        with pytest.raises(ValueError):
            Rect([0, 0], [1, 1]).expanded(-1.0)


class TestDunder:
    def test_eq_and_hash(self):
        a = Rect([0, 0], [1, 1])
        b = Rect([0.0, 0.0], [1.0, 1.0])
        assert a == b
        assert hash(a) == hash(b)

    def test_neq_other_type(self):
        assert Rect([0], [1]) != "rect"

    def test_copy_is_independent(self):
        a = Rect([0, 0], [1, 1])
        b = a.copy()
        b.lo[0] = -5
        assert a.lo[0] == 0

    def test_repr_roundtrip_info(self):
        assert "Rect" in repr(Rect([0], [1]))
