"""Integration smoke tests: every example runs end-to-end (downscaled).

The examples are the library's public-facing walkthroughs; each embeds
its own assertions (ground-truth cross-checks, probability sanity), so
running them at reduced size is a meaningful end-to-end test of the
public API.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def load_example(name: str):
    """Import an example script as a module."""
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesSmoke:
    def test_quickstart(self, capsys):
        module = load_example("quickstart")
        module.main(n=60)
        out = capsys.readouterr().out
        assert "Step-1 verified against brute force" in out
        assert "after inserting object" in out

    def test_vehicle_tracking(self, capsys, monkeypatch):
        module = load_example("vehicle_tracking")
        monkeypatch.setattr(module, "N_VEHICLES", 40)
        monkeypatch.setattr(module, "N_MOVERS", 2)
        monkeypatch.setattr(module, "N_EPOCHS", 1)
        module.main()
        out = capsys.readouterr().out
        assert "dispatcher subscribed" in out
        assert "epoch 1" in out
        assert "standing query summary" in out

    def test_sensor_monitoring(self, capsys, monkeypatch):
        module = load_example("sensor_monitoring")
        monkeypatch.setattr(module, "N_SENSORS", 30)
        module.main()
        out = capsys.readouterr().out
        assert "verifier decisions match exact Step-2" in out

    def test_privacy_aware_poi(self, capsys, monkeypatch):
        module = load_example("privacy_aware_poi")
        monkeypatch.setattr(module, "N_POI", 40)
        monkeypatch.setattr(module, "N_QUERIES", 5)
        module.main()
        out = capsys.readouterr().out
        assert "PV-index and R-tree exact" in out

    def test_advanced_queries(self, capsys, monkeypatch):
        module = load_example("advanced_queries")
        monkeypatch.setattr(module, "N_DRIVERS", 35)
        module.main()
        out = capsys.readouterr().out
        assert "top-3 drivers" in out
        assert "group pickup" in out
        assert "beacon at domain center" in out

    def test_dynamic_updates(self, capsys):
        module = load_example("dynamic_updates")
        module.main(n=60)
        out = capsys.readouterr().out
        assert "cells re-derived" in out
        assert "all dynamic-update checks passed" in out

    def test_concurrent_clients(self, capsys):
        module = load_example("concurrent_clients")
        module.main(n=60, clients=3, queries_each=8)
        out = capsys.readouterr().out
        assert "mutation barrier(s)" in out
        assert "database closed; server drained and detached" in out


class TestExamplesHygiene:
    @pytest.mark.parametrize(
        "name",
        [
            "quickstart",
            "vehicle_tracking",
            "sensor_monitoring",
            "privacy_aware_poi",
            "advanced_queries",
            "dynamic_updates",
            "concurrent_clients",
        ],
    )
    def test_has_module_docstring_and_main(self, name):
        module = load_example(name)
        assert module.__doc__, f"{name} missing docstring"
        assert callable(getattr(module, "main", None))
