"""The ``repro.analysis`` checker suite: clean on the repo, and each
deliberately-broken fixture produces exactly one structured finding.
"""

from __future__ import annotations

import importlib
import os
import pathlib
import subprocess
import sys

from repro.analysis import run_all
from repro.analysis.fault_check import check_fault_sites
from repro.analysis.findings import (
    Finding,
    load_baseline,
    save_baseline,
)
from repro.analysis.lock_check import check_lock_order
from repro.analysis.process_check import (
    check_exception_roundtrip,
    check_monotonic,
)
from repro.analysis.stats_check import check_stats

REPO_ROOT = pathlib.Path(__file__).parent.parent
FIXTURES = pathlib.Path(__file__).parent / "analysis_fixtures"


# ----------------------------------------------------------------------
# The repo itself is clean
# ----------------------------------------------------------------------
def test_repo_passes_every_checker():
    findings = run_all(REPO_ROOT)
    assert findings == [], "\n".join(f.render() for f in findings)


def test_cli_exits_zero_on_clean_repo():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 finding(s)" in proc.stdout


# ----------------------------------------------------------------------
# Fixture violations: exactly one finding each
# ----------------------------------------------------------------------
def test_missing_stats_field_is_one_finding():
    findings = check_stats(FIXTURES / "missing_stats_field.py")
    assert len(findings) == 1, findings
    f = findings[0]
    assert f.checker == "stats" and f.code == "S003"
    assert "cache_hits" in f.message and "reset" in f.message


def test_inverted_lock_acquisition_is_one_finding():
    findings = check_lock_order([FIXTURES / "inverted_locks.py"])
    assert len(findings) == 1, findings
    f = findings[0]
    assert f.checker == "lock-order" and f.code == "L001"
    assert "durable.ckpt_lock" in f.message
    assert "dataset.store_lock" in f.message


def test_unknown_fault_site_is_one_finding():
    findings = check_fault_sites(
        [FIXTURES / "unknown_fault_site.py"],
        require_all_sites_used=False,
    )
    assert len(findings) == 1, findings
    f = findings[0]
    assert f.checker == "fault-sites" and f.code == "F001"
    assert "proc.chnk" in f.message


def test_unpicklable_worker_exception_is_one_finding():
    module = importlib.import_module(
        "analysis_fixtures.unpicklable_error"
    )
    findings = check_exception_roundtrip(
        FIXTURES / "unpicklable_error.py", vars(module)
    )
    assert len(findings) == 1, findings
    f = findings[0]
    assert f.checker == "process-safety" and f.code == "P001"
    assert "ShardFailure" in f.message


# ----------------------------------------------------------------------
# The remaining rules, spot-checked
# ----------------------------------------------------------------------
def test_declared_site_without_call_site_is_flagged():
    findings = check_fault_sites(
        [FIXTURES / "unknown_fault_site.py"],
        sites={"proc.chunk": "used", "ghost.site": "never wired"},
        require_all_sites_used=True,
    )
    codes = sorted(f.code for f in findings)
    assert codes == ["F001", "F002"]  # the typo + the dead site
    assert any("ghost.site" in f.message for f in findings)


def test_wall_clock_ban_flags_time_time(tmp_path):
    bad = tmp_path / "deadline.py"
    bad.write_text(
        "import time\n"
        "def remaining(deadline):\n"
        "    return deadline - time.time()\n"
    )
    findings = check_monotonic([bad])
    assert len(findings) == 1 and findings[0].code == "P002"

    good = tmp_path / "mono.py"
    good.write_text(
        "import time\n"
        "def remaining(deadline):\n"
        "    return deadline - time.monotonic()\n"
    )
    assert check_monotonic([good]) == []


def test_capture_delta_position_drift_is_flagged(tmp_path):
    source = (FIXTURES / "missing_stats_field.py").read_text()
    source = source.replace(
        "# cache_hits deliberately forgotten", "self.cache_hits = 0"
    )
    # Swap two delta_since indices: plausible nonsense, not a crash.
    source = source.replace("captured[0]", "captured[9]")
    drifted = tmp_path / "drifted.py"
    drifted.write_text(source)
    findings = check_stats(drifted)
    assert [f.code for f in findings] == ["S005"]
    assert "queries" in findings[0].message


# ----------------------------------------------------------------------
# Baseline machinery
# ----------------------------------------------------------------------
def test_baseline_suppresses_known_findings(tmp_path):
    findings = check_stats(FIXTURES / "missing_stats_field.py")
    baseline = tmp_path / "baseline.json"
    save_baseline(baseline, findings)
    suppressed = load_baseline(baseline)
    assert {f.key() for f in findings} <= suppressed
    # Keys are line-independent: a shifted finding stays suppressed.
    moved = Finding(
        findings[0].checker,
        findings[0].code,
        findings[0].path,
        findings[0].line + 40,
        findings[0].message,
    )
    assert moved.key() in suppressed
