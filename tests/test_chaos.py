"""Chaos tests: injected faults against the live serving stack.

The acceptance bar for the fault-tolerance layer, exercised through
the deterministic harness in :mod:`repro.testing.faults`:

* **Chaos differential oracle** — the mixed concurrent workload of
  ``tests/test_service_differential.py`` runs over the process pool
  while a seeded :class:`FaultPlan` kills one worker mid-chunk, kills
  another later, and hangs a third past the stall budget.  Every
  query and mutation must still succeed, and every answer must replay
  **bit-identically** on a fresh dataset at its reported epoch — the
  retry / respawn machinery may reroute work anywhere, but it must
  never change an answer or drop a query.
* **Deadlines** — a query stuck behind a slow group expires in the
  queue (``phase="queued"``, never executed); a caller's ``result()``
  never blocks past the deadline (``phase="waiting"``) even while the
  worker is hung.
* **Stall detection** — a hung worker is killed at the chunk budget
  and its chunk rescued on a live worker, far sooner than the hang.
* **Durability under WAL faults** — served mutations hit injected
  WAL / checkpoint I/O errors; rejected mutations surface as errors,
  and exactly the accepted ones survive close + reopen.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

import test_service_differential as differential
from repro.api import Database
from repro.service import QueryTimeout
from repro.testing import FaultPlan, FaultRule, injected
from repro.uncertain import (
    UncertainDataset,
    UncertainObject,
    synthetic_dataset,
    uniform_pdf,
)


def _make_db(n: int = 60) -> Database:
    return Database(synthetic_dataset(n=n, dims=2, seed=21, n_samples=4))


# ----------------------------------------------------------------------
# The chaos differential oracle
# ----------------------------------------------------------------------
def test_chaos_mixed_workload_matches_serial_replay():
    """Worker kills and a hang mid-workload must be invisible: no
    failed futures, no lost or duplicated queries, and every answer
    bit-identical to the serial replay at its reported epoch."""
    plan = FaultPlan(
        [
            FaultRule("proc.chunk", "kill", wid=1, after=2),
            FaultRule("proc.chunk", "kill", wid=2, after=6),
            FaultRule("proc.chunk", "hang", wid=0, after=4, arg=2.0),
        ]
    )
    initial = differential.make_initial()
    db = Database(
        UncertainDataset(list(initial), domain=differential.DOMAIN),
        indexes=(),
    )
    server = db.serve(
        workers=3, mode="process", fault_plan=plan, stall_timeout=1.0
    )
    clients = [
        differential.Client(tid, server, ("brute", None))
        for tid in range(differential.N_CLIENTS)
    ]
    threads = [
        threading.Thread(target=client.run) for client in clients
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=180)
    for client in clients:
        assert client.error is None, client.error

    all_reads = [read for client in clients for read in client.reads]
    all_mutations = [
        mutation for client in clients for mutation in client.mutations
    ]
    # No query hangs, none is dropped: every future completes cleanly
    # despite two kills and a stall mid-flight.
    for future, *_ in all_reads + all_mutations:
        assert future.exception(timeout=180) is None, future
    recovery = server.recovery_snapshot()
    db.close()

    # Rebuild every epoch's object set from the totally ordered
    # mutation log, then replay every read serially at its epoch.
    epochs = [future.epoch for future, *_ in all_mutations]
    assert len(set(epochs)) == len(epochs), "barrier epochs must be unique"
    states: dict[int, list[UncertainObject]] = {0: list(initial)}
    state = list(initial)
    for future, op, payload in sorted(
        all_mutations, key=lambda entry: entry[0].epoch
    ):
        if op == "insert":
            state = state + [payload]
        else:
            state = [obj for obj in state if obj.oid != payload]
        states[future.epoch] = state

    assert all_reads, "workload produced no reads"
    engine_cache: dict = {}
    for future, kind, query, params in all_reads:
        result = future.result()
        assert future.epoch == result.epoch
        assert future.epoch in states, (
            f"read reported epoch {future.epoch} which no barrier produced"
        )
        engine = differential.replay_engine(
            engine_cache, states, future.epoch, kind
        )
        want = engine.query(query, **params)
        differential.assert_bit_identical(kind, result, want)

    # The faults actually fired and were recovered, or the run proved
    # nothing about fault tolerance.
    assert recovery["retries"] >= 1
    assert recovery["worker_restarts"] >= 1


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------
def test_deadline_expires_in_queue_behind_a_slow_group():
    db = _make_db()
    try:
        plan = FaultPlan([FaultRule("proc.chunk", "hang", arg=1.5)])
        server = db.serve(
            workers=1, mode="process", fault_plan=plan, stall_timeout=10.0
        )
        session = server.session()
        q = np.asarray([500.0, 500.0])
        slow = session.nn(q)  # occupies the only dispatcher ~1.5s
        time.sleep(0.05)
        late = session.topk(q, k=2, timeout=0.2)
        error = late.exception(timeout=30)
        assert isinstance(error, QueryTimeout)
        assert error.phase == "queued"
        assert error.stats.deadline_misses == 1
        assert error.waited_seconds >= 0.2
        # The slow query itself was merely slow, not sacrificed.
        assert slow.result(timeout=30).answer is not None
        assert server.recovery_snapshot()["deadline_misses"] >= 1
    finally:
        db.close()


def test_deadline_bounds_result_wait_under_a_hang():
    db = _make_db()
    try:
        plan = FaultPlan([FaultRule("proc.chunk", "hang", arg=1.5)])
        server = db.serve(
            workers=1, mode="process", fault_plan=plan, stall_timeout=10.0
        )
        session = server.session()
        hung = session.nn(np.asarray([500.0, 500.0]), timeout=0.25)
        t0 = time.monotonic()
        with pytest.raises(QueryTimeout) as excinfo:
            hung.result()  # no local timeout: the deadline must bound it
        elapsed = time.monotonic() - t0
        assert elapsed < 1.0, "result() blocked past the deadline"
        assert excinfo.value.phase == "waiting"
        assert excinfo.value.stats.deadline_misses == 1
        assert excinfo.value.waited_seconds > 0.0
    finally:
        db.close()


# ----------------------------------------------------------------------
# Stall detection
# ----------------------------------------------------------------------
def test_stalled_worker_is_killed_and_the_chunk_rescued():
    db = _make_db()
    reference = _make_db()
    try:
        plan = FaultPlan([FaultRule("proc.chunk", "hang", wid=0, arg=5.0)])
        server = db.serve(
            workers=2, mode="process", fault_plan=plan, stall_timeout=0.5
        )
        q = np.asarray([500.0, 500.0])
        t0 = time.monotonic()
        result = db.nn(q)  # first chunk lands on the hung worker 0
        elapsed = time.monotonic() - t0
        want = reference.nn(q, retriever="brute")
        assert dict(result.probabilities) == dict(want.probabilities)
        # Rescued at the stall budget, not after the 5s hang.
        assert elapsed < 4.0
        assert result.stats.retries >= 1
        recovery = server.recovery_snapshot()
        assert recovery["retries"] >= 1
        assert recovery["worker_restarts"] >= 1
    finally:
        db.close()
        reference.close()


# ----------------------------------------------------------------------
# Durability under WAL faults while serving
# ----------------------------------------------------------------------
def test_wal_faults_during_serving_keep_accepted_mutations_durable(
    tmp_path,
):
    """Served mutations hitting injected WAL append / checkpoint I/O
    errors: the rejected ones fail loudly (fail-stop policy), reads
    keep working, and after close + reopen the store holds exactly
    the accepted mutations — nothing lost, nothing phantom."""
    ds = synthetic_dataset(n=24, dims=2, seed=13, n_samples=4)
    db = Database.open(str(tmp_path / "db"), dataset=ds, indexes=())
    accepted: list[int] = []
    rejected: list[int] = []
    try:
        db.serve(workers=2, mode="process")
        region = db.dataset[db.dataset.ids[0]].region
        rng = np.random.default_rng(29)
        q = db.dataset.domain.sample_points(1, rng)[0]
        plan = FaultPlan(
            [
                FaultRule("wal.append", "eio", after=2, count=2),
                FaultRule("durable.checkpoint", "eio", after=1, count=2),
            ]
        )
        with injected(plan):
            for i in range(8):
                instances, weights = uniform_pdf(region, 4, rng)
                obj = UncertainObject(
                    90_000 + i, region, instances, weights
                )
                try:
                    db.insert(obj)
                except OSError:
                    rejected.append(obj.oid)
                    continue
                accepted.append(obj.oid)
                # Reads stay healthy between (and despite) the faults.
                assert db.nn(q).answer is not None
        assert rejected == [90_002, 90_003]
        assert len(accepted) == 6
        assert db.epoch == len(accepted)
        assert db.describe()["degraded_mode"] is False  # fail-stop
    finally:
        db.close()

    db2 = Database.open(str(tmp_path / "db"), indexes=())
    try:
        assert db2.epoch == len(accepted)
        for oid in accepted:
            assert oid in db2.dataset.ids
        for oid in rejected:
            assert oid not in db2.dataset.ids
    finally:
        db2.close()
