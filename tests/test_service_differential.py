"""Differential concurrency stress test for the serving layer.

N client threads issue mixed queries interleaved with inserts and
deletes through concurrent sessions.  Every completed read future is
tagged with the dataset epoch it executed at; the test then rebuilds
the object set of each epoch from the (serially applied) mutation log
and replays every query on a fresh snapshot dataset at its reported
epoch, through direct single-query engines.

The acceptance bar is **bit-identical** answers: the coalescing
scheduler may have executed a read in any batch grouping, on any
worker, interleaved with any other template — but its probabilities,
rankings, and decisions must match the serial replay exactly (`==` on
floats, not approx).  This pins down the whole consistency contract
at once: mutation barriers (no read straddles an epoch), epoch
tagging (the reported epoch is the one the answer reflects), and the
kernel's per-query-row independence (batched execution introduces no
floating-point drift).

The same oracle runs twice: once against the thread server and once
against the shared-memory process pool (``mode="process"``), where
reads additionally alternate between forced brute force and the
default sharded scatter-gather Step 1 — worker processes, pipe
transport, shard pruning, and pool-wide re-attach fences must all
preserve bit-identity.
"""

from __future__ import annotations

import threading

import numpy as np

from repro import Rect, UncertainObject
from repro.api import Database
from repro.core import (
    KNNEngine,
    PNNQEngine,
    TopKEngine,
    VerifierEngine,
)
from repro.uncertain import UncertainDataset, uniform_pdf

DOMAIN = Rect.cube(0.0, 1000.0, 2)
N_CLIENTS = 5
OPS_PER_CLIENT = 12
N_OBJECTS = 30
N_INSTANCES = 6


def make_object(oid: int, rng: np.random.Generator) -> UncertainObject:
    center = rng.uniform(100.0, 900.0, size=2)
    half = rng.uniform(5.0, 40.0)
    region = Rect(
        np.maximum(center - half, DOMAIN.lo),
        np.minimum(center + half, DOMAIN.hi),
    )
    instances, weights = uniform_pdf(region, N_INSTANCES, rng)
    return UncertainObject(oid, region, instances, weights)


def make_initial(seed: int = 11) -> list[UncertainObject]:
    rng = np.random.default_rng(seed)
    return [make_object(i, rng) for i in range(N_OBJECTS)]


class Client:
    """One session-holding client thread's scripted mixed workload.

    ``retrievers`` is the palette of forced Step-1 choices reads draw
    from — ``("brute",)`` on the thread server, ``("brute", None)``
    on the process pool so default (sharded) and forced-brute reads
    interleave in one schedule.
    """

    def __init__(self, tid: int, server, retrievers=("brute",)) -> None:
        self.tid = tid
        self.session = server.session()
        self.rng = np.random.default_rng(1000 + tid)
        self.retrievers = retrievers
        self.reads: list[tuple] = []  # (future, kind, query, params)
        self.mutations: list[tuple] = []  # (future, op, payload)
        self.error: BaseException | None = None
        self._next_oid = 10_000 + tid * 1_000
        self._my_oids: list[int] = []

    def run(self) -> None:
        try:
            for _ in range(OPS_PER_CLIENT):
                self._one_op()
        except BaseException as error:  # noqa: BLE001 - reported by test
            self.error = error

    def _one_op(self) -> None:
        roll = self.rng.random()
        if roll < 0.15:
            obj = make_object(self._next_oid, self.rng)
            self._next_oid += 1
            self._my_oids.append(obj.oid)
            future = self.session.insert(obj)
            self.mutations.append((future, "insert", obj))
        elif roll < 0.25 and self._my_oids:
            oid = self._my_oids.pop()
            future = self.session.delete(oid)
            self.mutations.append((future, "delete", oid))
        else:
            q = DOMAIN.sample_points(1, self.rng)[0]
            forced = self.retrievers[
                int(self.rng.integers(len(self.retrievers)))
            ]
            kind_roll = self.rng.random()
            if kind_roll < 0.4:
                future = self.session.nn(q, retriever=forced)
                self.reads.append((future, "nn", q, {}))
            elif kind_roll < 0.6:
                future = self.session.knn(q, k=2, retriever=forced)
                self.reads.append((future, "knn", q, {"k": 2}))
            elif kind_roll < 0.8:
                future = self.session.topk(q, k=3, retriever=forced)
                self.reads.append((future, "topk", q, {"k": 3}))
            else:
                future = self.session.threshold(
                    q, p=0.2, retriever=forced
                )
                self.reads.append((future, "threshold", q, {"tau": 0.2}))


ENGINE_OF = {
    "nn": PNNQEngine,
    "knn": KNNEngine,
    "topk": TopKEngine,
    "threshold": VerifierEngine,
}


def replay_engine(cache: dict, states: dict, epoch: int, kind: str):
    key = (epoch, kind)
    engine = cache.get(key)
    if engine is None:
        dataset = UncertainDataset(states[epoch], domain=DOMAIN)
        engine = ENGINE_OF[kind](dataset)
        cache[key] = engine
    return engine


def assert_bit_identical(kind: str, got, want) -> None:
    if kind == "topk":
        assert got.answer.ranking == want.ranking
        return
    if kind == "threshold":
        assert dict(got.answer) == dict(want)
        return
    got_probs = dict(got.probabilities)
    want_probs = dict(want.probabilities)
    assert set(got_probs) == set(want_probs)
    for oid, value in want_probs.items():
        assert got_probs[oid] == value, (
            f"{kind}: oid {oid} drifted: {got_probs[oid]!r} != {value!r}"
        )


def _run_differential(serve_options: dict, retrievers: tuple) -> None:
    initial = make_initial()
    db = Database(
        UncertainDataset(list(initial), domain=DOMAIN),
        indexes=(),  # brute-force reads; mutations go to the dataset
    )
    server = db.serve(**serve_options)
    clients = [
        Client(tid, server, retrievers) for tid in range(N_CLIENTS)
    ]
    threads = [
        threading.Thread(target=client.run) for client in clients
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    for client in clients:
        assert client.error is None, client.error

    all_reads = [read for client in clients for read in client.reads]
    all_mutations = [
        mutation for client in clients for mutation in client.mutations
    ]
    for future, *_ in all_reads + all_mutations:
        assert future.exception(timeout=120) is None, future
    db.close()

    # ------------------------------------------------------------------
    # Rebuild the object set of every epoch from the mutation log.
    # Mutations applied serially (barriers), each bumping the epoch by
    # one — their future tags order them totally.
    # ------------------------------------------------------------------
    epochs = [future.epoch for future, *_ in all_mutations]
    assert len(set(epochs)) == len(epochs), "barrier epochs must be unique"
    states: dict[int, list[UncertainObject]] = {0: list(initial)}
    state = list(initial)
    for future, op, payload in sorted(
        all_mutations, key=lambda entry: entry[0].epoch
    ):
        if op == "insert":
            state = state + [payload]
        else:
            state = [obj for obj in state if obj.oid != payload]
        states[future.epoch] = state

    # ------------------------------------------------------------------
    # Replay every read serially at its reported epoch; bit-identical.
    # ------------------------------------------------------------------
    assert all_reads, "workload produced no reads"
    engine_cache: dict = {}
    checked_epochs = set()
    for future, kind, query, params in all_reads:
        result = future.result()
        assert future.epoch == result.epoch
        assert future.epoch in states, (
            f"read reported epoch {future.epoch} which no barrier produced"
        )
        engine = replay_engine(engine_cache, states, future.epoch, kind)
        want = engine.query(query, **params)
        assert_bit_identical(kind, result, want)
        checked_epochs.add(future.epoch)

    # The schedule actually exercised multiple epochs (i.e. reads both
    # before and after barriers), otherwise the test proved nothing.
    assert len(states) > 1, "no mutations executed"
    assert len(checked_epochs) > 1, "reads all landed in one epoch"


def test_concurrent_mixed_workload_matches_serial_replay():
    _run_differential({"workers": 3}, ("brute",))


def test_process_pool_mixed_workload_matches_serial_replay():
    """The same oracle over the shared-memory process pool.

    Reads alternate between forced brute force and the default sharded
    scatter-gather Step 1; mutations exercise the pool-wide re-attach
    fence on every barrier.  Answers must replay bit-identically at
    their reported epochs, exactly like the thread server's.
    """
    _run_differential(
        {"workers": 3, "mode": "process"}, ("brute", None)
    )
