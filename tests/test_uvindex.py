"""Tests for the UV-index baseline (2D circular uncertainty)."""

import numpy as np
import pytest

from repro import Rect, UncertainObject, UVIndex, synthetic_dataset
from repro.uncertain import uniform_pdf
from repro.uvindex import (
    CircleSet,
    circle_maxdist,
    circle_mindist,
    circumscribed_circle,
)


def make_obj(oid, center, half=5.0, seed=0):
    region = Rect.from_center(center, half)
    inst, w = uniform_pdf(region, 3, np.random.default_rng(seed))
    return UncertainObject(oid, region, inst, w)


def circle_ground_truth(circles, q):
    """Step-1 answer under the circular model."""
    mins = circles.mindist_to_point(q)
    maxs = circles.maxdist_to_point(q)
    bound = maxs.min()
    return {int(oid) for oid, m in zip(circles.ids, mins) if m <= bound}


class TestCircles:
    def test_circumscribed_circle(self):
        obj = make_obj(0, [50, 50], half=3)
        c, r = circumscribed_circle(obj)
        assert np.allclose(c, [50, 50])
        assert r == pytest.approx(3 * np.sqrt(2))

    def test_circle_distances(self):
        c = np.array([0.0, 0.0])
        p = np.array([10.0, 0.0])
        assert circle_mindist(c, 3.0, p) == pytest.approx(7.0)
        assert circle_maxdist(c, 3.0, p) == pytest.approx(13.0)
        assert circle_mindist(c, 3.0, np.array([1.0, 0.0])) == 0.0

    def test_circleset_from_dataset(self):
        ds = synthetic_dataset(n=20, dims=2, n_samples=2, seed=0)
        circles = CircleSet.from_dataset(ds)
        assert len(circles) == 20
        assert circles.centers.shape == (20, 2)

    def test_circleset_rejects_3d(self):
        ds = synthetic_dataset(n=5, dims=3, n_samples=2, seed=1)
        with pytest.raises(ValueError):
            CircleSet.from_dataset(ds)

    def test_rect_distance_bounds(self):
        ds = synthetic_dataset(n=15, dims=2, n_samples=2, seed=2)
        circles = CircleSet.from_dataset(ds)
        rect = Rect([1000, 1000], [3000, 3000])
        rng = np.random.default_rng(3)
        pts = rect.sample_points(100, rng)
        for i in range(len(circles)):
            c = circles.centers[i]
            r = circles.radii[i]
            mins = [circle_mindist(c, r, p) for p in pts]
            maxs = [circle_maxdist(c, r, p) for p in pts]
            assert circles.mindist_to_rect(rect)[i] <= min(mins) + 1e-9
            assert circles.maxdist_to_rect(rect)[i] >= max(maxs) - 1e-9

    def test_any_dominates_conservative(self):
        ds = synthetic_dataset(n=15, dims=2, n_samples=2, seed=4)
        circles = CircleSet.from_dataset(ds)
        region = Rect([4000, 4000], [4100, 4100])
        target_c = np.array([9000.0, 9000.0])
        target_r = 10.0
        if circles.any_dominates(region, target_c, target_r):
            # Verify with sampled points: domination must really hold
            # for at least one circle everywhere we check.
            rng = np.random.default_rng(5)
            pts = region.sample_points(200, rng)
            ok = np.zeros(len(pts), dtype=bool)
            for i in range(len(circles)):
                c, r = circles.centers[i], circles.radii[i]
                dmax = np.linalg.norm(pts - c, axis=1) + r
                dmin = np.maximum(
                    np.linalg.norm(pts - target_c, axis=1) - target_r, 0
                )
                ok |= dmax < dmin
            assert ok.all()


class TestUVIndex:
    def test_rejects_3d(self):
        ds = synthetic_dataset(n=10, dims=3, n_samples=2, seed=6)
        with pytest.raises(ValueError):
            UVIndex(ds)

    def test_query_matches_circle_ground_truth(self):
        ds = synthetic_dataset(n=60, dims=2, u_max=200, n_samples=2, seed=7)
        index = UVIndex(ds, k_cand=30, delta=1.0)
        circles = CircleSet.from_dataset(ds)
        rng = np.random.default_rng(8)
        for _ in range(25):
            q = ds.domain.sample_points(1, rng)[0]
            got = set(index.candidates(q))
            want = circle_ground_truth(circles, q)
            assert got == want

    def test_build_time_recorded(self):
        ds = synthetic_dataset(n=20, dims=2, n_samples=2, seed=9)
        index = UVIndex(ds, k_cand=10)
        assert index.build_seconds > 0

    def test_candidate_superset_of_rect_model(self):
        # Circles circumscribe rectangles, so the circular-model answer
        # for q inside an object's region must include that object.
        ds = synthetic_dataset(n=40, dims=2, u_max=150, n_samples=2, seed=10)
        index = UVIndex(ds, k_cand=20)
        obj = ds[ds.ids[3]]
        assert obj.oid in index.candidates(obj.mean)

    def test_len_and_repr(self):
        ds = synthetic_dataset(n=12, dims=2, n_samples=2, seed=11)
        index = UVIndex(ds, k_cand=5)
        assert len(index) == 12
        assert "UVIndex" in repr(index)
