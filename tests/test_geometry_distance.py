"""Unit + property tests for repro.geometry.distance.

The batched variants are cross-checked against brute-force corner
enumeration, which is exact for axis-parallel rectangles.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    Rect,
    maxdist_point_rect,
    maxdist_rect_rect,
    maxdist_sq_point_rect,
    maxdist_sq_point_rects,
    maxdist_sq_points_rect,
    maxdist_sq_rect_rect,
    mindist_point_rect,
    mindist_rect_rect,
    mindist_sq_point_rect,
    mindist_sq_point_rects,
    mindist_sq_points_rect,
    mindist_sq_rect_rect,
)

coord = st.floats(-100, 100, allow_nan=False, allow_infinity=False)


@st.composite
def rects(draw, dims=2):
    lo = np.array([draw(coord) for _ in range(dims)])
    span = np.array(
        [draw(st.floats(0, 50, allow_nan=False)) for _ in range(dims)]
    )
    return Rect(lo, lo + span)


@st.composite
def points(draw, dims=2):
    return np.array([draw(coord) for _ in range(dims)])


def brute_min_sq(point, rect, samples=2000, seed=7):
    """Approximate min distance by sampling + exact clip check."""
    clipped = rect.clip_point(point)
    return float(np.sum((clipped - point) ** 2))


def brute_max_sq(point, rect):
    """Exact max distance via corner enumeration."""
    diffs = rect.corners() - point
    return float(np.max(np.einsum("ij,ij->i", diffs, diffs)))


class TestPointRect:
    def test_inside_point_mindist_zero(self):
        r = Rect([0, 0], [2, 2])
        assert mindist_sq_point_rect(np.array([1, 1]), r) == 0.0

    def test_outside_point(self):
        r = Rect([0, 0], [1, 1])
        assert mindist_point_rect(np.array([4.0, 0.5]), r) == pytest.approx(3)

    def test_maxdist_from_center_of_square(self):
        r = Rect([0, 0], [2, 2])
        assert maxdist_point_rect(np.array([1.0, 1.0]), r) == pytest.approx(
            np.sqrt(2)
        )

    def test_degenerate_rect_min_equals_max(self):
        r = Rect.from_point([3.0, 4.0])
        p = np.zeros(2)
        assert mindist_point_rect(p, r) == pytest.approx(5.0)
        assert maxdist_point_rect(p, r) == pytest.approx(5.0)

    @given(points(), rects())
    @settings(max_examples=150)
    def test_min_le_max(self, p, r):
        assert mindist_sq_point_rect(p, r) <= maxdist_sq_point_rect(
            p, r
        ) + 1e-9

    @given(points(), rects())
    @settings(max_examples=150)
    def test_min_matches_clip(self, p, r):
        assert mindist_sq_point_rect(p, r) == pytest.approx(
            brute_min_sq(p, r), abs=1e-9
        )

    @given(points(), rects())
    @settings(max_examples=150)
    def test_max_matches_corner_enumeration(self, p, r):
        assert maxdist_sq_point_rect(p, r) == pytest.approx(
            brute_max_sq(p, r), rel=1e-9, abs=1e-9
        )

    @given(points(dims=3), rects(dims=3))
    @settings(max_examples=100)
    def test_3d_max_matches_corners(self, p, r):
        assert maxdist_sq_point_rect(p, r) == pytest.approx(
            brute_max_sq(p, r), rel=1e-9, abs=1e-9
        )


class TestBatched:
    def test_points_rect_matches_scalar(self):
        rng = np.random.default_rng(1)
        r = Rect([0, 0, 0], [3, 1, 2])
        pts = rng.uniform(-5, 5, size=(40, 3))
        mins = mindist_sq_points_rect(pts, r)
        maxs = maxdist_sq_points_rect(pts, r)
        for i, p in enumerate(pts):
            assert mins[i] == pytest.approx(mindist_sq_point_rect(p, r))
            assert maxs[i] == pytest.approx(maxdist_sq_point_rect(p, r))

    def test_point_rects_matches_scalar(self):
        rng = np.random.default_rng(2)
        los = rng.uniform(-5, 0, size=(30, 2))
        his = los + rng.uniform(0, 3, size=(30, 2))
        p = np.array([1.0, -1.0])
        mins = mindist_sq_point_rects(p, los, his)
        maxs = maxdist_sq_point_rects(p, los, his)
        for i in range(30):
            r = Rect(los[i], his[i])
            assert mins[i] == pytest.approx(mindist_sq_point_rect(p, r))
            assert maxs[i] == pytest.approx(maxdist_sq_point_rect(p, r))

    def test_empty_batch(self):
        p = np.zeros(2)
        out = mindist_sq_point_rects(p, np.empty((0, 2)), np.empty((0, 2)))
        assert out.shape == (0,)


class TestRectRect:
    def test_intersecting_mindist_zero(self):
        a = Rect([0, 0], [2, 2])
        b = Rect([1, 1], [3, 3])
        assert mindist_sq_rect_rect(a, b) == 0.0

    def test_disjoint(self):
        a = Rect([0, 0], [1, 1])
        b = Rect([4, 0], [5, 1])
        assert mindist_rect_rect(a, b) == pytest.approx(3.0)

    def test_maxdist_corners(self):
        a = Rect([0, 0], [1, 1])
        b = Rect([2, 2], [3, 3])
        assert maxdist_rect_rect(a, b) == pytest.approx(np.sqrt(18))

    def test_symmetry(self):
        a = Rect([0, -1], [2, 5])
        b = Rect([-3, 2], [0.5, 2.5])
        assert mindist_sq_rect_rect(a, b) == mindist_sq_rect_rect(b, a)
        assert maxdist_sq_rect_rect(a, b) == maxdist_sq_rect_rect(b, a)

    @given(rects(), rects())
    @settings(max_examples=150)
    def test_rect_rect_extremes_vs_brute_force(self, a, b):
        # Max distance: c -> maxdist(c, a)^2 is convex, so the maximum
        # over b is realized at one of b's corners.
        max_brute = max(maxdist_sq_point_rect(c, a) for c in b.corners())
        assert maxdist_sq_rect_rect(a, b) == pytest.approx(
            max_brute, rel=1e-9, abs=1e-9
        )
        # Min distance: the corner set does not realize it in general
        # (overlapping projections meet at edge interiors), so check the
        # analytic value lower-bounds sampled point-to-rect distances and
        # is exactly zero iff the rectangles intersect.
        rng = np.random.default_rng(0)
        pts = b.sample_points(200, rng)
        sampled = mindist_sq_points_rect(pts, a)
        analytic = mindist_sq_rect_rect(a, b)
        assert analytic <= sampled.min() + 1e-9
        if a.intersects(b):
            assert analytic == 0.0
        if analytic > 0.0:
            assert not a.intersects(b)

    @given(rects(dims=4), rects(dims=4))
    @settings(max_examples=50)
    def test_min_le_max_4d(self, a, b):
        assert mindist_sq_rect_rect(a, b) <= maxdist_sq_rect_rect(a, b) + 1e-9
