"""Fixture: a fault hook naming an undeclared site (exactly one F001).

``proc.chnk`` is the typo of ``proc.chunk`` — before ``faults.SITES``
this armed fine and silently never fired.
"""

from __future__ import annotations

from repro.testing import faults


def run_chunk(payload: object) -> object:
    faults.check("proc.chnk", kind="read")  # typo'd site
    faults.check("proc.chunk", kind="read")  # the real one
    return payload
