"""Fixture: one stats field missing from ``reset`` (exactly one S003).

A miniature of ``ExecutionStats``: every method is complete except
``reset``, which forgets ``cache_hits``.
"""

from __future__ import annotations

from dataclasses import dataclass

_SCALAR_FIELDS = (
    "queries",
    "batches",
    "cache_hits",
)


@dataclass
class MiniStats:
    queries: int = 0
    batches: int = 0
    cache_hits: int = 0

    def reset(self) -> None:
        self.queries = 0
        self.batches = 0
        # cache_hits deliberately forgotten

    def snapshot(self) -> "MiniStats":
        return MiniStats(
            queries=self.queries,
            batches=self.batches,
            cache_hits=self.cache_hits,
        )

    def capture(self) -> tuple:
        return (self.queries, self.batches, self.cache_hits)

    def delta_since(self, captured: tuple) -> "MiniStats":
        return MiniStats(
            queries=self.queries - captured[0],
            batches=self.batches - captured[1],
            cache_hits=self.cache_hits - captured[2],
        )

    def delta(self, earlier: "MiniStats") -> "MiniStats":
        return MiniStats(
            queries=self.queries - earlier.queries,
            batches=self.batches - earlier.batches,
            cache_hits=self.cache_hits - earlier.cache_hits,
        )

    def merge(self, other: "MiniStats") -> None:
        for name in _SCALAR_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
