"""Deliberately-broken fixture modules for ``repro.analysis`` tests.

Each module violates exactly one project invariant; the tests in
``tests/test_analysis.py`` assert each produces exactly one finding.
Not collected by pytest (no ``test_`` prefix) and excluded from the
repo-wide analysis run (which scans ``src/`` only).
"""
