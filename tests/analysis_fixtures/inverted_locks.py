"""Fixture: a lock acquired against the declared hierarchy (one L001).

``durable.ckpt_lock`` (rank 40) must never be taken while
``dataset.store_lock`` (rank 50) is held — the checkpoint bracket
wraps store access, not the other way around.
"""

from __future__ import annotations

import threading


class BackwardsCheckpointer:
    def __init__(self) -> None:
        self._store_lock = threading.Lock()
        self._ckpt_lock = threading.Lock()

    def checkpoint(self) -> None:
        with self._store_lock:
            with self._ckpt_lock:  # inverted: 40 under 50
                pass

    def fine(self) -> None:
        with self._ckpt_lock:
            with self._store_lock:  # declared order: ascending rank
                pass
