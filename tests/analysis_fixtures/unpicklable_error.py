"""Fixture: a worker exception that cannot cross the pipe (one P001).

The classic ``OSError``-subclass trap: a multi-argument ``__init__``
without ``__reduce__``.  ``OSError.__reduce__`` reconstructs with the
*formatted* args, so unpickling calls ``ShardFailure(message)`` —
``TypeError`` — exactly the bug ``FaultInjected.__reduce__`` fixes in
``repro.testing.faults``.
"""

from __future__ import annotations


class ShardFailure(OSError):
    def __init__(self, shard: int, reason: str) -> None:
        super().__init__(f"shard {shard}: {reason}")
        self.shard = shard


class CleanFailure(RuntimeError):
    """Single-message exceptions round-trip fine (no finding)."""


def worker_step(shard: int) -> None:
    raise ShardFailure(shard, "segment vanished")


def clean_step() -> None:
    raise CleanFailure("plain message")
