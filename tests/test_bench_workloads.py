"""Tests for benchmark workload construction (repro.bench.workloads)."""

import numpy as np
import pytest

from repro.bench.config import SCALE
from repro.bench.workloads import (
    build_pv_bundle,
    build_rtree_bundle,
    build_uv_bundle,
    make_dataset,
    query_points,
    real_dataset,
    strategy_by_name,
)
from repro.core import AllCSet, FixedSelection, IncrementalSelection
from repro.core.pvcell import possible_nn_ids


class TestMakeDataset:
    def test_defaults_follow_scale(self):
        dataset = make_dataset(n=30)
        assert len(dataset) == 30
        assert dataset.dims == SCALE.default_dims
        sample = next(iter(dataset))
        assert len(sample.instances) == SCALE.n_samples

    def test_overrides(self):
        dataset = make_dataset(n=10, dims=2, u_max=20.0, n_samples=15)
        assert dataset.dims == 2
        sample = next(iter(dataset))
        assert len(sample.instances) == 15
        assert np.all(sample.region.side_lengths <= 20.0)

    def test_seed_reproducibility(self):
        a = make_dataset(n=12, seed=5)
        b = make_dataset(n=12, seed=5)
        for oid in a.ids:
            assert np.allclose(a[oid].region.lo, b[oid].region.lo)


class TestRealDataset:
    @pytest.mark.parametrize("name", ["roads", "rrlines", "airports"])
    def test_builders(self, name):
        dataset = real_dataset(name, n=40)
        assert len(dataset) == 40
        assert dataset.dims == (3 if name == "airports" else 2)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown real dataset"):
            real_dataset("cities")


class TestQueryPoints:
    def test_within_domain(self):
        dataset = make_dataset(n=10)
        points = query_points(dataset, n=50)
        assert points.shape == (50, dataset.dims)
        assert np.all(points >= dataset.domain.lo)
        assert np.all(points <= dataset.domain.hi)

    def test_default_count_follows_scale(self):
        dataset = make_dataset(n=10)
        assert len(query_points(dataset)) == SCALE.n_queries


class TestStrategyFactory:
    def test_names(self):
        assert isinstance(strategy_by_name("FS"), FixedSelection)
        assert isinstance(strategy_by_name("IS"), IncrementalSelection)
        assert isinstance(strategy_by_name("ALL"), AllCSet)

    def test_parameters_forwarded(self):
        fs = strategy_by_name("FS", k=33)
        assert fs.k == 33
        is_ = strategy_by_name("IS", kpartition=7, kglobal=99)
        assert is_.kpartition == 7
        assert is_.kglobal == 99

    def test_unknown_rejected(self):
        with pytest.raises(KeyError, match="unknown strategy"):
            strategy_by_name("RANDOM")


class TestBundles:
    @pytest.fixture(scope="class")
    def dataset2d(self):
        return make_dataset(n=40, dims=2, seed=1)

    def test_all_bundles_agree_with_ground_truth(self, dataset2d):
        exact = [
            build_pv_bundle(dataset2d.copy()),
            build_rtree_bundle(dataset2d.copy()),
        ]
        # UV bounds rectangles by circumscribed circles: superset only.
        uv = build_uv_bundle(dataset2d.copy())
        for q in query_points(dataset2d, n=10, seed=3):
            truth = possible_nn_ids(dataset2d, q)
            for bundle in exact:
                assert set(bundle.candidates(q)) == truth, bundle.name
            assert set(uv.candidates(q)) >= truth

    def test_bundle_names(self, dataset2d):
        assert build_pv_bundle(dataset2d.copy()).name == "PV-index"
        assert build_rtree_bundle(dataset2d.copy()).name == "R-tree"
        assert build_uv_bundle(dataset2d.copy()).name == "UV-index"

    def test_build_seconds_recorded(self, dataset2d):
        bundle = build_pv_bundle(dataset2d.copy())
        assert bundle.build_seconds > 0

    def test_engine_shares_pager(self, dataset2d):
        """Engine queries must charge I/O to the bundle's pager."""
        bundle = build_pv_bundle(dataset2d.copy())
        before = bundle.pager.stats.total
        bundle.engine.query(np.array([5000.0, 5000.0]))
        assert bundle.pager.stats.total > before
