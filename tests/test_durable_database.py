"""Database.open lifecycle and the kill-and-recover differential oracle."""

import os
import pathlib
import subprocess
import sys
import time

import numpy as np
import pytest

from _durability_workload import (
    apply_mutation,
    base_dataset,
    fingerprint,
    reference_database,
)
from repro.api import Database
from repro.storage import DurableStore

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestOpenLifecycle:
    def test_create_then_reopen(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database.open(path, dataset=base_dataset())
        assert db.durable
        for i in range(4):
            apply_mutation(db, i)
        epoch = db.epoch
        before = fingerprint(db)
        db.close()

        db2 = Database.open(path)
        assert db2.epoch == epoch
        assert fingerprint(db2) == before
        db2.close()

    def test_open_existing_with_dataset_refuses(self, tmp_path):
        path = str(tmp_path / "db")
        Database.open(path, dataset=base_dataset()).close()
        with pytest.raises(ValueError, match="already holds"):
            Database.open(path, dataset=base_dataset())

    def test_open_empty_without_dataset_refuses(self, tmp_path):
        with pytest.raises(ValueError, match="dataset is required"):
            Database.open(str(tmp_path / "nothing"))

    def test_second_opener_is_locked_out(self, tmp_path):
        # The WAL directory admits one writer: a second Database.open
        # on a live store must fail fast with a clear error instead of
        # interleaving WAL appends.
        from repro.storage import StoreLocked

        path = str(tmp_path / "db")
        db = Database.open(path, dataset=base_dataset())
        with pytest.raises(StoreLocked, match="another session"):
            Database.open(path)
        with pytest.raises(StoreLocked, match="one writer"):
            DurableStore(path).recover()
        # The first opener is unaffected by the failed attempts...
        apply_mutation(db, 0)
        epoch = db.epoch
        db.close()
        # ...and close() releases the lock for the next opener.
        db2 = Database.open(path)
        assert db2.epoch == epoch
        db2.close()

    def test_checkpoint_folds_wal(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database.open(path, dataset=base_dataset())
        for i in range(3):
            apply_mutation(db, i)
        assert db.checkpoint() == db.epoch == 3
        # The WAL is empty: scanning finds no records to replay.
        from repro.storage import WriteAheadLog

        records, _valid, damaged = WriteAheadLog.scan(
            os.path.join(path, "wal.log")
        )
        assert records == [] and not damaged
        db.close()

    def test_checkpoint_requires_durable(self):
        db = Database(base_dataset())
        with pytest.raises(RuntimeError, match="Database.open"):
            db.checkpoint()
        assert not db.durable

    def test_close_seals_the_store(self, tmp_path):
        db = Database.open(str(tmp_path / "db"), dataset=base_dataset())
        db.close()
        with pytest.raises(RuntimeError, match="unlogged"):
            apply_mutation(db.dataset, 0)

    def test_fsync_off_survives_clean_close(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database.open(path, dataset=base_dataset(), fsync="off")
        for i in range(3):
            apply_mutation(db, i)
        epoch = db.epoch
        db.close()
        db2 = Database.open(path)
        assert db2.epoch == epoch
        db2.close()

    def test_lazy_index_rehydration(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database.open(path, dataset=base_dataset())
        db.index("pv")  # force a build in the first session
        assert "pv" in db.built_indexes
        answer = db.nn([5_000.0, 5_000.0], retriever="pv")
        db.close()
        db2 = Database.open(path)
        assert db2.built_indexes == ()  # nothing rebuilt at open time
        again = db2.nn([5_000.0, 5_000.0], retriever="pv")
        assert "pv" in db2.built_indexes  # rehydrated on first use
        assert dict(again.answer.probabilities) == dict(
            answer.answer.probabilities
        )
        db2.close()


@pytest.mark.slow
class TestKillAndRecover:
    """SIGKILL the mutating process at arbitrary epochs; recovery must
    produce bit-identical answers to an uninterrupted in-memory run of
    exactly the recovered prefix of the mutation sequence."""

    #: Seconds of mutation work each round gets before the SIGKILL.
    DELAYS = (0.05, 0.15, 0.3)

    def _spawn_child(self, path):
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            f"{REPO_ROOT / 'src'}{os.pathsep}{REPO_ROOT / 'tests'}"
        )
        env["PYTHONHASHSEED"] = "0"
        return subprocess.Popen(
            [
                sys.executable,
                "-c",
                "import sys; from _durability_workload import child_main; "
                "child_main(sys.argv[1])",
                path,
            ],
            cwd=str(REPO_ROOT),
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )

    def test_kill_and_recover_bit_identical(self, tmp_path):
        path = str(tmp_path / "db")
        last_epoch = 0
        for delay in self.DELAYS:
            child = self._spawn_child(path)
            try:
                # Wait until the first mutation committed so the kill
                # always lands mid-workload, never before the WAL is
                # live.
                ready = child.stdout.readline().strip()
                if ready != "READY":
                    stderr = child.stderr.read()
                    pytest.fail(f"child failed to start: {stderr}")
                time.sleep(delay)
            finally:
                child.kill()
                child.wait(timeout=30)

            db = Database.open(path)
            epoch = db.epoch
            # The kill landed after >= 1 committed mutation per round,
            # and recovery never loses previously recovered epochs.
            assert epoch > last_epoch
            last_epoch = epoch

            reference = reference_database(epoch)
            assert db.dataset.ids == reference.dataset.ids
            for oid in db.dataset.ids:
                assert np.array_equal(
                    db.dataset[oid].instances,
                    reference.dataset[oid].instances,
                )
                assert np.array_equal(
                    db.dataset[oid].weights,
                    reference.dataset[oid].weights,
                )
            # All seven verbs, bit-identical probabilities/rankings.
            assert fingerprint(db) == fingerprint(reference)
            db.close()  # checkpoints; the next round resumes from here
            reference.close()
