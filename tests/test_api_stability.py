"""API-stability gate: the public surface must not silently regress.

Two layers of protection for the ``repro.api`` front door and the
engine constructors beneath it:

* every ``__all__`` export resolves and the pinned signatures below
  match exactly — changing the public surface requires editing this
  file, which is the point;
* when ``mypy`` is installed (CI), the ``mypy.ini`` configuration is
  run over ``src/repro/api`` and ``src/repro/engine`` and must pass.
"""

import importlib.util
import inspect
import pathlib
import subprocess
import sys

import pytest

import repro
import repro.api as api
import repro.engine as engine_pkg
import repro.service as service_pkg
from repro.api import Database, Planner, Q
from repro.service import QueryFuture, Session, UncertainDBServer
from repro.core import (
    ExpectedNNEngine,
    GroupNNEngine,
    KNNEngine,
    PNNQEngine,
    ReverseNNEngine,
    TopKEngine,
    VerifierEngine,
)

REPO_ROOT = pathlib.Path(__file__).parent.parent


# ----------------------------------------------------------------------
# Exports resolve
# ----------------------------------------------------------------------
@pytest.mark.parametrize("module", [api, engine_pkg, service_pkg, repro])
def test_all_exports_resolve(module):
    assert module.__all__, f"{module.__name__} has no __all__"
    for name in module.__all__:
        assert hasattr(module, name), (
            f"{module.__name__}.__all__ lists {name!r} "
            "but the attribute is missing"
        )


def test_api_package_exports_the_front_door():
    for name in ("Database", "Planner", "Plan", "Q", "QueryResult",
                 "QuerySpec", "PlanningError", "IndexHandle"):
        assert name in api.__all__


# ----------------------------------------------------------------------
# Pinned signatures (edit deliberately, never accidentally)
# ----------------------------------------------------------------------
def sig(obj) -> str:
    return str(inspect.signature(obj))


# Annotations render as strings (PEP 563 is active in repro.api).
PINNED = {
    Database.nn: "(self, query: 'Any', *, "
    "retriever: 'str | None' = None, "
    "timeout: 'float | None' = None) -> 'QueryResult'",
    Database.knn: "(self, query: 'Any', k: 'int' = 1, *, "
    "retriever: 'str | None' = None, "
    "timeout: 'float | None' = None) -> 'QueryResult'",
    Database.topk: "(self, query: 'Any', k: 'int' = 1, *, "
    "retriever: 'str | None' = None, "
    "timeout: 'float | None' = None) -> 'QueryResult'",
    Database.threshold: "(self, query: 'Any', p: 'float' = 0.1, *, "
    "retriever: 'str | None' = None, "
    "timeout: 'float | None' = None) -> 'QueryResult'",
    Database.group_nn: "(self, queries: 'Any', "
    "aggregate: 'str' = 'sum', *, "
    "retriever: 'str | None' = None, "
    "timeout: 'float | None' = None) -> 'QueryResult'",
    Database.reverse_nn: "(self, query_object: 'UncertainObject', *, "
    "timeout: 'float | None' = None) -> 'QueryResult'",
    Database.expected_nn: "(self, query: 'Any', "
    "top: 'int | None' = None, *, "
    "retriever: 'str | None' = None, "
    "timeout: 'float | None' = None) -> 'QueryResult'",
    Database.batch: "(self, specs: 'Sequence[QuerySpec]', *, "
    "retriever: 'str | None' = None) -> 'list[QueryResult]'",
    Database.insert: "(self, obj: 'UncertainObject') -> 'None'",
    Database.delete: "(self, oid: 'int') -> 'UncertainObject'",
    Planner.observe: "(self, retriever: 'str', kind: 'str', "
    "step1_seconds: 'float') -> 'None'",
    Planner.observe_step2: "(self, kind: 'str', "
    "step2_seconds: 'float', gather_seconds: 'float' = 0.0, "
    "eval_seconds: 'float' = 0.0) -> 'None'",
    # The submit-and-serve surface (PR 5).
    Database.serve: "(self, **options: 'Any') -> 'UncertainDBServer'",
    Database.close: "(self) -> 'None'",
    UncertainDBServer.session: "(self) -> 'Session'",
    UncertainDBServer.submit: "(self, kind: 'str', query: 'Any', "
    "params: 'tuple[tuple[str, Any], ...]' = (), "
    "retriever: 'str | None' = None, "
    "deadline: 'float | None' = None) -> 'QueryFuture'",
    QueryFuture.result: "(self, timeout: 'float | None' = None) -> 'Any'",
    QueryFuture.done: "(self) -> 'bool'",
    Session.nn: "(self, query: 'Any', *, "
    "retriever: 'str | None' = None, "
    "timeout: 'float | None' = None) -> 'QueryFuture'",
    Session.knn: "(self, query: 'Any', k: 'int' = 1, *, "
    "retriever: 'str | None' = None, "
    "timeout: 'float | None' = None) -> 'QueryFuture'",
    Session.insert: "(self, obj: 'Any') -> 'QueryFuture'",
    Session.delete: "(self, oid: 'int') -> 'QueryFuture'",
}


@pytest.mark.parametrize(
    "obj", list(PINNED), ids=lambda o: o.__qualname__
)
def test_pinned_signatures(obj):
    assert sig(obj) == PINNED[obj], (
        f"{obj.__qualname__} signature changed: {sig(obj)!r} — "
        "update tests/test_api_stability.py deliberately if intended"
    )


ENGINE_HEAD = ("dataset", "retriever")
ENGINE_KEYWORD_ONLY = {"secondary", "result_cache_size", "memo_radius"}


@pytest.mark.parametrize(
    "engine_cls",
    [
        PNNQEngine,
        KNNEngine,
        TopKEngine,
        VerifierEngine,
        GroupNNEngine,
        ReverseNNEngine,
        ExpectedNNEngine,
    ],
)
def test_engine_constructors_stay_uniform(engine_cls):
    params = list(
        inspect.signature(engine_cls.__init__).parameters.values()
    )[1:]
    assert tuple(p.name for p in params[:2]) == ENGINE_HEAD
    assert params[1].default is None
    keyword_only = {
        p.name
        for p in params
        if p.kind is inspect.Parameter.KEYWORD_ONLY
    }
    assert ENGINE_KEYWORD_ONLY <= keyword_only


def test_session_mirrors_every_query_verb():
    from repro.api.database import _KINDS

    for kind in _KINDS:
        verb = getattr(Session, kind, None)
        assert callable(verb), f"Session.{kind} missing"


def test_q_constructors_cover_every_kind():
    from repro.api.database import _KINDS

    for kind in _KINDS:
        assert hasattr(Q, kind), f"Q.{kind} constructor missing"
        spec = getattr(Q, kind)
        assert callable(spec)


# ----------------------------------------------------------------------
# mypy gate (runs when mypy is installed — the CI/tooling satellite)
# ----------------------------------------------------------------------
def test_mypy_passes_over_the_public_surface():
    if importlib.util.find_spec("mypy") is None:
        pytest.skip("mypy is not installed in this environment")
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "mypy",
            "--config-file",
            str(REPO_ROOT / "mypy.ini"),
            str(REPO_ROOT / "src" / "repro" / "api"),
            str(REPO_ROOT / "src" / "repro" / "engine"),
            str(REPO_ROOT / "src" / "repro" / "storage"),
            str(REPO_ROOT / "src" / "repro" / "service"),
        ],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, (
        "mypy found issues in the public surface:\n"
        f"{proc.stdout}\n{proc.stderr}"
    )
