"""Tests for the uncertain-object model and pdf factories."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Rect, UncertainObject
from repro.uncertain import gaussian_pdf, point_pdf, uniform_pdf


def make_obj(oid=0, lo=(0, 0), hi=(10, 10), n=20, seed=0):
    region = Rect(lo, hi)
    rng = np.random.default_rng(seed)
    instances, weights = uniform_pdf(region, n, rng)
    return UncertainObject(oid, region, instances, weights)


class TestUncertainObject:
    def test_basic_properties(self):
        obj = make_obj(n=25)
        assert obj.dims == 2
        assert obj.n_instances == 25
        assert np.allclose(obj.mean, [5, 5])

    def test_default_weights_uniform(self):
        region = Rect([0, 0], [1, 1])
        instances = region.sample_points(4, np.random.default_rng(0))
        obj = UncertainObject(1, region, instances)
        assert np.allclose(obj.weights, 0.25)

    def test_rejects_instances_outside_region(self):
        region = Rect([0, 0], [1, 1])
        with pytest.raises(ValueError):
            UncertainObject(1, region, np.array([[2.0, 0.5]]))

    def test_rejects_dim_mismatch(self):
        region = Rect([0, 0], [1, 1])
        with pytest.raises(ValueError):
            UncertainObject(1, region, np.array([[0.5, 0.5, 0.5]]))

    def test_rejects_empty_instances(self):
        with pytest.raises(ValueError):
            UncertainObject(1, Rect([0], [1]), np.empty((0, 1)))

    def test_rejects_bad_weight_sum(self):
        region = Rect([0, 0], [1, 1])
        inst = np.array([[0.5, 0.5], [0.2, 0.2]])
        with pytest.raises(ValueError):
            UncertainObject(1, region, inst, np.array([0.9, 0.9]))

    def test_rejects_negative_weights(self):
        region = Rect([0, 0], [1, 1])
        inst = np.array([[0.5, 0.5], [0.2, 0.2]])
        with pytest.raises(ValueError):
            UncertainObject(1, region, inst, np.array([1.5, -0.5]))

    def test_rejects_weight_shape_mismatch(self):
        region = Rect([0, 0], [1, 1])
        inst = np.array([[0.5, 0.5], [0.2, 0.2]])
        with pytest.raises(ValueError):
            UncertainObject(1, region, inst, np.array([1.0]))

    def test_distance_samples(self):
        region = Rect([0, 0], [0, 0]).expanded(0)
        obj = UncertainObject(1, Rect([1, 1], [1, 1]), np.array([[1.0, 1.0]]))
        d = obj.distance_samples(np.array([4.0, 5.0]))
        assert d == pytest.approx([5.0])

    def test_distance_samples_bounded_by_region(self):
        obj = make_obj()
        q = np.array([20.0, 20.0])
        d = obj.distance_samples(q)
        from repro.geometry import maxdist_point_rect, mindist_point_rect

        assert np.all(d >= mindist_point_rect(q, obj.region) - 1e-9)
        assert np.all(d <= maxdist_point_rect(q, obj.region) + 1e-9)

    def test_with_id(self):
        obj = make_obj(oid=3)
        clone = obj.with_id(7)
        assert clone.oid == 7
        assert clone.region == obj.region

    def test_nbytes_positive_and_scales(self):
        small = make_obj(n=5)
        large = make_obj(n=50)
        assert 0 < small.nbytes() < large.nbytes()

    def test_repr(self):
        assert "UncertainObject" in repr(make_obj())


class TestPdfs:
    def test_uniform_pdf_inside_region(self):
        region = Rect([5, 5], [6, 8])
        inst, w = uniform_pdf(region, 100, np.random.default_rng(1))
        assert inst.shape == (100, 2)
        assert np.isclose(w.sum(), 1.0)
        assert all(region.contains_point(p) for p in inst)

    def test_uniform_pdf_rejects_zero(self):
        with pytest.raises(ValueError):
            uniform_pdf(Rect([0], [1]), 0, np.random.default_rng(0))

    def test_gaussian_pdf_inside_region(self):
        region = Rect([0, 0], [10, 10])
        inst, w = gaussian_pdf(region, 200, np.random.default_rng(2), sigma=2)
        assert inst.shape == (200, 2)
        assert all(region.contains_point(p) for p in inst)

    def test_gaussian_pdf_concentrates_near_mean(self):
        region = Rect([0, 0], [100, 100])
        inst, _ = gaussian_pdf(region, 500, np.random.default_rng(3), sigma=1)
        spread = np.abs(inst - region.center).max()
        assert spread < 10  # sigma=1 keeps samples near the center

    def test_gaussian_pdf_rejects_outside_mean(self):
        with pytest.raises(ValueError):
            gaussian_pdf(
                Rect([0, 0], [1, 1]),
                10,
                np.random.default_rng(0),
                mean=np.array([5.0, 5.0]),
            )

    def test_gaussian_pdf_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            gaussian_pdf(Rect([0], [1]), 10, np.random.default_rng(0), sigma=0)

    def test_gaussian_pdf_huge_sigma_terminates(self):
        region = Rect([0, 0], [1, 1])
        inst, w = gaussian_pdf(
            region, 50, np.random.default_rng(4), sigma=1e6
        )
        assert inst.shape == (50, 2)
        assert all(region.contains_point(p) for p in inst)

    def test_point_pdf(self):
        inst, w = point_pdf(np.array([1.0, 2.0, 3.0]))
        assert inst.shape == (1, 3)
        assert w.tolist() == [1.0]

    def test_point_pdf_rejects_matrix(self):
        with pytest.raises(ValueError):
            point_pdf(np.zeros((2, 2)))

    @given(st.integers(1, 50), st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_uniform_pdf_property(self, n, dims):
        region = Rect.cube(0, 7, dims)
        inst, w = uniform_pdf(region, n, np.random.default_rng(n))
        assert inst.shape == (n, dims)
        assert np.isclose(w.sum(), 1.0)
