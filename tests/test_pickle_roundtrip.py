"""Picklability audit: everything that crosses the process-pool pipe.

The process tier ships query parameters to workers and
:class:`~repro.api.QueryResult` envelopes back, so every verb's
params and its full envelope (answer, plan with frozen mappings,
stats) must survive ``pickle`` round trips losslessly.  This is the
satellite audit for all seven verbs — run against the *direct*
database so any future envelope field that stops pickling fails here
even before the pool tests notice.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.api import Database
from repro.engine import FrozenDict
from repro.engine.stats import ExecutionStats
from repro.uncertain import synthetic_dataset


@pytest.fixture(scope="module")
def db():
    database = Database(
        synthetic_dataset(n=40, dims=2, seed=17, n_samples=4),
        indexes=(),
    )
    yield database
    database.close()


def _roundtrip(value):
    return pickle.loads(pickle.dumps(value))


def _all_seven(db):
    q = np.asarray([4000.0, 6000.0])
    lo, hi = db.dataset.domain.lo, db.dataset.domain.hi
    q = lo + (hi - lo) * 0.4
    group = np.stack([q, q + (hi - lo) * 0.05])
    some_object = db.dataset[db.dataset.ids[3]]
    return [
        ("nn", db.nn(q)),
        ("knn", db.knn(q, k=2)),
        ("topk", db.topk(q, k=3)),
        ("threshold", db.threshold(q, p=0.1)),
        ("group_nn", db.group_nn(group, aggregate="sum")),
        ("reverse_nn", db.reverse_nn(some_object)),
        ("expected_nn", db.expected_nn(q, top=3)),
    ]


def test_every_verbs_result_envelope_round_trips(db):
    for kind, result in _all_seven(db):
        clone = _roundtrip(result)
        assert clone.kind == result.kind == kind
        assert clone.epoch == result.epoch
        # Plan survives with its frozen mappings intact.
        assert clone.plan.retriever == result.plan.retriever
        assert dict(clone.plan.scores) == dict(result.plan.scores)
        assert clone.plan.params == result.plan.params
        # Stats survive counter-for-counter.
        assert clone.stats.snapshot() == result.stats.snapshot()
        # Probabilities (where the verb defines them) are bit-equal.
        if kind in ("nn", "knn", "group_nn", "reverse_nn", "topk"):
            assert dict(clone.probabilities) == dict(
                result.probabilities
            )
        if kind == "threshold":
            assert dict(clone.answer) == dict(result.answer)
        if kind == "expected_nn":
            assert clone.answer.ranking == result.answer.ranking


def test_every_verbs_params_round_trip(db):
    for kind, result in _all_seven(db):
        params = result.plan.params
        assert _roundtrip(params) == params


def test_frozen_dict_round_trips_and_stays_frozen():
    frozen = FrozenDict({"a": 1.5, "b": 2.5})
    clone = _roundtrip(frozen)
    assert isinstance(clone, FrozenDict)
    assert dict(clone) == {"a": 1.5, "b": 2.5}
    with pytest.raises(TypeError):
        clone["c"] = 3.0


def test_execution_stats_round_trip_preserves_every_counter():
    stats = ExecutionStats(
        object_retrieval=1.0,
        probability_computation=2.0,
        queries=3,
        batches=4,
        cache_hits=5,
        dedup_hits=6,
        memo_hits=7,
        invalidations=8,
        retriever_fallbacks=9,
        kernel_gather_seconds=0.5,
        kernel_eval_seconds=0.25,
        shards_dispatched=11,
        shards_pruned=13,
        worker_busy_seconds=3.5,
    )
    stats.or_io.reads = 21
    stats.pc_io.writes = 22
    clone = _roundtrip(stats)
    assert clone == stats


def test_answers_preserve_numpy_payloads_exactly(db):
    q = db.dataset.domain.lo + (
        db.dataset.domain.hi - db.dataset.domain.lo
    ) * 0.6
    result = db.nn(q)
    clone = _roundtrip(result)
    assert np.array_equal(clone.answer.query, result.answer.query)
    assert clone.answer.candidate_ids == result.answer.candidate_ids
