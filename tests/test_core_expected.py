"""Tests for expected-distance NN semantics (repro.core.expected)."""

import numpy as np
import pytest

from repro import PNNQEngine, PVIndex, UncertainObject, synthetic_dataset
from repro.core.expected import (
    ExpectedNNEngine,
    expected_distance,
)
from repro.core.pvcell import possible_nn_ids
from repro.geometry import Rect
from repro.uncertain import UncertainDataset


@pytest.fixture(scope="module")
def dense():
    return synthetic_dataset(
        n=40, dims=2, u_max=1800.0, n_samples=50, seed=41
    )


def point_object(oid, coords):
    p = np.asarray(coords, dtype=np.float64)
    return UncertainObject(
        oid=oid,
        region=Rect.from_point(p),
        instances=p[None, :],
        weights=np.array([1.0]),
    )


class TestExpectedDistance:
    def test_point_pdf_is_plain_distance(self):
        domain = Rect.cube(0.0, 100.0, 2)
        dataset = UncertainDataset(
            [point_object(0, [30.0, 40.0])], domain=domain
        )
        assert expected_distance(
            dataset, 0, np.array([0.0, 0.0])
        ) == pytest.approx(50.0)

    def test_bracketed_by_min_max_distance(self, dense):
        from repro.geometry import (
            maxdist_sq_point_rect,
            mindist_sq_point_rect,
        )

        q = np.array([5000.0, 5000.0])
        for oid in dense.ids[:15]:
            e = expected_distance(dense, oid, q)
            region = dense[oid].region
            lo = np.sqrt(mindist_sq_point_rect(q, region))
            hi = np.sqrt(maxdist_sq_point_rect(q, region))
            assert lo - 1e-9 <= e <= hi + 1e-9

    def test_translation_monotone(self, dense):
        """Moving the query toward an object's region shrinks E[dist]."""
        oid = dense.ids[0]
        center = dense[oid].region.center
        far = center + 4000.0
        near = center + 100.0
        assert expected_distance(dense, oid, near) < expected_distance(
            dense, oid, far
        )


class TestExpectedNNEngine:
    def test_candidates_subset_of_pnnq(self, dense):
        engine = ExpectedNNEngine(dense)
        rng = np.random.default_rng(3)
        for q in rng.uniform(0, 10_000, size=(8, 2)):
            assert set(engine.candidates(q)) <= possible_nn_ids(
                dense, q
            ) | set(engine.candidates(q))
            # The filter itself equals the PNNQ Step-1 ground truth.
            assert set(engine.candidates(q)) == possible_nn_ids(
                dense, q
            )

    def test_best_minimizes_expected_distance_globally(self, dense):
        engine = ExpectedNNEngine(dense)
        rng = np.random.default_rng(5)
        for q in rng.uniform(0, 10_000, size=(6, 2)):
            result = engine.query(q)
            brute = min(
                dense.ids,
                key=lambda oid, q=q: expected_distance(dense, oid, q),
            )
            assert result.best == brute

    def test_ranking_ascending(self, dense):
        engine = ExpectedNNEngine(dense)
        result = engine.query(np.array([4000.0, 6000.0]))
        values = [v for _oid, v in result.ranking]
        assert values == sorted(values)

    def test_top_parameter(self, dense):
        engine = ExpectedNNEngine(dense)
        q = np.array([5000.0, 5000.0])
        full = engine.query(q)
        top2 = engine.query(q, top=2)
        assert top2.ranking == full.ranking[:2]

    def test_certain_points_match_plain_nn(self):
        domain = Rect.cube(0.0, 100.0, 2)
        objects = [
            point_object(0, [10.0, 10.0]),
            point_object(1, [60.0, 60.0]),
            point_object(2, [90.0, 10.0]),
        ]
        dataset = UncertainDataset(objects, domain=domain)
        engine = ExpectedNNEngine(dataset)
        assert engine.query(np.array([55.0, 55.0])).best == 1
        assert engine.query(np.array([85.0, 15.0])).best == 2

    def test_expected_nn_can_differ_from_most_probable_nn(self):
        """The divergence motivating probabilistic semantics.

        A tight object at moderate distance beats a spread object on
        expected distance, while the spread object (often closer) wins
        on probability.
        """
        domain = Rect.cube(0.0, 1000.0, 1)
        # Bimodal object: 70% of its mass 50 away from the query, 30%
        # in a far tail 500 away -> E[dist] = 185, yet it is closer
        # than the tight object (distance 120) with probability 0.7.
        spread = UncertainObject(
            oid=0,
            region=Rect([450.0], [1000.0]),
            instances=np.array([[450.0], [1000.0]]),
            weights=np.array([0.7, 0.3]),
        )
        tight = point_object(1, [620.0])
        dataset = UncertainDataset([spread, tight], domain=domain)
        q = np.array([500.0])

        expected = ExpectedNNEngine(dataset).query(q).best
        pnnq = PNNQEngine(dataset, PVIndex.build(dataset.copy()))
        probs = pnnq.query(q).probabilities
        most_probable = max(probs, key=probs.get)

        assert expected == 1, "tight object wins on expected distance"
        assert most_probable == 0, "spread object wins on probability"

    def test_times_accumulate(self, dense):
        engine = ExpectedNNEngine(dense)
        engine.query(np.array([1.0, 1.0]))
        assert engine.times.queries == 1
