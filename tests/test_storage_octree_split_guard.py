"""Regression tests for the octree split-benefit guard.

Clustered datasets whose PV-cells span large fractions of the domain
produce UBRs that overlap nearly every leaf.  Splitting such leaves
multiplies pages without separating entries; without the guard the tree
cascades to its depth limit (observed: 47k+ leaves for 120 objects, a
30x construction slowdown).  The guard performs a split only when the
fullest would-be child receives at most 80% of the entries.
"""

import numpy as np

from repro.geometry import Rect
from repro.storage import OctreeConfig, PagedOctree, Pager


def build_tree(domain_side=1000.0, dims=2, **config):
    pager = Pager()
    tree = PagedOctree(
        domain=Rect.cube(0.0, domain_side, dims),
        pager=pager,
        config=OctreeConfig(**config) if config else OctreeConfig(),
    )
    return tree, pager


class TestSplitGuard:
    def test_giant_rects_never_split(self):
        """Rectangles covering most of the domain stay in one leaf."""
        tree, _pager = build_tree()
        big = Rect([10.0, 10.0], [990.0, 990.0])
        for key in range(300):
            tree.insert(key, big)
        assert tree.n_leaves == 1
        assert tree.n_entries == 300

    def test_small_rects_still_split(self):
        """Uniform small rectangles must keep splitting as before."""
        tree, _pager = build_tree()
        rng = np.random.default_rng(0)
        for key in range(400):
            center = rng.uniform(20, 980, size=2)
            rect = Rect.from_center(center, [5.0, 5.0])
            tree.insert(key, rect)
        assert tree.n_leaves > 1

    def test_mixed_sizes_bounded_leaves(self):
        """A clustered mix must not explode the leaf count."""
        tree, _pager = build_tree()
        rng = np.random.default_rng(1)
        clusters = rng.uniform(100, 900, size=(4, 2))
        n = 200
        for key in range(n):
            center = np.clip(
                clusters[key % 4] + rng.normal(scale=30.0, size=2),
                5.0, 995.0,
            )
            half = rng.uniform(100.0, 400.0)
            lo = np.maximum(center - half, 0.0)
            hi = np.minimum(center + half, 1000.0)
            tree.insert(key, Rect(lo, hi))
        # Loose sanity bound: far below the pathological cascade.
        assert tree.n_leaves < 20 * n

    def test_point_query_complete_under_guard(self):
        """Chained (unsplit) leaves never lose entries.

        The octree contract is *no false negatives*: the leaf containing
        a point holds an entry for every rectangle overlapping that
        point (callers apply their own filters).  With the guard
        refusing splits, everything lives in the root leaf and must
        still be returned.
        """
        tree, _pager = build_tree()
        big = Rect([0.0, 0.0], [1000.0, 1000.0])
        small = Rect([100.0, 100.0], [110.0, 110.0])
        for key in range(150):
            tree.insert(key, big)
        tree.insert(999, small)
        hits = {e[0] for e in tree.point_query(np.array([105.0, 105.0]))}
        assert hits == set(range(150)) | {999}

    def test_memory_budget_still_respected(self):
        tree, _pager = build_tree(memory_budget=2048)
        rng = np.random.default_rng(2)
        for key in range(500):
            center = rng.uniform(20, 980, size=2)
            tree.insert(key, Rect.from_center(center, [3.0, 3.0]))
        assert tree.memory_used <= 2048


class TestCompactLeafView:
    def test_compact_returns_freed_pages(self):
        tree, pager = build_tree()
        rect = Rect([1.0, 1.0], [2.0, 2.0])
        # Fill one leaf far past one page, then remove most entries.
        for key in range(200):
            tree.insert(key, rect)
        leaf = next(iter(tree.iter_leaves()))
        for key in range(180):
            leaf.remove_key(key)
        freed = leaf.compact()
        assert freed >= 0
        remaining = {e[0] for e in leaf.read()}
        assert remaining == set(range(180, 200))

    def test_compact_empty_leaf(self):
        tree, _pager = build_tree()
        leaf = next(iter(tree.iter_leaves()))
        assert leaf.compact() == 0
