"""Serving-layer tests: sessions, futures, coalescing, barriers.

Covers the submit-and-serve tentpole contract — futures complete with
answers identical to the synchronous verbs, concurrent same-template
queries coalesce into batched dispatches, mutations act as epoch
barriers — plus the lifecycle satellites: ``Database`` as a context
manager, once-guarded lazy builds under a cold-start hammer, and
clean shutdown semantics.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import synthetic_dataset
from repro.api import Database, Q
from repro.service import (
    FutureTimeout,
    QueryFuture,
    SchedulerClosed,
    as_completed,
)


def make_dataset(seed: int = 21, n: int = 50):
    return synthetic_dataset(
        n=n, dims=2, u_max=400, n_samples=10, seed=seed
    )


@pytest.fixture()
def db():
    database = Database(make_dataset())
    yield database
    database.close()


@pytest.fixture()
def queries():
    rng = np.random.default_rng(5)
    return make_dataset().domain.sample_points(8, rng)


# ----------------------------------------------------------------------
# Futures
# ----------------------------------------------------------------------
class TestQueryFuture:
    def test_result_timeout(self):
        future = QueryFuture("nn")
        assert not future.done()
        with pytest.raises(FutureTimeout):
            future.result(timeout=0.01)
        future._set_result("answer", epoch=3)
        assert future.done()
        assert future.result() == "answer"
        assert future.epoch == 3

    def test_exception_propagates(self):
        future = QueryFuture("nn")
        future._set_exception(KeyError("boom"))
        with pytest.raises(KeyError):
            future.result()
        assert isinstance(future.exception(), KeyError)
        assert future.epoch is None

    def test_as_completed_yields_everything(self):
        futures = [QueryFuture("nn") for _ in range(4)]
        for i, future in enumerate(futures):
            future._set_result(i, epoch=0)
        seen = {f.result() for f in as_completed(futures, timeout=5)}
        assert seen == {0, 1, 2, 3}

    def test_as_completed_timeout(self):
        pending = QueryFuture("nn")
        with pytest.raises(FutureTimeout):
            list(as_completed([pending], timeout=0.05))
        # The waiter unhooked itself: no leaked callback keeps the
        # dead iterator's machinery alive on the pending future.
        assert pending._callbacks == []

    def test_as_completed_abandoned_iterator_unhooks(self):
        done, pending = QueryFuture("nn"), QueryFuture("nn")
        done._set_result("x", epoch=0)
        iterator = as_completed([done, pending])
        assert next(iterator).result() == "x"
        iterator.close()  # abandon with one future still pending
        assert pending._callbacks == []


# ----------------------------------------------------------------------
# Sessions answer like the synchronous verbs
# ----------------------------------------------------------------------
class TestSessionAnswers:
    def test_all_verbs_match_sync(self, db, queries):
        sync = {
            "nn": db.nn(queries[0], retriever="brute"),
            "knn": db.knn(queries[1], k=2, retriever="brute"),
            "topk": db.topk(queries[2], k=3, retriever="brute"),
            "threshold": db.threshold(queries[3], p=0.2, retriever="brute"),
            "expected_nn": db.expected_nn(queries[4]),
        }
        server = db.serve(workers=2)
        session = server.session()
        futures = {
            "nn": session.nn(queries[0], retriever="brute"),
            "knn": session.knn(queries[1], k=2, retriever="brute"),
            "topk": session.topk(queries[2], k=3, retriever="brute"),
            "threshold": session.threshold(
                queries[3], p=0.2, retriever="brute"
            ),
            "expected_nn": session.expected_nn(queries[4]),
        }
        for kind, future in futures.items():
            got = future.result(timeout=30)
            assert got.kind == kind
            assert got.epoch == db.epoch
            if got.probabilities is not None:
                assert dict(got.probabilities) == dict(
                    sync[kind].probabilities
                )

    def test_reverse_nn_and_group_nn(self, db, queries):
        obj = db.dataset[db.dataset.ids[0]]
        sync_rnn = db.reverse_nn(obj)
        sync_gnn = db.group_nn(queries[:2], aggregate="sum")
        session = db.serve().session()
        rnn = session.reverse_nn(obj).result(timeout=30)
        gnn = session.group_nn(queries[:2], aggregate="sum").result(
            timeout=30
        )
        assert dict(rnn.probabilities) == dict(sync_rnn.probabilities)
        assert dict(gnn.probabilities) == dict(sync_gnn.probabilities)

    def test_session_batch_specs(self, db, queries):
        session = db.serve().session()
        futures = session.batch(
            [Q.nn(queries[0]), Q.knn(queries[1], k=2)]
        )
        kinds = [f.result(timeout=30).kind for f in futures]
        assert kinds == ["nn", "knn"]

    def test_sync_verbs_route_through_server(self, db, queries):
        server = db.serve()
        result = db.nn(queries[0], retriever="brute")
        assert result.epoch == db.epoch
        assert server.stats.submitted >= 1


# ----------------------------------------------------------------------
# Coalescing
# ----------------------------------------------------------------------
class TestCoalescing:
    def test_same_template_coalesces(self, db, queries):
        server = db.serve(workers=1)
        session = server.session()
        # Park a slow-ish query first so the rest pile up behind it.
        futures = [
            session.nn(q, retriever="brute")
            for q in np.repeat(queries, 4, axis=0)
        ]
        for future in futures:
            future.result(timeout=30)
        stats = server.stats
        assert stats.submitted == len(futures)
        assert stats.completed == len(futures)
        # At minimum the pile-up behind the first dispatch coalesced.
        assert stats.coalesced > 0
        assert stats.largest_group > 1

    def test_distinct_templates_do_not_coalesce(self, db, queries):
        server = db.serve(workers=1)
        session = server.session()
        f1 = session.knn(queries[0], k=2, retriever="brute")
        f2 = session.knn(queries[0], k=3, retriever="brute")
        r1, r2 = f1.result(timeout=30), f2.result(timeout=30)
        assert dict(r1.answer.probabilities) != dict(
            r2.answer.probabilities
        )

    def test_max_group_bounds_dispatch(self, db, queries):
        server = db.serve(workers=1, max_group=3)
        session = server.session()
        futures = [
            session.nn(q, retriever="brute")
            for q in np.repeat(queries, 2, axis=0)
        ]
        for future in futures:
            future.result(timeout=30)
        assert server.stats.largest_group <= 3


# ----------------------------------------------------------------------
# Scheduler queue discipline (no threads: direct dispatch probing)
# ----------------------------------------------------------------------
class TestSchedulerDiscipline:
    def _probe(self, scheduler):
        """Non-blocking ``next_work``: dispatchable unit or None."""
        with scheduler._cv:
            return scheduler._next_locked()

    def test_reads_coalesce_mutations_separate_segments(self):
        from repro.service import CoalescingScheduler
        from repro.service.scheduler import MutationWork, ReadGroup

        scheduler = CoalescingScheduler()
        scheduler.submit_read("nn", "q1", (), None)
        scheduler.submit_read("nn", "q2", (), None)
        scheduler.submit_mutation("insert", "obj")
        scheduler.submit_read("nn", "q3", (), None)

        group = self._probe(scheduler)
        assert isinstance(group, ReadGroup)
        assert group.queries == ["q1", "q2"]
        # Barrier: the mutation may not start until the group finishes,
        # and the post-barrier read is stuck behind both.
        assert self._probe(scheduler) is None
        scheduler.work_done(group)
        mutation = self._probe(scheduler)
        assert isinstance(mutation, MutationWork)
        scheduler.work_done(mutation)
        tail = self._probe(scheduler)
        assert isinstance(tail, ReadGroup)
        assert tail.queries == ["q3"]

    def test_no_read_dispatches_while_mutation_applies(self):
        from repro.service import CoalescingScheduler
        from repro.service.scheduler import MutationWork, ReadGroup

        scheduler = CoalescingScheduler()
        scheduler.submit_mutation("insert", "obj")
        mutation = self._probe(scheduler)
        assert isinstance(mutation, MutationWork)
        # A read submitted while the barrier is mid-application must
        # wait for it — it has to observe the post-mutation epoch.
        scheduler.submit_read("nn", "q", (), None)
        assert self._probe(scheduler) is None
        scheduler.work_done(mutation)
        assert isinstance(self._probe(scheduler), ReadGroup)


# ----------------------------------------------------------------------
# Mutation barriers
# ----------------------------------------------------------------------
class TestMutationBarriers:
    def test_epoch_tagging_across_barrier(self, db, queries):
        session = db.serve(workers=2).session()
        before = [session.nn(q, retriever="brute") for q in queries]
        removed = session.delete(db.dataset.ids[0])
        after = [session.nn(q, retriever="brute") for q in queries]
        for future in as_completed(before + [removed] + after, timeout=60):
            assert future.exception() is None
        assert {f.epoch for f in before} == {0}
        assert removed.epoch == 1
        assert removed.result().oid == 0
        assert {f.epoch for f in after} == {1}

    def test_insert_then_query_sees_object(self, db):
        from repro.geometry import Rect
        from repro.uncertain import UncertainObject, uniform_pdf

        rng = np.random.default_rng(9)
        center = np.array([200.0, 200.0])
        region = Rect(center - 5.0, center + 5.0)
        instances, weights = uniform_pdf(region, 6, rng)
        obj = UncertainObject(9999, region, instances, weights)

        session = db.serve().session()
        session.insert(obj).result(timeout=30)
        result = session.nn(center, retriever="brute").result(timeout=30)
        assert result.epoch == 1
        assert 9999 in dict(result.probabilities)

    def test_mutation_errors_carried_by_future(self, db):
        session = db.serve().session()
        future = session.delete(987654)
        assert isinstance(future.exception(timeout=30), KeyError)
        # The scheduler survives a failed barrier.
        assert session.nn(
            np.zeros(2), retriever="brute"
        ).result(timeout=30)


# ----------------------------------------------------------------------
# Lifecycle: Database context manager, close, server shutdown
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_database_context_manager(self):
        with Database(make_dataset()) as db:
            result = db.nn([100.0, 100.0])
            assert result.best is not None
        # close() dropped every built handle and the packed store.
        assert db.built_indexes == ()
        assert db.dataset._store is None

    def test_double_close_is_noop(self):
        db = Database(make_dataset())
        db.nn([100.0, 100.0])
        db.close()
        db.close()
        assert db.built_indexes == ()

    def test_close_shuts_down_server(self):
        db = Database(make_dataset())
        server = db.serve()
        session = server.session()
        future = session.nn(np.array([50.0, 50.0]), retriever="brute")
        db.close()
        # Queued work drained before shutdown — the future completed.
        assert future.done()
        assert server.closed
        assert db.server is None
        with pytest.raises(SchedulerClosed):
            server.submit("nn", np.zeros(2))
        with pytest.raises(RuntimeError):
            db.serve()

    def test_serve_idempotent_and_option_guard(self, db):
        server = db.serve(workers=2)
        assert db.serve() is server
        with pytest.raises(ValueError):
            db.serve(workers=4)

    def test_closed_session_refuses(self, db):
        session = db.serve().session()
        session.close()
        with pytest.raises(RuntimeError):
            session.nn(np.zeros(2))

    def test_unknown_kind_rejected_at_submit(self, db):
        server = db.serve()
        with pytest.raises(KeyError):
            server.submit("bogus", np.zeros(2))
        with pytest.raises(KeyError):
            server.submit_mutation("truncate", None)


# ----------------------------------------------------------------------
# Once-guards: cold-start hammer (the lazy-build race regression)
# ----------------------------------------------------------------------
class TestColdStartHammer:
    N_THREADS = 12

    def _hammer(self, fn):
        barrier = threading.Barrier(self.N_THREADS)
        errors: list[BaseException] = []
        results: list = []
        lock = threading.Lock()

        def run():
            try:
                barrier.wait(timeout=30)
                value = fn()
            except BaseException as error:  # noqa: BLE001
                with lock:
                    errors.append(error)
            else:
                with lock:
                    results.append(value)

        threads = [
            threading.Thread(target=run) for _ in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        return results

    def test_index_handle_builds_exactly_once(self):
        db = Database(make_dataset())
        handle = db._handles["pv"]
        builds = []
        original = handle.builder
        handle.builder = lambda ds: (builds.append(1), original(ds))[1]

        query = np.array([120.0, 120.0])
        expected = dict(
            Database(make_dataset()).nn(query, retriever="brute")
            .probabilities
        )
        results = self._hammer(
            lambda: db.nn(query, retriever="pv")
        )
        assert len(builds) == 1
        for result in results:
            assert dict(result.probabilities) == expected

    def test_instance_store_builds_exactly_once(self):
        dataset = make_dataset()
        stores = self._hammer(dataset.instance_store)
        assert len({id(store) for store in stores}) == 1
        assert stores[0].matches_dataset()

    def test_cold_database_hammered_through_server(self):
        db = Database(make_dataset())
        server = db.serve(workers=3)
        rng = np.random.default_rng(2)
        points = db.dataset.domain.sample_points(self.N_THREADS, rng)

        def one(i):
            session = server.session()
            return session.nn(points[i], retriever="brute").result(
                timeout=60
            )

        counter = iter(range(self.N_THREADS))
        lock = threading.Lock()

        def next_one():
            with lock:
                i = next(counter)
            return one(i)

        results = self._hammer(next_one)
        reference = Database(make_dataset())
        for result in results:
            want = reference.nn(result.answer.query, retriever="brute")
            assert dict(result.probabilities) == dict(want.probabilities)
        db.close()
